// Shared-nothing distributed estimation, end to end (src/dist/).
//
// Three ways to run it:
//
//   example_sharded_estimate
//       Full single-binary demo: scatter Query 1 over 1/2/4/8 in-process
//       shards (LocalTransport), verify the estimates are bit-identical,
//       then replay the same query multi-process style through a
//       FileTransport spool directory.
//
//   example_sharded_estimate --worker K --shards N --dir DIR [--seed S]
//       Run ONLY shard K of N and write its serialized estimator state to
//       DIR/shard-K.gusb. Launch one process per shard (any order, any
//       machine sharing DIR).
//
//   example_sharded_estimate --gather --shards N --dir DIR [--seed S]
//       Gather: read the N shard files, validate consistency, merge, and
//       print the estimate with its confidence interval. With
//       --allow-partial, shards whose bundles are missing or damaged are
//       excluded and the survivors re-weighted into an unbiased degraded
//       estimate (est/partial_gather.h) instead of failing the gather.
//
// The full demo also honors GUS_FAULT (util/fault_inject.h) and
// --deadline-ms: the fault-tolerant scatter/gather retries transient
// failures with backoff and — under --allow-partial — degrades when a
// shard exhausts its budget. CI runs the worker/gather form under
// GUS_FAULT kill specs as its fault smoke.
//
// Every process regenerates the same deterministic TPC-H-shaped catalog —
// the shared-nothing stand-in for "each node holds (a copy of) the base
// data". The wire protocol is specified in docs/WIRE_FORMAT.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "dist/coordinator.h"
#include "dist/shard.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "plan/exec_stats.h"
#include "plan/soa_transform.h"

namespace {

using namespace gus;

/// The demo workload: paper Query 1 over a deterministic catalog that
/// every participating process can regenerate bit-identically.
struct DemoQuery {
  TpchData data;
  Catalog catalog;
  Workload q1;
  SoaResult soa;
  SboxOptions options;
  ExecOptions exec;

  DemoQuery() {
    TpchConfig config;
    config.num_orders = 20000;
    config.num_customers = 2000;
    config.num_parts = 500;
    data = GenerateTpch(config);
    catalog = data.MakeCatalog();
    Query1Params params;
    params.lineitem_p = 0.3;
    params.orders_n = 8000;
    params.orders_population = 20000;
    q1 = MakeQuery1(params);
    soa = SoaTransform(q1.plan).ValueOrDie();
    options.subsample = SubsampleConfig{};
    exec.morsel_rows = 4096;  // fixed: part of the result's identity
  }
};

void PrintReport(const char* label, const SboxReport& report) {
  std::printf("%-28s estimate %.6f  stddev %.6f  95%% CI [%.6f, %.6f]  "
              "(%lld tuples, %lld for variance)\n",
              label, report.estimate, report.stddev, report.interval.lo,
              report.interval.hi, static_cast<long long>(report.sample_rows),
              static_cast<long long>(report.variance_rows));
}

int RunWorker(const DemoQuery& demo, uint64_t seed, int shard, int shards,
              const std::string& dir) {
  ColumnarCatalog columnar(&demo.catalog);
  auto bundle = RunShardSbox(demo.q1.plan, &columnar, seed,
                             ExecMode::kSampled, demo.exec, shard, shards,
                             demo.q1.aggregate, demo.soa.top, demo.options);
  if (!bundle.ok()) {
    std::fprintf(stderr, "worker %d failed: %s\n", shard,
                 bundle.status().ToString().c_str());
    return 1;
  }
  FileTransport files(dir);
  Status sent = files.Send(shard, std::move(bundle).ValueOrDie());
  if (!sent.ok()) {
    std::fprintf(stderr, "send failed: %s\n", sent.ToString().c_str());
    return 1;
  }
  std::printf("shard %d/%d state written to %s\n", shard, shards,
              files.ShardPath(shard).c_str());
  return 0;
}

int RunGather(int shards, const std::string& dir, bool allow_partial) {
  FileTransport files(dir);
  if (!allow_partial) {
    auto report = GatherSboxEstimate(&files, shards);
    if (!report.ok()) {
      std::fprintf(stderr, "gather failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    PrintReport("gathered estimate", report.ValueOrDie());
    return 0;
  }
  // A degraded gather must know which lineage agreement sets pin a pair of
  // rows to one shard — the plan's pivot relation. Every process can
  // recompute it deterministically, exactly like the workers recompute
  // their own shard specs.
  DemoQuery demo;
  ColumnarCatalog columnar(&demo.catalog);
  auto sp = PlanShards(demo.q1.plan, &columnar, ExecMode::kSampled,
                       ShardedExecOptions(demo.exec), shards);
  if (!sp.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 sp.status().ToString().c_str());
    return 1;
  }
  const std::string pivot = sp.ValueOrDie().split.partitionable
                                ? sp.ValueOrDie().split.pivot_relation
                                : "";
  auto result = GatherSboxEstimatePartial(&files, shards, pivot,
                                          /*allow_partial=*/true);
  if (!result.ok()) {
    std::fprintf(stderr, "gather failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const FaultTolerantResult& ft = result.ValueOrDie();
  PrintReport(ft.degraded ? "DEGRADED estimate" : "gathered estimate",
              ft.report);
  if (ft.degraded) {
    std::printf("  %s\n", ft.degradation.ToString().c_str());
  }
  return 0;
}

int RunDemo(const DemoQuery& demo, uint64_t seed, bool allow_partial,
            int64_t deadline_ms) {
  std::printf("Query 1 over %lld lineitems, %lld orders "
              "(seed %llu, morsel_rows %lld)\n\n",
              static_cast<long long>(demo.data.lineitem.num_rows()),
              static_cast<long long>(demo.data.orders.num_rows()),
              static_cast<unsigned long long>(seed),
              static_cast<long long>(demo.exec.morsel_rows));

  std::printf("-- in-process scatter/gather (LocalTransport) --\n");
  SboxReport first;
  for (const int shards : {1, 2, 4, 8}) {
    auto report = ShardedSboxEstimate(
        demo.q1.plan, demo.catalog, seed, ExecMode::kSampled, demo.exec,
        shards, demo.q1.aggregate, demo.soa.top, demo.options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "num_shards = %d", shards);
    PrintReport(label, report.ValueOrDie());
    if (shards == 1) {
      first = report.ValueOrDie();
    } else if (report.ValueOrDie().estimate != first.estimate ||
               report.ValueOrDie().interval.lo != first.interval.lo ||
               report.ValueOrDie().interval.hi != first.interval.hi) {
      std::fprintf(stderr,
                   "BUG: estimate not bit-identical across shard counts\n");
      return 1;
    }
  }
  std::printf("=> bit-identical across shard counts (shards are ranges of "
              "one global morsel sequence)\n\n");

  std::printf("-- multi-process style (FileTransport spool) --\n");
  const std::string dir = "/tmp/gus_sharded_demo";
  const int shards = 4;
  for (int k = 0; k < shards; ++k) {
    // Each of these calls is exactly what `--worker k --shards 4` does in
    // a separate process: same plan + seed, own catalog, own shard slice.
    if (RunWorker(demo, seed, k, shards, dir) != 0) return 1;
  }
  if (RunGather(shards, dir, /*allow_partial=*/false) != 0) return 1;

  std::printf("\n-- fault-tolerant scatter/gather (retries + deadlines) --\n");
  ExecStats stats;
  ExecOptions ft_exec = demo.exec;
  ft_exec.stats = &stats;
  ft_exec.retry.deadline_ms = deadline_ms;
  ft_exec.allow_partial = allow_partial;
  auto ft = FaultTolerantShardedSboxEstimate(
      demo.q1.plan, demo.catalog, seed, ExecMode::kSampled, ft_exec, shards,
      demo.q1.aggregate, demo.soa.top, demo.options);
  JoinAbandonedShardAttempts();
  if (!ft.ok()) {
    std::fprintf(stderr, "fault-tolerant run failed: %s\n",
                 ft.status().ToString().c_str());
    return 1;
  }
  const FaultTolerantResult& r = ft.ValueOrDie();
  PrintReport(r.degraded ? "DEGRADED estimate" : "fault-tolerant estimate",
              r.report);
  std::printf("  attempts %lld, retries %lld, deadline hits %lld, "
              "shards lost %lld, coverage %.2f\n",
              static_cast<long long>(stats.shard_attempts),
              static_cast<long long>(stats.shard_retries),
              static_cast<long long>(stats.shard_deadline_hits),
              static_cast<long long>(stats.shards_lost),
              stats.effective_coverage);
  if (r.degraded) std::printf("  %s\n", r.degradation.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int worker = -1;
  bool gather = false;
  bool allow_partial = false;
  int shards = 4;
  uint64_t seed = 7;
  int64_t deadline_ms = 0;
  std::string dir = "/tmp/gus_sharded_demo";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc) {
      worker = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--gather") == 0) {
      gather = true;
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      allow_partial = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--worker K --shards N | --gather --shards N] "
                   "[--allow-partial] [--deadline-ms MS] [--dir DIR] "
                   "[--seed S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (gather) return RunGather(shards, dir, allow_partial);
  DemoQuery demo;
  if (worker >= 0) return RunWorker(demo, seed, worker, shards, dir);
  return RunDemo(demo, seed, allow_partial, deadline_ms);
}
