// The introduction's APPROX view:
//
//   CREATE VIEW APPROX (lo, hi) AS
//   SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05),
//          QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95)
//   FROM lineitem TABLESAMPLE (10 PERCENT),
//        orders TABLESAMPLE(1000 ROWS)
//   WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;
//
// This example implements the view as a small reusable helper (any plan,
// any quantile list) and validates the [0.05, 0.95] bound empirically.

#include <cstdio>
#include <vector>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "est/confidence.h"
#include "est/sbox.h"
#include "plan/executor.h"
#include "plan/soa_transform.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

/// One row of the APPROX view: a value per requested quantile.
std::vector<double> ApproxView(const gus::Workload& query,
                               const gus::Catalog& catalog,
                               const std::vector<double>& quantiles,
                               uint64_t seed) {
  using namespace gus;
  SoaResult soa = Unwrap(SoaTransform(query.plan));
  Rng rng(seed);
  Relation sample = Unwrap(ExecutePlan(query.plan, catalog, &rng));
  SampleView view = Unwrap(
      SampleView::FromRelation(sample, query.aggregate, soa.top.schema()));
  SboxReport report = Unwrap(SboxEstimate(soa.top, view));
  std::vector<double> out;
  for (double q : quantiles) {
    out.push_back(Unwrap(EstimateQuantile(report.estimate, report.variance,
                                          q)));
  }
  return out;
}

}  // namespace

int main() {
  using namespace gus;

  TpchConfig config;
  config.num_orders = 10000;
  TpchData data = GenerateTpch(config);
  Catalog catalog = data.MakeCatalog();

  Query1Params params;
  params.lineitem_p = 0.1;
  params.orders_n = 1000;
  params.orders_population = config.num_orders;
  Workload query = MakeQuery1(params);

  const auto row = ApproxView(query, catalog, {0.05, 0.95}, /*seed=*/7);
  std::printf("APPROX view: lo = %.4f, hi = %.4f\n", row[0], row[1]);

  // Validate: across many independent executions of the view, the true
  // answer should fall below `lo` about 5%% of the time and above `hi`
  // about 5%% of the time.
  Rng exact_rng(1);
  SoaResult soa = Unwrap(SoaTransform(query.plan));
  Relation exact =
      Unwrap(ExecutePlan(query.plan, catalog, &exact_rng, ExecMode::kExact));
  const double truth =
      Unwrap(SampleView::FromRelation(exact, query.aggregate,
                                      soa.top.schema()))
          .SumF();
  std::printf("exact answer: %.4f\n\n", truth);

  const int trials = 400;
  int below = 0, above = 0;
  for (int t = 0; t < trials; ++t) {
    const auto r = ApproxView(query, catalog, {0.05, 0.95}, 1000 + t);
    if (truth < r[0]) ++below;
    if (truth > r[1]) ++above;
  }
  std::printf("over %d view evaluations:\n", trials);
  std::printf("  truth below lo: %.1f%% (nominal 5%%)\n",
              100.0 * below / trials);
  std::printf("  truth above hi: %.1f%% (nominal 5%%)\n",
              100.0 * above / trials);
  return 0;
}
