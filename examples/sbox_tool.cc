// The SBox as an external tool (paper Section 6): a standalone executable
// that reads a serialized (GUS parameters + lineage/value stream) file on
// stdin or from a path and prints the estimate, variance and confidence
// intervals. A database engine needs no estimation code at all — it dumps
// the file, this tool does the statistics.
//
// Usage:
//   sbox_tool [file] [--level=0.95] [--chebyshev] [--subsample=N]
//   sbox_tool --demo          # generate a demo input, then analyze it
//
// File format: see src/est/serialize.h (gus-sbox-v1).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "algebra/ops.h"
#include "algebra/translate.h"
#include "est/sbox.h"
#include "est/serialize.h"
#include "util/random.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "sbox_tool: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

/// Builds a small demonstration input: a Bernoulli x WOR join sample.
std::string MakeDemoInput() {
  using namespace gus;
  GusParams gl =
      Unwrap(TranslateBaseSampling(SamplingSpec::Bernoulli(0.25), "l"));
  GusParams go = Unwrap(
      TranslateBaseSampling(SamplingSpec::WithoutReplacement(40, 100), "o"));
  GusParams gus = Unwrap(GusJoin(gl, go));
  SampleView view;
  view.schema = gus.schema();
  view.lineage.assign(2, {});
  Rng rng(99);
  for (uint64_t o = 0; o < 40; ++o) {
    for (uint64_t l = 0; l < 6; ++l) {
      if (!rng.Bernoulli(0.25)) continue;
      view.lineage[0].push_back(o * 10 + l);
      view.lineage[1].push_back(o);
      view.f.push_back(rng.Uniform(0.0, 2.0));
    }
  }
  return Unwrap(SboxInputToString(gus, view));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gus;

  std::string path;
  double level = 0.95;
  BoundKind kind = BoundKind::kNormal;
  bool demo = false;
  SboxOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--chebyshev") {
      kind = BoundKind::kChebyshev;
    } else if (arg.rfind("--level=", 0) == 0) {
      level = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--subsample=", 0) == 0) {
      options.subsample = SubsampleConfig{
          std::strtoll(arg.c_str() + 12, nullptr, 10), /*seed=*/0xC0FFEE};
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  options.confidence_level = level;
  options.bound_kind = kind;

  SboxInput input = [&] {
    if (demo) {
      std::printf("(running on a generated demo input)\n");
      return Unwrap(SboxInputFromString(MakeDemoInput()));
    }
    if (!path.empty()) {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "sbox_tool: cannot open '%s'\n", path.c_str());
        std::exit(2);
      }
      return Unwrap(ReadSboxInput(&file));
    }
    return Unwrap(ReadSboxInput(&std::cin));
  }();

  SboxReport report = Unwrap(SboxEstimate(input.gus, input.view, options));
  std::printf("schema:        %s\n", input.gus.schema().ToString().c_str());
  std::printf("sample tuples: %lld (variance rows %lld)\n",
              static_cast<long long>(report.sample_rows),
              static_cast<long long>(report.variance_rows));
  std::printf("estimate:      %.10g\n", report.estimate);
  std::printf("variance:      %.10g\n", report.variance);
  std::printf("stddev:        %.10g\n", report.stddev);
  std::printf("interval:      %s\n", report.interval.ToString().c_str());
  return 0;
}
