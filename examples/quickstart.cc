// Quickstart: estimate a SUM aggregate over a sampled join and get a
// confidence interval — the paper's Query 1 end to end.
//
//   SELECT SUM(l_discount*(1.0-l_tax))
//   FROM lineitem TABLESAMPLE (10 PERCENT),
//        orders   TABLESAMPLE (1000 ROWS)
//   WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;
//
// Pipeline: build the plan -> SOA-transform it to a single top GUS ->
// execute the sampled plan -> feed (lineage, f) to the SBox -> read the
// estimate and interval. Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "est/sbox.h"
#include "mc/monte_carlo.h"
#include "plan/executor.h"
#include "plan/soa_transform.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  using namespace gus;

  // 1. Synthetic TPC-H-shaped data (stand-in for a real catalog).
  TpchConfig config;
  config.num_orders = 20000;
  config.num_customers = 1500;
  config.num_parts = 1000;
  TpchData data = GenerateTpch(config);
  Catalog catalog = data.MakeCatalog();
  std::printf("data: %lld lineitem, %lld orders\n",
              static_cast<long long>(data.lineitem.num_rows()),
              static_cast<long long>(data.orders.num_rows()));

  // 2. The sampled query plan (TABLESAMPLE annotations as Sample nodes).
  Query1Params params;
  params.lineitem_p = 0.1;
  params.orders_n = 1000;
  params.orders_population = config.num_orders;
  Workload query = MakeQuery1(params);
  std::printf("\nplan:\n%s", query.plan->ToString(1).c_str());

  // 3. Analyze: collapse all sampling into one GUS quasi-operator.
  SoaResult soa = Unwrap(SoaTransform(query.plan));
  std::printf("\ntop GUS operator: %s\n", soa.top.ToString().c_str());

  // 4. Execute the sampled plan and estimate.
  Rng rng(/*seed=*/2026);
  Relation sample = Unwrap(ExecutePlan(query.plan, catalog, &rng));
  SampleView view = Unwrap(
      SampleView::FromRelation(sample, query.aggregate, soa.top.schema()));
  SboxOptions options;
  options.confidence_level = 0.95;
  SboxReport report = Unwrap(SboxEstimate(soa.top, view, options));

  std::printf("\nsample tuples: %lld\n",
              static_cast<long long>(report.sample_rows));
  std::printf("estimate:      %.4f\n", report.estimate);
  std::printf("std deviation: %.4f\n", report.stddev);
  std::printf("95%% interval:  [%.4f, %.4f]\n", report.interval.lo,
              report.interval.hi);

  // 5. Compare with the exact answer (only possible because this is a demo).
  Rng exact_rng(1);
  Relation exact =
      Unwrap(ExecutePlan(query.plan, catalog, &exact_rng, ExecMode::kExact));
  SampleView exact_view = Unwrap(
      SampleView::FromRelation(exact, query.aggregate, soa.top.schema()));
  std::printf("exact answer:  %.4f  (inside the interval: %s)\n",
              exact_view.SumF(),
              report.interval.Contains(exact_view.SumF()) ? "yes" : "no");
  return 0;
}
