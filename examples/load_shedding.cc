// Load shedding on a data stream (paper Section 8): a bursty stream exceeds
// the system's per-window capacity; an adaptive Bernoulli shedder keeps the
// retained volume near capacity while the GUS machinery attaches honest
// confidence intervals to every window's aggregate — including a windowed
// two-stream join, the multi-relation case prior work could not analyze.

#include <cmath>
#include <cstdio>

#include "rel/operators.h"
#include "stream/load_shedder.h"
#include "util/random.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

/// One window of a synthetic sensor stream: (sensor_id, reading).
gus::Relation MakeWindow(int64_t arrivals, gus::Rng* rng,
                         const std::string& name) {
  using namespace gus;
  std::vector<Row> rows;
  rows.reserve(arrivals);
  for (int64_t i = 0; i < arrivals; ++i) {
    rows.push_back(Row{Value(static_cast<int64_t>(rng->UniformInt(uint64_t{64}))),
                       Value(rng->Uniform(0.0, 10.0))});
  }
  return Relation::MakeBase(
      name,
      Schema({{name + "_sensor", ValueType::kInt64},
              {name + "_reading", ValueType::kFloat64}}),
      std::move(rows));
}

}  // namespace

int main() {
  using namespace gus;

  Rng rng(31337);
  ShedderConfig config;
  config.capacity_per_window = 2000;
  BernoulliLoadShedder shedder(config);

  std::printf("Single stream: SUM(reading) per window, capacity %lld\n\n",
              static_cast<long long>(config.capacity_per_window));
  TablePrinter table({"window", "arrivals", "keep p", "kept", "true sum",
                      "estimate", "95% interval", "hit"});
  // A bursty arrival pattern: quiet, burst, decay.
  const int64_t kArrivalPattern[] = {1500, 1800, 9000, 16000, 12000,
                                     6000, 2500, 1200, 20000, 4000};
  int window_id = 0;
  for (int64_t arrivals : kArrivalPattern) {
    Relation window = MakeWindow(arrivals, &rng, "s");
    const double p = shedder.keep_probability();
    WindowEstimate est = Unwrap(
        ShedAndEstimateWindow(window, p, Col("s_reading"), &rng));
    double truth = 0.0;
    for (int64_t i = 0; i < window.num_rows(); ++i) {
      truth += window.row(i)[1].AsFloat64();
    }
    char interval[64];
    std::snprintf(interval, sizeof(interval), "[%.0f, %.0f]",
                  est.interval.lo, est.interval.hi);
    table.AddRow({std::to_string(window_id++), std::to_string(arrivals),
                  TablePrinter::Num(p, 3), std::to_string(est.kept_rows),
                  TablePrinter::Num(truth, 6),
                  TablePrinter::Num(est.estimate, 6), interval,
                  est.interval.Contains(truth) ? "y" : "n"});
    shedder.ObserveWindow(arrivals);
  }
  std::printf("%s\n", table.ToString().c_str());

  // Two shedded streams joined within the window (sensor correlation).
  std::printf(
      "Joined windows: SUM(a_reading * b_reading) over matching sensors,\n"
      "both streams shedded independently (GUS join analysis).\n\n");
  TablePrinter join_table(
      {"window", "p_a", "p_b", "kept pairs", "true sum", "estimate", "hit"});
  for (int w = 0; w < 6; ++w) {
    Relation a = MakeWindow(4000, &rng, "a");
    Relation b = MakeWindow(3000, &rng, "b");
    WindowEstimate est = Unwrap(ShedAndEstimateJoinedWindows(
        a, 0.3, b, 0.4, "a_sensor", "b_sensor",
        Mul(Col("a_reading"), Col("b_reading")), &rng));
    // Exact join sum for reference.
    Relation joined = Unwrap(HashJoin(a, b, "a_sensor", "b_sensor"));
    double truth = Unwrap(
        AggregateSum(joined, Mul(Col("a_reading"), Col("b_reading"))));
    join_table.AddRow({std::to_string(w), "0.3", "0.4",
                       std::to_string(est.kept_rows),
                       TablePrinter::Num(truth, 6),
                       TablePrinter::Num(est.estimate, 6),
                       est.interval.Contains(truth) ? "y" : "n"});
  }
  std::printf("%s", join_table.ToString().c_str());
  return 0;
}
