// "Choosing sampling parameters" (paper Section 8): the y_S statistics are
// properties of the *data*, the c_S coefficients of the *design*. Having
// unbiased Ŷ_S from ONE pilot sample, we can predict the variance of any
// other GUS design by just swapping in its coefficients — no re-sampling.
//
// This advisor runs one pilot execution of Query 1, then ranks candidate
// designs (Bernoulli fractions and WOR sizes on both tables) by predicted
// standard deviation per sampled tuple, and finally verifies two
// predictions against real executions.

#include <cmath>
#include <cstdio>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "est/sbox.h"
#include "est/variance.h"
#include "mc/monte_carlo.h"
#include "plan/executor.h"
#include "plan/soa_transform.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  using namespace gus;

  TpchConfig config;
  config.num_orders = 8000;
  config.num_customers = 500;
  config.num_parts = 300;
  TpchData data = GenerateTpch(config);
  Catalog catalog = data.MakeCatalog();

  // ---- Pilot: one generous sample to learn the data's y_S statistics.
  Query1Params pilot_params;
  pilot_params.lineitem_p = 0.5;
  pilot_params.orders_n = 4000;
  pilot_params.orders_population = config.num_orders;
  Workload pilot = MakeQuery1(pilot_params);
  SoaResult pilot_soa = Unwrap(SoaTransform(pilot.plan));
  Rng rng(11);
  Relation pilot_sample = Unwrap(ExecutePlan(pilot.plan, catalog, &rng));
  SampleView pilot_view = Unwrap(SampleView::FromRelation(
      pilot_sample, pilot.aggregate, pilot_soa.top.schema()));
  SboxReport pilot_report = Unwrap(SboxEstimate(pilot_soa.top, pilot_view));
  std::printf("pilot: %lld tuples, estimate %.2f\n\n",
              static_cast<long long>(pilot_report.sample_rows),
              pilot_report.estimate);

  // ---- Advisor: predict sigma for candidate designs from Ŷ_S alone.
  struct Candidate {
    const char* name;
    double lineitem_p;
    int64_t orders_n;
  };
  const Candidate kCandidates[] = {
      {"B(0.05) l, WOR 400 o", 0.05, 400},
      {"B(0.10) l, WOR 800 o", 0.10, 800},
      {"B(0.20) l, WOR 400 o", 0.20, 400},
      {"B(0.05) l, WOR 1600 o", 0.05, 1600},
      {"B(0.20) l, WOR 1600 o", 0.20, 1600},
      {"B(0.40) l, WOR 3200 o", 0.40, 3200},
  };

  TablePrinter table({"candidate design", "predicted sigma",
                      "expected tuples", "sigma * sqrt(tuples)"});
  const double result_size =
      static_cast<double>(pilot_report.sample_rows) / pilot_soa.top.a();
  for (const Candidate& c : kCandidates) {
    Query1Params params;
    params.lineitem_p = c.lineitem_p;
    params.orders_n = c.orders_n;
    params.orders_population = config.num_orders;
    SoaResult soa = Unwrap(SoaTransform(MakeQuery1(params).plan));
    // Swap designs: same Ŷ (data), new c_S/a (design).
    const double var =
        Unwrap(VarianceFromY(soa.top, pilot_report.y_hat));
    const double sigma = std::sqrt(std::max(0.0, var));
    const double tuples = soa.top.a() * result_size;
    table.AddRow({c.name, TablePrinter::Num(sigma, 4),
                  TablePrinter::Num(tuples, 4),
                  TablePrinter::Num(sigma * std::sqrt(tuples), 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The last column is a cost-normalized quality score: lower means the\n"
      "design extracts more accuracy per sampled tuple.\n\n");

  // ---- Verify two predictions against reality (200 executions each).
  for (const Candidate& c : {kCandidates[1], kCandidates[4]}) {
    Query1Params params;
    params.lineitem_p = c.lineitem_p;
    params.orders_n = c.orders_n;
    params.orders_population = config.num_orders;
    Workload w = MakeQuery1(params);
    SoaResult soa = Unwrap(SoaTransform(w.plan));
    const double predicted = std::sqrt(std::max(
        0.0, Unwrap(VarianceFromY(soa.top, pilot_report.y_hat))));
    SboxTrialStats stats = Unwrap(RunSboxTrials(w, catalog, 200, 77));
    std::printf("%-24s predicted sigma %.4f, measured sigma %.4f\n", c.name,
                predicted, std::sqrt(stats.estimates.variance_sample()));
  }
  return 0;
}
