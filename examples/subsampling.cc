// Efficient variance estimation by sub-sampling (paper Section 7 /
// Example 6): the point estimate uses every result tuple, while the 2^n
// y_S group-bys run on a small lineage-consistent Bernoulli sub-sample.
// Only the sub-sampled tuples ever need lineage attached — the big win for
// integration into a real engine.

#include <chrono>
#include <cstdio>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "est/sbox.h"
#include "plan/executor.h"
#include "plan/soa_transform.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace gus;

  // A large enough instance that the variance computation cost matters.
  TpchConfig config;
  config.num_orders = 60000;
  config.num_customers = 2000;
  config.num_parts = 1000;
  TpchData data = GenerateTpch(config);
  Catalog catalog = data.MakeCatalog();

  Query1Params params;
  params.lineitem_p = 0.7;
  params.orders_n = 50000;
  params.orders_population = config.num_orders;
  Workload query = MakeQuery1(params);
  SoaResult soa = Unwrap(SoaTransform(query.plan));

  Rng rng(5);
  Relation sample = Unwrap(ExecutePlan(query.plan, catalog, &rng));
  SampleView view = Unwrap(
      SampleView::FromRelation(sample, query.aggregate, soa.top.schema()));
  std::printf("result sample: %lld tuples\n\n",
              static_cast<long long>(view.num_rows()));

  // Full-sample variance estimation.
  auto t0 = std::chrono::steady_clock::now();
  SboxReport full = Unwrap(SboxEstimate(soa.top, view));
  const double full_ms = MillisSince(t0);

  // Section 7: sub-sampled y_S estimation at a few target sizes.
  TablePrinter table({"variance rows", "estimate", "sigma-hat",
                      "estimation time (ms)"});
  table.AddRow({std::to_string(full.variance_rows),
                TablePrinter::Num(full.estimate, 6),
                TablePrinter::Num(full.stddev, 4),
                TablePrinter::Num(full_ms, 3)});
  for (int64_t target : {20000, 10000, 2000}) {
    SboxOptions options;
    options.subsample = SubsampleConfig{target, /*seed=*/99};
    t0 = std::chrono::steady_clock::now();
    SboxReport sub = Unwrap(SboxEstimate(soa.top, view, options));
    const double sub_ms = MillisSince(t0);
    table.AddRow({std::to_string(sub.variance_rows),
                  TablePrinter::Num(sub.estimate, 6),
                  TablePrinter::Num(sub.stddev, 4),
                  TablePrinter::Num(sub_ms, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The estimate column never changes (it always uses the full sample);\n"
      "sigma-hat stays within a few percent down to ~10000 variance rows,\n"
      "matching the paper's rule of thumb, while estimation time drops.\n"
      "\n"
      "Under the hood the sub-sampler is a multi-dimensional lineage-seeded\n"
      "Bernoulli (one pseudo-random function per base relation), and the\n"
      "analysis GUS is the Prop-8 compaction of the plan's GUS with the\n"
      "sub-sampler's — exactly the Figure 5 derivation.\n");
  return 0;
}
