// "Database as a sample" (paper Section 8): treat the stored database as a
// 99% Bernoulli sample of a hypothetical slightly-larger truth. A query
// whose GUS variance is large under that reading is *fragile* — losing or
// gaining 1% of tuples would visibly move its answer.
//
// This example scores several aggregates for robustness and shows that a
// skew-dominated aggregate is far more fragile than a uniform one.

#include <cmath>
#include <cstdio>

#include "algebra/translate.h"
#include "data/tpch_gen.h"
#include "est/sbox.h"
#include "rel/operators.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

struct RobustnessScore {
  double answer;
  double sigma;
  double relative;  // sigma / |answer|
};

/// Scores SUM(f) over the base relation `rel` under the database-as-a-99%-
/// Bernoulli-sample reading.
RobustnessScore ScoreRobustness(const gus::Relation& rel,
                                const std::string& name,
                                const gus::ExprPtr& f) {
  using namespace gus;
  GusParams g = Unwrap(
      TranslateBaseSampling(SamplingSpec::Bernoulli(0.99), name));
  SampleView view = Unwrap(SampleView::FromRelation(rel, f, g.schema()));
  // The database IS the sample here; Theorem 1 with the y-statistics of the
  // observed data gives the perturbation variance directly.
  SboxReport report = Unwrap(SboxEstimate(g, view));
  const double answer = view.SumF();
  return {answer, report.stddev, report.stddev / std::fabs(answer)};
}

}  // namespace

int main() {
  using namespace gus;

  TpchConfig config;
  config.num_orders = 20000;
  config.part_zipf_theta = 1.2;  // skewed part popularity
  TpchData data = GenerateTpch(config);

  TablePrinter table(
      {"aggregate", "answer", "perturbation sigma", "relative"});

  // (a) A bulk aggregate over many similar tuples: robust.
  RobustnessScore uniform = ScoreRobustness(
      data.lineitem, "l", Mul(Col("l_discount"), Sub(Lit(1.0), Col("l_tax"))));
  table.AddRow({"SUM(l_discount*(1-l_tax))",
                TablePrinter::Num(uniform.answer, 6),
                TablePrinter::Num(uniform.sigma, 4),
                TablePrinter::Num(uniform.relative, 3)});

  // (b) The same data but dominated by the largest values: fragile.
  RobustnessScore heavy = ScoreRobustness(
      data.lineitem, "l",
      Mul(Mul(Col("l_extendedprice"), Col("l_extendedprice")),
          Col("l_extendedprice")));
  table.AddRow({"SUM(l_extendedprice^3)",
                TablePrinter::Num(heavy.answer, 6),
                TablePrinter::Num(heavy.sigma, 4),
                TablePrinter::Num(heavy.relative, 3)});

  // (c) A filtered aggregate over a thin slice: fragility grows as the
  // slice shrinks.
  Relation slice = Unwrap(
      Select(data.lineitem, Gt(Col("l_extendedprice"), Lit(100000.0))));
  RobustnessScore thin =
      ScoreRobustness(slice, "l", Col("l_extendedprice"));
  table.AddRow({"SUM(price | price>100k)",
                TablePrinter::Num(thin.answer, 6),
                TablePrinter::Num(thin.sigma, 4),
                TablePrinter::Num(thin.relative, 3)});

  std::printf(
      "Robustness analysis: the database viewed as a 99%% Bernoulli sample\n"
      "(would losing 1%% of tuples move the answer?)\n\n%s\n",
      table.ToString().c_str());
  std::printf(
      "Interpretation: relative sigma is the coefficient of variation under\n"
      "1%% tuple loss; thin or skew-dominated aggregates are the fragile\n"
      "ones, exactly as the paper's robustness application predicts.\n");
  return 0;
}
