// Robustness, twice over.
//
// Part 1 — statistical robustness ("database as a sample", paper
// Section 8): treat the stored database as a 99% Bernoulli sample of a
// hypothetical slightly-larger truth. A query whose GUS variance is large
// under that reading is *fragile* — losing or gaining 1% of tuples would
// visibly move its answer.
//
// Part 2 — operational robustness: the same algebra makes a *lost shard*
// a sampling event rather than a failed query. This part runs the
// fault-tolerant sharded estimator (dist/coordinator.h) under injected
// faults: a transient worker failure is retried to a bit-identical
// answer, and a permanently dead shard degrades — with ExecOptions::
// allow_partial — to an unbiased estimate with an honestly wider CI and
// an explicit DegradedReport.
//
// Run it with GUS_FAULT set to inject your own faults end to end, e.g.:
//
//   GUS_FAULT="worker.execute@1=fail*2"       transient; retries recover
//   GUS_FAULT="worker.start@2=fail*0"         permanent; degrades
//   GUS_FAULT="transport.send@0=corrupt"      wire damage; caught + resent
//
// (spec grammar: util/fault_inject.h). With GUS_FAULT set, the scripted
// fault tour is skipped and your spec drives the run instead.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "algebra/translate.h"
#include "data/tpch_gen.h"
#include "data/workload.h"
#include "dist/coordinator.h"
#include "est/sbox.h"
#include "plan/exec_stats.h"
#include "plan/soa_transform.h"
#include "rel/operators.h"
#include "util/fault_inject.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

struct RobustnessScore {
  double answer;
  double sigma;
  double relative;  // sigma / |answer|
};

/// Scores SUM(f) over the base relation `rel` under the database-as-a-99%-
/// Bernoulli-sample reading.
RobustnessScore ScoreRobustness(const gus::Relation& rel,
                                const std::string& name,
                                const gus::ExprPtr& f) {
  using namespace gus;
  GusParams g = Unwrap(
      TranslateBaseSampling(SamplingSpec::Bernoulli(0.99), name));
  SampleView view = Unwrap(SampleView::FromRelation(rel, f, g.schema()));
  // The database IS the sample here; Theorem 1 with the y-statistics of the
  // observed data gives the perturbation variance directly.
  SboxReport report = Unwrap(SboxEstimate(g, view));
  const double answer = view.SumF();
  return {answer, report.stddev, report.stddev / std::fabs(answer)};
}

void StatisticalRobustness(const gus::TpchData& data) {
  using namespace gus;
  TablePrinter table(
      {"aggregate", "answer", "perturbation sigma", "relative"});

  // (a) A bulk aggregate over many similar tuples: robust.
  RobustnessScore uniform = ScoreRobustness(
      data.lineitem, "l", Mul(Col("l_discount"), Sub(Lit(1.0), Col("l_tax"))));
  table.AddRow({"SUM(l_discount*(1-l_tax))",
                TablePrinter::Num(uniform.answer, 6),
                TablePrinter::Num(uniform.sigma, 4),
                TablePrinter::Num(uniform.relative, 3)});

  // (b) The same data but dominated by the largest values: fragile.
  RobustnessScore heavy = ScoreRobustness(
      data.lineitem, "l",
      Mul(Mul(Col("l_extendedprice"), Col("l_extendedprice")),
          Col("l_extendedprice")));
  table.AddRow({"SUM(l_extendedprice^3)",
                TablePrinter::Num(heavy.answer, 6),
                TablePrinter::Num(heavy.sigma, 4),
                TablePrinter::Num(heavy.relative, 3)});

  std::printf(
      "== Part 1: the database viewed as a 99%% Bernoulli sample ==\n"
      "(would losing 1%% of tuples move the answer?)\n\n%s\n"
      "Skew-dominated aggregates are the fragile ones, exactly as the\n"
      "paper's robustness application predicts.\n\n",
      table.ToString().c_str());
}

// ---------------------------------------------------------------------------
// Part 2: surviving real failures with the same algebra.

constexpr int kShards = 4;
constexpr uint64_t kSeed = 7;

struct FtQuery {
  gus::Catalog catalog;
  gus::Workload q1;
  gus::SoaResult soa;
  gus::SboxOptions options;
  gus::ExecOptions exec;

  explicit FtQuery(const gus::TpchData& data) {
    using namespace gus;
    catalog = data.MakeCatalog();
    Query1Params params;
    params.lineitem_p = 0.3;
    params.orders_n = 3000;
    params.orders_population = 8000;
    q1 = MakeQuery1(params);
    soa = Unwrap(SoaTransform(q1.plan));
    options.subsample = SubsampleConfig{};
    exec.morsel_rows = 2048;  // fixed: part of the result's identity
  }

  gus::Result<gus::FaultTolerantResult> Run(const gus::ExecOptions& e) const {
    return gus::FaultTolerantShardedSboxEstimate(
        q1.plan, catalog, kSeed, gus::ExecMode::kSampled, e, kShards,
        q1.aggregate, soa.top, options);
  }
};

void PrintFt(const char* label, const gus::FaultTolerantResult& r,
             const gus::ExecStats& stats) {
  std::printf("%-26s estimate %.6f  95%% CI [%.6f, %.6f]\n"
              "%-26s attempts %lld  retries %lld  lost %lld  coverage %.2f\n",
              label, r.report.estimate, r.report.interval.lo,
              r.report.interval.hi, "",
              static_cast<long long>(stats.shard_attempts),
              static_cast<long long>(stats.shard_retries),
              static_cast<long long>(stats.shards_lost),
              stats.effective_coverage);
  if (r.degraded) {
    std::printf("%-26s %s\n", "", r.degradation.ToString().c_str());
  }
}

int OperationalRobustness(const gus::TpchData& data) {
  using namespace gus;
  FtQuery demo(data);

  ExecStats stats;
  ExecOptions exec = demo.exec;
  exec.stats = &stats;
  exec.retry.max_attempts = 3;

  std::printf("== Part 2: fault-tolerant sharded estimation (%d shards) ==\n",
              kShards);

  // The fault-free truth every faulty run is judged against.
  FaultTolerantResult clean = Unwrap(demo.Run(exec));
  PrintFt("fault-free", clean, stats);

  if (FaultInjector::Global()->armed()) {
    // GUS_FAULT drove the injector from the environment: run the same
    // query under the user's spec, accepting degradation if it comes.
    std::printf("\n-- your GUS_FAULT spec --\n");
    exec.allow_partial = true;
    exec.retry.deadline_ms = 5000;
    auto faulted = demo.Run(exec);
    JoinAbandonedShardAttempts();
    if (!faulted.ok()) {
      std::printf("query failed (as it should when the losses are "
                  "unrecoverable):\n  %s\n",
                  faulted.status().ToString().c_str());
      return 0;
    }
    PrintFt("under GUS_FAULT", faulted.ValueOrDie(), stats);
    if (!faulted.ValueOrDie().degraded &&
        faulted.ValueOrDie().report.estimate == clean.report.estimate) {
      std::printf("=> recovered bit-identically\n");
    }
    return 0;
  }

  // Scripted tour (run with GUS_FAULT=... to take the wheel yourself).
  {
    std::printf("\n-- transient: shard 1's first two executions fail --\n");
    ScopedFaultPlan plan("worker.execute@1=fail*2");
    FaultTolerantResult r = Unwrap(demo.Run(exec));
    PrintFt("after retries", r, stats);
    if (r.report.estimate != clean.report.estimate) {
      std::fprintf(stderr, "BUG: retried estimate diverged\n");
      return 1;
    }
    std::printf("=> bit-identical to the fault-free run (a shard's unit\n"
                "   range re-executes reproducibly from the same seed)\n");
  }
  {
    std::printf("\n-- permanent: shard 2 dies on every attempt --\n");
    ScopedFaultPlan plan("worker.start@2=fail*0");
    ExecOptions strict = exec;
    auto refused = demo.Run(strict);
    std::printf("without allow_partial: %s\n",
                refused.ok() ? "BUG: should have failed"
                             : refused.status().ToString().c_str());

    ExecOptions partial = exec;
    partial.allow_partial = true;
    FaultTolerantResult r = Unwrap(demo.Run(partial));
    PrintFt("degraded (3/4 shards)", r, stats);
    const double clean_w = clean.report.interval.hi - clean.report.interval.lo;
    const double degraded_w = r.report.interval.hi - r.report.interval.lo;
    std::printf("=> unbiased re-weighted estimate; CI widened %.3fx to own\n"
                "   the loss (survivors are a sample with known inclusion\n"
                "   probabilities — est/partial_gather.h)\n",
                degraded_w / clean_w);
  }
  return 0;
}

}  // namespace

int main() {
  gus::TpchConfig config;
  config.num_orders = 8000;
  config.num_customers = 800;
  config.num_parts = 200;
  config.part_zipf_theta = 1.2;  // skewed part popularity
  gus::TpchData data = gus::GenerateTpch(config);

  StatisticalRobustness(data);
  return OperationalRobustness(data);
}
