// The serving layer, end to end (src/serve/): worker daemons + session
// coordinator + approximate-view cache.
//
// Two roles in one binary:
//
//   example_gusd --listen EP [--seed S]
//       Run a worker daemon (`gusd`): load the deterministic demo catalog
//       once, register paper Query 1 as "q1", and serve shard requests
//       over persistent framed connections until killed. EP is
//       "unix:/path/sock" or "tcp:port" ("tcp:0" picks a free port; the
//       resolved endpoint is printed). Honors GUS_FAULT — e.g.
//       GUS_FAULT="serve.execute@1=fail*2" makes shard 1 fail twice, and
//       "serve.execute=kill" dies mid-request like a crashed node.
//
//   example_gusd --coordinator --endpoints EP1,EP2,... [--sessions N]
//       [--shards K] [--seed S] [--attempts A] [--allow-partial]
//       [--cache] [--verify]
//       Run N concurrent query sessions against the daemon fleet: shard
//       k of each query goes to daemon k % M, responses demux by request
//       id over the shared connections, lost daemons are retried with
//       backoff (a restarted daemon heals transparently), and
//       --allow-partial degrades honestly when a shard stays lost.
//       --verify recomputes every estimate with the one-shot in-process
//       kSharded path and fails unless the served bits are identical.
//       --cache serves repeated (query, seed) pairs from merged
//       estimator state without touching the fleet.
//
// Every process regenerates the same deterministic catalog, so daemons
// and the verifying coordinator agree on the data by construction (the
// catalog fingerprint in every request enforces it).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/tpch_gen.h"
#include "data/workload.h"
#include "dist/coordinator.h"
#include "plan/soa_transform.h"
#include "serve/daemon.h"
#include "serve/session.h"
#include "serve/socket.h"

namespace {

using namespace gus;

/// Same demo workload as example_sharded_estimate: paper Query 1 over a
/// deterministic TPC-H-shaped catalog every process can regenerate.
struct DemoQuery {
  TpchData data;
  Catalog catalog;
  Workload q1;
  SoaResult soa;
  SboxOptions options;
  int64_t morsel_rows = 4096;  // fixed: part of the result's identity

  DemoQuery() {
    TpchConfig config;
    config.num_orders = 20000;
    config.num_customers = 2000;
    config.num_parts = 500;
    data = GenerateTpch(config);
    catalog = data.MakeCatalog();
    Query1Params params;
    params.lineitem_p = 0.3;
    params.orders_n = 8000;
    params.orders_population = 20000;
    q1 = MakeQuery1(params);
    soa = SoaTransform(q1.plan).ValueOrDie();
    options.subsample = SubsampleConfig{};
  }
};

int RunDaemon(const std::string& listen) {
  auto ep = Endpoint::Parse(listen);
  if (!ep.ok()) {
    std::fprintf(stderr, "bad endpoint: %s\n", ep.status().ToString().c_str());
    return 1;
  }
  DemoQuery demo;
  WorkerDaemon daemon(demo.catalog);
  ServedQuery query;
  query.plan = demo.q1.plan;
  query.f_expr = demo.q1.aggregate;
  query.gus = demo.soa.top;
  query.sbox = demo.options;
  Status registered = daemon.RegisterQuery("q1", std::move(query));
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }
  auto started = daemon.Start(ep.ValueOrDie());
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  std::printf("gusd serving q1 on %s\n",
              started.ValueOrDie().ToString().c_str());
  std::fflush(stdout);
  // Serve until killed — the daemon's threads do all the work.
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

struct CoordinatorArgs {
  std::vector<Endpoint> fleet;
  int sessions = 4;
  int shards = 4;
  uint64_t seed = 42;
  int attempts = 3;
  bool allow_partial = false;
  bool use_cache = false;
  bool verify = false;
};

int RunCoordinator(const CoordinatorArgs& args) {
  DemoQuery demo;
  SessionCoordinator coordinator(args.fleet);

  // Local ground truth for --verify, computed once per seed actually used.
  std::mutex verify_mu;
  std::map<uint64_t, SboxReport> local_reports;
  const auto local_report = [&](uint64_t seed) -> Result<SboxReport> {
    std::lock_guard<std::mutex> lock(verify_mu);
    auto it = local_reports.find(seed);
    if (it != local_reports.end()) return it->second;
    ExecOptions exec;
    exec.morsel_rows = demo.morsel_rows;
    GUS_ASSIGN_OR_RETURN(
        SboxReport report,
        ShardedSboxEstimate(demo.q1.plan, demo.catalog, seed,
                            ExecMode::kSampled, exec, args.shards,
                            demo.q1.aggregate, demo.soa.top, demo.options));
    local_reports[seed] = report;
    return report;
  };

  std::vector<int> failures(static_cast<size_t>(args.sessions), 0);
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<size_t>(args.sessions));
  std::mutex print_mu;
  for (int s = 0; s < args.sessions; ++s) {
    sessions.emplace_back([&, s] {
      // Sessions cycle over a few seeds: interleaved distinct queries,
      // plus repeats that exercise the cache when --cache is on.
      const uint64_t seed = args.seed + static_cast<uint64_t>(s % 4);
      ServedRequest req;
      req.seed = seed;
      req.num_shards = args.shards;
      req.morsel_rows = demo.morsel_rows;
      req.allow_partial = args.allow_partial;
      req.use_cache = args.use_cache;
      req.retry.max_attempts = args.attempts;
      auto result = coordinator.Execute("q1", req);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(print_mu);
        std::fprintf(stderr, "session %d FAILED: %s\n", s,
                     result.status().ToString().c_str());
        failures[static_cast<size_t>(s)] = 1;
        return;
      }
      const ServedResult& served = result.ValueOrDie();
      {
        std::lock_guard<std::mutex> lock(print_mu);
        std::printf(
            "session %d (id %llu, seed %llu): %s estimate %.6f  95%% CI "
            "[%.6f, %.6f]%s%s\n",
            s, static_cast<unsigned long long>(served.session_id),
            static_cast<unsigned long long>(seed),
            served.degraded ? "DEGRADED" : "SERVED", served.report.estimate,
            served.report.interval.lo, served.report.interval.hi,
            served.cache_hit ? "  [CACHED]" : "",
            served.degraded
                ? ("  " + served.degradation.ToString()).c_str()
                : "");
        std::fflush(stdout);
      }
      if (args.verify && !served.degraded) {
        auto local = local_report(seed);
        if (!local.ok()) {
          std::lock_guard<std::mutex> lock(print_mu);
          std::fprintf(stderr, "session %d local verify failed: %s\n", s,
                       local.status().ToString().c_str());
          failures[static_cast<size_t>(s)] = 1;
          return;
        }
        const SboxReport& want = local.ValueOrDie();
        const SboxReport& got = served.report;
        if (got.estimate != want.estimate || got.stddev != want.stddev ||
            got.interval.lo != want.interval.lo ||
            got.interval.hi != want.interval.hi ||
            got.sample_rows != want.sample_rows ||
            got.variance_rows != want.variance_rows) {
          std::lock_guard<std::mutex> lock(print_mu);
          std::fprintf(stderr,
                       "session %d MISMATCH: served %.17g vs local %.17g\n",
                       s, got.estimate, want.estimate);
          failures[static_cast<size_t>(s)] = 1;
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  int failed = 0;
  for (int f : failures) failed += f;
  if (failed > 0) {
    std::fprintf(stderr, "%d of %d sessions failed\n", failed, args.sessions);
    return 1;
  }
  std::printf("%d sessions OK over %zu daemon(s)%s\n", args.sessions,
              args.fleet.size(),
              args.verify ? " (bit-identical to one-shot kSharded)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  bool coordinator = false;
  CoordinatorArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--listen") {
      listen = next();
    } else if (arg == "--coordinator") {
      coordinator = true;
    } else if (arg == "--endpoints") {
      std::string spec = next();
      size_t pos = 0;
      while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string one =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!one.empty()) {
          auto ep = Endpoint::Parse(one);
          if (!ep.ok()) {
            std::fprintf(stderr, "bad endpoint '%s': %s\n", one.c_str(),
                         ep.status().ToString().c_str());
            return 2;
          }
          args.fleet.push_back(ep.ValueOrDie());
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--sessions") {
      args.sessions = std::atoi(next());
    } else if (arg == "--shards") {
      args.shards = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--attempts") {
      args.attempts = std::atoi(next());
    } else if (arg == "--allow-partial") {
      args.allow_partial = true;
    } else if (arg == "--cache") {
      args.use_cache = true;
    } else if (arg == "--verify") {
      args.verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!listen.empty()) return RunDaemon(listen);
  if (coordinator) {
    if (args.fleet.empty()) {
      std::fprintf(stderr, "--coordinator needs --endpoints\n");
      return 2;
    }
    return RunCoordinator(args);
  }
  std::fprintf(stderr,
               "usage: %s --listen EP | %s --coordinator --endpoints "
               "EP1,EP2,...\n",
               argv[0], argv[0]);
  return 2;
}
