// gus_ingest: build an on-disk segment catalog (src/store/) from either
// the synthetic TPC-H generator or CSV files, then verify it opens.
//
// Usage:
//   gus_ingest tpch <out_dir> [--orders=N] [--customers=N] [--parts=N]
//                             [--seed=S] [--segment-rows=N]
//   gus_ingest csv  <out_dir> <name=path.csv> [more name=path...]
//                             [--segment-rows=N] [--no-header]
//   gus_ingest info <dir>     # list relations, segments, fingerprints
//
// The written directory is a drop-in catalog: SegmentCatalog::Open(dir)
// serves every engine (see ARCHITECTURE.md "Storage layer").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/tpch_gen.h"
#include "rel/column_batch.h"
#include "store/csv_import.h"
#include "store/segment_catalog.h"
#include "store/segment_store.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "gus_ingest: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

void Check(const gus::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "gus_ingest: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

int64_t FlagInt(const char* arg, const char* name, int64_t fallback) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    return std::atoll(arg + n + 1);
  }
  return fallback;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gus_ingest tpch <out_dir> [--orders=N] [--customers=N]\n"
      "                            [--parts=N] [--seed=S] [--segment-rows=N]\n"
      "  gus_ingest csv  <out_dir> <name=path.csv>... [--segment-rows=N]\n"
      "                            [--no-header]\n"
      "  gus_ingest info <dir>\n");
  return 2;
}

int RunInfo(const std::string& dir) {
  auto catalog = Unwrap(gus::SegmentCatalog::Open(dir));
  for (const std::string& name : catalog->RelationNames()) {
    const gus::StoredRelation* rel = Unwrap(catalog->Stored(name));
    std::printf("%-12s %10lld rows  %6lld segments x %lld  %8lld page KiB  "
                "fingerprint %016llx\n",
                name.c_str(), static_cast<long long>(rel->num_rows()),
                static_cast<long long>(rel->num_segments()),
                static_cast<long long>(rel->segment_rows()),
                static_cast<long long>(rel->total_page_bytes() / 1024),
                static_cast<unsigned long long>(rel->content_fingerprint()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];

  if (cmd == "info") return RunInfo(dir);

  int64_t segment_rows = gus::kDefaultSegmentRows;
  for (int i = 3; i < argc; ++i) {
    segment_rows = FlagInt(argv[i], "--segment-rows", segment_rows);
  }

  if (cmd == "tpch") {
    gus::TpchConfig config;
    for (int i = 3; i < argc; ++i) {
      config.num_orders = FlagInt(argv[i], "--orders", config.num_orders);
      config.num_customers =
          FlagInt(argv[i], "--customers", config.num_customers);
      config.num_parts = FlagInt(argv[i], "--parts", config.num_parts);
      config.seed = static_cast<uint64_t>(
          FlagInt(argv[i], "--seed", static_cast<int64_t>(config.seed)));
    }
    const gus::TpchData data = gus::GenerateTpch(config);
    Check(gus::WriteCatalogSegments(data.MakeCatalog(), dir, segment_rows));
    std::printf("wrote TPC-H catalog (%lld orders) to %s\n",
                static_cast<long long>(config.num_orders), dir.c_str());
    return RunInfo(dir);
  }

  if (cmd == "csv") {
    gus::CsvImportOptions options;
    gus::Catalog catalog;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-header") == 0) {
        options.has_header = false;
        continue;
      }
      if (std::strncmp(argv[i], "--", 2) == 0) continue;
      const char* eq = std::strchr(argv[i], '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "gus_ingest: want name=path.csv, got %s\n",
                     argv[i]);
        return 2;
      }
      const std::string name(argv[i], eq - argv[i]);
      catalog[name] = Unwrap(gus::ImportCsvFile(name, eq + 1, options));
    }
    if (catalog.empty()) return Usage();
    Check(gus::WriteCatalogSegments(catalog, dir, segment_rows));
    return RunInfo(dir);
  }

  return Usage();
}
