// The paper's SQL, verbatim: parse TABLESAMPLE queries (including the
// introduction's APPROX view with QUANTILE bounds) and get estimates with
// confidence intervals in one call.

#include <cstdio>

#include "data/tpch_gen.h"
#include "sqlish/planner.h"

int main() {
  using namespace gus;

  TpchConfig config;
  config.num_orders = 150000;  // the paper's orders cardinality
  config.num_customers = 10000;
  config.num_parts = 5000;
  config.max_lineitems_per_order = 4;
  TpchData data = GenerateTpch(config);
  Catalog catalog = data.MakeCatalog();
  std::printf("catalog: %lld lineitem, %lld orders\n\n",
              static_cast<long long>(data.lineitem.num_rows()),
              static_cast<long long>(data.orders.num_rows()));

  // Query 1 from the paper's introduction, as written (10% Bernoulli on
  // lineitem, 1000-row WOR on orders).
  const char* kQuery1 = R"(
      SELECT SUM(l_discount*(1.0-l_tax))
      FROM l TABLESAMPLE (10 PERCENT),
           o TABLESAMPLE (1000 ROWS)
      WHERE l_orderkey = o_orderkey AND
            l_extendedprice > 100.0;
  )";
  auto r1 = sqlish::RunApproxQuery(kQuery1, catalog, /*seed=*/1);
  if (!r1.ok()) {
    std::fprintf(stderr, "%s\n", r1.status().ToString().c_str());
    return 1;
  }
  std::printf("Query 1:\n%s\n\n", r1.ValueOrDie().ToString().c_str());

  // The APPROX view from the introduction.
  const char* kApproxView = R"(
      SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05),
             QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95)
      FROM l TABLESAMPLE (10 PERCENT),
           o TABLESAMPLE (1000 ROWS)
      WHERE l_orderkey = o_orderkey AND
            l_extendedprice > 100.0;
  )";
  auto r2 = sqlish::RunApproxQuery(kApproxView, catalog, /*seed=*/2);
  if (!r2.ok()) {
    std::fprintf(stderr, "%s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("APPROX view (lo, hi):\n%s\n\n",
              r2.ValueOrDie().ToString().c_str());

  // Mixed aggregates over a 3-way join, with Section 7 sub-sampling for
  // the variance estimation.
  const char* kMixed = R"(
      SELECT SUM(l_extendedprice), COUNT(*), AVG(l_extendedprice)
      FROM l TABLESAMPLE (5 PERCENT), o, c
      WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey;
  )";
  SboxOptions options;
  options.subsample = SubsampleConfig{/*target_rows=*/10000, /*seed=*/9};
  auto r3 = sqlish::RunApproxQuery(kMixed, catalog, /*seed=*/3, options);
  if (!r3.ok()) {
    std::fprintf(stderr, "%s\n", r3.status().ToString().c_str());
    return 1;
  }
  std::printf("3-way join with sub-sampled variance:\n%s\n",
              r3.ValueOrDie().ToString().c_str());
  return 0;
}
