// Online aggregation: watch the estimate of a join aggregate converge with
// a live confidence interval as tuples stream in — the ripple-join user
// experience of the paper's related work, re-derived in a few lines from
// the GUS algebra (prefixes of shuffled relations are WOR samples; the
// joined design is their Prop-6 GUS join).

#include <cmath>
#include <cstdio>

#include "data/tpch_gen.h"
#include "online/ripple.h"
#include "rel/operators.h"
#include "util/table.h"

namespace {

template <typename T>
T Unwrap(gus::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  using namespace gus;

  TpchConfig config;
  config.num_orders = 5000;
  config.num_customers = 400;
  config.num_parts = 200;
  TpchData data = GenerateTpch(config);

  // Exact answer for reference (the user would not have this).
  Relation joined =
      Unwrap(HashJoin(data.lineitem, data.orders, "l_orderkey", "o_orderkey"));
  ExprPtr f = Mul(Col("l_discount"), Sub(Lit(1.0), Col("l_tax")));
  const double truth = Unwrap(AggregateSum(joined, f));
  std::printf("join: %lld lineitem x %lld orders, exact SUM = %.4f\n\n",
              static_cast<long long>(data.lineitem.num_rows()),
              static_cast<long long>(data.orders.num_rows()), truth);

  RippleEstimator est = Unwrap(RippleEstimator::Make(
      data.lineitem, data.orders, "l_orderkey", "o_orderkey", f,
      /*seed=*/7));

  TablePrinter table({"tuples seen", "result rows", "estimate",
                      "95% interval", "rel.width", "covers truth"});
  const int64_t total =
      data.lineitem.num_rows() + data.orders.num_rows();
  int64_t steps_taken = 0;
  for (double frac : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    const auto target = static_cast<int64_t>(frac * total);
    if (target > steps_taken) {
      const Status st = est.StepMany(target - steps_taken);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      steps_taken = target;
    }
    auto snap_r = est.Snapshot();
    if (!snap_r.ok()) continue;  // too early for pairwise statistics
    const RippleSnapshot snap = snap_r.ValueOrDie();
    char interval[64];
    std::snprintf(interval, sizeof(interval), "[%.1f, %.1f]",
                  snap.interval.lo, snap.interval.hi);
    table.AddRow(
        {std::to_string(snap.seen_left + snap.seen_right),
         std::to_string(snap.result_rows), TablePrinter::Num(snap.estimate, 6),
         interval,
         TablePrinter::Num(snap.interval.width() /
                               std::max(1.0, snap.estimate),
                           3),
         // Tolerance absorbs last-ulp accumulation-order differences once
         // the interval collapses to a point.
         (snap.interval.Contains(truth) ||
          std::fabs(snap.estimate - truth) < 1e-9 * std::fabs(truth))
             ? "y"
             : "n"});
    if (est.done()) break;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The interval tightens continuously and collapses to the exact\n"
      "answer when both inputs are exhausted — online aggregation with\n"
      "the analysis supplied entirely by the GUS algebra.\n");
  return 0;
}
