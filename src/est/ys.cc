#include "est/ys.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/hash.h"

namespace gus {

namespace {

/// 64-bit key for the S-projection of row i's lineage (salted by mask so
/// different projections never share key spaces).
uint64_t ProjectedKey(const SampleView& view, SubsetMask mask, int64_t i) {
  uint64_t h = Mix64(mask | 0xABCD000000000000ULL);
  for (int d = 0; d < view.schema.arity(); ++d) {
    if (mask & (SubsetMask{1} << d)) {
      h = HashCombine(h, view.lineage[d][i]);
    }
  }
  return h;
}

}  // namespace

double ComputeYS(const SampleView& view, SubsetMask mask) {
  if (mask == 0) {
    const double s = view.SumF();
    return s * s;
  }
  // Note: even the full mask must group by lineage — block-sampled
  // relations share a lineage id across all rows of a block, so agreement
  // on the entire lineage schema does not imply row identity.
  std::unordered_map<uint64_t, double> groups;
  groups.reserve(static_cast<size_t>(view.num_rows()));
  for (int64_t i = 0; i < view.num_rows(); ++i) {
    groups[ProjectedKey(view, mask, i)] += view.f[i];
  }
  double y = 0.0;
  for (const auto& [key, sum] : groups) y += sum * sum;
  return y;
}

Result<double> ComputeYSBilinear(const SampleView& view,
                                 const std::vector<double>& g,
                                 SubsetMask mask) {
  if (static_cast<int64_t>(g.size()) != view.num_rows()) {
    return Status::InvalidArgument("g must align with the sample view");
  }
  if (mask == 0) {
    double sf = view.SumF();
    double sg = std::accumulate(g.begin(), g.end(), 0.0);
    return sf * sg;
  }
  std::unordered_map<uint64_t, std::pair<double, double>> groups;
  groups.reserve(static_cast<size_t>(view.num_rows()));
  for (int64_t i = 0; i < view.num_rows(); ++i) {
    auto& acc = groups[ProjectedKey(view, mask, i)];
    acc.first += view.f[i];
    acc.second += g[i];
  }
  double y = 0.0;
  for (const auto& [key, sums] : groups) y += sums.first * sums.second;
  return y;
}

std::vector<double> ComputeAllYS(const SampleView& view) {
  std::vector<double> ys(view.schema.num_subsets());
  for (SubsetMask m = 0; m < ys.size(); ++m) ys[m] = ComputeYS(view, m);
  return ys;
}

Result<std::vector<double>> ComputeAllYSBilinear(
    const SampleView& view, const std::vector<double>& g) {
  std::vector<double> ys(view.schema.num_subsets());
  for (SubsetMask m = 0; m < ys.size(); ++m) {
    GUS_ASSIGN_OR_RETURN(ys[m], ComputeYSBilinear(view, g, m));
  }
  return ys;
}

double ComputeYSSorted(const SampleView& view, SubsetMask mask) {
  if (mask == 0) {
    const double s = view.SumF();
    return s * s;
  }
  std::vector<int64_t> idx(view.num_rows());
  std::iota(idx.begin(), idx.end(), int64_t{0});
  auto key_less = [&](int64_t a, int64_t b) {
    for (int d = 0; d < view.schema.arity(); ++d) {
      if (mask & (SubsetMask{1} << d)) {
        if (view.lineage[d][a] != view.lineage[d][b]) {
          return view.lineage[d][a] < view.lineage[d][b];
        }
      }
    }
    return false;
  };
  auto key_equal = [&](int64_t a, int64_t b) {
    return !key_less(a, b) && !key_less(b, a);
  };
  std::sort(idx.begin(), idx.end(), key_less);
  double y = 0.0;
  double group = 0.0;
  for (size_t i = 0; i < idx.size(); ++i) {
    if (i > 0 && !key_equal(idx[i - 1], idx[i])) {
      y += group * group;
      group = 0.0;
    }
    group += view.f[idx[i]];
  }
  if (!idx.empty()) y += group * group;
  return y;
}

}  // namespace gus
