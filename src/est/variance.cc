#include "est/variance.h"

#include "est/ys.h"

namespace gus {

Result<double> PointEstimate(const GusParams& gus, const SampleView& sample) {
  if (gus.a() <= 0.0) {
    return Status::InvalidArgument("estimator needs a > 0");
  }
  if (sample.schema != gus.schema()) {
    return Status::InvalidArgument("sample view / GUS schema mismatch");
  }
  return sample.SumF() / gus.a();
}

Result<double> VarianceFromY(const GusParams& gus,
                             const std::vector<double>& y) {
  if (y.size() != gus.schema().num_subsets()) {
    return Status::InvalidArgument("y table must have 2^n entries");
  }
  if (gus.a() <= 0.0) {
    return Status::InvalidArgument("variance needs a > 0");
  }
  const std::vector<double> c = gus.AllCFast();
  const double a2 = gus.a() * gus.a();
  double var = -y[0];  // − y_∅
  for (SubsetMask m = 0; m < y.size(); ++m) {
    var += c[m] / a2 * y[m];
  }
  return var;
}

Result<double> CovarianceFromY(const GusParams& gus,
                               const std::vector<double>& y_bilinear) {
  // The bilinear Theorem 1 has the same coefficient structure; only the
  // y-table differs (polarization of the quadratic form).
  return VarianceFromY(gus, y_bilinear);
}

Result<double> ExactVariance(const GusParams& gus,
                             const SampleView& full_data) {
  if (full_data.schema != gus.schema()) {
    return Status::InvalidArgument("full data / GUS schema mismatch");
  }
  return VarianceFromY(gus, ComputeAllYS(full_data));
}

}  // namespace gus
