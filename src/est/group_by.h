// Grouped aggregate estimation: SUM(f) ... GROUP BY key, with a confidence
// interval per group.
//
// Each group's aggregate is itself a SUM-like aggregate over the same GUS
// sample — restrict f with the group's indicator and Theorem 1 applies
// unchanged. This is how the paper's machinery extends to the grouped
// queries real dashboards issue; it needs no new theory, only plumbing
// (which is the point of the algebra).

#ifndef GUS_EST_GROUP_BY_H_
#define GUS_EST_GROUP_BY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "algebra/gus_params.h"
#include "est/confidence.h"
#include "est/sample_view.h"
#include "rel/column_batch.h"
#include "rel/expression.h"
#include "rel/relation.h"
#include "util/status.h"

namespace gus {

/// One group's estimate.
struct GroupEstimate {
  Value key;
  double estimate = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
  /// Sample tuples contributing to the group.
  int64_t sample_rows = 0;
};

/// \brief Estimates SUM(f) per distinct value of `key_column`.
///
/// `rel` is the sampled result relation; f and the key are evaluated per
/// row. Groups absent from the sample are (necessarily) absent from the
/// output — a fundamental limitation of sampling shared with the paper's
/// DISTINCT discussion.
Result<std::vector<GroupEstimate>> GroupedSumEstimate(
    const GusParams& gus, const Relation& rel, const ExprPtr& f_expr,
    const std::string& key_column, double confidence_level = 0.95,
    BoundKind kind = BoundKind::kNormal);

/// \brief Batch-incremental grouped-SUM state: a hash table of per-group
/// SampleViews fed from column batches, mergeable across partitions.
///
/// Consuming a batch stream and calling Finish is bit-identical to
/// GroupedSumEstimate over the materialized relation; merging split
/// builders in partition order is bit-identical to the unsplit builder
/// (per-group rows concatenate in partition order; group discovery order
/// never affects the estimates, and Finish sorts the output by key).
class GroupedSumBuilder final : public BatchSink {
 public:
  static Result<GroupedSumBuilder> Make(const BatchLayout& layout,
                                        const ExprPtr& f_expr,
                                        const std::string& key_column,
                                        const LineageSchema& schema);

  Status Consume(const ColumnBatch& batch) override;

  /// \brief Gather-free accumulation: reads keys and lineage through the
  /// selection directly (no materialized batch); only the aggregate
  /// expression's column footprint is gathered, and only when the view is
  /// not a whole batch.
  ///
  /// Key hashing runs through the dispatched SIMD kernels; group payload
  /// appends are boxing-free (a Value is constructed only when a new group
  /// is first seen). Bit-identical to gathering the view into a batch and
  /// calling Consume.
  Status ConsumeView(const SelView& view) override;
  bool wants_views() const override { return true; }

  /// Folds a later partition's builder into this one: groups present in
  /// both merge their views, new groups are adopted.
  Status Merge(GroupedSumBuilder&& other);

  /// \brief Serializes the partial state as a WireTag::kGroupedSum payload.
  ///
  /// String group keys are dictionary-coded: the payload carries the
  /// distinct strings once and each group references its code, so two
  /// shards' dictionaries may assign the same code to different strings
  /// ("colliding dictionaries") — decode resolves codes back to strings,
  /// which is exactly the remap that makes cross-shard Merge safe. Groups
  /// are emitted in canonical key order, so equal logical state produces
  /// equal bytes (golden-buffer testable). Deserialized builders are
  /// merge/finish-only (Consume fails loudly: the bound expression does
  /// not travel); merging them in shard order is bit-identical to the
  /// in-process merge.
  std::string SerializeState() const;
  static Result<GroupedSumBuilder> DeserializeState(std::string_view payload);

  /// Per-group estimates (sorted by key), exactly as GroupedSumEstimate.
  Result<std::vector<GroupEstimate>> Finish(
      const GusParams& gus, double confidence_level = 0.95,
      BoundKind kind = BoundKind::kNormal) const;

  int64_t num_groups() const { return static_cast<int64_t>(groups_.size()); }

 private:
  GroupedSumBuilder() = default;

  struct Group {
    Value key;
    SampleView view;
  };

  /// Shared accumulation core: f_scratch_ holds the f value of each listed
  /// row; keys and lineage are read from `data` at rows[k] directly.
  Status AccumulateRows(const ColumnBatch& data, const int64_t* rows,
                        int64_t len);

  std::vector<int> source_;  // analysis dim -> layout lineage column
  ExprPtr bound_;
  int key_idx_ = 0;
  LineageSchema schema_;
  std::vector<char> footprint_;  // columns the bound f expression reads
  std::vector<double> f_scratch_;
  std::vector<int64_t> rows_scratch_;
  std::vector<uint64_t> hash_scratch_;
  ColumnBatch eval_scratch_;
  DictPtr key_dict_;  // cached dictionary hashes for string keys
  std::vector<uint64_t> key_dict_hashes_;
  std::unordered_map<uint64_t, Group> groups_;  // keyed by Value::Hash
};

}  // namespace gus

#endif  // GUS_EST_GROUP_BY_H_
