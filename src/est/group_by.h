// Grouped aggregate estimation: SUM(f) ... GROUP BY key, with a confidence
// interval per group.
//
// Each group's aggregate is itself a SUM-like aggregate over the same GUS
// sample — restrict f with the group's indicator and Theorem 1 applies
// unchanged. This is how the paper's machinery extends to the grouped
// queries real dashboards issue; it needs no new theory, only plumbing
// (which is the point of the algebra).

#ifndef GUS_EST_GROUP_BY_H_
#define GUS_EST_GROUP_BY_H_

#include <string>
#include <vector>

#include "algebra/gus_params.h"
#include "est/confidence.h"
#include "est/sample_view.h"
#include "rel/relation.h"
#include "util/status.h"

namespace gus {

/// One group's estimate.
struct GroupEstimate {
  Value key;
  double estimate = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
  /// Sample tuples contributing to the group.
  int64_t sample_rows = 0;
};

/// \brief Estimates SUM(f) per distinct value of `key_column`.
///
/// `rel` is the sampled result relation; f and the key are evaluated per
/// row. Groups absent from the sample are (necessarily) absent from the
/// output — a fundamental limitation of sampling shared with the paper's
/// DISTINCT discussion.
Result<std::vector<GroupEstimate>> GroupedSumEstimate(
    const GusParams& gus, const Relation& rel, const ExprPtr& f_expr,
    const std::string& key_column, double confidence_level = 0.95,
    BoundKind kind = BoundKind::kNormal);

}  // namespace gus

#endif  // GUS_EST_GROUP_BY_H_
