#include "est/group_by.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "est/unbiased.h"
#include "est/variance.h"
#include "est/wire.h"
#include "est/ys.h"
#include "kernels/key_hash.h"
#include "kernels/simd/simd_dispatch.h"
#include "plan/vector_eval.h"

namespace gus {

namespace {

/// One group's full Theorem-1 treatment; shared by the relation-based and
/// streaming paths so their numbers agree bit for bit.
Result<GroupEstimate> EstimateGroup(const GusParams& gus, const Value& key,
                                    const SampleView& gview,
                                    double confidence_level, BoundKind kind) {
  GroupEstimate ge;
  ge.key = key;
  ge.sample_rows = gview.num_rows();
  GUS_ASSIGN_OR_RETURN(ge.estimate, PointEstimate(gus, gview));
  const std::vector<double> Y = ComputeAllYS(gview);
  GUS_ASSIGN_OR_RETURN(std::vector<double> y_hat, UnbiasedYEstimates(gus, Y));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, y_hat));
  ge.variance = std::max(0.0, var);
  ge.stddev = std::sqrt(ge.variance);
  GUS_ASSIGN_OR_RETURN(
      ge.interval,
      MakeInterval(ge.estimate, ge.variance, confidence_level, kind));
  return ge;
}

/// Deterministic output order: by key (numeric-aware enough for tests and
/// display).
void SortByKey(std::vector<GroupEstimate>* out) {
  std::sort(out->begin(), out->end(),
            [](const GroupEstimate& a, const GroupEstimate& b) {
              if (a.key.is_numeric() && b.key.is_numeric()) {
                return a.key.ToDouble() < b.key.ToDouble();
              }
              return a.key.ToString() < b.key.ToString();
            });
}

}  // namespace

Result<std::vector<GroupEstimate>> GroupedSumEstimate(
    const GusParams& gus, const Relation& rel, const ExprPtr& f_expr,
    const std::string& key_column, double confidence_level, BoundKind kind) {
  GUS_ASSIGN_OR_RETURN(SampleView view,
                       SampleView::FromRelation(rel, f_expr, gus.schema()));
  GUS_ASSIGN_OR_RETURN(int key_idx, rel.schema().IndexOf(key_column));

  // Partition row indexes by key hash (exact keys kept for output). Hash
  // partitioning follows KeyEquals semantics: numerically equal keys of
  // mixed int64/float64 type hash together and deliberately form one group
  // (consistent with how joins match keys); a typed key column never mixes
  // types unless the input was malformed to begin with.
  std::unordered_map<uint64_t, std::vector<int64_t>> groups;
  std::unordered_map<uint64_t, Value> keys;
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    const Value& key = rel.row(i)[key_idx];
    const uint64_t h = key.Hash();
    groups[h].push_back(i);
    auto [it, inserted] = keys.emplace(h, key);
    if (!inserted && !it->second.KeyEquals(key)) {
      // Refuse to silently fuse distinct keys on a 64-bit hash collision.
      return Status::Internal("group-by key hash collision between '" +
                              it->second.ToString() + "' and '" +
                              key.ToString() + "'");
    }
  }

  std::vector<GroupEstimate> out;
  out.reserve(groups.size());
  for (const auto& [h, rows] : groups) {
    // Group view: f restricted to the group's rows. Rows outside the group
    // contribute f = 0, and zero rows do not change any y statistic, so the
    // restricted view is sufficient.
    SampleView gview;
    gview.schema = view.schema;
    gview.lineage.assign(view.lineage.size(), {});
    for (int64_t i : rows) {
      gview.f.push_back(view.f[i]);
      for (size_t d = 0; d < view.lineage.size(); ++d) {
        gview.lineage[d].push_back(view.lineage[d][i]);
      }
    }
    GUS_ASSIGN_OR_RETURN(
        GroupEstimate ge,
        EstimateGroup(gus, keys.at(h), gview, confidence_level, kind));
    out.push_back(std::move(ge));
  }
  SortByKey(&out);
  return out;
}

Result<GroupedSumBuilder> GroupedSumBuilder::Make(const BatchLayout& layout,
                                                  const ExprPtr& f_expr,
                                                  const std::string& key_column,
                                                  const LineageSchema& schema) {
  GroupedSumBuilder builder;
  GUS_ASSIGN_OR_RETURN(builder.source_,
                       MapAnalysisDims(layout.lineage_schema, schema));
  GUS_ASSIGN_OR_RETURN(builder.bound_, f_expr->Bind(layout.schema));
  GUS_ASSIGN_OR_RETURN(builder.key_idx_, layout.schema.IndexOf(key_column));
  builder.schema_ = schema;
  ExprColumnFootprint(builder.bound_, layout.schema.num_columns(),
                      &builder.footprint_);
  return builder;
}

namespace {

/// Typed key test of a group against row `row` of the key column — the
/// exact Value::KeyEquals relation without constructing a Value (same-type
/// is the only shape a live builder sees: a key column's type is fixed by
/// the layout; the mismatch fallback keeps the semantics total).
bool GroupKeyEqualsAt(const Value& key, const ColumnData& col, int64_t row) {
  switch (col.type) {
    case ValueType::kInt64:
      if (key.type() == ValueType::kInt64) return key.AsInt64() == col.i64[row];
      break;
    case ValueType::kFloat64:
      if (key.type() == ValueType::kFloat64) {
        return key.AsFloat64() == col.f64[row];
      }
      break;
    case ValueType::kString:
      if (key.type() == ValueType::kString) {
        return key.AsString() == col.StringAt(row);
      }
      break;
  }
  return key.KeyEquals(col.ValueAt(row));
}

}  // namespace

Status GroupedSumBuilder::AccumulateRows(const ColumnBatch& data,
                                         const int64_t* rows, int64_t len) {
  const ColumnData& key_col = data.column(key_idx_);
  hash_scratch_.resize(static_cast<size_t>(len));
  switch (key_col.type) {
    case ValueType::kInt64:
      simd::HashI64KeysGather(key_col.i64.data(), rows, len,
                              hash_scratch_.data());
      break;
    case ValueType::kFloat64:
      for (int64_t k = 0; k < len; ++k) {
        hash_scratch_[k] = HashFloat64Key(key_col.f64[rows[k]]);
      }
      break;
    case ValueType::kString:
      if (key_col.dict != key_dict_) {
        key_dict_ = key_col.dict;
        key_dict_hashes_ = DictKeyHashes(key_col);
      }
      simd::HashDictCodesGather(key_dict_hashes_.data(),
                                key_col.codes.data(), rows, len,
                                hash_scratch_.data());
      break;
  }
  const int n = static_cast<int>(source_.size());
  const int arity = data.lineage_arity();
  const uint64_t* lineage = data.lineage().data();
  // Run cache: grouped streams are frequently key-clustered, and equal
  // hash within one builder means equal group (collisions are refused on
  // insert) — but each row is still key-checked below, exactly as the
  // per-row path did.
  uint64_t last_hash = 0;
  Group* group = nullptr;
  for (int64_t k = 0; k < len; ++k) {
    const int64_t row = rows[k];
    const uint64_t h = hash_scratch_[k];
    if (group == nullptr || h != last_hash) {
      auto [it, inserted] = groups_.try_emplace(h);
      group = &it->second;
      last_hash = h;
      if (inserted) {
        group->key = key_col.ValueAt(row);
        group->view.schema = schema_;
        group->view.lineage.assign(n, {});
        group->view.f.push_back(f_scratch_[k]);
        const uint64_t* lrow = lineage + static_cast<size_t>(row) * arity;
        for (int d = 0; d < n; ++d) {
          group->view.lineage[d].push_back(lrow[source_[d]]);
        }
        continue;
      }
    }
    if (!GroupKeyEqualsAt(group->key, key_col, row)) {
      // Refuse to silently fuse distinct keys on a 64-bit hash collision.
      return Status::Internal("group-by key hash collision between '" +
                              group->key.ToString() + "' and '" +
                              key_col.ValueAt(row).ToString() + "'");
    }
    group->view.f.push_back(f_scratch_[k]);
    const uint64_t* lrow = lineage + static_cast<size_t>(row) * arity;
    for (int d = 0; d < n; ++d) {
      group->view.lineage[d].push_back(lrow[source_[d]]);
    }
  }
  return Status::OK();
}

Status GroupedSumBuilder::Consume(const ColumnBatch& batch) {
  if (bound_ == nullptr) {
    return Status::InvalidArgument(
        "deserialized GroupedSumBuilder state is merge/finish-only (the "
        "bound aggregate expression does not travel on the wire)");
  }
  f_scratch_.clear();
  GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(
      bound_, batch, "aggregate expression must be numeric", &f_scratch_));
  const int64_t n = batch.num_rows();
  rows_scratch_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows_scratch_[i] = i;
  return AccumulateRows(batch, rows_scratch_.data(), n);
}

Status GroupedSumBuilder::ConsumeView(const SelView& view) {
  if (bound_ == nullptr) {
    return Status::InvalidArgument(
        "deserialized GroupedSumBuilder state is merge/finish-only (the "
        "bound aggregate expression does not travel on the wire)");
  }
  const int64_t len = view.num_rows();
  if (len == 0) return Status::OK();
  const ColumnBatch& data = *view.data;
  const int64_t* rows = view.sel;
  if (view.contiguous()) {
    rows_scratch_.resize(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) rows_scratch_[i] = view.begin + i;
    rows = rows_scratch_.data();
  }
  f_scratch_.clear();
  if (view.whole_batch()) {
    GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(
        bound_, data, "aggregate expression must be numeric", &f_scratch_));
  } else {
    // Only the f expression's columns are gathered (keys and lineage are
    // read through the selection directly).
    if (eval_scratch_.layout_ptr() != data.layout_ptr()) {
      eval_scratch_.ResetLayout(data.layout_ptr());
    } else {
      eval_scratch_.Clear();
    }
    eval_scratch_.GatherColumnsFrom(data, rows, len, footprint_);
    GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(
        bound_, eval_scratch_, "aggregate expression must be numeric",
        &f_scratch_));
  }
  return AccumulateRows(data, rows, len);
}

Status GroupedSumBuilder::Merge(GroupedSumBuilder&& other) {
  if (source_ != other.source_ || key_idx_ != other.key_idx_ ||
      !(schema_ == other.schema_)) {
    return Status::InvalidArgument(
        "cannot merge GroupedSumBuilders over different layouts");
  }
  for (auto& [h, group] : other.groups_) {
    auto it = groups_.find(h);
    if (it == groups_.end()) {
      groups_.emplace(h, std::move(group));
    } else if (!it->second.key.KeyEquals(group.key)) {
      return Status::Internal("group-by key hash collision between '" +
                              it->second.key.ToString() + "' and '" +
                              group.key.ToString() + "'");
    } else {
      GUS_RETURN_NOT_OK(it->second.view.Merge(std::move(group.view)));
    }
  }
  return Status::OK();
}

namespace {

/// Canonical serialization order over group keys: a total order so equal
/// logical state always produces equal bytes. Numerics sort before strings
/// (by promoted value, then type tag for int64-vs-float64 ties beyond
/// 2^53); strings sort lexicographically; the key hash is a final
/// tiebreak. Distinct-by-KeyEquals keys never compare equal here.
bool CanonicalKeyLess(const Value& a, const Value& b) {
  const bool an = a.is_numeric(), bn = b.is_numeric();
  if (an != bn) return an;
  if (an) {
    const double da = a.ToDouble(), db = b.ToDouble();
    if (da != db) return da < db;
    const int ta = static_cast<int>(a.type()), tb = static_cast<int>(b.type());
    if (ta != tb) return ta < tb;
  } else {
    if (a.AsString() != b.AsString()) return a.AsString() < b.AsString();
  }
  return a.Hash() < b.Hash();
}

/// Key wire tags (docs/WIRE_FORMAT.md, GRUP section).
constexpr uint8_t kKeyInt64 = 0;
constexpr uint8_t kKeyFloat64 = 1;
constexpr uint8_t kKeyString = 2;

}  // namespace

std::string GroupedSumBuilder::SerializeState() const {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(schema_.arity()));
  for (const std::string& rel : schema_.relations()) w.PutString(rel);
  EncodeSourceMap(source_, &w);
  w.PutI32(key_idx_);

  std::vector<const Group*> ordered;
  ordered.reserve(groups_.size());
  for (const auto& entry : groups_) ordered.push_back(&entry.second);
  std::sort(ordered.begin(), ordered.end(),
            [](const Group* a, const Group* b) {
              return CanonicalKeyLess(a->key, b->key);
            });

  // String keys are dictionary-coded: distinct strings once, in
  // first-use (canonical) order; groups then reference codes. Codes are
  // local to this payload — the decoder resolves them back to strings, so
  // two shards assigning the same code to different strings merge
  // correctly by content.
  std::unordered_map<std::string, uint32_t> dict_codes;
  std::vector<const std::string*> dict;
  for (const Group* group : ordered) {
    if (group->key.type() != ValueType::kString) continue;
    const std::string& s = group->key.AsString();
    if (dict_codes.emplace(s, static_cast<uint32_t>(dict.size())).second) {
      dict.push_back(&s);
    }
  }
  w.PutU32(static_cast<uint32_t>(dict.size()));
  for (const std::string* s : dict) w.PutString(*s);

  w.PutU64(ordered.size());
  for (const Group* group : ordered) {
    switch (group->key.type()) {
      case ValueType::kInt64:
        w.PutU8(kKeyInt64);
        w.PutI64(group->key.AsInt64());
        break;
      case ValueType::kFloat64:
        w.PutU8(kKeyFloat64);
        w.PutDouble(group->key.AsFloat64());
        break;
      case ValueType::kString:
        w.PutU8(kKeyString);
        w.PutU32(dict_codes.at(group->key.AsString()));
        break;
    }
    // Per-group views share the builder's analysis schema, so only the
    // row data travels (no per-group schema repeat).
    const SampleView& view = group->view;
    const int64_t rows = view.num_rows();
    w.PutU64(static_cast<uint64_t>(rows));
    for (int d = 0; d < schema_.arity(); ++d) {
      for (int64_t i = 0; i < rows; ++i) w.PutU64(view.lineage[d][i]);
    }
    for (int64_t i = 0; i < rows; ++i) w.PutDouble(view.f[i]);
  }
  return w.Take();
}

Result<GroupedSumBuilder> GroupedSumBuilder::DeserializeState(
    std::string_view payload) {
  WireReader r(payload);
  GroupedSumBuilder builder;
  uint32_t arity = 0;
  GUS_RETURN_NOT_OK(r.ReadU32(&arity));
  if (arity > LineageSchema::kMaxLineageArity) {
    return Status::InvalidArgument("wire GroupedSumBuilder arity out of range");
  }
  std::vector<std::string> rels(arity);
  for (auto& rel : rels) GUS_RETURN_NOT_OK(r.ReadString(&rel));
  GUS_ASSIGN_OR_RETURN(builder.schema_, LineageSchema::Make(std::move(rels)));
  GUS_RETURN_NOT_OK(DecodeSourceMap(&r, &builder.source_));
  if (builder.source_.size() != arity) {
    return Status::InvalidArgument(
        "wire GroupedSumBuilder source map does not match the schema");
  }
  GUS_RETURN_NOT_OK(r.ReadI32(&builder.key_idx_));

  uint32_t dict_size = 0;
  GUS_RETURN_NOT_OK(r.ReadU32(&dict_size));
  if (dict_size > r.remaining()) {
    return Status::InvalidArgument("truncated wire GroupedSumBuilder "
                                   "dictionary");
  }
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) GUS_RETURN_NOT_OK(r.ReadString(&s));

  uint64_t group_count = 0;
  GUS_RETURN_NOT_OK(r.ReadU64(&group_count));
  if (group_count > r.remaining()) {
    return Status::InvalidArgument("truncated wire GroupedSumBuilder groups");
  }
  for (uint64_t g = 0; g < group_count; ++g) {
    uint8_t key_type = 0;
    GUS_RETURN_NOT_OK(r.ReadU8(&key_type));
    Value key;
    switch (key_type) {
      case kKeyInt64: {
        int64_t v = 0;
        GUS_RETURN_NOT_OK(r.ReadI64(&v));
        key = Value(v);
        break;
      }
      case kKeyFloat64: {
        double v = 0.0;
        GUS_RETURN_NOT_OK(r.ReadDouble(&v));
        key = Value(v);
        break;
      }
      case kKeyString: {
        uint32_t code = 0;
        GUS_RETURN_NOT_OK(r.ReadU32(&code));
        if (code >= dict.size()) {
          return Status::InvalidArgument(
              "wire GroupedSumBuilder key references a dictionary code "
              "outside the payload's dictionary");
        }
        key = Value(dict[code]);
        break;
      }
      default:
        return Status::InvalidArgument(
            "wire GroupedSumBuilder has an unknown key type tag");
    }
    auto [it, inserted] = builder.groups_.try_emplace(key.Hash());
    if (!inserted) {
      return Status::InvalidArgument(
          "wire GroupedSumBuilder repeats a group key");
    }
    Group& group = it->second;
    group.key = key;
    group.view.schema = builder.schema_;
    uint64_t rows = 0;
    GUS_RETURN_NOT_OK(r.ReadU64(&rows));
    if (rows > r.remaining() / 8) {
      return Status::InvalidArgument(
          "truncated wire GroupedSumBuilder group rows");
    }
    group.view.lineage.assign(arity, {});
    for (uint32_t d = 0; d < arity; ++d) {
      group.view.lineage[d].resize(rows);
      for (uint64_t i = 0; i < rows; ++i) {
        GUS_RETURN_NOT_OK(r.ReadU64(&group.view.lineage[d][i]));
      }
    }
    group.view.f.resize(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      GUS_RETURN_NOT_OK(r.ReadDouble(&group.view.f[i]));
    }
  }
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return builder;
}

Result<std::vector<GroupEstimate>> GroupedSumBuilder::Finish(
    const GusParams& gus, double confidence_level, BoundKind kind) const {
  if (!(gus.schema() == schema_)) {
    return Status::InvalidArgument(
        "GusParams schema does not match the builder's analysis schema");
  }
  std::vector<GroupEstimate> out;
  out.reserve(groups_.size());
  for (const auto& entry : groups_) {
    const Group& group = entry.second;
    GUS_ASSIGN_OR_RETURN(
        GroupEstimate ge,
        EstimateGroup(gus, group.key, group.view, confidence_level, kind));
    out.push_back(std::move(ge));
  }
  SortByKey(&out);
  return out;
}

}  // namespace gus
