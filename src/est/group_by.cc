#include "est/group_by.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "est/unbiased.h"
#include "est/variance.h"
#include "est/ys.h"

namespace gus {

Result<std::vector<GroupEstimate>> GroupedSumEstimate(
    const GusParams& gus, const Relation& rel, const ExprPtr& f_expr,
    const std::string& key_column, double confidence_level, BoundKind kind) {
  GUS_ASSIGN_OR_RETURN(SampleView view,
                       SampleView::FromRelation(rel, f_expr, gus.schema()));
  GUS_ASSIGN_OR_RETURN(int key_idx, rel.schema().IndexOf(key_column));

  // Partition row indexes by key hash (exact keys kept for output). Hash
  // partitioning follows KeyEquals semantics: numerically equal keys of
  // mixed int64/float64 type hash together and deliberately form one group
  // (consistent with how joins match keys); a typed key column never mixes
  // types unless the input was malformed to begin with.
  std::unordered_map<uint64_t, std::vector<int64_t>> groups;
  std::unordered_map<uint64_t, Value> keys;
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    const Value& key = rel.row(i)[key_idx];
    const uint64_t h = key.Hash();
    groups[h].push_back(i);
    keys.emplace(h, key);
  }

  std::vector<GroupEstimate> out;
  out.reserve(groups.size());
  for (const auto& [h, rows] : groups) {
    // Group view: f restricted to the group's rows. Rows outside the group
    // contribute f = 0, and zero rows do not change any y statistic, so the
    // restricted view is sufficient.
    SampleView gview;
    gview.schema = view.schema;
    gview.lineage.assign(view.lineage.size(), {});
    for (int64_t i : rows) {
      gview.f.push_back(view.f[i]);
      for (size_t d = 0; d < view.lineage.size(); ++d) {
        gview.lineage[d].push_back(view.lineage[d][i]);
      }
    }
    GroupEstimate ge;
    ge.key = keys.at(h);
    ge.sample_rows = static_cast<int64_t>(rows.size());
    GUS_ASSIGN_OR_RETURN(ge.estimate, PointEstimate(gus, gview));
    const std::vector<double> Y = ComputeAllYS(gview);
    GUS_ASSIGN_OR_RETURN(std::vector<double> y_hat,
                         UnbiasedYEstimates(gus, Y));
    GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, y_hat));
    ge.variance = std::max(0.0, var);
    ge.stddev = std::sqrt(ge.variance);
    GUS_ASSIGN_OR_RETURN(
        ge.interval,
        MakeInterval(ge.estimate, ge.variance, confidence_level, kind));
    out.push_back(std::move(ge));
  }
  // Deterministic output order: by key string (numeric-aware enough for
  // tests and display).
  std::sort(out.begin(), out.end(),
            [](const GroupEstimate& a, const GroupEstimate& b) {
              if (a.key.is_numeric() && b.key.is_numeric()) {
                return a.key.ToDouble() < b.key.ToDouble();
              }
              return a.key.ToString() < b.key.ToString();
            });
  return out;
}

}  // namespace gus
