#include "est/group_by.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "est/unbiased.h"
#include "est/variance.h"
#include "est/ys.h"
#include "plan/vector_eval.h"

namespace gus {

namespace {

/// One group's full Theorem-1 treatment; shared by the relation-based and
/// streaming paths so their numbers agree bit for bit.
Result<GroupEstimate> EstimateGroup(const GusParams& gus, const Value& key,
                                    const SampleView& gview,
                                    double confidence_level, BoundKind kind) {
  GroupEstimate ge;
  ge.key = key;
  ge.sample_rows = gview.num_rows();
  GUS_ASSIGN_OR_RETURN(ge.estimate, PointEstimate(gus, gview));
  const std::vector<double> Y = ComputeAllYS(gview);
  GUS_ASSIGN_OR_RETURN(std::vector<double> y_hat, UnbiasedYEstimates(gus, Y));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, y_hat));
  ge.variance = std::max(0.0, var);
  ge.stddev = std::sqrt(ge.variance);
  GUS_ASSIGN_OR_RETURN(
      ge.interval,
      MakeInterval(ge.estimate, ge.variance, confidence_level, kind));
  return ge;
}

/// Deterministic output order: by key (numeric-aware enough for tests and
/// display).
void SortByKey(std::vector<GroupEstimate>* out) {
  std::sort(out->begin(), out->end(),
            [](const GroupEstimate& a, const GroupEstimate& b) {
              if (a.key.is_numeric() && b.key.is_numeric()) {
                return a.key.ToDouble() < b.key.ToDouble();
              }
              return a.key.ToString() < b.key.ToString();
            });
}

}  // namespace

Result<std::vector<GroupEstimate>> GroupedSumEstimate(
    const GusParams& gus, const Relation& rel, const ExprPtr& f_expr,
    const std::string& key_column, double confidence_level, BoundKind kind) {
  GUS_ASSIGN_OR_RETURN(SampleView view,
                       SampleView::FromRelation(rel, f_expr, gus.schema()));
  GUS_ASSIGN_OR_RETURN(int key_idx, rel.schema().IndexOf(key_column));

  // Partition row indexes by key hash (exact keys kept for output). Hash
  // partitioning follows KeyEquals semantics: numerically equal keys of
  // mixed int64/float64 type hash together and deliberately form one group
  // (consistent with how joins match keys); a typed key column never mixes
  // types unless the input was malformed to begin with.
  std::unordered_map<uint64_t, std::vector<int64_t>> groups;
  std::unordered_map<uint64_t, Value> keys;
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    const Value& key = rel.row(i)[key_idx];
    const uint64_t h = key.Hash();
    groups[h].push_back(i);
    auto [it, inserted] = keys.emplace(h, key);
    if (!inserted && !it->second.KeyEquals(key)) {
      // Refuse to silently fuse distinct keys on a 64-bit hash collision.
      return Status::Internal("group-by key hash collision between '" +
                              it->second.ToString() + "' and '" +
                              key.ToString() + "'");
    }
  }

  std::vector<GroupEstimate> out;
  out.reserve(groups.size());
  for (const auto& [h, rows] : groups) {
    // Group view: f restricted to the group's rows. Rows outside the group
    // contribute f = 0, and zero rows do not change any y statistic, so the
    // restricted view is sufficient.
    SampleView gview;
    gview.schema = view.schema;
    gview.lineage.assign(view.lineage.size(), {});
    for (int64_t i : rows) {
      gview.f.push_back(view.f[i]);
      for (size_t d = 0; d < view.lineage.size(); ++d) {
        gview.lineage[d].push_back(view.lineage[d][i]);
      }
    }
    GUS_ASSIGN_OR_RETURN(
        GroupEstimate ge,
        EstimateGroup(gus, keys.at(h), gview, confidence_level, kind));
    out.push_back(std::move(ge));
  }
  SortByKey(&out);
  return out;
}

Result<GroupedSumBuilder> GroupedSumBuilder::Make(const BatchLayout& layout,
                                                  const ExprPtr& f_expr,
                                                  const std::string& key_column,
                                                  const LineageSchema& schema) {
  GroupedSumBuilder builder;
  GUS_ASSIGN_OR_RETURN(builder.source_,
                       MapAnalysisDims(layout.lineage_schema, schema));
  GUS_ASSIGN_OR_RETURN(builder.bound_, f_expr->Bind(layout.schema));
  GUS_ASSIGN_OR_RETURN(builder.key_idx_, layout.schema.IndexOf(key_column));
  builder.schema_ = schema;
  return builder;
}

Status GroupedSumBuilder::Consume(const ColumnBatch& batch) {
  f_scratch_.clear();
  GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(
      bound_, batch, "aggregate expression must be numeric", &f_scratch_));
  const ColumnData& key_col = batch.column(key_idx_);
  const int n = static_cast<int>(source_.size());
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    const Value key = key_col.ValueAt(i);
    auto [it, inserted] = groups_.try_emplace(key.Hash());
    Group& group = it->second;
    if (inserted) {
      group.key = key;
      group.view.schema = schema_;
      group.view.lineage.assign(n, {});
    } else if (!group.key.KeyEquals(key)) {
      // Refuse to silently fuse distinct keys on a 64-bit hash collision.
      return Status::Internal("group-by key hash collision between '" +
                              group.key.ToString() + "' and '" +
                              key.ToString() + "'");
    }
    group.view.f.push_back(f_scratch_[i]);
    for (int d = 0; d < n; ++d) {
      group.view.lineage[d].push_back(batch.lineage_at(i, source_[d]));
    }
  }
  return Status::OK();
}

Status GroupedSumBuilder::Merge(GroupedSumBuilder&& other) {
  if (source_ != other.source_ || key_idx_ != other.key_idx_ ||
      !(schema_ == other.schema_)) {
    return Status::InvalidArgument(
        "cannot merge GroupedSumBuilders over different layouts");
  }
  for (auto& [h, group] : other.groups_) {
    auto it = groups_.find(h);
    if (it == groups_.end()) {
      groups_.emplace(h, std::move(group));
    } else if (!it->second.key.KeyEquals(group.key)) {
      return Status::Internal("group-by key hash collision between '" +
                              it->second.key.ToString() + "' and '" +
                              group.key.ToString() + "'");
    } else {
      GUS_RETURN_NOT_OK(it->second.view.Merge(std::move(group.view)));
    }
  }
  return Status::OK();
}

Result<std::vector<GroupEstimate>> GroupedSumBuilder::Finish(
    const GusParams& gus, double confidence_level, BoundKind kind) const {
  if (!(gus.schema() == schema_)) {
    return Status::InvalidArgument(
        "GusParams schema does not match the builder's analysis schema");
  }
  std::vector<GroupEstimate> out;
  out.reserve(groups_.size());
  for (const auto& entry : groups_) {
    const Group& group = entry.second;
    GUS_ASSIGN_OR_RETURN(
        GroupEstimate ge,
        EstimateGroup(gus, group.key, group.view, confidence_level, kind));
    out.push_back(std::move(ge));
  }
  SortByKey(&out);
  return out;
}

}  // namespace gus
