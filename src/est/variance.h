// Theorem 1: moments of the GUS sampling estimator.
//
//   X = (1/a) * sum_{t in sample} f(t)
//   E[X] = A (the true aggregate)
//   Var[X] = sum_S (c_S / a^2) y_S  −  y_∅
//
// VarianceFromY evaluates the formula given a y-table — the *true* y values
// for the exact (oracle) variance, or the unbiased Ŷ estimates for the
// sample-based variance estimate.

#ifndef GUS_EST_VARIANCE_H_
#define GUS_EST_VARIANCE_H_

#include <vector>

#include "algebra/gus_params.h"
#include "est/sample_view.h"
#include "util/status.h"

namespace gus {

/// The point estimate X = SumF / a.
Result<double> PointEstimate(const GusParams& gus, const SampleView& sample);

/// Var[X] from a y-table (true y or estimated Ŷ), Theorem 1.
Result<double> VarianceFromY(const GusParams& gus,
                             const std::vector<double>& y);

/// \brief Covariance between two SUM estimators X_f, X_g sharing the sample:
///   Cov = sum_S (c_S/a^2) y^{fg}_S − y^{fg}_∅
/// with y^{fg} the bilinear statistics. Used by the AVG delta method.
Result<double> CovarianceFromY(const GusParams& gus,
                               const std::vector<double>& y_bilinear);

/// \brief Oracle variance: evaluates Theorem 1 on the *full data*
/// (exact y values). Used by tests and experiments as ground truth for the
/// estimator's sampling distribution.
Result<double> ExactVariance(const GusParams& gus, const SampleView& full_data);

}  // namespace gus

#endif  // GUS_EST_VARIANCE_H_
