// AVG and general ratio estimation — the paper's Section 9 extension.
//
// AVG(f) = SUM(f) / COUNT(*) is a ratio of two SUM-like aggregates computed
// over the same sample. The paper notes the exact moments of a ratio are
// out of reach but that the delta method applies; this module implements
// it:
//
//   R = X_f / X_g,  with (X_f, X_g) the joint GUS estimators.
//   E[R]   ≈ µ_f/µ_g  (first order)
//   Var[R] ≈ (σ_f² − 2 R σ_fg + R² σ_g²) / µ_g²
//
// The variance and covariance come from the bilinear Theorem 1
// (CovarianceFromY with the bilinear y-statistics), with every moment
// estimated unbiasedly from the sample by the Section 6.3 recursion.

#ifndef GUS_EST_RATIO_H_
#define GUS_EST_RATIO_H_

#include <string>

#include "algebra/gus_params.h"
#include "est/confidence.h"
#include "est/sample_view.h"
#include "util/status.h"

namespace gus {

/// \brief Result of a delta-method ratio estimation.
struct RatioReport {
  /// Estimated ratio (AVG when g == 1).
  double estimate = 0.0;
  /// Delta-method variance of the ratio estimator.
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
  /// The numerator / denominator SUM estimates.
  double numerator = 0.0;
  double denominator = 0.0;
  /// Their estimated variances and covariance (diagnostics).
  double numerator_variance = 0.0;
  double denominator_variance = 0.0;
  double covariance = 0.0;

  std::string ToString() const;
};

/// \brief Estimates SUM(f)/SUM(g) with a delta-method interval.
///
/// `view` carries f; `g` is the per-row denominator values (same length).
/// Fails if the estimated denominator is zero.
Result<RatioReport> RatioEstimate(const GusParams& gus, const SampleView& view,
                                  const std::vector<double>& g,
                                  double confidence_level = 0.95,
                                  BoundKind kind = BoundKind::kNormal);

/// \brief AVG(f): RatioEstimate with g == 1 (COUNT in the denominator).
Result<RatioReport> AvgEstimate(const GusParams& gus, const SampleView& view,
                                double confidence_level = 0.95,
                                BoundKind kind = BoundKind::kNormal);

/// \brief COUNT(*) estimation: SUM of the constant 1 (the paper's reduction
/// of COUNT to SUM). Returns estimate and variance via Theorem 1.
struct CountReport {
  double estimate = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
};
Result<CountReport> CountEstimate(const GusParams& gus,
                                  const SampleView& view,
                                  double confidence_level = 0.95,
                                  BoundKind kind = BoundKind::kNormal);

}  // namespace gus

#endif  // GUS_EST_RATIO_H_
