// Computation of the y_S data statistics of Theorem 1:
//
//   y_S = sum over groups of rows agreeing on the S-projection of their
//         lineage of (sum of f within the group)^2
//
// computed either over the full data (exact analysis) or over a sample
// (the Y_S inputs of the unbiased estimator, Section 6.3).
//
// Generalized to the bilinear form y_S^{f,g} = sum over groups of
// (sum f)(sum g), which the AVG delta-method extension needs for the
// covariance between the SUM and COUNT estimators; y_S = y_S^{f,f}.

#ifndef GUS_EST_YS_H_
#define GUS_EST_YS_H_

#include <vector>

#include "est/sample_view.h"
#include "util/bits.h"
#include "util/status.h"

namespace gus {

/// y_S for a single agreement mask (hash grouping).
double ComputeYS(const SampleView& view, SubsetMask mask);

/// Bilinear y_S^{f,g}; `g` must have the same length as view.f.
Result<double> ComputeYSBilinear(const SampleView& view,
                                 const std::vector<double>& g,
                                 SubsetMask mask);

/// All 2^n statistics, indexed by mask (hash grouping).
std::vector<double> ComputeAllYS(const SampleView& view);

/// All 2^n bilinear statistics.
Result<std::vector<double>> ComputeAllYSBilinear(const SampleView& view,
                                                 const std::vector<double>& g);

/// \brief Sort-based alternative for a single mask.
///
/// Sorts row indexes by the projected lineage key instead of hashing;
/// identical results, different constant factors — the A2 ablation bench
/// compares the two.
double ComputeYSSorted(const SampleView& view, SubsetMask mask);

}  // namespace gus

#endif  // GUS_EST_YS_H_
