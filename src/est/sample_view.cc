#include "est/sample_view.h"

namespace gus {

Result<std::vector<int>> MapAnalysisDims(
    const std::vector<std::string>& lineage_schema,
    const LineageSchema& schema) {
  if (static_cast<int>(lineage_schema.size()) != schema.arity()) {
    return Status::InvalidArgument(
        "relation lineage arity does not match the analysis schema");
  }
  std::vector<int> source(schema.arity());
  for (int d = 0; d < schema.arity(); ++d) {
    const auto& name = schema.relation(d);
    int found = -1;
    for (size_t c = 0; c < lineage_schema.size(); ++c) {
      if (lineage_schema[c] == name) {
        found = static_cast<int>(c);
        break;
      }
    }
    if (found < 0) {
      return Status::KeyError("analysis schema relation '" + name +
                              "' missing from the relation's lineage");
    }
    source[d] = found;
  }
  return source;
}

Result<SampleView> SampleView::FromRelation(const Relation& rel,
                                            const ExprPtr& f_expr,
                                            const LineageSchema& schema) {
  // Map analysis dimension -> relation lineage column.
  GUS_ASSIGN_OR_RETURN(std::vector<int> source,
                       MapAnalysisDims(rel.lineage_schema(), schema));

  GUS_ASSIGN_OR_RETURN(ExprPtr bound, f_expr->Bind(rel.schema()));

  SampleView view;
  view.schema = schema;
  view.lineage.assign(schema.arity(), {});
  for (auto& col : view.lineage) col.reserve(rel.num_rows());
  view.f.reserve(rel.num_rows());
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    GUS_ASSIGN_OR_RETURN(Value v, bound->Eval(rel.row(i)));
    if (!v.is_numeric()) {
      return Status::TypeError("aggregate expression must be numeric");
    }
    view.f.push_back(v.ToDouble());
    for (int d = 0; d < schema.arity(); ++d) {
      view.lineage[d].push_back(rel.lineage(i)[source[d]]);
    }
  }
  return view;
}

Status SampleView::Merge(SampleView&& other) {
  if (!(schema == other.schema)) {
    return Status::InvalidArgument(
        "cannot merge SampleViews with different lineage schemas");
  }
  if (f.empty()) {
    *this = std::move(other);
    return Status::OK();
  }
  f.insert(f.end(), other.f.begin(), other.f.end());
  for (size_t d = 0; d < lineage.size(); ++d) {
    lineage[d].insert(lineage[d].end(), other.lineage[d].begin(),
                      other.lineage[d].end());
  }
  return Status::OK();
}

double SampleView::SumF() const {
  double s = 0.0;
  for (double v : f) s += v;
  return s;
}

}  // namespace gus
