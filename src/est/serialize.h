// Text serialization of SBox inputs — the paper's "estimator as an external
// tool" integration mode (Section 6): a database only needs to dump the top
// GUS parameters plus the (lineage, f) stream, and a separate process can
// produce estimates and confidence intervals.
//
// Format (line oriented, '#' comments allowed):
//
//   gus-sbox-v1
//   schema <rel_1> ... <rel_n>
//   a <value>
//   b <mask> <value>          # one line per subset mask, all 2^n present
//   rows <m>
//   <id_1> ... <id_n> <f>     # m data lines
//
// Masks are decimal over the schema ordering (bit i = relation i).

#ifndef GUS_EST_SERIALIZE_H_
#define GUS_EST_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "algebra/gus_params.h"
#include "est/sample_view.h"
#include "util/status.h"

namespace gus {

/// A deserialized SBox input.
struct SboxInput {
  GusParams gus;
  SampleView view;
};

/// Writes the (gus, view) pair; the view's schema must match the GUS's.
Status WriteSboxInput(std::ostream* out, const GusParams& gus,
                      const SampleView& view);

/// Serializes to a string (convenience over WriteSboxInput).
Result<std::string> SboxInputToString(const GusParams& gus,
                                      const SampleView& view);

/// Parses a serialized input; validates header, table completeness, row
/// counts and parameter ranges.
Result<SboxInput> ReadSboxInput(std::istream* in);

/// Parses from a string (convenience over ReadSboxInput).
Result<SboxInput> SboxInputFromString(const std::string& text);

}  // namespace gus

#endif  // GUS_EST_SERIALIZE_H_
