// Statistically sound partial gathers: estimating from surviving shards.
//
// The GUS algebra makes a lost shard a *sampling event*, not a failed
// query. Result rows partition over shards by their pivot-scan unit, so
// "row r's shard survived" is a randomized filter on the result — a GUS
// quasi-operator over the same lineage schema as the query's own design.
// Conditional on m of N shards surviving (the exchangeable-failure model:
// which shards died is uninformative about their contents), the survival
// filter has
//
//   a    = m/N                       every row's shard survives w.p. m/N
//   b_T  = m/N                        when T determines the shard — T
//                                     contains the pivot relation (same
//                                     pivot tuple => same unit => same
//                                     shard), or the plan had no
//                                     partitionable pivot (one unit);
//   b_T  = m(m-1) / (N(N-1))          otherwise (the pair can straddle two
//                                     shards; co-survival is the WOR
//                                     two-draw probability).
//
// b_full == a holds because full agreement always contains the pivot.
//
// Composing this filter into the merged survivors' design (Prop. 8
// stacking) divides the point estimate by a' = a·m/N — the
// Horvitz-Thompson reweighting that keeps it unbiased:
// E_failures[ sum over surviving shards ] = (m/N) · full sum, so
// dividing by the extra m/N restores the full-data expectation, and
// dist_test pins this with an exact mean-over-kills identity plus a
// Monte-Carlo check.
//
// The b̄ table above describes the design but deliberately does NOT
// drive the variance: shard membership is a function of the pivot
// *unit*, not the pivot lineage value, so a pair differing on every
// lineage dimension can still share a shard and co-survive with m/N —
// a probability no lineage-indexed b̄ entry can express. Feeding the
// mispriced table through Theorem 1's tightly-cancelling pair terms
// biases the variance (negative in practice). The fold instead keeps
// the per-shard states and computes the exact law-of-total-variance
// split (StreamingSboxEstimator::FinishDegraded): within-shard and
// cross-shard pair statistics are HT-corrected at their true
// co-survival probabilities to estimate the complete run's Theorem-1
// variance, and the between-shard WOR term N²(1/m − 1/N)·S_T² is added
// from the survivors' sample variance — unbiased, nonnegative, so the
// degraded CI honestly widens on average.
//
// The limit of honesty: with m = 1 surviving shard of N >= 2 on a
// partitionable plan, cross-shard co-survival is impossible (b_T = 0) and
// the pairwise variance estimator (Theorem 1's y_S path) is undefined —
// the gather fails with a clear message instead of fabricating a CI.

#ifndef GUS_EST_PARTIAL_GATHER_H_
#define GUS_EST_PARTIAL_GATHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/gus_params.h"
#include "algebra/lineage_schema.h"
#include "util/status.h"

namespace gus {

/// One shard's slice of the global unit sequence, as carried by degraded
/// gather metadata (a plain value type; dist/shard.h owns the planning
/// twin).
struct ShardUnitRange {
  int shard_index = 0;
  int64_t unit_begin = 0;
  int64_t unit_end = 0;

  bool operator==(const ShardUnitRange& o) const {
    return shard_index == o.shard_index && unit_begin == o.unit_begin &&
           unit_end == o.unit_end;
  }
};

/// The canonical contiguous range shard k covers when `num_units` units
/// are carved into `num_shards` shards — the same arithmetic PlanShards
/// uses, exposed so a gather can name *lost* ranges without re-planning.
ShardUnitRange CanonicalShardRange(int64_t num_units, int num_shards, int k);

/// \brief The "shard survived" GUS quasi-operator (see file comment).
///
/// `pivot_relation` is the partitioned base scan ("" for a
/// non-partitionable plan, where all data lives in one unit and every
/// pair co-survives). `surviving` of `total` shards completed. Fails on
/// surviving < 1, surviving > total, or a pivot relation missing from
/// `schema`.
Result<GusParams> ShardSurvivalGus(const LineageSchema& schema,
                                   const std::string& pivot_relation,
                                   int surviving, int total);

/// \brief What a degraded gather lost — returned alongside the re-weighted
/// estimate so callers can surface it, log it, or refuse it.
struct DegradedReport {
  int surviving_shards = 0;
  int total_shards = 0;
  int64_t surviving_units = 0;
  int64_t total_units = 0;
  /// The unit ranges whose shards never delivered (ascending shard index).
  std::vector<ShardUnitRange> lost_ranges;
  /// surviving_units / total_units (1.0 when nothing was partitioned —
  /// the fraction of the pivot scan the estimate actually saw).
  double effective_coverage = 1.0;
  /// The final (post-retry) error per lost shard, for diagnostics.
  std::vector<std::string> failures;

  std::string ToString() const;
};

/// \brief The WireTag::kSurvivingRanges ("LIVE") payload: which shards a
/// partial bundle folded, over what total geometry — what makes a cached
/// degraded gather self-describing (docs/WIRE_FORMAT.md).
struct SurvivingRangesInfo {
  /// The partitioned pivot scan ("" = non-partitionable plan).
  std::string pivot_relation;
  uint32_t total_shards = 0;
  int64_t total_units = 0;
  /// Ascending shard index; the shards whose state the fold includes.
  std::vector<ShardUnitRange> surviving;
};

std::string SurvivingRangesToBytes(const SurvivingRangesInfo& info);
Result<SurvivingRangesInfo> SurvivingRangesFromBytes(std::string_view payload);

}  // namespace gus

#endif  // GUS_EST_PARTIAL_GATHER_H_
