#include "est/partial_gather.h"

#include <cstdio>

#include "est/wire.h"

namespace gus {

ShardUnitRange CanonicalShardRange(int64_t num_units, int num_shards, int k) {
  ShardUnitRange range;
  range.shard_index = k;
  range.unit_begin = num_units * k / num_shards;
  range.unit_end = num_units * (k + 1) / num_shards;
  return range;
}

Result<GusParams> ShardSurvivalGus(const LineageSchema& schema,
                                   const std::string& pivot_relation,
                                   int surviving, int total) {
  if (total < 1 || surviving < 1 || surviving > total) {
    return Status::InvalidArgument(
        "shard survival needs 1 <= surviving <= total, got " +
        std::to_string(surviving) + " of " + std::to_string(total));
  }
  const double m = static_cast<double>(surviving);
  const double n = static_cast<double>(total);
  const double a = m / n;
  // Pairs whose shard membership can differ co-survive with the WOR
  // two-draw probability; 0 when only one shard survived (see the header's
  // honesty note — the caller must refuse to fabricate a CI from that).
  const double b_cross = total == 1 ? 1.0 : (m * (m - 1.0)) / (n * (n - 1.0));
  SubsetMask pivot_bit = 0;
  const bool partitioned = !pivot_relation.empty();
  if (partitioned) {
    GUS_ASSIGN_OR_RETURN(const int idx, schema.IndexOf(pivot_relation));
    pivot_bit = SubsetMask{1} << idx;
  }
  std::vector<double> b(schema.num_subsets(), 0.0);
  for (SubsetMask mask = 0; mask < b.size(); ++mask) {
    const bool same_shard = !partitioned || (mask & pivot_bit) != 0;
    b[mask] = same_shard ? a : b_cross;
  }
  return GusParams::Make(schema, a, std::move(b));
}

std::string DegradedReport::ToString() const {
  char head[160];
  std::snprintf(head, sizeof(head),
                "degraded gather: %d/%d shards, %lld/%lld units "
                "(coverage %.4f), lost:",
                surviving_shards, total_shards,
                static_cast<long long>(surviving_units),
                static_cast<long long>(total_units), effective_coverage);
  std::string out(head);
  for (const ShardUnitRange& r : lost_ranges) {
    out += " shard " + std::to_string(r.shard_index) + " [" +
           std::to_string(r.unit_begin) + "," + std::to_string(r.unit_end) +
           ")";
  }
  for (const std::string& f : failures) {
    out += "\n  " + f;
  }
  return out;
}

std::string SurvivingRangesToBytes(const SurvivingRangesInfo& info) {
  WireWriter w;
  w.PutString(info.pivot_relation);
  w.PutU32(info.total_shards);
  w.PutI64(info.total_units);
  w.PutU32(static_cast<uint32_t>(info.surviving.size()));
  for (const ShardUnitRange& r : info.surviving) {
    w.PutU32(static_cast<uint32_t>(r.shard_index));
    w.PutI64(r.unit_begin);
    w.PutI64(r.unit_end);
  }
  return w.Take();
}

Result<SurvivingRangesInfo> SurvivingRangesFromBytes(
    std::string_view payload) {
  WireReader r(payload);
  SurvivingRangesInfo info;
  GUS_RETURN_NOT_OK(r.ReadString(&info.pivot_relation));
  GUS_RETURN_NOT_OK(r.ReadU32(&info.total_shards));
  GUS_RETURN_NOT_OK(r.ReadI64(&info.total_units));
  uint32_t count = 0;
  GUS_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > r.remaining() / 20) {
    return Status::InvalidArgument("truncated surviving-ranges section");
  }
  info.surviving.resize(count);
  for (ShardUnitRange& range : info.surviving) {
    uint32_t idx = 0;
    GUS_RETURN_NOT_OK(r.ReadU32(&idx));
    range.shard_index = static_cast<int>(idx);
    GUS_RETURN_NOT_OK(r.ReadI64(&range.unit_begin));
    GUS_RETURN_NOT_OK(r.ReadI64(&range.unit_end));
  }
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return info;
}

}  // namespace gus
