#include "est/serialize.h"

#include <cinttypes>
#include <istream>
#include <ostream>
#include <sstream>

namespace gus {

namespace {

constexpr char kMagic[] = "gus-sbox-v1";

/// Reads the next non-comment, non-empty line.
bool NextLine(std::istream* in, std::string* line) {
  while (std::getline(*in, *line)) {
    const size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Status WriteSboxInput(std::ostream* out, const GusParams& gus,
                      const SampleView& view) {
  if (view.schema != gus.schema()) {
    return Status::InvalidArgument("view / GUS schema mismatch");
  }
  *out << kMagic << "\n";
  *out << "schema";
  for (const auto& rel : gus.schema().relations()) *out << " " << rel;
  *out << "\n";
  std::ostringstream num;
  num.precision(17);
  num << gus.a();
  *out << "a " << num.str() << "\n";
  for (SubsetMask m = 0; m < gus.schema().num_subsets(); ++m) {
    std::ostringstream bnum;
    bnum.precision(17);
    bnum << gus.b(m);
    *out << "b " << m << " " << bnum.str() << "\n";
  }
  *out << "rows " << view.num_rows() << "\n";
  for (int64_t i = 0; i < view.num_rows(); ++i) {
    for (int d = 0; d < gus.schema().arity(); ++d) {
      *out << view.lineage[d][i] << " ";
    }
    std::ostringstream fnum;
    fnum.precision(17);
    fnum << view.f[i];
    *out << fnum.str() << "\n";
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<std::string> SboxInputToString(const GusParams& gus,
                                      const SampleView& view) {
  std::ostringstream out;
  GUS_RETURN_NOT_OK(WriteSboxInput(&out, gus, view));
  return out.str();
}

Result<SboxInput> ReadSboxInput(std::istream* in) {
  std::string line;
  if (!NextLine(in, &line) || line.find(kMagic) == std::string::npos) {
    return Status::InvalidArgument(
        "not a gus-sbox-v1 file (missing magic line)");
  }
  // schema
  if (!NextLine(in, &line)) return Status::InvalidArgument("missing schema");
  std::istringstream schema_line(line);
  std::string token;
  schema_line >> token;
  if (token != "schema") {
    return Status::InvalidArgument("expected 'schema', got '" + token + "'");
  }
  std::vector<std::string> rels;
  while (schema_line >> token) rels.push_back(token);
  GUS_ASSIGN_OR_RETURN(LineageSchema schema, LineageSchema::Make(rels));

  // a
  if (!NextLine(in, &line)) return Status::InvalidArgument("missing a");
  std::istringstream a_line(line);
  double a = -1.0;
  a_line >> token >> a;
  if (token != "a" || a_line.fail()) {
    return Status::InvalidArgument("malformed 'a' line: " + line);
  }

  // b table
  std::vector<double> b(schema.num_subsets(), -1.0);
  for (size_t k = 0; k < schema.num_subsets(); ++k) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("truncated b table");
    }
    std::istringstream b_line(line);
    uint64_t mask = 0;
    double value = -1.0;
    b_line >> token >> mask >> value;
    if (token != "b" || b_line.fail() || mask >= b.size()) {
      return Status::InvalidArgument("malformed 'b' line: " + line);
    }
    b[mask] = value;
  }
  for (double v : b) {
    if (v < 0.0) {
      return Status::InvalidArgument("b table has missing entries");
    }
  }
  GUS_ASSIGN_OR_RETURN(GusParams gus, GusParams::Make(schema, a, b));

  // rows
  if (!NextLine(in, &line)) return Status::InvalidArgument("missing rows");
  std::istringstream rows_line(line);
  int64_t rows = -1;
  rows_line >> token >> rows;
  if (token != "rows" || rows_line.fail() || rows < 0) {
    return Status::InvalidArgument("malformed 'rows' line: " + line);
  }
  SampleView view;
  view.schema = schema;
  view.lineage.assign(schema.arity(), {});
  view.f.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("truncated data section");
    }
    std::istringstream data_line(line);
    for (int d = 0; d < schema.arity(); ++d) {
      uint64_t id = 0;
      data_line >> id;
      if (data_line.fail()) {
        return Status::InvalidArgument("malformed data line: " + line);
      }
      view.lineage[d].push_back(id);
    }
    double f = 0.0;
    data_line >> f;
    if (data_line.fail()) {
      return Status::InvalidArgument("malformed data line: " + line);
    }
    view.f.push_back(f);
  }
  return SboxInput{std::move(gus), std::move(view)};
}

Result<SboxInput> SboxInputFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadSboxInput(&in);
}

}  // namespace gus
