#include "est/wire.h"

#include <cstdio>
#include <cstring>
#include <limits>

namespace gus {

namespace {

constexpr char kBundleMagic[4] = {'G', 'U', 'S', 'B'};

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Cap on any single decoded element count. The point is not a format
/// limit but loud failure on corrupted length fields before they turn
/// into multi-gigabyte allocations.
constexpr uint64_t kSaneCount = uint64_t{1} << 40;

}  // namespace

bool WireTagKnown(uint32_t tag) {
  switch (static_cast<WireTag>(tag)) {
    case WireTag::kMeta:
    case WireTag::kSampleView:
    case WireTag::kViewBuilder:
    case WireTag::kSboxState:
    case WireTag::kGroupedSum:
    case WireTag::kRngState:
    case WireTag::kSamplerState:
    case WireTag::kSurvivingRanges:
      return true;
  }
  return false;
}

uint64_t WireChecksum(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Status WireReader::Take(size_t n, std::string_view* out) {
  if (n > buf_.size() - pos_) {
    return Status::InvalidArgument("truncated wire buffer (wanted " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(buf_.size() - pos_) + ")");
  }
  *out = buf_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status WireReader::ReadU8(uint8_t* out) {
  std::string_view b;
  GUS_RETURN_NOT_OK(Take(1, &b));
  *out = static_cast<uint8_t>(b[0]);
  return Status::OK();
}

Status WireReader::ReadU32(uint32_t* out) {
  std::string_view b;
  GUS_RETURN_NOT_OK(Take(4, &b));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  *out = v;
  return Status::OK();
}

Status WireReader::ReadU64(uint64_t* out) {
  std::string_view b;
  GUS_RETURN_NOT_OK(Take(8, &b));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  *out = v;
  return Status::OK();
}

Status WireReader::ReadI32(int32_t* out) {
  uint32_t v;
  GUS_RETURN_NOT_OK(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status WireReader::ReadI64(int64_t* out) {
  uint64_t v;
  GUS_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status WireReader::ReadDouble(double* out) {
  uint64_t bits;
  GUS_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status WireReader::ReadString(std::string* out) {
  uint32_t len;
  GUS_RETURN_NOT_OK(ReadU32(&len));
  std::string_view b;
  GUS_RETURN_NOT_OK(Take(len, &b));
  out->assign(b);
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (pos_ != buf_.size()) {
    return Status::InvalidArgument(
        std::to_string(buf_.size() - pos_) +
        " trailing bytes after a complete wire payload");
  }
  return Status::OK();
}

void WireBundleWriter::AddSection(WireTag tag, std::string payload) {
  sections_.emplace_back(tag, std::move(payload));
}

std::string WireBundleWriter::Finish() const {
  WireWriter w;
  for (char c : kBundleMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(kWireVersion);
  w.PutU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [tag, payload] : sections_) {
    w.PutU32(static_cast<uint32_t>(tag));
    w.PutU64(payload.size());
  }
  // Header first, then payloads: the section directory is fixed-size per
  // entry, so a reader can locate any payload without scanning the others.
  std::string out = w.Take();
  for (const auto& [tag, payload] : sections_) out += payload;
  WireWriter tail;
  tail.PutU64(WireChecksum(out));
  return out + tail.Take();
}

Result<std::vector<WireSectionView>> ParseWireBundle(std::string_view buffer) {
  if (buffer.size() < sizeof(kBundleMagic) + 8 + 8 ||
      std::memcmp(buffer.data(), kBundleMagic, sizeof(kBundleMagic)) != 0) {
    return Status::InvalidArgument(
        "not a GUS wire bundle (missing GUSB magic)");
  }
  // Checksum covers everything before the trailing digest; verify before
  // trusting any length field.
  const std::string_view body = buffer.substr(0, buffer.size() - 8);
  WireReader tail_reader(buffer.substr(buffer.size() - 8));
  uint64_t stored = 0;
  GUS_RETURN_NOT_OK(tail_reader.ReadU64(&stored));
  const uint64_t computed = WireChecksum(body);
  if (stored != computed) {
    return Status::InvalidArgument("wire bundle checksum mismatch (corrupt)");
  }

  WireReader r(body.substr(sizeof(kBundleMagic)));
  uint32_t version = 0, count = 0;
  GUS_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        "unsupported wire bundle version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kWireVersion) + ")");
  }
  GUS_RETURN_NOT_OK(r.ReadU32(&count));
  std::vector<uint32_t> tags;
  std::vector<uint64_t> lengths;
  tags.reserve(count);
  lengths.reserve(count);
  uint64_t payload_total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t tag = 0;
    uint64_t len = 0;
    GUS_RETURN_NOT_OK(r.ReadU32(&tag));
    GUS_RETURN_NOT_OK(r.ReadU64(&len));
    if (!WireTagKnown(tag)) {
      // Unknown sections are rejected, not skipped: dropping a partial
      // estimator section would silently bias the merged result.
      char hex[9];
      std::snprintf(hex, sizeof(hex), "%08X", tag);
      return Status::InvalidArgument(std::string("unknown wire section tag 0x") +
                                     hex);
    }
    // Bound each length by the buffer and re-check the running total on
    // every step: the directory is attacker-controlled, and letting the
    // total wrap around uint64 could slip a bogus layout past the final
    // consistency check.
    if (len > kSaneCount || len > body.size()) {
      return Status::InvalidArgument("implausible wire section length");
    }
    tags.push_back(tag);
    lengths.push_back(len);
    payload_total += len;
    if (payload_total > body.size()) {
      return Status::InvalidArgument(
          "wire bundle section lengths exceed the buffer size");
    }
  }
  const size_t directory_end =
      sizeof(kBundleMagic) + 8 + count * size_t{12};
  if (payload_total != body.size() - directory_end) {
    return Status::InvalidArgument(
        "wire bundle section lengths disagree with the buffer size");
  }
  std::vector<WireSectionView> sections;
  sections.reserve(count);
  size_t offset = directory_end;
  for (uint32_t i = 0; i < count; ++i) {
    sections.push_back({static_cast<WireTag>(tags[i]),
                        body.substr(offset, lengths[i])});
    offset += lengths[i];
  }
  return sections;
}

Result<WireSectionView> FindWireSection(
    const std::vector<WireSectionView>& sections, WireTag tag) {
  for (const WireSectionView& s : sections) {
    if (s.tag == tag) return s;
  }
  return Status::InvalidArgument("wire bundle is missing a required section");
}

// ---- Typed payload encodings ----------------------------------------------

void EncodeSampleView(const SampleView& view, WireWriter* w) {
  const int n = view.schema.arity();
  w->PutU32(static_cast<uint32_t>(n));
  for (const std::string& rel : view.schema.relations()) w->PutString(rel);
  const int64_t rows = view.num_rows();
  w->PutU64(static_cast<uint64_t>(rows));
  for (int d = 0; d < n; ++d) {
    for (int64_t i = 0; i < rows; ++i) w->PutU64(view.lineage[d][i]);
  }
  for (int64_t i = 0; i < rows; ++i) w->PutDouble(view.f[i]);
}

Status DecodeSampleView(WireReader* r, SampleView* out) {
  uint32_t arity = 0;
  GUS_RETURN_NOT_OK(r->ReadU32(&arity));
  if (arity > LineageSchema::kMaxLineageArity) {
    return Status::InvalidArgument("wire SampleView arity out of range");
  }
  std::vector<std::string> rels(arity);
  for (auto& rel : rels) GUS_RETURN_NOT_OK(r->ReadString(&rel));
  GUS_ASSIGN_OR_RETURN(out->schema, LineageSchema::Make(std::move(rels)));
  uint64_t rows = 0;
  GUS_RETURN_NOT_OK(r->ReadU64(&rows));
  if (rows > kSaneCount || rows > r->remaining() / 8) {
    return Status::InvalidArgument("truncated wire SampleView row data");
  }
  out->lineage.assign(arity, {});
  for (uint32_t d = 0; d < arity; ++d) {
    out->lineage[d].resize(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      GUS_RETURN_NOT_OK(r->ReadU64(&out->lineage[d][i]));
    }
  }
  out->f.resize(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    GUS_RETURN_NOT_OK(r->ReadDouble(&out->f[i]));
  }
  return Status::OK();
}

std::string SampleViewToBytes(const SampleView& view) {
  WireWriter w;
  EncodeSampleView(view, &w);
  return w.Take();
}

Result<SampleView> SampleViewFromBytes(std::string_view payload) {
  WireReader r(payload);
  SampleView view;
  GUS_RETURN_NOT_OK(DecodeSampleView(&r, &view));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return view;
}

void EncodeGusParams(const GusParams& gus, WireWriter* w) {
  const int n = gus.schema().arity();
  w->PutU32(static_cast<uint32_t>(n));
  for (const std::string& rel : gus.schema().relations()) w->PutString(rel);
  w->PutDouble(gus.a());
  for (SubsetMask m = 0; m < gus.schema().num_subsets(); ++m) {
    w->PutDouble(gus.b(m));
  }
}

Status DecodeGusParams(WireReader* r, GusParams* out) {
  uint32_t arity = 0;
  GUS_RETURN_NOT_OK(r->ReadU32(&arity));
  if (arity > LineageSchema::kMaxLineageArity) {
    return Status::InvalidArgument("wire GusParams arity out of range");
  }
  std::vector<std::string> rels(arity);
  for (auto& rel : rels) GUS_RETURN_NOT_OK(r->ReadString(&rel));
  GUS_ASSIGN_OR_RETURN(LineageSchema schema,
                       LineageSchema::Make(std::move(rels)));
  double a = 0.0;
  GUS_RETURN_NOT_OK(r->ReadDouble(&a));
  std::vector<double> b(schema.num_subsets());
  for (double& v : b) GUS_RETURN_NOT_OK(r->ReadDouble(&v));
  // GusParams::Make revalidates ranges and the b_full == a invariant, so a
  // corrupted-but-checksum-colliding buffer still cannot smuggle in an
  // inconsistent quasi-operator.
  GUS_ASSIGN_OR_RETURN(*out, GusParams::Make(std::move(schema), a,
                                             std::move(b)));
  return Status::OK();
}

void EncodeSourceMap(const std::vector<int>& source, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(source.size()));
  for (int s : source) w->PutI32(s);
}

Status DecodeSourceMap(WireReader* r, std::vector<int>* out) {
  uint32_t n = 0;
  GUS_RETURN_NOT_OK(r->ReadU32(&n));
  if (n > LineageSchema::kMaxLineageArity) {
    return Status::InvalidArgument("wire source map arity out of range");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t v = 0;
    GUS_RETURN_NOT_OK(r->ReadI32(&v));
    (*out)[i] = v;
  }
  return Status::OK();
}

std::string RngStateToBytes(const Rng& rng) {
  uint64_t state[Rng::kStateWords];
  uint64_t draws = 0;
  rng.SaveState(state, &draws);
  WireWriter w;
  for (uint64_t word : state) w.PutU64(word);
  w.PutU64(draws);
  return w.Take();
}

Result<Rng> RngStateFromBytes(std::string_view payload) {
  WireReader r(payload);
  uint64_t state[Rng::kStateWords];
  for (uint64_t& word : state) GUS_RETURN_NOT_OK(r.ReadU64(&word));
  uint64_t draws = 0;
  GUS_RETURN_NOT_OK(r.ReadU64(&draws));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  Rng rng;
  rng.RestoreState(state, draws);
  return rng;
}

}  // namespace gus
