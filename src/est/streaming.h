// Batch-incremental consumers for the estimation layer.
//
// The columnar executor pushes (lineage, f-value) batches straight into
// these sinks, so the query result is never materialized as a relation:
//
//   * SampleViewBuilder — accumulates a SampleView (the Section 6 input)
//     batch by batch; equivalent to SampleView::FromRelation on the
//     materialized result, without the result.
//   * StreamingSboxEstimator — the full SBox in one pass. The point
//     estimate accumulates a running sum; the Section 7 sub-sampled y_S
//     path retains only the rows that can still survive the final
//     lineage-seeded Bernoulli filter. The per-dimension probability
//     p = (target/m)^(1/n) depends on the final stream length m, but it
//     only ever *decreases* as m grows, and the lineage filter is monotone
//     in p — a row kept at the final p is kept at every interim p. The
//     estimator therefore retains rows under the interim threshold (a
//     superset), prunes as the threshold tightens, and applies the exact
//     final filter in Finish(); the report is bit-identical to running
//     SboxEstimate over the fully materialized view.
//
// Without a subsample configuration the y_S statistics need every row, so
// the estimator degrades to retaining the full view — the paper's Section 7
// point is precisely that the sub-sample is what makes streaming-sized
// state possible.

#ifndef GUS_EST_STREAMING_H_
#define GUS_EST_STREAMING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/gus_params.h"
#include "est/sample_view.h"
#include "est/sbox.h"
#include "plan/columnar_executor.h"
#include "rel/column_batch.h"
#include "rel/expression.h"
#include "util/status.h"

namespace gus {

/// \brief Accumulates a SampleView from column batches.
class SampleViewBuilder final : public BatchSink {
 public:
  /// \brief Prepares a builder for batches of `layout`.
  ///
  /// Binds `f_expr` against the layout's schema and maps the analysis
  /// schema's dimensions onto the layout's lineage columns (same
  /// requirements and diagnostics as SampleView::FromRelation).
  static Result<SampleViewBuilder> Make(const BatchLayout& layout,
                                        const ExprPtr& f_expr,
                                        const LineageSchema& schema);

  Status Consume(const ColumnBatch& batch) override;

  /// \brief Folds a later partition's builder into this one (same layout
  /// and analysis schema required).
  ///
  /// Merging split builders in partition order is bit-identical to one
  /// builder consuming the concatenated stream.
  Status Merge(SampleViewBuilder&& other);

  /// \brief Serializes the partial state as a WireTag::kViewBuilder payload
  /// (see docs/WIRE_FORMAT.md).
  ///
  /// DeserializeState(SerializeState()) reproduces the state bit for bit;
  /// the deserialized builder is merge/read-only (its expression binding
  /// does not travel — Consume on it fails loudly). Merging deserialized
  /// shard states in shard order is bit-identical to the in-process merge
  /// of the original builders.
  std::string SerializeState() const;
  static Result<SampleViewBuilder> DeserializeState(std::string_view payload);

  const SampleView& view() const { return view_; }
  SampleView TakeView() { return std::move(view_); }

 private:
  SampleViewBuilder() = default;

  std::vector<int> source_;  // analysis dim -> layout lineage column
  ExprPtr bound_;
  SampleView view_;
};

/// \brief One-pass SBox estimation over a batch stream.
class StreamingSboxEstimator final : public BatchSink {
 public:
  static Result<StreamingSboxEstimator> Make(const BatchLayout& layout,
                                             const ExprPtr& f_expr,
                                             const GusParams& gus,
                                             const SboxOptions& options = {});

  Status Consume(const ColumnBatch& batch) override;

  /// \brief Folds a later partition's estimator into this one.
  ///
  /// Running sums add; the Section 7 retained sets concatenate and
  /// re-prune under the merged (tighter) interim threshold — the filter is
  /// monotone in p, so the merged retained set is exactly what one
  /// estimator would have retained over the concatenated stream, and
  /// Finish() after a partition-ordered merge reproduces the unsplit run.
  /// Requires matching analysis schema and options.
  Status Merge(StreamingSboxEstimator&& other);

  /// \brief Serializes the partial state as a WireTag::kSboxState payload:
  /// GUS parameters, SBox options, dimension map, running sums, and the
  /// Section-7 retained set with its unit values.
  ///
  /// Round-trip fidelity is bit-exact: Merge / Finish over deserialized
  /// shard states reproduce the in-process results to the last bit (the
  /// distributed gather path relies on this; see src/dist/). Deserialized
  /// estimators are merge/finish-only — Consume fails loudly because the
  /// bound aggregate expression does not travel.
  std::string SerializeState() const;
  static Result<StreamingSboxEstimator> DeserializeState(
      std::string_view payload);

  /// Completes the estimation; bit-identical to SboxEstimate over the
  /// materialized view.
  Result<SboxReport> Finish();

  /// \brief Composes an outer sampling event into the estimator's design:
  /// the GUS parameters become GusCompact(outer, current) — Prop. 8
  /// stacking, exactly as if every consumed row had additionally passed
  /// `outer`'s filter.
  ///
  /// The partial-gather path (est/partial_gather.h) uses this to fold the
  /// "this row's shard survived" inclusion event into a degraded merge:
  /// Finish() then divides by the composed a and widens the CI through
  /// the composed b-table, keeping the estimate unbiased. Requires
  /// `outer` over the identical lineage schema. Call before Finish();
  /// composing after rows were consumed is sound because GUS parameters
  /// only enter at Finish time.
  Status CompactDesign(const GusParams& outer);

  /// \brief Finishes a degraded gather from per-shard partial states
  /// (est/partial_gather.h): `surviving` of `total` data-bearing shards
  /// delivered, the rest were lost.
  ///
  /// The point estimate composes the "shard survived" quasi-operator
  /// `survival` into the design (divide by a·m/N — the Horvitz-Thompson
  /// re-weighting; the mean over all single-shard losses telescopes back
  /// to the complete estimate exactly). The variance is NOT computed from
  /// the composed b̄ table: shard membership is a function of the pivot
  /// *unit*, not the pivot lineage value, so two rows differing on every
  /// lineage dimension may still share a shard — a lineage-indexed GUS
  /// table cannot express their higher co-survival probability, and
  /// pretending it can biases the variance (negative, in practice).
  /// Per-shard states make the exact law-of-total-variance split
  /// estimable instead:
  ///
  ///   Var(X_p) = Var_base(X) + E[ Var(X_p | sample) ]
  ///
  ///   * Var_base: pair statistics split into within-shard pairs
  ///     (co-survival m/N) and cross-shard pairs (m(m-1)/(N(N-1)));
  ///     each class is Horvitz-Thompson corrected at its true probability,
  ///     then the standard unbiasing recursion and Theorem 1 run under
  ///     the base design. Unbiased for the complete run's variance.
  ///   * survival part: X_p is the scaled total of a uniform
  ///     without-replacement m-of-N draw over the shard contributions,
  ///     so Var(X_p | sample) = N² (1/m − 1/N) S_T² with S_T² the
  ///     between-shard variance of the contributions; the survivors'
  ///     sample variance estimates S_T² unbiasedly.
  ///
  /// Both pieces are unbiased, and the second is nonnegative — the
  /// degraded CI is honestly wider on average than the complete one.
  /// Requires 2 <= surviving < total (one survivor has no between-shard
  /// variance; the caller refuses that case) and shard states over one
  /// schema/design, in shard order.
  static Result<SboxReport> FinishDegraded(
      std::vector<StreamingSboxEstimator> shard_states,
      const GusParams& survival, int surviving, int total);

  /// \brief Returns the estimator to its just-Made empty state, keeping
  /// the (immutable) binding: schema map, bound expression, GUS parameters,
  /// and options.
  ///
  /// After Reset() the estimator consumes a fresh stream exactly as a
  /// newly Made instance would — this is what lets the parallel executor's
  /// sink arena recycle one estimator across many morsels instead of
  /// re-binding per morsel. Merge never reads the binding state, so a
  /// recycled estimator is indistinguishable from a fresh one by
  /// construction.
  void Reset();

  /// Rows currently retained for the y_S path (diagnostic; bounded at
  /// roughly 2x the subsample target once the stream exceeds it).
  int64_t retained_rows() const { return retained_.num_rows(); }
  int64_t rows_seen() const { return rows_seen_; }
  /// The current sampling design (after any CompactDesign compositions).
  const GusParams& design() const { return gus_; }

 private:
  StreamingSboxEstimator() = default;

  /// Interim per-dimension threshold for the rows seen so far (1.0 while
  /// the stream still fits the target).
  double InterimP() const;
  /// Drops retained rows that can no longer survive the final filter.
  void Prune();

  /// Closes the open accumulation segment into closed_sums_ (no-op when
  /// nothing was consumed since the last seal).
  void SealSegment();
  /// closed_sums_ plus the open segment, in stream order.
  std::vector<double> SegmentSums() const;

  GusParams gus_;
  SboxOptions options_;
  std::vector<int> source_;
  ExprPtr bound_;

  int64_t rows_seen_ = 0;
  /// \brief The point-estimate numerator as per-segment partial sums.
  ///
  /// One segment per contiguously-consumed partition (morsel), closed on
  /// Merge; Finish folds the segments left-to-right. Keeping the
  /// per-segment sums instead of one eagerly-merged accumulator makes the
  /// total a pure function of the global segment sequence: however the
  /// units are grouped into workers or shards, the same segments arrive
  /// in the same order and the fold produces the same bits. (Eager
  /// merging would re-associate the floating-point sum differently for
  /// every shard count.)
  std::vector<double> closed_sums_;
  double open_sum_ = 0.0;
  int64_t open_rows_ = 0;
  std::vector<double> f_scratch_;  // reused per batch
  /// Retained candidate rows with their max-over-dimensions unit value
  /// (a row survives threshold p iff ustar < p).
  SampleView retained_;
  std::vector<double> ustar_;
};

/// \brief Executes `plan` on the columnar engine and streams the result
/// straight into the SBox; the result relation is never materialized.
///
/// Equivalent to ExecutePlan + SampleView::FromRelation + SboxEstimate
/// (identical report), in one pass.
Result<SboxReport> EstimatePlanStreaming(const PlanPtr& plan,
                                         ColumnarCatalog* catalog, Rng* rng,
                                         const ExprPtr& f_expr,
                                         const GusParams& gus,
                                         const SboxOptions& options = {},
                                         ExecMode mode = ExecMode::kSampled,
                                         int64_t batch_rows = kDefaultBatchRows);

/// \brief Morsel-parallel EstimatePlanStreaming.
///
/// Each partition streams into its own StreamingSboxEstimator on whatever
/// worker runs it; the per-partition estimators merge in morsel order, so
/// the report is bit-deterministic in (plan, catalog, seed, exec options)
/// and identical across num_threads values (see plan/parallel_executor.h
/// for the sampling-design caveats vs the serial engines).
Result<SboxReport> EstimatePlanParallel(const PlanPtr& plan,
                                        ColumnarCatalog* catalog, Rng* rng,
                                        const ExprPtr& f_expr,
                                        const GusParams& gus,
                                        const SboxOptions& options,
                                        ExecMode mode,
                                        const ExecOptions& exec);

}  // namespace gus

#endif  // GUS_EST_STREAMING_H_
