#include "est/confidence.h"

#include <cmath>
#include <sstream>

#include "util/stats.h"

namespace gus {

std::string ConfidenceInterval::ToString() const {
  std::ostringstream out;
  out << "[" << lo << ", " << hi << "] @" << level * 100.0 << "% ("
      << (kind == BoundKind::kNormal ? "normal" : "Chebyshev") << ")";
  return out.str();
}

Result<ConfidenceInterval> MakeInterval(double estimate, double variance,
                                        double level, BoundKind kind) {
  if (!(level > 0.0 && level < 1.0)) {
    return Status::InvalidArgument("confidence level must be in (0,1)");
  }
  if (variance < 0.0) {
    // Sample-estimated variances can go slightly negative; clamp tiny
    // negatives, reject clearly invalid input.
    if (variance < -1e-6 * std::max(1.0, estimate * estimate)) {
      return Status::InvalidArgument("variance must be non-negative");
    }
    variance = 0.0;
  }
  const double sigma = std::sqrt(variance);
  const double k = kind == BoundKind::kNormal
                       ? NormalQuantile(0.5 + level / 2.0)
                       : ChebyshevMultiplier(level);
  ConfidenceInterval ci;
  ci.lo = estimate - k * sigma;
  ci.hi = estimate + k * sigma;
  ci.level = level;
  ci.kind = kind;
  return ci;
}

Result<double> EstimateQuantile(double estimate, double variance, double q,
                                BoundKind kind) {
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument("quantile must be in (0,1)");
  }
  if (variance < 0.0) variance = 0.0;
  const double sigma = std::sqrt(variance);
  if (kind == BoundKind::kNormal) {
    return estimate + NormalQuantile(q) * sigma;
  }
  const double tail = std::min(q, 1.0 - q);
  const double k = CantelliMultiplier(tail);
  return q < 0.5 ? estimate - k * sigma : estimate + k * sigma;
}

}  // namespace gus
