#include "est/ratio.h"

#include <cmath>
#include <sstream>

#include "est/unbiased.h"
#include "est/variance.h"
#include "est/ys.h"

namespace gus {

std::string RatioReport::ToString() const {
  std::ostringstream out;
  out << "ratio=" << estimate << " stddev=" << stddev << " ci="
      << interval.ToString();
  return out.str();
}

Result<RatioReport> RatioEstimate(const GusParams& gus, const SampleView& view,
                                  const std::vector<double>& g,
                                  double confidence_level, BoundKind kind) {
  if (view.schema != gus.schema()) {
    return Status::InvalidArgument("sample view / GUS schema mismatch");
  }
  if (static_cast<int64_t>(g.size()) != view.num_rows()) {
    return Status::InvalidArgument("g must align with the sample view");
  }
  if (gus.a() <= 0.0) return Status::InvalidArgument("estimator needs a > 0");

  RatioReport report;
  double sum_g = 0.0;
  for (double v : g) sum_g += v;
  report.numerator = view.SumF() / gus.a();
  report.denominator = sum_g / gus.a();
  if (report.denominator == 0.0) {
    return Status::InvalidArgument(
        "estimated denominator is zero; the ratio is undefined");
  }
  report.estimate = report.numerator / report.denominator;

  // A view over g reusing the same lineage columns.
  SampleView g_view;
  g_view.schema = view.schema;
  g_view.lineage = view.lineage;
  g_view.f = g;

  // Unbiased estimates of the three quadratic-form tables.
  const std::vector<double> y_ff = ComputeAllYS(view);
  GUS_ASSIGN_OR_RETURN(std::vector<double> y_fg,
                       ComputeAllYSBilinear(view, g));
  const std::vector<double> y_gg = ComputeAllYS(g_view);
  GUS_ASSIGN_OR_RETURN(std::vector<double> yh_ff,
                       UnbiasedYEstimates(gus, y_ff));
  GUS_ASSIGN_OR_RETURN(std::vector<double> yh_fg,
                       UnbiasedYEstimates(gus, y_fg));
  GUS_ASSIGN_OR_RETURN(std::vector<double> yh_gg,
                       UnbiasedYEstimates(gus, y_gg));
  GUS_ASSIGN_OR_RETURN(report.numerator_variance,
                       VarianceFromY(gus, yh_ff));
  GUS_ASSIGN_OR_RETURN(report.covariance, CovarianceFromY(gus, yh_fg));
  GUS_ASSIGN_OR_RETURN(report.denominator_variance,
                       VarianceFromY(gus, yh_gg));

  // Delta method around (µ_f, µ_g) evaluated at the estimates.
  const double r = report.estimate;
  const double mg2 = report.denominator * report.denominator;
  double var = (report.numerator_variance - 2.0 * r * report.covariance +
                r * r * report.denominator_variance) /
               mg2;
  report.variance = std::max(0.0, var);
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(report.interval,
                       MakeInterval(report.estimate, report.variance,
                                    confidence_level, kind));
  return report;
}

Result<RatioReport> AvgEstimate(const GusParams& gus, const SampleView& view,
                                double confidence_level, BoundKind kind) {
  const std::vector<double> ones(static_cast<size_t>(view.num_rows()), 1.0);
  return RatioEstimate(gus, view, ones, confidence_level, kind);
}

Result<CountReport> CountEstimate(const GusParams& gus,
                                  const SampleView& view,
                                  double confidence_level, BoundKind kind) {
  if (view.schema != gus.schema()) {
    return Status::InvalidArgument("sample view / GUS schema mismatch");
  }
  // COUNT is SUM with f == 1 (the paper's reduction).
  SampleView ones_view;
  ones_view.schema = view.schema;
  ones_view.lineage = view.lineage;
  ones_view.f.assign(static_cast<size_t>(view.num_rows()), 1.0);

  CountReport report;
  GUS_ASSIGN_OR_RETURN(report.estimate, PointEstimate(gus, ones_view));
  const std::vector<double> Y = ComputeAllYS(ones_view);
  GUS_ASSIGN_OR_RETURN(std::vector<double> y_hat,
                       UnbiasedYEstimates(gus, Y));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, y_hat));
  report.variance = std::max(0.0, var);
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(report.interval,
                       MakeInterval(report.estimate, report.variance,
                                    confidence_level, kind));
  return report;
}

}  // namespace gus
