// Unbiased estimation of the y_S data statistics from a GUS sample
// (paper Section 6.3).
//
// With Y_S the y-statistic computed directly on the sample,
//
//   E[Y_S] = sum_{T ⊆ S^C} d_{S, S∪T} · y_{S∪T},
//   d_{S,U} = sum_{S ⊆ V ⊆ U} (−1)^{|U|−|V|} b_V,     d_{S,S} = b_S,
//
// which inverts into the top-down recursion (decreasing |S|):
//
//   Ŷ_S = ( Y_S − sum_{T ⊆ S^C, T ≠ ∅} d_{S,S∪T} · Ŷ_{S∪T} ) / b_S.
//
// (See the DESIGN.md erratum note: the arXiv text's c_{S,T} differs by a
// global sign that cancels; this form is Monte-Carlo validated.)

#ifndef GUS_EST_UNBIASED_H_
#define GUS_EST_UNBIASED_H_

#include <vector>

#include "algebra/gus_params.h"
#include "util/status.h"

namespace gus {

/// The coefficient d_{S,U}; requires S ⊆ U.
double UnbiasingCoefficient(const GusParams& gus, SubsetMask s, SubsetMask u);

/// \brief Runs the recursion: sample statistics Y (indexed by mask) to
/// unbiased estimates Ŷ of the full-data y statistics.
///
/// Fails if some b_S = 0 (the sampling never keeps pairs with agreement S,
/// so y_S is not estimable from this design).
Result<std::vector<double>> UnbiasedYEstimates(const GusParams& gus,
                                               const std::vector<double>& Y);

}  // namespace gus

#endif  // GUS_EST_UNBIASED_H_
