// SampleView — the exact information the SBox consumes (paper Section 6):
// for every tuple that reaches the aggregate, its aggregate value f(t) and
// its lineage (one base-tuple id per relation of the analysis lineage
// schema). Nothing else about the query or data is needed.

#ifndef GUS_EST_SAMPLE_VIEW_H_
#define GUS_EST_SAMPLE_VIEW_H_

#include <cstdint>
#include <vector>

#include "algebra/lineage_schema.h"
#include "rel/expression.h"
#include "rel/relation.h"
#include "util/status.h"

namespace gus {

/// \brief Column-oriented (lineage, f-value) stream aligned to a lineage
/// schema.
struct SampleView {
  /// The analysis lineage schema (dimension order of `lineage`).
  LineageSchema schema;
  /// lineage[d] is the id column for schema.relation(d); all columns have
  /// equal length.
  std::vector<std::vector<uint64_t>> lineage;
  /// Aggregate values, same length as each lineage column.
  std::vector<double> f;

  int64_t num_rows() const { return static_cast<int64_t>(f.size()); }

  /// \brief Builds a view from a relation by evaluating `f_expr` per row.
  ///
  /// The relation's lineage columns are re-ordered to match `schema` (the
  /// GUS analysis schema); every schema relation must be present in the
  /// relation's lineage schema and vice versa.
  static Result<SampleView> FromRelation(const Relation& rel,
                                         const ExprPtr& f_expr,
                                         const LineageSchema& schema);

  /// Sum of f (the un-scaled sample aggregate).
  double SumF() const;

  /// \brief Appends `other`'s rows after this view's (same schema).
  ///
  /// The SBox inputs are partition-mergeable by construction: a view of a
  /// partitioned result is exactly the concatenation of the partitions'
  /// views, so merging split views in partition order reproduces the
  /// unsplit view row for row.
  Status Merge(SampleView&& other);
};

/// \brief Maps analysis-schema dimensions onto a lineage schema's columns.
///
/// Returns source[d] = index of schema.relation(d) within `lineage_schema`;
/// fails if the arities differ or a relation is missing. Shared by
/// SampleView::FromRelation and the streaming builders (est/streaming.h) so
/// the two paths accept exactly the same inputs.
Result<std::vector<int>> MapAnalysisDims(
    const std::vector<std::string>& lineage_schema,
    const LineageSchema& schema);

}  // namespace gus

#endif  // GUS_EST_SAMPLE_VIEW_H_
