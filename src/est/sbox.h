// The SBox — the paper's self-contained statistical estimator component
// (Section 6, refined in Section 7).
//
// Inputs: the top GUS parameters produced by the SOA transform, and the
// (lineage, f-value) stream of tuples reaching the aggregate. Outputs: the
// unbiased estimate, its estimated variance, and confidence intervals.
//
// The Section 7 refinement estimates the y_S statistics from a *sub-sample*
// of the result (a multi-dimensional lineage-seeded Bernoulli), while the
// point estimate still uses every tuple. The sub-sampler composes with the
// plan's GUS by compaction (Prop. 8 / Example 6), so the same Theorem 1
// machinery analyzes the reduced sample.

#ifndef GUS_EST_SBOX_H_
#define GUS_EST_SBOX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/gus_params.h"
#include "est/confidence.h"
#include "est/sample_view.h"
#include "util/status.h"

namespace gus {

/// \brief Section 7 sub-sampling configuration.
struct SubsampleConfig {
  /// Target number of result tuples to keep for y_S estimation. Per-
  /// dimension probabilities are chosen as (target/m)^(1/n) where m is the
  /// observed sample size, mimicking the paper's "about 10000 tuples".
  int64_t target_rows = 10000;
  /// One seed drives all per-relation pseudo-random functions.
  uint64_t seed = 0x5b0c5b0cULL;
};

/// \brief Options for an SBox run.
struct SboxOptions {
  double confidence_level = 0.95;
  BoundKind bound_kind = BoundKind::kNormal;
  /// If set, use Section 7 sub-sampled variance estimation.
  std::optional<SubsampleConfig> subsample;
};

/// \brief Full output of an estimation run.
struct SboxReport {
  /// Unbiased estimate of the true aggregate.
  double estimate = 0.0;
  /// Estimated variance of the estimator (may be clamped at 0).
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
  /// Number of tuples that reached the aggregate.
  int64_t sample_rows = 0;
  /// Tuples used for y_S estimation (== sample_rows without sub-sampling).
  int64_t variance_rows = 0;
  /// Unbiased Ŷ_S estimates, indexed by lineage subset mask.
  std::vector<double> y_hat;
  /// GUS parameters used for the y_S estimation (compacted with the
  /// sub-sampler when Section 7 is active).
  GusParams analysis_gus;

  std::string ToString() const;
};

/// \brief Runs the estimator.
///
/// `gus` is the plan's top GUS (from SoaTransform); `sample` the tuple
/// stream that reached the aggregate.
Result<SboxReport> SboxEstimate(const GusParams& gus, const SampleView& sample,
                                const SboxOptions& options = {});

/// \brief Baseline for experiment E6: pretends the sample rows are IID draws
/// and applies the textbook CLT interval. Correct for single-relation
/// Bernoulli-style designs, under-covers when joins correlate tuples.
Result<SboxReport> NaiveIidEstimate(double a, const SampleView& sample,
                                    const SboxOptions& options = {});

}  // namespace gus

#endif  // GUS_EST_SBOX_H_
