#include "est/unbiased.h"

#include <algorithm>

#include "util/logging.h"

namespace gus {

double UnbiasingCoefficient(const GusParams& gus, SubsetMask s, SubsetMask u) {
  GUS_DCHECK((s & ~u) == 0);
  const SubsetMask extra = u & ~s;
  double d = 0.0;
  for (SubsetIterator it(extra); !it.done(); it.Next()) {
    // V = S ∪ W for W ⊆ U \ S, sign (−1)^{|U\S| − |W|}.
    d += ParitySign(extra & ~it.mask()) * gus.b(s | it.mask());
  }
  return d;
}

Result<std::vector<double>> UnbiasedYEstimates(const GusParams& gus,
                                               const std::vector<double>& Y) {
  const size_t count = gus.schema().num_subsets();
  if (Y.size() != count) {
    return Status::InvalidArgument("Y table must have 2^n entries");
  }
  const SubsetMask full = gus.schema().full_mask();

  // Order masks by decreasing popcount so every Ŷ_{S∪T} needed by the
  // recursion is already available.
  std::vector<SubsetMask> order(count);
  for (SubsetMask m = 0; m < count; ++m) order[m] = m;
  std::sort(order.begin(), order.end(), [](SubsetMask a, SubsetMask b) {
    const int pa = PopCount(a), pb = PopCount(b);
    return pa != pb ? pa > pb : a < b;
  });

  std::vector<double> y_hat(count, 0.0);
  for (SubsetMask s : order) {
    const double b_s = gus.b(s);
    if (b_s <= 0.0) {
      return Status::InvalidArgument(
          "b_" + gus.schema().MaskToString(s) +
          " = 0: y_S is not estimable from this sampling design");
    }
    double rhs = Y[s];
    const SubsetMask complement = full & ~s;
    for (SubsetIterator it(complement); !it.done(); it.Next()) {
      if (it.mask() == 0) continue;
      rhs -= UnbiasingCoefficient(gus, s, s | it.mask()) * y_hat[s | it.mask()];
    }
    y_hat[s] = rhs / b_s;
  }
  return y_hat;
}

}  // namespace gus
