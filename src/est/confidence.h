// Confidence intervals and quantiles over (estimate, variance) pairs —
// paper Section 6.4.
//
// Two families:
//   * optimistic — normal approximation (the estimator is a sum of many
//     loosely-coupled terms; CLT-like behaviour),
//   * pessimistic — Chebyshev, distribution-free, the paper's factor-2
//     wider alternative (4.47 sigma at 95%).

#ifndef GUS_EST_CONFIDENCE_H_
#define GUS_EST_CONFIDENCE_H_

#include <string>

#include "util/status.h"

namespace gus {

enum class BoundKind { kNormal, kChebyshev };

/// \brief A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.0;
  BoundKind kind = BoundKind::kNormal;

  double width() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
  std::string ToString() const;
};

/// Two-sided interval at `level` (e.g. 0.95).
Result<ConfidenceInterval> MakeInterval(double estimate, double variance,
                                        double level, BoundKind kind);

/// \brief The QUANTILE(aggregate, q) of the paper's APPROX view: the value v
/// with P[true answer < v] ≈ q under the estimator's distribution.
///
/// Normal: v = µ̂ + z_q·σ̂. Chebyshev (Cantelli, one-sided): v = µ̂ ± k·σ̂
/// with k = sqrt(1/min(q,1−q) − 1).
Result<double> EstimateQuantile(double estimate, double variance, double q,
                                BoundKind kind = BoundKind::kNormal);

}  // namespace gus

#endif  // GUS_EST_CONFIDENCE_H_
