// Binary wire format for partial estimator state — the cross-node contract
// of the shared-nothing distributed layer (src/dist/).
//
// The text format in est/serialize.h is the paper's "estimator as an
// external tool" integration surface; this file is its machine-to-machine
// sibling: a versioned, self-describing, checksummed container that shard
// workers use to ship mergeable estimator state (SampleView,
// StreamingSboxEstimator, GroupedSumBuilder, Rng stream positions) to a
// gather coordinator. The byte-level layout is specified in
// docs/WIRE_FORMAT.md; the golden-buffer test in est_serialize_test.cc
// pins the two to each other.
//
// Container layout (all integers little-endian):
//
//   "GUSB" | u32 version | u32 section_count
//   section_count × ( u32 tag | u64 payload_len | payload bytes )
//   u64 fnv1a64(all preceding bytes)
//
// Readers reject unknown versions AND unknown section tags loudly
// (InvalidArgument) instead of skipping: partial state feeds statistical
// merges, where silently dropping a section would bias results without any
// visible failure.

#ifndef GUS_EST_WIRE_H_
#define GUS_EST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/gus_params.h"
#include "est/sample_view.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// Current container version. Bumped on any layout change; readers reject
/// everything else. v2: META gained the catalog fingerprint and bundles
/// carry the SMPL resolved-sampler section. v2.1 (same container version —
/// purely additive): degraded gathers may attach a LIVE surviving-ranges
/// section; v2.0 readers of this build accept it, older v2 readers reject
/// it loudly rather than merging a partial bundle they cannot interpret.
inline constexpr uint32_t kWireVersion = 2;

/// Section tags (the ASCII of the name, read as a little-endian u32).
enum class WireTag : uint32_t {
  /// Shard run metadata (dist/worker.h): split geometry + stream base.
  kMeta = 0x4154454Du,  // "META"
  /// A bare SampleView.
  kSampleView = 0x57454956u,  // "VIEW"
  /// SampleViewBuilder partial state (dimension map + view).
  kViewBuilder = 0x444C4256u,  // "VBLD"
  /// StreamingSboxEstimator partial state (running sums + retained set).
  kSboxState = 0x584F4253u,  // "SBOX"
  /// GroupedSumBuilder partial state (dictionary-coded group keys).
  kGroupedSum = 0x50555247u,  // "GRUP"
  /// Rng stream position (4 state words + draw counter).
  kRngState = 0x53474E52u,  // "RNGS"
  /// Resolved pivot-path fixed-size samplers (dist/shard.h): per sampler
  /// the method, seed, and keep-set fingerprint — byte-equality across
  /// shards proves they agreed on the global fixed-size draws.
  kSamplerState = 0x4C504D53u,  // "SMPL"
  /// Surviving-range metadata (est/partial_gather.h): which shard unit
  /// ranges a degraded (partial) gather actually folded, plus the pivot
  /// relation and survival inclusion probabilities — makes a cached
  /// partial bundle self-describing. v2.1 addition: writers only emit it
  /// on degraded gathers, so v2.0 bundles parse unchanged.
  kSurvivingRanges = 0x4556494Cu,  // "LIVE"
};

/// True for every tag this build understands (readers hard-fail otherwise).
bool WireTagKnown(uint32_t tag);

/// FNV-1a 64-bit digest — the container and frame checksums.
uint64_t WireChecksum(std::string_view bytes);

/// \brief Append-only little-endian encoder backing every payload.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI32(int32_t v) { PutLittleEndian(static_cast<uint32_t>(v), 4); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v), 8); }
  /// IEEE-754 bit pattern as a u64 — round-trips bit-exactly.
  void PutDouble(double v);
  /// u32 byte length + raw bytes (no terminator).
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutLittleEndian(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
///
/// Every read fails with InvalidArgument ("truncated ...") instead of
/// reading past the end; decoders built on it are therefore total on
/// arbitrary (adversarial) input.
class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);

  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }
  /// Trailing bytes after a complete decode are a format error; decoders
  /// call this last.
  Status ExpectEnd() const;

 private:
  Status Take(size_t n, std::string_view* out);

  std::string_view buf_;
  size_t pos_ = 0;
};

/// \brief Assembles a container: header, tagged sections, checksum.
class WireBundleWriter {
 public:
  void AddSection(WireTag tag, std::string payload);
  /// Serializes the container (writer reusable afterwards only via new
  /// AddSection calls — Finish is non-destructive).
  std::string Finish() const;

 private:
  std::vector<std::pair<WireTag, std::string>> sections_;
};

/// One parsed section; `payload` borrows the parsed buffer.
struct WireSectionView {
  WireTag tag;
  std::string_view payload;
};

/// \brief Parses and validates a container: magic, version, section
/// bounds, known tags, checksum.
///
/// The returned views borrow `buffer`, which must outlive them.
Result<std::vector<WireSectionView>> ParseWireBundle(std::string_view buffer);

/// First section with `tag`, or InvalidArgument naming the missing tag.
Result<WireSectionView> FindWireSection(
    const std::vector<WireSectionView>& sections, WireTag tag);

// ---- Typed payload encodings ----------------------------------------------
//
// Estimator classes serialize themselves via members (SerializeState /
// DeserializeState in est/streaming.h, est/group_by.h) built on these
// shared encodings.

/// Appends a SampleView: schema arity + relation names, row count, lineage
/// columns, f column.
void EncodeSampleView(const SampleView& view, WireWriter* w);
Status DecodeSampleView(WireReader* r, SampleView* out);

/// Convenience pair for whole-payload (kSampleView section) use.
std::string SampleViewToBytes(const SampleView& view);
Result<SampleView> SampleViewFromBytes(std::string_view payload);

/// Appends GusParams: schema, a, dense b table (validated on decode).
void EncodeGusParams(const GusParams& gus, WireWriter* w);
Status DecodeGusParams(WireReader* r, GusParams* out);

/// \brief The analysis-dim -> layout-lineage-column map carried by every
/// builder/estimator payload (its equality gates Merge).
///
/// One implementation because the field's layout is shared by the VBLD,
/// SBOX, and GRUP sections (docs/WIRE_FORMAT.md).
void EncodeSourceMap(const std::vector<int>& source, WireWriter* w);
Status DecodeSourceMap(WireReader* r, std::vector<int>* out);

/// Rng stream position: 4 state words + the draw counter.
std::string RngStateToBytes(const Rng& rng);
Result<Rng> RngStateFromBytes(std::string_view payload);

}  // namespace gus

#endif  // GUS_EST_WIRE_H_
