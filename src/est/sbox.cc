#include "est/sbox.h"

#include <cmath>
#include <sstream>

#include "algebra/ops.h"
#include "algebra/translate.h"
#include "est/unbiased.h"
#include "est/variance.h"
#include "est/ys.h"
#include "util/hash.h"

namespace gus {

namespace {

/// Applies the multi-dimensional lineage Bernoulli filter to a view.
SampleView FilterView(const SampleView& view, double p_per_dim,
                      uint64_t seed) {
  SampleView out;
  out.schema = view.schema;
  out.lineage.assign(view.lineage.size(), {});
  const int n = view.schema.arity();
  for (int64_t i = 0; i < view.num_rows(); ++i) {
    bool keep = true;
    for (int d = 0; d < n && keep; ++d) {
      // Per-dimension seed derived from the master seed and the dimension
      // index — one pseudo-random function per base relation (Section 7).
      const uint64_t dim_seed = HashCombine(seed, static_cast<uint64_t>(d));
      keep = LineageUnitValue(dim_seed, view.lineage[d][i]) < p_per_dim;
    }
    if (keep) {
      out.f.push_back(view.f[i]);
      for (int d = 0; d < n; ++d) {
        out.lineage[d].push_back(view.lineage[d][i]);
      }
    }
  }
  return out;
}

}  // namespace

std::string SboxReport::ToString() const {
  std::ostringstream out;
  out << "estimate=" << estimate << " stddev=" << stddev << " ci="
      << interval.ToString() << " rows=" << sample_rows
      << " (variance rows=" << variance_rows << ")";
  return out.str();
}

Result<SboxReport> SboxEstimate(const GusParams& gus, const SampleView& sample,
                                const SboxOptions& options) {
  if (sample.schema != gus.schema()) {
    return Status::InvalidArgument(
        "sample view lineage schema does not match the GUS schema");
  }
  SboxReport report;
  report.sample_rows = sample.num_rows();
  GUS_ASSIGN_OR_RETURN(report.estimate, PointEstimate(gus, sample));

  // Pick the view + GUS used for variance estimation.
  const SampleView* variance_view = &sample;
  SampleView subsampled;
  GusParams analysis = gus;
  if (options.subsample.has_value() &&
      sample.num_rows() > options.subsample->target_rows) {
    const auto& cfg = *options.subsample;
    const int n = gus.schema().arity();
    const double ratio = static_cast<double>(cfg.target_rows) /
                         static_cast<double>(sample.num_rows());
    const double p_per_dim = std::pow(ratio, 1.0 / n);
    subsampled = FilterView(sample, p_per_dim, cfg.seed);
    std::vector<DimBernoulli> dims;
    for (const auto& rel : gus.schema().relations()) {
      dims.push_back({rel, p_per_dim});
    }
    GUS_ASSIGN_OR_RETURN(GusParams sub_gus,
                         MultiDimBernoulliGus(gus.schema(), dims));
    // Example 6: the sub-sampled stream is (sub ∘ plan)-sampled from the
    // raw data; compaction gives the GUS that unbiases its Y statistics.
    GUS_ASSIGN_OR_RETURN(analysis, GusCompact(sub_gus, gus));
    variance_view = &subsampled;
  }
  report.variance_rows = variance_view->num_rows();
  report.analysis_gus = analysis;

  const std::vector<double> Y = ComputeAllYS(*variance_view);
  GUS_ASSIGN_OR_RETURN(report.y_hat, UnbiasedYEstimates(analysis, Y));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, report.y_hat));
  report.variance = std::max(0.0, var);
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(
      report.interval,
      MakeInterval(report.estimate, report.variance, options.confidence_level,
                   options.bound_kind));
  return report;
}

Result<SboxReport> NaiveIidEstimate(double a, const SampleView& sample,
                                    const SboxOptions& options) {
  if (a <= 0.0) return Status::InvalidArgument("a must be positive");
  SboxReport report;
  report.sample_rows = sample.num_rows();
  report.variance_rows = sample.num_rows();
  const double m = static_cast<double>(sample.num_rows());
  report.estimate = sample.SumF() / a;
  // Treat sum(f) as a sum of m IID terms: Var(sum) = m * s^2.
  double s2 = 0.0;
  if (sample.num_rows() >= 2) {
    const double mean = sample.SumF() / m;
    for (double v : sample.f) s2 += (v - mean) * (v - mean);
    s2 /= (m - 1.0);
  }
  report.variance = m * s2 / (a * a);
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(
      report.interval,
      MakeInterval(report.estimate, report.variance, options.confidence_level,
                   options.bound_kind));
  return report;
}

}  // namespace gus
