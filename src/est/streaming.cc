#include "est/streaming.h"

#include <algorithm>
#include <cmath>

#include "algebra/ops.h"
#include "algebra/translate.h"
#include "est/unbiased.h"
#include "est/variance.h"
#include "est/wire.h"
#include "est/ys.h"
#include "plan/parallel_executor.h"
#include "plan/vector_eval.h"
#include "util/hash.h"

namespace gus {

namespace {

constexpr char kNonNumericAggregate[] = "aggregate expression must be numeric";
constexpr char kMergeOnly[] =
    "deserialized estimator state is merge/finish-only (the bound aggregate "
    "expression does not travel on the wire)";

}  // namespace

Result<SampleViewBuilder> SampleViewBuilder::Make(const BatchLayout& layout,
                                                  const ExprPtr& f_expr,
                                                  const LineageSchema& schema) {
  SampleViewBuilder builder;
  GUS_ASSIGN_OR_RETURN(builder.source_,
                       MapAnalysisDims(layout.lineage_schema, schema));
  GUS_ASSIGN_OR_RETURN(builder.bound_, f_expr->Bind(layout.schema));
  builder.view_.schema = schema;
  builder.view_.lineage.assign(schema.arity(), {});
  return builder;
}

Status SampleViewBuilder::Consume(const ColumnBatch& batch) {
  if (bound_ == nullptr) return Status::InvalidArgument(kMergeOnly);
  // Appends straight into the view's f column — no intermediate copies.
  GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(bound_, batch,
                                           kNonNumericAggregate, &view_.f));
  const int n = static_cast<int>(source_.size());
  for (int d = 0; d < n; ++d) {
    auto& col = view_.lineage[d];
    col.reserve(col.size() + batch.num_rows());
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      col.push_back(batch.lineage_at(i, source_[d]));
    }
  }
  return Status::OK();
}

Status SampleViewBuilder::Merge(SampleViewBuilder&& other) {
  if (source_ != other.source_) {
    return Status::InvalidArgument(
        "cannot merge SampleViewBuilders over different layouts");
  }
  return view_.Merge(std::move(other.view_));
}

std::string SampleViewBuilder::SerializeState() const {
  WireWriter w;
  EncodeSourceMap(source_, &w);
  EncodeSampleView(view_, &w);
  return w.Take();
}

Result<SampleViewBuilder> SampleViewBuilder::DeserializeState(
    std::string_view payload) {
  WireReader r(payload);
  SampleViewBuilder builder;
  GUS_RETURN_NOT_OK(DecodeSourceMap(&r, &builder.source_));
  GUS_RETURN_NOT_OK(DecodeSampleView(&r, &builder.view_));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  if (builder.view_.schema.arity() !=
      static_cast<int>(builder.source_.size())) {
    return Status::InvalidArgument(
        "wire SampleViewBuilder source map does not match the view schema");
  }
  return builder;
}

Result<StreamingSboxEstimator> StreamingSboxEstimator::Make(
    const BatchLayout& layout, const ExprPtr& f_expr, const GusParams& gus,
    const SboxOptions& options) {
  StreamingSboxEstimator est;
  GUS_ASSIGN_OR_RETURN(est.source_,
                       MapAnalysisDims(layout.lineage_schema, gus.schema()));
  GUS_ASSIGN_OR_RETURN(est.bound_, f_expr->Bind(layout.schema));
  est.gus_ = gus;
  est.options_ = options;
  est.retained_.schema = gus.schema();
  est.retained_.lineage.assign(gus.schema().arity(), {});
  return est;
}

double StreamingSboxEstimator::InterimP() const {
  if (!options_.subsample.has_value()) return 1.0;
  const int64_t target = options_.subsample->target_rows;
  if (rows_seen_ <= target) return 1.0;
  const double ratio =
      static_cast<double>(target) / static_cast<double>(rows_seen_);
  return std::pow(ratio, 1.0 / gus_.schema().arity());
}

void StreamingSboxEstimator::Prune() {
  const double p = InterimP();
  if (p >= 1.0) return;
  const int n = gus_.schema().arity();
  int64_t w = 0;
  for (int64_t i = 0; i < retained_.num_rows(); ++i) {
    if (ustar_[i] >= p) continue;
    if (w != i) {
      retained_.f[w] = retained_.f[i];
      for (int d = 0; d < n; ++d) {
        retained_.lineage[d][w] = retained_.lineage[d][i];
      }
      ustar_[w] = ustar_[i];
    }
    ++w;
  }
  retained_.f.resize(w);
  for (int d = 0; d < n; ++d) retained_.lineage[d].resize(w);
  ustar_.resize(w);
}

Status StreamingSboxEstimator::Consume(const ColumnBatch& batch) {
  if (bound_ == nullptr) return Status::InvalidArgument(kMergeOnly);
  f_scratch_.clear();
  GUS_RETURN_NOT_OK(EvalExprBatchToDoubles(bound_, batch,
                                           kNonNumericAggregate,
                                           &f_scratch_));
  const std::vector<double>& f = f_scratch_;
  const int n = gus_.schema().arity();
  const bool subsampling = options_.subsample.has_value();
  const uint64_t seed = subsampling ? options_.subsample->seed : 0;
  // The retention threshold shrinks as rows_seen_ grows, so the value at
  // batch start over-approximates every per-row threshold in the batch:
  // hoisting it keeps the retained set a superset of the final filter's
  // (Finish() applies the exact final p) while avoiding a pow per row.
  const double p_batch = InterimP();
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    open_sum_ += f[i];
    ++open_rows_;
    ++rows_seen_;
    double u = 0.0;
    if (subsampling) {
      // Max over the per-dimension pseudo-random units: a row survives a
      // threshold p iff u < p, matching the Section 7 filter exactly.
      for (int d = 0; d < n; ++d) {
        const uint64_t dim_seed = HashCombine(seed, static_cast<uint64_t>(d));
        u = std::max(u, LineageUnitValue(dim_seed,
                                         batch.lineage_at(i, source_[d])));
      }
      if (u >= p_batch) continue;  // cannot survive the final filter
    }
    retained_.f.push_back(f[i]);
    for (int d = 0; d < n; ++d) {
      retained_.lineage[d].push_back(batch.lineage_at(i, source_[d]));
    }
    if (subsampling) ustar_.push_back(u);
  }
  if (subsampling) {
    const int64_t bound =
        std::max<int64_t>(2 * options_.subsample->target_rows, 1024);
    if (retained_.num_rows() > bound) Prune();
  }
  return Status::OK();
}

Status StreamingSboxEstimator::Merge(StreamingSboxEstimator&& other) {
  if (!(gus_.schema() == other.gus_.schema()) ||
      source_ != other.source_) {
    return Status::InvalidArgument(
        "cannot merge estimators with different analysis schemas");
  }
  const bool subsampling = options_.subsample.has_value();
  if (subsampling != other.options_.subsample.has_value() ||
      (subsampling &&
       (options_.subsample->target_rows != other.options_.subsample->target_rows ||
        options_.subsample->seed != other.options_.subsample->seed))) {
    return Status::InvalidArgument(
        "cannot merge estimators with different subsample configurations");
  }
  rows_seen_ += other.rows_seen_;
  // Segments concatenate instead of summing eagerly: the final fold in
  // Finish then depends only on the global segment sequence, never on how
  // segments were grouped into workers or shards.
  SealSegment();
  other.SealSegment();
  closed_sums_.insert(closed_sums_.end(), other.closed_sums_.begin(),
                      other.closed_sums_.end());
  GUS_RETURN_NOT_OK(retained_.Merge(std::move(other.retained_)));
  if (subsampling) {
    ustar_.insert(ustar_.end(), other.ustar_.begin(), other.ustar_.end());
    // The merged stream is longer, so the interim threshold tightened;
    // re-prune under the same bound discipline as Consume.
    const int64_t bound =
        std::max<int64_t>(2 * options_.subsample->target_rows, 1024);
    if (retained_.num_rows() > bound) Prune();
  }
  return Status::OK();
}

std::string StreamingSboxEstimator::SerializeState() const {
  WireWriter w;
  EncodeGusParams(gus_, &w);
  w.PutDouble(options_.confidence_level);
  w.PutU8(static_cast<uint8_t>(options_.bound_kind));
  w.PutU8(options_.subsample.has_value() ? 1 : 0);
  if (options_.subsample.has_value()) {
    w.PutI64(options_.subsample->target_rows);
    w.PutU64(options_.subsample->seed);
  }
  EncodeSourceMap(source_, &w);
  w.PutI64(rows_seen_);
  const std::vector<double> sums = SegmentSums();
  w.PutU64(sums.size());
  for (double s : sums) w.PutDouble(s);
  EncodeSampleView(retained_, &w);
  if (options_.subsample.has_value()) {
    // ustar_ and retained_ are index-aligned; the row count travels once,
    // inside the view encoding.
    for (double u : ustar_) w.PutDouble(u);
  }
  return w.Take();
}

Result<StreamingSboxEstimator> StreamingSboxEstimator::DeserializeState(
    std::string_view payload) {
  WireReader r(payload);
  StreamingSboxEstimator est;
  GUS_RETURN_NOT_OK(DecodeGusParams(&r, &est.gus_));
  GUS_RETURN_NOT_OK(r.ReadDouble(&est.options_.confidence_level));
  uint8_t bound_kind = 0, has_subsample = 0;
  GUS_RETURN_NOT_OK(r.ReadU8(&bound_kind));
  if (bound_kind > static_cast<uint8_t>(BoundKind::kChebyshev)) {
    return Status::InvalidArgument("wire SBox state has an unknown BoundKind");
  }
  est.options_.bound_kind = static_cast<BoundKind>(bound_kind);
  GUS_RETURN_NOT_OK(r.ReadU8(&has_subsample));
  if (has_subsample > 1) {
    return Status::InvalidArgument("wire SBox state has a malformed "
                                   "subsample flag");
  }
  if (has_subsample == 1) {
    SubsampleConfig config;
    GUS_RETURN_NOT_OK(r.ReadI64(&config.target_rows));
    GUS_RETURN_NOT_OK(r.ReadU64(&config.seed));
    if (config.target_rows < 1) {
      return Status::InvalidArgument(
          "wire SBox state has a non-positive subsample target");
    }
    est.options_.subsample = config;
  }
  GUS_RETURN_NOT_OK(DecodeSourceMap(&r, &est.source_));
  GUS_RETURN_NOT_OK(r.ReadI64(&est.rows_seen_));
  uint64_t num_segments = 0;
  GUS_RETURN_NOT_OK(r.ReadU64(&num_segments));
  if (num_segments > r.remaining() / 8) {
    return Status::InvalidArgument("truncated wire SBox segment sums");
  }
  est.closed_sums_.resize(num_segments);
  for (double& s : est.closed_sums_) GUS_RETURN_NOT_OK(r.ReadDouble(&s));
  GUS_RETURN_NOT_OK(DecodeSampleView(&r, &est.retained_));
  if (!(est.retained_.schema == est.gus_.schema())) {
    return Status::InvalidArgument(
        "wire SBox state: retained view schema does not match the GUS "
        "schema");
  }
  if (est.rows_seen_ < est.retained_.num_rows()) {
    return Status::InvalidArgument(
        "wire SBox state: retained more rows than were seen");
  }
  if (has_subsample == 1) {
    est.ustar_.resize(est.retained_.num_rows());
    for (double& u : est.ustar_) GUS_RETURN_NOT_OK(r.ReadDouble(&u));
  }
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return est;
}

void StreamingSboxEstimator::SealSegment() {
  if (open_rows_ == 0) return;
  closed_sums_.push_back(open_sum_);
  open_sum_ = 0.0;
  open_rows_ = 0;
}

std::vector<double> StreamingSboxEstimator::SegmentSums() const {
  std::vector<double> sums = closed_sums_;
  if (open_rows_ > 0) sums.push_back(open_sum_);
  return sums;
}

Status StreamingSboxEstimator::CompactDesign(const GusParams& outer) {
  GUS_ASSIGN_OR_RETURN(gus_, GusCompact(outer, gus_));
  return Status::OK();
}

Result<SboxReport> StreamingSboxEstimator::Finish() {
  if (gus_.a() <= 0.0) {
    return Status::InvalidArgument("estimator needs a > 0");
  }
  SboxReport report;
  report.sample_rows = rows_seen_;
  // Left fold in segment (= stream) order; a lone segment reproduces the
  // serial single-accumulator sum bit for bit.
  double sum_f = 0.0;
  for (double s : SegmentSums()) sum_f += s;
  report.estimate = sum_f / gus_.a();

  // Assemble the variance view + GUS exactly as SboxEstimate does.
  SampleView final_view;
  const SampleView* variance_view = &retained_;
  GusParams analysis = gus_;
  if (options_.subsample.has_value() &&
      rows_seen_ > options_.subsample->target_rows) {
    const int n = gus_.schema().arity();
    const double ratio =
        static_cast<double>(options_.subsample->target_rows) /
        static_cast<double>(rows_seen_);
    const double p_per_dim = std::pow(ratio, 1.0 / n);
    final_view.schema = gus_.schema();
    final_view.lineage.assign(n, {});
    for (int64_t i = 0; i < retained_.num_rows(); ++i) {
      if (ustar_[i] >= p_per_dim) continue;
      final_view.f.push_back(retained_.f[i]);
      for (int d = 0; d < n; ++d) {
        final_view.lineage[d].push_back(retained_.lineage[d][i]);
      }
    }
    std::vector<DimBernoulli> dims;
    for (const auto& rel : gus_.schema().relations()) {
      dims.push_back({rel, p_per_dim});
    }
    GUS_ASSIGN_OR_RETURN(GusParams sub_gus,
                         MultiDimBernoulliGus(gus_.schema(), dims));
    GUS_ASSIGN_OR_RETURN(analysis, GusCompact(sub_gus, gus_));
    variance_view = &final_view;
  }
  report.variance_rows = variance_view->num_rows();
  report.analysis_gus = analysis;

  const std::vector<double> Y = ComputeAllYS(*variance_view);
  GUS_ASSIGN_OR_RETURN(report.y_hat, UnbiasedYEstimates(analysis, Y));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus_, report.y_hat));
  report.variance = std::max(0.0, var);
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(
      report.interval,
      MakeInterval(report.estimate, report.variance,
                   options_.confidence_level, options_.bound_kind));
  return report;
}

Result<SboxReport> StreamingSboxEstimator::FinishDegraded(
    std::vector<StreamingSboxEstimator> shard_states,
    const GusParams& survival, int surviving, int total) {
  if (shard_states.empty() ||
      static_cast<int>(shard_states.size()) != surviving) {
    return Status::InvalidArgument(
        "degraded finish: got " + std::to_string(shard_states.size()) +
        " shard states for " + std::to_string(surviving) + " survivors");
  }
  if (surviving < 2 || surviving >= total) {
    return Status::InvalidArgument(
        "degraded finish needs 2 <= surviving < total, got " +
        std::to_string(surviving) + " of " + std::to_string(total));
  }
  const GusParams& base = shard_states[0].gus_;
  const SboxOptions& options = shard_states[0].options_;
  if (base.a() <= 0.0) {
    return Status::InvalidArgument("estimator needs a > 0");
  }
  for (size_t k = 1; k < shard_states.size(); ++k) {
    if (!(shard_states[k].gus_.schema() == base.schema())) {
      return Status::InvalidArgument(
          "degraded finish: shard estimator schemas diverge");
    }
  }
  if (!(survival.schema() == base.schema())) {
    return Status::InvalidArgument(
        "degraded finish: survival quasi-operator schema mismatch");
  }

  // Point estimate: fold the global segment sequence (concatenation of the
  // surviving shards' segments, in shard order) and divide by the composed
  // a — the same arithmetic the survival-compacted merge performs, so the
  // mean-over-kills identity holds to the last bit.
  SboxReport report;
  double sum_f = 0.0;
  int64_t rows = 0;
  std::vector<double> shard_totals;
  shard_totals.reserve(shard_states.size());
  for (const StreamingSboxEstimator& s : shard_states) {
    double total_k = 0.0;
    for (double v : s.SegmentSums()) total_k += v;
    shard_totals.push_back(total_k);
    sum_f += total_k;
    rows += s.rows_seen_;
  }
  report.sample_rows = rows;
  report.estimate = sum_f / (survival.a() * base.a());

  // Section-7 threshold for the merged stream, applied per shard: the
  // filter is monotone in p, so filtering each shard's retained rows at
  // the global threshold yields exactly the merged retained set.
  const int n = base.schema().arity();
  GusParams analysis = base;
  double p_per_dim = 1.0;
  const bool subsampled = options.subsample.has_value() &&
                          rows > options.subsample->target_rows;
  if (subsampled) {
    const double ratio =
        static_cast<double>(options.subsample->target_rows) /
        static_cast<double>(rows);
    p_per_dim = std::pow(ratio, 1.0 / n);
    std::vector<DimBernoulli> dims;
    for (const auto& rel : base.schema().relations()) {
      dims.push_back({rel, p_per_dim});
    }
    GUS_ASSIGN_OR_RETURN(GusParams sub_gus,
                         MultiDimBernoulliGus(base.schema(), dims));
    GUS_ASSIGN_OR_RETURN(analysis, GusCompact(sub_gus, base));
  }

  // Pair statistics split by co-survival class. y_S is a sum over ordered
  // row pairs, so y_S(merged) - sum_k y_S(shard k) is exactly the
  // cross-shard pair mass.
  const size_t num_subsets = base.schema().num_subsets();
  std::vector<double> y_within(num_subsets, 0.0);
  SampleView merged_view;
  merged_view.schema = base.schema();
  merged_view.lineage.assign(n, {});
  for (const StreamingSboxEstimator& s : shard_states) {
    SampleView view_k;
    view_k.schema = base.schema();
    view_k.lineage.assign(n, {});
    for (int64_t i = 0; i < s.retained_.num_rows(); ++i) {
      if (subsampled && s.ustar_[i] >= p_per_dim) continue;
      view_k.f.push_back(s.retained_.f[i]);
      merged_view.f.push_back(s.retained_.f[i]);
      for (int d = 0; d < n; ++d) {
        view_k.lineage[d].push_back(s.retained_.lineage[d][i]);
        merged_view.lineage[d].push_back(s.retained_.lineage[d][i]);
      }
    }
    const std::vector<double> y_k = ComputeAllYS(view_k);
    for (size_t mask = 0; mask < num_subsets; ++mask) {
      y_within[mask] += y_k[mask];
    }
  }
  const std::vector<double> y_merged = ComputeAllYS(merged_view);
  report.variance_rows = merged_view.num_rows();
  report.analysis_gus = analysis;

  // Horvitz-Thompson correction at each class's true co-survival
  // probability recovers an unbiased estimate of the complete sample's
  // Y table; the base-design recursion then de-biases base sampling.
  const double m = static_cast<double>(surviving);
  const double nn = static_cast<double>(total);
  const double w_within = nn / m;
  const double w_cross = (nn * (nn - 1.0)) / (m * (m - 1.0));
  std::vector<double> y_corrected(num_subsets, 0.0);
  for (size_t mask = 0; mask < num_subsets; ++mask) {
    y_corrected[mask] = w_within * y_within[mask] +
                        w_cross * (y_merged[mask] - y_within[mask]);
  }
  GUS_ASSIGN_OR_RETURN(report.y_hat,
                       UnbiasedYEstimates(analysis, y_corrected));
  GUS_ASSIGN_OR_RETURN(double var_base, VarianceFromY(base, report.y_hat));

  // Between-shard survival variance: X_p scales a uniform WOR m-of-N draw
  // over the shard contributions T_k / a.
  const double t_bar = sum_f / m;
  double s2 = 0.0;
  for (double t : shard_totals) s2 += (t - t_bar) * (t - t_bar);
  s2 /= (m - 1.0);
  const double var_survival =
      nn * nn * (1.0 / m - 1.0 / nn) * s2 / (base.a() * base.a());

  report.variance = std::max(0.0, var_base) + var_survival;
  report.stddev = std::sqrt(report.variance);
  GUS_ASSIGN_OR_RETURN(
      report.interval,
      MakeInterval(report.estimate, report.variance,
                   options.confidence_level, options.bound_kind));
  return report;
}

void StreamingSboxEstimator::Reset() {
  // Everything Consume/Merge/Finish accumulate goes back to the
  // just-Made state; gus_/options_/source_/bound_ are the immutable
  // binding and stay.
  rows_seen_ = 0;
  closed_sums_.clear();
  open_sum_ = 0.0;
  open_rows_ = 0;
  f_scratch_.clear();
  retained_.schema = gus_.schema();
  retained_.lineage.assign(gus_.schema().arity(), {});
  retained_.f.clear();
  ustar_.clear();
}

namespace {

/// Adapts StreamingSboxEstimator to the morsel executor's sink protocol.
class SboxEstimatorSink final : public MergeableBatchSink {
 public:
  explicit SboxEstimatorSink(StreamingSboxEstimator est)
      : est_(std::move(est)) {}

  Status Consume(const ColumnBatch& batch) override {
    return est_.Consume(batch);
  }

  Status MergeFrom(BatchSink* other) override {
    return est_.Merge(std::move(static_cast<SboxEstimatorSink*>(other)->est_));
  }

  bool Recycle() override {
    est_.Reset();
    return true;
  }

  StreamingSboxEstimator* estimator() { return &est_; }

 private:
  StreamingSboxEstimator est_;
};

}  // namespace

Result<SboxReport> EstimatePlanParallel(const PlanPtr& plan,
                                        ColumnarCatalog* catalog, Rng* rng,
                                        const ExprPtr& f_expr,
                                        const GusParams& gus,
                                        const SboxOptions& options,
                                        ExecMode mode,
                                        const ExecOptions& exec) {
  std::unique_ptr<MergeableBatchSink> sink;
  GUS_RETURN_NOT_OK(ParallelExecutePlanToSink(
      plan, catalog, rng, mode, exec,
      [&](const BatchLayout& layout)
          -> Result<std::unique_ptr<MergeableBatchSink>> {
        GUS_ASSIGN_OR_RETURN(
            StreamingSboxEstimator est,
            StreamingSboxEstimator::Make(layout, f_expr, gus, options));
        return std::unique_ptr<MergeableBatchSink>(
            new SboxEstimatorSink(std::move(est)));
      },
      &sink));
  return static_cast<SboxEstimatorSink*>(sink.get())->estimator()->Finish();
}

Result<SboxReport> EstimatePlanStreaming(const PlanPtr& plan,
                                         ColumnarCatalog* catalog, Rng* rng,
                                         const ExprPtr& f_expr,
                                         const GusParams& gus,
                                         const SboxOptions& options,
                                         ExecMode mode, int64_t batch_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(plan, catalog, rng, mode, batch_rows));
  GUS_ASSIGN_OR_RETURN(
      StreamingSboxEstimator est,
      StreamingSboxEstimator::Make(*pipeline->layout(), f_expr, gus, options));
  // PumpToSink hands whole producer-owned batches through without a copy
  // and gathers fused selection views exactly once, at this sink boundary.
  GUS_RETURN_NOT_OK(PumpToSink(pipeline.get(), &est));
  return est.Finish();
}

}  // namespace gus
