// Declarative descriptions of sampling operators.
//
// A SamplingSpec is the logical "TABLESAMPLE" annotation attached to a plan
// node. The algebra module translates specs into GUS quasi-operator
// parameters (Figure 1 of the paper); the samplers in samplers.h give them a
// physical implementation.

#ifndef GUS_SAMPLING_SPEC_H_
#define GUS_SAMPLING_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gus {

/// Supported sampling methods. All are GUS family members.
enum class SamplingMethod {
  /// Independent per-tuple coin with probability p (TABLESAMPLE BERNOULLI).
  kBernoulli,
  /// Fixed-size uniform sample of n tuples without replacement
  /// (TABLESAMPLE (n ROWS)).
  kWithoutReplacement,
  /// n uniform draws with replacement, duplicates discarded. The GUS
  /// framework models randomized *filters*, so the distinct-draw variant is
  /// the with-replacement member of the family (see paper Section 9,
  /// "Extending randomized filtering").
  kWithReplacementDistinct,
  /// Block/page-granularity Bernoulli: whole blocks of consecutive tuples
  /// kept with probability p. GUS at *block* lineage granularity
  /// (TABLESAMPLE SYSTEM).
  kBlockBernoulli,
  /// Section 7 sub-sampler: pseudo-random Bernoulli keyed on
  /// (seed, lineage id) of one base relation, applicable to derived
  /// relations. Decisions are consistent across all result tuples sharing
  /// the base tuple.
  kLineageBernoulli,
};

const char* SamplingMethodName(SamplingMethod m);

/// \brief One sampling operator instance.
struct SamplingSpec {
  SamplingMethod method = SamplingMethod::kBernoulli;

  /// Inclusion probability (kBernoulli, kBlockBernoulli, kLineageBernoulli).
  double p = 0.0;
  /// Sample size (kWithoutReplacement, kWithReplacementDistinct).
  int64_t n = 0;
  /// Population size (kWithoutReplacement, kWithReplacementDistinct). For a
  /// base-relation scan this is the relation cardinality.
  int64_t population = 0;
  /// Rows per block (kBlockBernoulli).
  int64_t block_size = 0;
  /// Which base relation's lineage drives kLineageBernoulli decisions.
  std::string lineage_relation;
  /// Seed for kLineageBernoulli (one seed per base relation, Section 7).
  uint64_t seed = 0;

  /// Validates parameter ranges for the chosen method.
  Status Validate() const;

  std::string ToString() const;

  // -- Constructors for each method --------------------------------------
  static SamplingSpec Bernoulli(double p);
  static SamplingSpec WithoutReplacement(int64_t n, int64_t population);
  static SamplingSpec WithReplacementDistinct(int64_t n, int64_t population);
  static SamplingSpec BlockBernoulli(double p, int64_t block_size);
  static SamplingSpec LineageBernoulli(std::string relation, double p,
                                       uint64_t seed);
};

}  // namespace gus

#endif  // GUS_SAMPLING_SPEC_H_
