#include "sampling/samplers.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"

namespace gus {

namespace {

Relation EmptyLike(const Relation& input) {
  return Relation(input.schema(), input.lineage_schema());
}

Relation TakeRows(const Relation& input, const std::vector<int64_t>& indexes) {
  Relation out = EmptyLike(input);
  out.Reserve(static_cast<int64_t>(indexes.size()));
  for (int64_t i : indexes) {
    out.AppendRow(input.row(i), input.lineage(i));
  }
  return out;
}

}  // namespace

Result<Relation> BernoulliSample(const Relation& input, double p, Rng* rng) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("Bernoulli p must be in [0,1]");
  }
  Relation out = EmptyLike(input);
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    if (rng->Bernoulli(p)) out.AppendRow(input.row(i), input.lineage(i));
  }
  return out;
}

Result<Relation> WorSample(const Relation& input, int64_t n, Rng* rng) {
  const int64_t total = input.num_rows();
  if (n < 0 || n > total) {
    return Status::InvalidArgument("WOR sample size must be in [0, N]");
  }
  std::vector<int64_t> idx(total);
  std::iota(idx.begin(), idx.end(), int64_t{0});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(total - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(n);
  std::sort(idx.begin(), idx.end());  // Preserve input order in the output.
  return TakeRows(input, idx);
}

Result<Relation> ReservoirSample(const Relation& input, int64_t n, Rng* rng) {
  const int64_t total = input.num_rows();
  if (n < 0 || n > total) {
    return Status::InvalidArgument("reservoir sample size must be in [0, N]");
  }
  std::vector<int64_t> reservoir;
  reservoir.reserve(n);
  for (int64_t i = 0; i < total; ++i) {
    if (i < n) {
      reservoir.push_back(i);
    } else {
      const auto j =
          static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(i) + 1));
      if (j < n) reservoir[j] = i;
    }
  }
  std::sort(reservoir.begin(), reservoir.end());
  return TakeRows(input, reservoir);
}

Result<Relation> WrDistinctSample(const Relation& input, int64_t n, Rng* rng) {
  if (n < 0) return Status::InvalidArgument("sample size must be >= 0");
  const int64_t total = input.num_rows();
  if (total == 0) return EmptyLike(input);
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(n));
  for (int64_t draw = 0; draw < n; ++draw) {
    chosen.insert(
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(total))));
  }
  std::vector<int64_t> idx(chosen.begin(), chosen.end());
  std::sort(idx.begin(), idx.end());
  return TakeRows(input, idx);
}

Result<Relation> AssignBlockLineage(const Relation& input,
                                    int64_t block_size) {
  if (block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (input.lineage_schema().size() != 1) {
    return Status::InvalidArgument(
        "block lineage applies to base (single-lineage) relations");
  }
  Relation out(input.schema(), input.lineage_schema());
  out.Reserve(input.num_rows());
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    out.AppendRow(input.row(i),
                  {static_cast<uint64_t>(i / block_size)});
  }
  return out;
}

Result<Relation> BlockBernoulliSample(const Relation& input, double p,
                                      Rng* rng) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("block Bernoulli p must be in [0,1]");
  }
  if (input.lineage_schema().size() != 1) {
    return Status::InvalidArgument(
        "block sampling applies to base (single-lineage) relations");
  }
  // One decision per distinct block (lineage id), applied to all its rows.
  std::unordered_map<uint64_t, bool> decision;
  Relation out = EmptyLike(input);
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    const uint64_t block = input.lineage(i)[0];
    auto it = decision.find(block);
    if (it == decision.end()) {
      it = decision.emplace(block, rng->Bernoulli(p)).first;
    }
    if (it->second) out.AppendRow(input.row(i), input.lineage(i));
  }
  return out;
}

Result<Relation> LineageBernoulliSample(const Relation& input,
                                        const std::string& relation, double p,
                                        uint64_t seed) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("lineage Bernoulli p must be in [0,1]");
  }
  const auto& ls = input.lineage_schema();
  const auto it = std::find(ls.begin(), ls.end(), relation);
  if (it == ls.end()) {
    return Status::KeyError("relation '" + relation +
                            "' not in the input's lineage schema");
  }
  const auto dim = static_cast<size_t>(it - ls.begin());
  Relation out = EmptyLike(input);
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    if (LineageUnitValue(seed, input.lineage(i)[dim]) < p) {
      out.AppendRow(input.row(i), input.lineage(i));
    }
  }
  return out;
}

Result<Relation> ApplySampling(const Relation& input, const SamplingSpec& spec,
                               Rng* rng) {
  GUS_RETURN_NOT_OK(spec.Validate());
  switch (spec.method) {
    case SamplingMethod::kBernoulli:
      return BernoulliSample(input, spec.p, rng);
    case SamplingMethod::kWithoutReplacement:
      if (spec.population != input.num_rows()) {
        return Status::InvalidArgument(
            "WOR spec population does not match the input cardinality");
      }
      return WorSample(input, spec.n, rng);
    case SamplingMethod::kWithReplacementDistinct:
      if (spec.population != input.num_rows()) {
        return Status::InvalidArgument(
            "WR spec population does not match the input cardinality");
      }
      return WrDistinctSample(input, spec.n, rng);
    case SamplingMethod::kBlockBernoulli: {
      GUS_ASSIGN_OR_RETURN(Relation blocked,
                           AssignBlockLineage(input, spec.block_size));
      return BlockBernoulliSample(blocked, spec.p, rng);
    }
    case SamplingMethod::kLineageBernoulli:
      return LineageBernoulliSample(input, spec.lineage_relation, spec.p,
                                    spec.seed);
  }
  return Status::Internal("unknown sampling method");
}

}  // namespace gus
