#include "sampling/samplers.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "kernels/sampling_kernels.h"
#include "util/hash.h"
#include "util/logging.h"

namespace gus {

namespace {

Relation EmptyLike(const Relation& input) {
  return Relation(input.schema(), input.lineage_schema());
}

Relation TakeRows(const Relation& input, const std::vector<int64_t>& indexes) {
  Relation out = EmptyLike(input);
  out.Reserve(static_cast<int64_t>(indexes.size()));
  for (int64_t i : indexes) {
    out.AppendRow(input.row(i), input.lineage(i));
  }
  return out;
}

}  // namespace

// ---- Index-selection cores -------------------------------------------------

Result<std::vector<int64_t>> BernoulliKeepIndices(int64_t num_rows, double p,
                                                  Rng* rng) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("Bernoulli p must be in [0,1]");
  }
  // Geometric-skip kernel: ~pN + 1 draws instead of N. Every engine draws
  // through this one kernel (one-shot here, span-resumed in the fused
  // streaming sampler), so keep-sets stay bit-identical across engines.
  std::vector<int64_t> keep;
  SkipBernoulliKeepIndices(num_rows, p, rng, &keep);
  return keep;
}

Result<std::vector<int64_t>> WorKeepIndices(int64_t num_rows, int64_t n,
                                            Rng* rng) {
  if (n < 0 || n > num_rows) {
    return Status::InvalidArgument("WOR sample size must be in [0, N]");
  }
  std::vector<int64_t> idx(num_rows);
  std::iota(idx.begin(), idx.end(), int64_t{0});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(
                rng->UniformInt(static_cast<uint64_t>(num_rows - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(n);
  std::sort(idx.begin(), idx.end());  // Preserve input order in the output.
  return idx;
}

Result<std::vector<int64_t>> ReservoirKeepIndices(int64_t num_rows, int64_t n,
                                                  Rng* rng) {
  if (n < 0 || n > num_rows) {
    return Status::InvalidArgument("reservoir sample size must be in [0, N]");
  }
  std::vector<int64_t> reservoir;
  reservoir.reserve(n);
  for (int64_t i = 0; i < num_rows; ++i) {
    if (i < n) {
      reservoir.push_back(i);
    } else {
      const auto j =
          static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(i) + 1));
      if (j < n) reservoir[j] = i;
    }
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

Result<std::vector<int64_t>> WrDistinctKeepIndices(int64_t num_rows, int64_t n,
                                                   Rng* rng) {
  if (n < 0) return Status::InvalidArgument("sample size must be >= 0");
  if (num_rows == 0) return std::vector<int64_t>{};
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(n));
  for (int64_t draw = 0; draw < n; ++draw) {
    chosen.insert(
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(num_rows))));
  }
  std::vector<int64_t> idx(chosen.begin(), chosen.end());
  std::sort(idx.begin(), idx.end());
  return idx;
}

Result<std::vector<int64_t>> BlockBernoulliKeepIndices(
    int64_t num_rows, double p, const LineageIdFn& block_of, Rng* rng) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("block Bernoulli p must be in [0,1]");
  }
  // One decision per distinct block, drawn at its first occurrence. The
  // flat cache replaces the per-call unordered_map: block ids are dense
  // small integers (row index / block size, or base-table lineage), so a
  // vector lookup decides each row.
  thread_local BlockDecisionCache cache;
  cache.Reset();
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(p * num_rows) + 16);
  for (int64_t i = 0; i < num_rows; ++i) {
    if (cache.Decide(block_of(i), p, rng)) keep.push_back(i);
  }
  return keep;
}

Result<std::vector<int64_t>> LineageBernoulliKeepIndices(
    int64_t num_rows, double p, uint64_t seed, const LineageIdFn& id_of) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("lineage Bernoulli p must be in [0,1]");
  }
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(p * num_rows) + 16);
  for (int64_t i = 0; i < num_rows; ++i) {
    if (LineageUnitValue(seed, id_of(i)) < p) keep.push_back(i);
  }
  return keep;
}

Result<std::vector<int64_t>> DecoupledWorKeepIndices(int64_t num_rows,
                                                     int64_t n,
                                                     uint64_t seed) {
  if (n < 0 || n > num_rows) {
    return Status::InvalidArgument("WOR sample size must be in [0, N]");
  }
  MergeableReservoir reservoir(n);
  reservoir.OfferRange(seed, 0, num_rows);
  return reservoir.SortedRows();
}

Result<std::vector<int64_t>> DecoupledWrDistinctKeepIndices(int64_t num_rows,
                                                            int64_t n,
                                                            uint64_t seed) {
  if (n < 0) return Status::InvalidArgument("sample size must be >= 0");
  if (num_rows == 0) return std::vector<int64_t>{};
  std::vector<int64_t> idx;
  idx.reserve(static_cast<size_t>(n));
  for (int64_t draw = 0; draw < n; ++draw) {
    idx.push_back(WrDrawTarget(seed, draw, num_rows));
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

Result<std::vector<int64_t>> DecoupledBlockKeepIndices(
    int64_t num_rows, double p, const LineageIdFn& block_of, uint64_t seed) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("block Bernoulli p must be in [0,1]");
  }
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(p * num_rows) + 16);
  // Block ids arrive in runs (row / block_size, or base-table block
  // lineage), so memoizing the last decision answers almost every row.
  uint64_t last_block = 0;
  bool last_keep = false;
  bool have_last = false;
  for (int64_t i = 0; i < num_rows; ++i) {
    const uint64_t block = block_of(i);
    if (!have_last || block != last_block) {
      last_block = block;
      last_keep = DecoupledBlockKeep(seed, block, p);
      have_last = true;
    }
    if (last_keep) keep.push_back(i);
  }
  return keep;
}

Result<SamplingDecision> DecideSampling(
    const SamplingSpec& spec, int64_t num_rows,
    const std::vector<std::string>& lineage_schema,
    const std::function<uint64_t(int64_t, int)>& lineage_at, Rng* rng) {
  GUS_RETURN_NOT_OK(spec.Validate());
  SamplingDecision d;
  switch (spec.method) {
    case SamplingMethod::kBernoulli: {
      GUS_ASSIGN_OR_RETURN(d.keep, BernoulliKeepIndices(num_rows, spec.p, rng));
      return d;
    }
    case SamplingMethod::kWithoutReplacement: {
      if (spec.population != num_rows) {
        return Status::InvalidArgument(
            "WOR spec population does not match the input cardinality");
      }
      // Seed-decoupled mergeable draw: one Rng value, then a pure function
      // of (seed, row) — identical across engines AND across any
      // morsel/shard partition of the input (see samplers.h).
      GUS_ASSIGN_OR_RETURN(
          d.keep, DecoupledWorKeepIndices(num_rows, spec.n, rng->Next()));
      return d;
    }
    case SamplingMethod::kWithReplacementDistinct: {
      if (spec.population != num_rows) {
        return Status::InvalidArgument(
            "WR spec population does not match the input cardinality");
      }
      GUS_ASSIGN_OR_RETURN(d.keep, DecoupledWrDistinctKeepIndices(
                                       num_rows, spec.n, rng->Next()));
      return d;
    }
    case SamplingMethod::kBlockBernoulli: {
      if (spec.block_size <= 0) {
        return Status::InvalidArgument("block_size must be positive");
      }
      if (lineage_schema.size() != 1) {
        return Status::InvalidArgument(
            "block lineage applies to base (single-lineage) relations");
      }
      const int64_t block_size = spec.block_size;
      GUS_ASSIGN_OR_RETURN(
          d.keep, DecoupledBlockKeepIndices(
                      num_rows, spec.p,
                      [block_size](int64_t i) {
                        return static_cast<uint64_t>(i / block_size);
                      },
                      rng->Next()));
      d.rekey_block_lineage = true;
      return d;
    }
    case SamplingMethod::kLineageBernoulli: {
      const auto it = std::find(lineage_schema.begin(), lineage_schema.end(),
                                spec.lineage_relation);
      if (it == lineage_schema.end()) {
        return Status::KeyError("relation '" + spec.lineage_relation +
                                "' not in the input's lineage schema");
      }
      const int dim = static_cast<int>(it - lineage_schema.begin());
      GUS_ASSIGN_OR_RETURN(
          d.keep, LineageBernoulliKeepIndices(
                      num_rows, spec.p, spec.seed,
                      [&lineage_at, dim](int64_t i) {
                        return lineage_at(i, dim);
                      }));
      return d;
    }
  }
  return Status::Internal("unknown sampling method");
}

// ---- Row-engine physical samplers -----------------------------------------

Result<Relation> BernoulliSample(const Relation& input, double p, Rng* rng) {
  GUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                       BernoulliKeepIndices(input.num_rows(), p, rng));
  return TakeRows(input, keep);
}

Result<Relation> WorSample(const Relation& input, int64_t n, Rng* rng) {
  GUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                       WorKeepIndices(input.num_rows(), n, rng));
  return TakeRows(input, keep);
}

Result<Relation> ReservoirSample(const Relation& input, int64_t n, Rng* rng) {
  GUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                       ReservoirKeepIndices(input.num_rows(), n, rng));
  return TakeRows(input, keep);
}

Result<Relation> WrDistinctSample(const Relation& input, int64_t n, Rng* rng) {
  GUS_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                       WrDistinctKeepIndices(input.num_rows(), n, rng));
  return TakeRows(input, keep);
}

Result<Relation> AssignBlockLineage(const Relation& input,
                                    int64_t block_size) {
  if (block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (input.lineage_schema().size() != 1) {
    return Status::InvalidArgument(
        "block lineage applies to base (single-lineage) relations");
  }
  Relation out(input.schema(), input.lineage_schema());
  out.Reserve(input.num_rows());
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    out.AppendRow(input.row(i),
                  {static_cast<uint64_t>(i / block_size)});
  }
  return out;
}

Result<Relation> BlockBernoulliSample(const Relation& input, double p,
                                      Rng* rng) {
  if (input.lineage_schema().size() != 1) {
    return Status::InvalidArgument(
        "block sampling applies to base (single-lineage) relations");
  }
  GUS_ASSIGN_OR_RETURN(
      std::vector<int64_t> keep,
      BlockBernoulliKeepIndices(
          input.num_rows(), p,
          [&input](int64_t i) { return input.lineage(i)[0]; }, rng));
  return TakeRows(input, keep);
}

Result<Relation> LineageBernoulliSample(const Relation& input,
                                        const std::string& relation, double p,
                                        uint64_t seed) {
  const auto& ls = input.lineage_schema();
  const auto it = std::find(ls.begin(), ls.end(), relation);
  if (it == ls.end()) {
    return Status::KeyError("relation '" + relation +
                            "' not in the input's lineage schema");
  }
  const auto dim = static_cast<size_t>(it - ls.begin());
  GUS_ASSIGN_OR_RETURN(
      std::vector<int64_t> keep,
      LineageBernoulliKeepIndices(
          input.num_rows(), p, seed,
          [&input, dim](int64_t i) { return input.lineage(i)[dim]; }));
  return TakeRows(input, keep);
}

Result<Relation> ApplySampling(const Relation& input, const SamplingSpec& spec,
                               Rng* rng) {
  GUS_ASSIGN_OR_RETURN(
      SamplingDecision d,
      DecideSampling(spec, input.num_rows(), input.lineage_schema(),
                     [&input](int64_t r, int dim) {
                       return input.lineage(r)[dim];
                     },
                     rng));
  if (d.rekey_block_lineage) {
    GUS_ASSIGN_OR_RETURN(Relation blocked,
                         AssignBlockLineage(input, spec.block_size));
    return TakeRows(blocked, d.keep);
  }
  return TakeRows(input, d.keep);
}

}  // namespace gus
