#include "sampling/spec.h"

#include <sstream>

namespace gus {

const char* SamplingMethodName(SamplingMethod m) {
  switch (m) {
    case SamplingMethod::kBernoulli: return "Bernoulli";
    case SamplingMethod::kWithoutReplacement: return "WOR";
    case SamplingMethod::kWithReplacementDistinct: return "WRDistinct";
    case SamplingMethod::kBlockBernoulli: return "BlockBernoulli";
    case SamplingMethod::kLineageBernoulli: return "LineageBernoulli";
  }
  return "?";
}

Status SamplingSpec::Validate() const {
  switch (method) {
    case SamplingMethod::kBernoulli:
    case SamplingMethod::kBlockBernoulli:
    case SamplingMethod::kLineageBernoulli:
      if (!(p >= 0.0 && p <= 1.0)) {
        return Status::InvalidArgument("sampling probability must be in [0,1]");
      }
      if (method == SamplingMethod::kBlockBernoulli && block_size <= 0) {
        return Status::InvalidArgument("block_size must be positive");
      }
      if (method == SamplingMethod::kLineageBernoulli &&
          lineage_relation.empty()) {
        return Status::InvalidArgument(
            "lineage Bernoulli needs a target base relation");
      }
      return Status::OK();
    case SamplingMethod::kWithoutReplacement:
    case SamplingMethod::kWithReplacementDistinct:
      if (n < 0) return Status::InvalidArgument("sample size must be >= 0");
      if (population <= 0) {
        return Status::InvalidArgument("population must be positive");
      }
      if (method == SamplingMethod::kWithoutReplacement && n > population) {
        return Status::InvalidArgument(
            "WOR sample size exceeds the population");
      }
      return Status::OK();
  }
  return Status::Internal("unknown sampling method");
}

std::string SamplingSpec::ToString() const {
  std::ostringstream out;
  out << SamplingMethodName(method) << "(";
  switch (method) {
    case SamplingMethod::kBernoulli:
      out << "p=" << p;
      break;
    case SamplingMethod::kWithoutReplacement:
    case SamplingMethod::kWithReplacementDistinct:
      out << "n=" << n << ", N=" << population;
      break;
    case SamplingMethod::kBlockBernoulli:
      out << "p=" << p << ", block=" << block_size;
      break;
    case SamplingMethod::kLineageBernoulli:
      out << lineage_relation << ", p=" << p << ", seed=" << seed;
      break;
  }
  out << ")";
  return out.str();
}

SamplingSpec SamplingSpec::Bernoulli(double p) {
  SamplingSpec s;
  s.method = SamplingMethod::kBernoulli;
  s.p = p;
  return s;
}

SamplingSpec SamplingSpec::WithoutReplacement(int64_t n, int64_t population) {
  SamplingSpec s;
  s.method = SamplingMethod::kWithoutReplacement;
  s.n = n;
  s.population = population;
  return s;
}

SamplingSpec SamplingSpec::WithReplacementDistinct(int64_t n,
                                                   int64_t population) {
  SamplingSpec s;
  s.method = SamplingMethod::kWithReplacementDistinct;
  s.n = n;
  s.population = population;
  return s;
}

SamplingSpec SamplingSpec::BlockBernoulli(double p, int64_t block_size) {
  SamplingSpec s;
  s.method = SamplingMethod::kBlockBernoulli;
  s.p = p;
  s.block_size = block_size;
  return s;
}

SamplingSpec SamplingSpec::LineageBernoulli(std::string relation, double p,
                                            uint64_t seed) {
  SamplingSpec s;
  s.method = SamplingMethod::kLineageBernoulli;
  s.lineage_relation = std::move(relation);
  s.p = p;
  s.seed = seed;
  return s;
}

}  // namespace gus
