// Physical sampling operators over lineage-carrying relations.
//
// Every sampler is a randomized *filter*: the output rows are a subset of
// the input rows (the GUS precondition). All samplers are deterministic
// given the Rng / seed.

#ifndef GUS_SAMPLING_SAMPLERS_H_
#define GUS_SAMPLING_SAMPLERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rel/relation.h"
#include "sampling/spec.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

// ---- Index-selection cores -------------------------------------------------
//
// Every sampler first decides *which rows to keep* as a pure function of
// (row count, lineage, Rng) and only then touches tuple data. The decision
// functions below are that first half, shared by the row-at-a-time and
// columnar engines: both consume the Rng in the identical order, so the two
// engines draw bit-identical samples from identical seeds.

/// Reads a lineage id for a row (dimension fixed by the caller).
using LineageIdFn = std::function<uint64_t(int64_t row)>;

/// \brief Bernoulli(p) keep-set via the geometric-skip kernel
/// (kernels/sampling_kernels.h): ~pN + 1 Rng draws instead of N.
///
/// Equivalent in distribution to a per-row coin; the keep-set is a pure
/// function of (num_rows, p, Rng state) and identical to streaming the
/// rows through SkipBernoulliState in any span partition.
Result<std::vector<int64_t>> BernoulliKeepIndices(int64_t num_rows, double p,
                                                  Rng* rng);

/// \brief Partial Fisher-Yates WOR draw of n rows; kept indexes ascending.
///
/// Legacy sequential draw used by the standalone row-API samplers below.
/// Plan execution (DecideSampling) uses the seed-decoupled mergeable core
/// instead, so fixed-size pivots partition across morsels and shards.
Result<std::vector<int64_t>> WorKeepIndices(int64_t num_rows, int64_t n,
                                            Rng* rng);

/// Streaming reservoir WOR draw; kept indexes ascending.
Result<std::vector<int64_t>> ReservoirKeepIndices(int64_t num_rows, int64_t n,
                                                  Rng* rng);

/// n with-replacement draws, duplicates discarded; kept indexes ascending.
Result<std::vector<int64_t>> WrDistinctKeepIndices(int64_t num_rows, int64_t n,
                                                   Rng* rng);

/// One draw per *distinct block* in first-occurrence order; `block_of`
/// reads the block id of a row.
Result<std::vector<int64_t>> BlockBernoulliKeepIndices(
    int64_t num_rows, double p, const LineageIdFn& block_of, Rng* rng);

/// Deterministic lineage-seeded Bernoulli (Section 7); consumes no Rng.
Result<std::vector<int64_t>> LineageBernoulliKeepIndices(
    int64_t num_rows, double p, uint64_t seed, const LineageIdFn& id_of);

// ---- Seed-decoupled mergeable index cores ----------------------------------
//
// The partition-mergeable forms behind every fixed-size / block sampler in
// plan execution: the engine draws ONE sampler seed from its Rng stream,
// and the keep-set is then a pure function of (seed, input shape) built
// from per-row keys (kernels/sampling_kernels.h). All four engines — row,
// columnar, morsel-parallel, sharded — therefore draw bit-identical
// fixed-size samples from identical seeds, and the morsel engine can
// evaluate any row range independently and fold bounded per-morsel
// candidate states into the exact global result.

/// \brief Exact uniform WOR(n) as the n smallest WorPriority(seed, row)
/// keys; kept indexes ascending.
///
/// Equals folding per-range MergeableReservoir states over any partition
/// of [0, num_rows).
Result<std::vector<int64_t>> DecoupledWorKeepIndices(int64_t num_rows,
                                                     int64_t n, uint64_t seed);

/// \brief n with-replacement draws WrDrawTarget(seed, d), duplicates
/// discarded; kept indexes ascending.
///
/// Any partition computes its slice by intersecting the same n targets
/// with its row range.
Result<std::vector<int64_t>> DecoupledWrDistinctKeepIndices(int64_t num_rows,
                                                            int64_t n,
                                                            uint64_t seed);

/// \brief Block-Bernoulli keep-set with per-block decisions
/// DecoupledBlockKeep(seed, block, p); `block_of` reads a row's block id.
Result<std::vector<int64_t>> DecoupledBlockKeepIndices(
    int64_t num_rows, double p, const LineageIdFn& block_of, uint64_t seed);

/// \brief The outcome of dispatching a SamplingSpec on an input shape.
struct SamplingDecision {
  /// Kept row indexes, in output order.
  std::vector<int64_t> keep;
  /// kBlockBernoulli only: the output's (single-dimension) lineage must be
  /// re-keyed to block granularity — id = input row index / spec.block_size.
  bool rekey_block_lineage = false;
};

/// \brief Validates `spec` against the input shape and draws the kept rows.
///
/// `lineage_schema` and `lineage_at(row, dim)` describe the input's lineage
/// without committing to a storage layout; every engine routes its
/// sampling through this single function. Fixed-size and block methods
/// consume exactly one Rng value (the sampler seed) and dispatch to the
/// seed-decoupled cores above, so their keep-sets are invariant under any
/// morsel/shard partition of the same input.
Result<SamplingDecision> DecideSampling(
    const SamplingSpec& spec, int64_t num_rows,
    const std::vector<std::string>& lineage_schema,
    const std::function<uint64_t(int64_t, int)>& lineage_at, Rng* rng);

// ---- Row-engine physical samplers -----------------------------------------

/// Independent coin per row with probability p.
Result<Relation> BernoulliSample(const Relation& input, double p, Rng* rng);

/// \brief Uniform fixed-size sample of n rows without replacement.
///
/// Uses a partial Fisher-Yates shuffle over row indexes: O(N) space,
/// O(n) swaps. Fails if n exceeds the input cardinality.
Result<Relation> WorSample(const Relation& input, int64_t n, Rng* rng);

/// \brief Reservoir variant of WOR sampling (single streaming pass).
///
/// Statistically identical to WorSample; exists to exercise the streaming
/// code path and as a cross-check in tests. Output preserves input order.
Result<Relation> ReservoirSample(const Relation& input, int64_t n, Rng* rng);

/// n uniform draws with replacement; duplicate rows are discarded so the
/// result is a filter (the GUS-compatible with-replacement variant).
Result<Relation> WrDistinctSample(const Relation& input, int64_t n, Rng* rng);

/// \brief Re-keys a base relation's lineage to block granularity.
///
/// Rows [0, block_size) get lineage id 0, the next block id 1, and so on.
/// Block sampling is a GUS *on block lineage*: two tuples of the same block
/// always share their sampling fate, which GUS expresses by giving them
/// equal lineage ids. Only valid on single-lineage (base) relations.
Result<Relation> AssignBlockLineage(const Relation& input, int64_t block_size);

/// \brief Keeps whole blocks with probability p.
///
/// Input must have block-granularity lineage (see AssignBlockLineage); the
/// decision for a block is made once and applied to all of its rows.
Result<Relation> BlockBernoulliSample(const Relation& input, double p,
                                      Rng* rng);

/// \brief Section 7 sub-sampler: lineage-seeded pseudo-random Bernoulli.
///
/// Keeps a row iff LineageUnitValue(seed, id) < p where id is the row's
/// lineage for `relation`. Because the decision is a pure function of
/// (seed, id), a base tuple receives one consistent decision across every
/// result tuple it participates in — the property that makes this a GUS.
/// Works on derived relations; needs only one seed per base relation.
Result<Relation> LineageBernoulliSample(const Relation& input,
                                        const std::string& relation, double p,
                                        uint64_t seed);

/// Applies any spec to `input` (dispatch over the methods above).
Result<Relation> ApplySampling(const Relation& input, const SamplingSpec& spec,
                               Rng* rng);

}  // namespace gus

#endif  // GUS_SAMPLING_SAMPLERS_H_
