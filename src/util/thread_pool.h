// A small fixed-size thread pool with a deterministic-friendly ParallelFor.
//
// Deliberately work-stealing-free: tasks are claimed from a single atomic
// counter in index order. The pool never imposes an ordering on *results* —
// callers that need determinism (the morsel-parallel executor) key every
// task's randomness and merge order on the task index, which is scheduling-
// independent by construction.

#ifndef GUS_UTIL_THREAD_POOL_H_
#define GUS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gus {

/// \brief Fixed set of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). With one thread the
  /// pool still spawns a worker, so behavior differences between inline and
  /// pooled execution cannot hide (there are none by design).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// \brief Runs fn(i) for every i in [0, n), distributed over the workers,
  /// and blocks until all calls return.
  ///
  /// `fn` must be safe to call concurrently from multiple threads. Indexes
  /// are claimed in increasing order but may complete in any order. One
  /// ParallelFor runs at a time (calls serialize).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // ParallelFor waits for completion
  const std::function<void(int64_t)>* fn_ = nullptr;  // active batch
  int64_t next_ = 0;       // next unclaimed index
  int64_t limit_ = 0;      // batch size
  int64_t in_flight_ = 0;  // claimed but not yet finished
  uint64_t epoch_ = 0;     // bumped per batch so workers don't re-enter
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gus

#endif  // GUS_UTIL_THREAD_POOL_H_
