// A persistent thread pool with a deterministic-friendly ParallelFor.
//
// Deliberately work-stealing-free at the result level: tasks are claimed
// from atomic cursors in index order (globally, or per contiguous worker
// range with bounded ring stealing). The pool never imposes an ordering on
// *results* — callers that need determinism (the morsel-parallel executor)
// key every task's randomness and merge order on the task index, which is
// scheduling-independent by construction.
//
// Scheduling shape, tuned against the E3c flat-scaling profile:
//   * The calling thread participates as worker 0, so a pool configured
//     for N-way parallelism spawns only N-1 threads — and N == 1 spawns
//     none at all (ParallelFor runs inline with zero atomics).
//   * Within a batch, indexes are claimed `chunk` at a time from an atomic
//     cursor with no lock or condition-variable round-trip per task; the
//     mutex is touched once per worker per batch (wake + completion), not
//     once per index.
//   * Pools are reusable and growable (EnsureThreads), and a process-wide
//     ThreadPool::Shared() instance keeps its workers alive across
//     queries, so steady-state execution pays zero thread spawns.

#ifndef GUS_UTIL_THREAD_POOL_H_
#define GUS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace gus {

/// \brief Reusable, growable set of worker threads executing indexed task
/// batches. The caller of ParallelFor participates as worker 0.
class ThreadPool {
 public:
  /// \brief How a batch's index space is handed to workers.
  ///
  /// Placement never changes *what* runs — every index is claimed exactly
  /// once either way — only which worker's cache (and on multi-socket
  /// hosts, which NUMA node) first touches each slice. Results are
  /// identical by construction.
  enum class Placement {
    /// One global atomic cursor; indexes are claimed in increasing order
    /// by whichever worker gets there first. Best load balance.
    kDynamic,
    /// Each worker owns a contiguous range of the index space (worker w
    /// gets the w-th n/workers slice) and drains it front to back, then
    /// steals from other ranges in ring order. First-touch-friendly:
    /// consecutive indexes land on the same worker, so per-index data
    /// stays in one cache / NUMA node.
    kRangeBound,
  };

  /// Chunked worker-aware task body: runs indexes [begin, end) on behalf
  /// of `worker` (0 = the ParallelFor caller).
  using RangeFn = std::function<void(int worker, int64_t begin, int64_t end)>;

  /// \brief Prepares an `num_threads`-way pool (clamped to >= 1).
  ///
  /// Spawns num_threads - 1 worker threads — the ParallelFor caller is the
  /// remaining worker — so `ThreadPool(1)` spawns no threads and runs
  /// everything inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (spawned workers + the caller).
  int num_threads() const {
    return configured_.load(std::memory_order_acquire);
  }

  /// \brief Grows the pool so num_threads() >= `num_threads`. Never
  /// shrinks; a no-op when already large enough. Safe to call between
  /// batches from any thread (blocks while a batch is active).
  void EnsureThreads(int num_threads);

  /// \brief Runs fn(i) for every i in [0, n), distributed over the
  /// workers, and blocks until all calls return.
  ///
  /// `fn` must be safe to call concurrently from multiple threads.
  /// Indexes are claimed in increasing order but may complete in any
  /// order. One batch runs at a time (calls serialize); a call made from
  /// inside one of this pool's own tasks runs inline on the calling
  /// thread instead of deadlocking.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// \brief Chunked, worker-aware form of ParallelFor.
  ///
  /// Indexes are claimed `chunk` at a time (one atomic fetch-add per
  /// chunk, no locks) by at most `max_workers` workers (clamped to
  /// [1, num_threads()]), placed per `placement`. fn receives the claiming
  /// worker's id and the half-open index range.
  void ParallelForChunked(int64_t n, int64_t chunk, int max_workers,
                          Placement placement, const RangeFn& fn);

  /// \brief Worker threads ever spawned by this pool (monotone).
  ///
  /// Stable across ParallelFor calls once the pool is warm — the
  /// regression tests pin that reuse never re-spawns.
  uint64_t spawned_threads() const {
    return spawned_.load(std::memory_order_acquire);
  }

  /// \brief Times a spawned worker woke from its condition-variable wait
  /// for a new batch (monotone). One wake per worker per batch at most —
  /// per-index wake round-trips are gone by design.
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_acquire); }

  /// True when the calling thread is currently executing a task of *any*
  /// ThreadPool. Executors use this to pick between the shared pool and a
  /// transient private one (nested batches on the same pool run inline).
  static bool InPoolTask();

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static int HardwareThreads();

  /// \brief Process-wide persistent pool, grown on demand via
  /// EnsureThreads and reused across queries (no per-query thread
  /// spawning). Prefer PoolLease over calling this directly.
  static ThreadPool& Shared();

 private:
  void Spawn(int count);  // requires mu_ held, no active batch
  void WorkerLoop(int worker_id, uint64_t seen_epoch);
  void RunClaimLoop(int worker, const RangeFn& fn, int64_t limit,
                    int64_t chunk, Placement placement, int workers);
  void FinishIndexes(int64_t count);

  static int64_t RangeBegin(int64_t n, int workers, int w) {
    const int64_t base = n / workers;
    const int64_t rem = n % workers;
    return w * base + (w < rem ? w : rem);
  }

  std::mutex batch_mu_;  // serializes ParallelFor batches
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a batch
  std::condition_variable done_cv_;  // the caller waits for completion
  const RangeFn* fn_ = nullptr;      // active batch body
  int64_t limit_ = 0;                // batch size
  int64_t chunk_ = 1;                // indexes claimed per fetch-add
  int active_workers_ = 0;           // workers participating in the batch
  Placement placement_ = Placement::kDynamic;
  int workers_in_batch_ = 0;  // spawned workers inside a claim loop
  uint64_t epoch_ = 0;        // bumped per batch so workers don't re-enter
  bool shutdown_ = false;
  std::atomic<int64_t> cursor_{0};     // kDynamic: next unclaimed index
  std::unique_ptr<std::atomic<int64_t>[]> range_next_;  // kRangeBound
  std::atomic<int64_t> remaining_{0};  // indexes not yet completed
  std::atomic<int> configured_{1};
  std::atomic<uint64_t> spawned_{0};
  std::atomic<uint64_t> wakeups_{0};
  std::vector<std::thread> threads_;
};

/// \brief Leases a pool for one parallel region: the process-wide shared
/// pool (grown to `num_threads`) normally, or a transient private pool
/// when the calling thread is already inside a pool task — a nested batch
/// on the shared pool would run inline-serial instead of in parallel.
///
/// spawned_during() reports how many worker threads the lease caused to be
/// created (0 in the steady state — the profiling layer surfaces this so
/// cold-start spawns are visible in ExecStats).
class PoolLease {
 public:
  explicit PoolLease(int num_threads);

  ThreadPool* get() const { return pool_; }
  ThreadPool* operator->() const { return pool_; }
  ThreadPool& operator*() const { return *pool_; }

  uint64_t spawned_during() const {
    return pool_->spawned_threads() - spawned_before_;
  }
  uint64_t wakeups_during() const {
    return pool_->wakeups() - wakeups_before_;
  }

 private:
  std::optional<ThreadPool> local_;
  ThreadPool* pool_;
  uint64_t spawned_before_;
  uint64_t wakeups_before_;
};

}  // namespace gus

#endif  // GUS_UTIL_THREAD_POOL_H_
