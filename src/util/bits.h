// Subset-mask utilities.
//
// The GUS pairwise table b̄ is indexed by subsets of the lineage schema,
// represented as uint32_t bitmasks over the schema's relation ordering.

#ifndef GUS_UTIL_BITS_H_
#define GUS_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace gus {

/// A subset of a lineage schema, as a bitmask over its relation ordering.
using SubsetMask = uint32_t;

/// Number of elements in the subset.
inline int PopCount(SubsetMask mask) { return std::popcount(mask); }

/// Mask with the lowest n bits set (the full subset of an n-ary schema).
inline SubsetMask FullMask(int n) {
  return n >= 32 ? ~SubsetMask{0} : ((SubsetMask{1} << n) - 1);
}

/// \brief Iterates all subsets of `super` (including empty and super itself).
///
/// Usage:
///   for (SubsetIterator it(super); !it.done(); it.Next()) use(it.mask());
///
/// Uses the standard (sub - 1) & super descent, visiting subsets in
/// decreasing numeric order starting from `super`.
class SubsetIterator {
 public:
  explicit SubsetIterator(SubsetMask super)
      : super_(super), mask_(super), done_(false) {}

  bool done() const { return done_; }
  SubsetMask mask() const { return mask_; }

  void Next() {
    if (mask_ == 0) {
      done_ = true;
    } else {
      mask_ = (mask_ - 1) & super_;
    }
  }

 private:
  SubsetMask super_;
  SubsetMask mask_;
  bool done_;
};

/// Parity sign (-1)^popcount(mask).
inline double ParitySign(SubsetMask mask) {
  return (PopCount(mask) & 1) ? -1.0 : 1.0;
}

}  // namespace gus

#endif  // GUS_UTIL_BITS_H_
