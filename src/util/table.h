// Plain-text table rendering for the experiment harness: every bench binary
// prints the reproduced paper table / series through this printer so the
// output is uniform and diffable.

#ifndef GUS_UTIL_TABLE_H_
#define GUS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace gus {

/// \brief Accumulates rows of strings and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Convenience: formats a double with `digits` significant digits.
  static std::string Num(double v, int digits = 6);
  /// Scientific notation with `digits` digits after the point.
  static std::string Sci(double v, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gus

#endif  // GUS_UTIL_TABLE_H_
