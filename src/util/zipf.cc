#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gus {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  GUS_CHECK(n > 0);
  GUS_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), theta);
    cdf_[k - 1] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfGenerator::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace gus
