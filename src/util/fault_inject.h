// Deterministic fault injection for the distributed layer.
//
// Production code names its failure points as *sites* — stable strings
// like "worker.execute" or "transport.file.write" — and calls
// FaultInjector::Hit(site, shard) at each one. With no plan armed, a hit
// is a single relaxed-atomic load and a branch: the harness costs nothing
// in normal operation. With a plan armed (programmatically via
// FaultInjector::Arm, or from the GUS_FAULT environment variable at first
// use), matching hits *inject* the configured fault: fail with a
// retryable status, drop/corrupt/truncate a payload, delay, hang until
// released (bounded by the configured cap so no test can deadlock), or
// kill the process (for multi-process torn-write tests).
//
// Spec grammar (GUS_FAULT and FaultPlan::Parse; ';'-separated rules):
//
//   site[@shard]=action[*times][+delay_ms]
//
//   site      injection-site name; matched exactly
//   @shard    restrict to one shard index (default: every shard)
//   action    fail | drop | corrupt | truncate | delay | hang | kill
//   *times    trigger on the first `times` matching hits (default 1;
//             '*' + 0 means "always")
//   +delay_ms sleep this long before acting (delay's duration; for other
//             actions a pre-action stall, e.g. "kill after 50ms")
//
// Examples:
//   GUS_FAULT="worker.execute@1=fail*2"  — shard 1's execution fails
//       with Unavailable on its first two attempts, then succeeds.
//   GUS_FAULT="transport.file.write=kill+10" — every worker dies 10ms
//       into its first bundle write (torn-file test).
//
// Determinism: rule matching keys on (site, shard, per-rule hit counter) —
// no clocks, no randomness — so a given plan injects the identical fault
// sequence on every run. Hit counters are per-rule atomics, safe under
// concurrent workers.

#ifndef GUS_UTIL_FAULT_INJECT_H_
#define GUS_UTIL_FAULT_INJECT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gus {

/// What an armed rule does to a matching hit.
enum class FaultAction {
  /// Return Status::Unavailable from the site (a retryable failure).
  kFail,
  /// Payload sites: discard the payload silently (receiver sees nothing).
  kDrop,
  /// Payload sites: flip bits in the payload (checksum mismatch on read).
  kCorrupt,
  /// Payload sites: cut the payload short (truncated-frame error on read).
  kTruncate,
  /// Sleep delay_ms, then proceed normally.
  kDelay,
  /// Block until ReleaseHangs() or the hang cap (whichever first), then
  /// return Unavailable. Models a stuck worker without risking a test
  /// deadlock.
  kHang,
  /// std::_Exit(kKillExitCode) — an abrupt worker death mid-operation.
  kKill,
};

/// One parsed `site[@shard]=action[*times][+delay_ms]` rule.
struct FaultRule {
  std::string site;
  /// Shard restriction; -1 matches every shard.
  int shard = -1;
  FaultAction action = FaultAction::kFail;
  /// How many matching hits trigger (0 = every hit).
  int times = 1;
  /// Pre-action stall / delay duration, milliseconds.
  int delay_ms = 0;
};

/// \brief A parsed fault specification (an immutable list of rules).
struct FaultPlan {
  std::vector<FaultRule> rules;

  /// Parses the ';'-separated spec grammar (empty spec = empty plan).
  static Result<FaultPlan> Parse(std::string_view spec);
};

/// Exit code kKill dies with — multi-process tests assert on it.
inline constexpr int kFaultKillExitCode = 43;

/// \brief Process-wide injector the instrumented sites consult.
///
/// Thread-safe. Arm/Disarm are test-harness entry points (not called
/// concurrently with each other); Hit/MutatePayload run from any worker
/// thread.
class FaultInjector {
 public:
  /// The process singleton. On first access, arms itself from GUS_FAULT
  /// if that variable is set and non-empty.
  static FaultInjector* Global();

  /// Installs `plan`, resetting all hit counters.
  void Arm(FaultPlan plan);
  /// Removes the plan (sites become free) and releases any hung hits.
  void Disarm();
  /// True when any rule is armed (the fast-path check).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief Consults the plan at a non-payload site.
  ///
  /// Returns OK (proceed), Unavailable (kFail/kHang triggered) — or never
  /// returns (kKill). kDelay sleeps and returns OK. Payload actions
  /// (drop/corrupt/truncate) at a non-payload site degrade to kFail.
  Status Hit(std::string_view site, int shard = -1);

  /// \brief Consults the plan at a payload site, applying payload actions.
  ///
  /// On kDrop sets *dropped; on kCorrupt/kTruncate mutates *payload
  /// in place. Other actions behave exactly as Hit. The mutation is
  /// deterministic (fixed XOR mask / fixed truncation fraction).
  Status MutatePayload(std::string_view site, int shard, std::string* payload,
                       bool* dropped);

  /// Wakes every currently-hung hit (they return Unavailable).
  void ReleaseHangs();

  /// \brief Upper bound on how long a kHang blocks before giving up,
  /// milliseconds. Defaults to 2000; tests lower it. The cap is what
  /// guarantees no fault spec can wedge a run forever.
  void set_hang_cap_ms(int ms) { hang_cap_ms_.store(ms); }

  /// Total hits that triggered a rule since Arm (diagnostic).
  int64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  struct ArmedRule {
    FaultRule rule;
    std::atomic<int> hits{0};
  };

  /// The rule to trigger for this (site, shard) hit, or nullptr. The
  /// returned pointer shares ownership of the whole armed-rule list, so a
  /// concurrent Arm/Disarm cannot free the rule out from under a slow
  /// action (a delayed or hung Execute outliving the plan that armed it).
  std::shared_ptr<ArmedRule> Match(std::string_view site, int shard);
  /// Executes the non-payload part of an action (fail/delay/hang/kill).
  Status Execute(const ArmedRule& armed);

  std::atomic<bool> armed_{false};
  std::atomic<int> hang_cap_ms_{2000};
  std::atomic<int64_t> faults_injected_{0};
  /// Guarded by mu_ for replacement; rules themselves use atomics.
  mutable std::mutex mu_;
  std::shared_ptr<std::vector<std::unique_ptr<ArmedRule>>> rules_;
  std::condition_variable hang_cv_;
  uint64_t hang_epoch_ = 0;
};

/// \brief RAII plan for tests: arms on construction, disarms on scope
/// exit. Nesting is not supported (the injector holds one plan).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::Global()->Arm(std::move(plan));
  }
  /// Parses and arms `spec`; invalid specs abort (test-harness misuse).
  explicit ScopedFaultPlan(std::string_view spec);
  ~ScopedFaultPlan() { FaultInjector::Global()->Disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace gus

#endif  // GUS_UTIL_FAULT_INJECT_H_
