// Statistical helpers: normal distribution math, Chebyshev bounds, and
// online moment accumulators used across the estimator and the Monte-Carlo
// harness.

#ifndef GUS_UTIL_STATS_H_
#define GUS_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace gus {

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// \brief Inverse standard normal CDF (quantile function).
///
/// Acklam's rational approximation (relative error < 1.15e-9), refined with
/// one Halley step. Requires 0 < p < 1.
double NormalQuantile(double p);

/// \brief Two-sided Chebyshev multiplier for confidence level `level`.
///
/// P(|X - mu| >= k sigma) <= 1/k^2, so k = 1/sqrt(1 - level); level = 0.95
/// gives the paper's 4.47.
double ChebyshevMultiplier(double level);

/// \brief One-sided Cantelli multiplier: P(X - mu >= k sigma) <= 1/(1+k^2).
double CantelliMultiplier(double tail_probability);

/// \brief Welford online accumulator for mean and variance.
class MeanVar {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n).
  double variance_population() const;
  /// Sample variance (divides by n-1); 0 if fewer than 2 observations.
  double variance_sample() const;
  double stddev_sample() const;

  /// Merges another accumulator (parallel Welford).
  void Merge(const MeanVar& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Fraction-of-successes accumulator with a normal-approx CI.
class CoverageCounter {
 public:
  void Add(bool hit) {
    ++total_;
    if (hit) ++hits_;
  }
  int64_t total() const { return total_; }
  int64_t hits() const { return hits_; }
  double fraction() const { return total_ == 0 ? 0.0 : double(hits_) / double(total_); }
  /// Half-width of the 95% normal-approximation interval on the fraction.
  double half_width95() const;

 private:
  int64_t total_ = 0;
  int64_t hits_ = 0;
};

/// Empirical quantile (linear interpolation) of an unsorted copy of `xs`.
double EmpiricalQuantile(std::vector<double> xs, double q);

}  // namespace gus

#endif  // GUS_UTIL_STATS_H_
