#include "util/fault_inject.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace gus {

namespace {

Result<FaultAction> ParseAction(std::string_view word) {
  if (word == "fail") return FaultAction::kFail;
  if (word == "drop") return FaultAction::kDrop;
  if (word == "corrupt") return FaultAction::kCorrupt;
  if (word == "truncate") return FaultAction::kTruncate;
  if (word == "delay") return FaultAction::kDelay;
  if (word == "hang") return FaultAction::kHang;
  if (word == "kill") return FaultAction::kKill;
  return Status::InvalidArgument("unknown fault action '" +
                                 std::string(word) + "'");
}

Result<int> ParseInt(std::string_view digits, std::string_view what) {
  if (digits.empty()) {
    return Status::InvalidArgument("empty " + std::string(what) +
                                   " in fault spec");
  }
  int value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric " + std::string(what) +
                                     " '" + std::string(digits) +
                                     "' in fault spec");
    }
    value = value * 10 + (c - '0');
    if (value > 1000000) {
      return Status::InvalidArgument(std::string(what) +
                                     " out of range in fault spec");
    }
  }
  return value;
}

/// Parses one `site[@shard]=action[*times][+delay_ms]` rule.
Result<FaultRule> ParseRule(std::string_view text) {
  FaultRule rule;
  const size_t eq = text.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("fault rule '" + std::string(text) +
                                   "' has no '=' (want site=action)");
  }
  std::string_view lhs = text.substr(0, eq);
  std::string_view rhs = text.substr(eq + 1);
  const size_t at = lhs.find('@');
  if (at != std::string_view::npos) {
    GUS_ASSIGN_OR_RETURN(rule.shard, ParseInt(lhs.substr(at + 1), "shard"));
    lhs = lhs.substr(0, at);
  }
  if (lhs.empty()) {
    return Status::InvalidArgument("fault rule '" + std::string(text) +
                                   "' has an empty site");
  }
  rule.site.assign(lhs);
  // Suffixes bind right-to-left: action[*times][+delay_ms] — but accept
  // either order; both are unambiguous.
  const size_t plus = rhs.find('+');
  if (plus != std::string_view::npos) {
    GUS_ASSIGN_OR_RETURN(rule.delay_ms,
                         ParseInt(rhs.substr(plus + 1), "delay"));
    rhs = rhs.substr(0, plus);
  }
  const size_t star = rhs.find('*');
  if (star != std::string_view::npos) {
    GUS_ASSIGN_OR_RETURN(rule.times, ParseInt(rhs.substr(star + 1), "times"));
    rhs = rhs.substr(0, star);
  }
  GUS_ASSIGN_OR_RETURN(rule.action, ParseAction(rhs));
  return rule;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    std::string_view piece = spec.substr(pos, semi - pos);
    // Trim surrounding spaces so "a=fail; b=drop" reads naturally.
    while (!piece.empty() && piece.front() == ' ') piece.remove_prefix(1);
    while (!piece.empty() && piece.back() == ' ') piece.remove_suffix(1);
    if (!piece.empty()) {
      GUS_ASSIGN_OR_RETURN(FaultRule rule, ParseRule(piece));
      plan.rules.push_back(std::move(rule));
    }
    pos = semi + 1;
  }
  return plan;
}

FaultInjector* FaultInjector::Global() {
  // Leaked singleton: workers may still consult it during process exit.
  static FaultInjector* instance = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("GUS_FAULT");
        env != nullptr && env[0] != '\0') {
      Result<FaultPlan> plan = FaultPlan::Parse(env);
      if (!plan.ok()) {
        std::fprintf(stderr, "[libgus] invalid GUS_FAULT spec: %s\n",
                     plan.status().ToString().c_str());
        std::abort();
      }
      inj->Arm(std::move(plan).ValueOrDie());
    }
    return inj;
  }();
  return instance;
}

void FaultInjector::Arm(FaultPlan plan) {
  auto rules = std::make_shared<std::vector<std::unique_ptr<ArmedRule>>>();
  rules->reserve(plan.rules.size());
  for (FaultRule& rule : plan.rules) {
    auto armed = std::make_unique<ArmedRule>();
    armed->rule = std::move(rule);
    rules->push_back(std::move(armed));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    rules_ = std::move(rules);
    ++hang_epoch_;  // anything hung under the old plan wakes up
    armed_.store(!rules_->empty(), std::memory_order_relaxed);
    faults_injected_.store(0, std::memory_order_relaxed);
  }
  hang_cv_.notify_all();
}

void FaultInjector::Disarm() { Arm(FaultPlan{}); }

void FaultInjector::ReleaseHangs() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hang_epoch_;
  }
  hang_cv_.notify_all();
}

std::shared_ptr<FaultInjector::ArmedRule> FaultInjector::Match(
    std::string_view site, int shard) {
  std::shared_ptr<std::vector<std::unique_ptr<ArmedRule>>> rules;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rules = rules_;
  }
  if (!rules) return nullptr;
  for (const auto& armed : *rules) {
    const FaultRule& r = armed->rule;
    if (r.site != site) continue;
    // A shard-restricted rule never fires at a site that does not know its
    // shard (shard == -1): silently widening the blast radius would make
    // specs mean different things at different sites.
    if (r.shard >= 0 && r.shard != shard) continue;
    // Claim one hit slot; times == 0 means every hit triggers.
    const int n = armed->hits.fetch_add(1, std::memory_order_relaxed);
    if (r.times != 0 && n >= r.times) continue;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    // Aliasing constructor: the caller's pointer keeps the whole list
    // alive, so a Disarm racing a slow Execute (delay/hang) is safe.
    return std::shared_ptr<ArmedRule>(rules, armed.get());
  }
  return nullptr;
}

Status FaultInjector::Execute(const ArmedRule& armed) {
  const FaultRule& r = armed.rule;
  if (r.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(r.delay_ms));
  }
  const std::string where = "[fault:" + r.site + "] injected ";
  switch (r.action) {
    case FaultAction::kDelay:
      return Status::OK();
    case FaultAction::kKill:
      // An abrupt death: no destructors, no atexit — exactly what a
      // crashed or OOM-killed worker looks like to the coordinator.
      std::_Exit(kFaultKillExitCode);
    case FaultAction::kHang: {
      std::unique_lock<std::mutex> lock(mu_);
      const uint64_t epoch = hang_epoch_;
      hang_cv_.wait_for(
          lock, std::chrono::milliseconds(hang_cap_ms_.load()),
          [&] { return hang_epoch_ != epoch; });
      return Status::Unavailable(where + "hang (released or capped)");
    }
    case FaultAction::kFail:
    case FaultAction::kDrop:
    case FaultAction::kCorrupt:
    case FaultAction::kTruncate:
      // Payload actions degrade to a plain failure at non-payload sites.
      return Status::Unavailable(where + "failure");
  }
  return Status::Unavailable(where + "failure");
}

Status FaultInjector::Hit(std::string_view site, int shard) {
  if (!armed()) return Status::OK();
  std::shared_ptr<ArmedRule> armed_rule = Match(site, shard);
  if (armed_rule == nullptr) return Status::OK();
  return Execute(*armed_rule);
}

Status FaultInjector::MutatePayload(std::string_view site, int shard,
                                    std::string* payload, bool* dropped) {
  *dropped = false;
  if (!armed()) return Status::OK();
  std::shared_ptr<ArmedRule> armed_rule = Match(site, shard);
  if (armed_rule == nullptr) return Status::OK();
  const FaultRule& r = armed_rule->rule;
  switch (r.action) {
    case FaultAction::kDrop:
      if (r.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(r.delay_ms));
      }
      *dropped = true;
      return Status::OK();
    case FaultAction::kCorrupt:
      if (!payload->empty()) {
        // Deterministic bit damage in the payload's middle: lands inside
        // the framed body so the checksum — not the magic check — trips.
        (*payload)[payload->size() / 2] ^= static_cast<char>(0x5A);
      }
      return Status::OK();
    case FaultAction::kTruncate:
      payload->resize(payload->size() / 2);
      return Status::OK();
    default:
      return Execute(*armed_rule);
  }
}

ScopedFaultPlan::ScopedFaultPlan(std::string_view spec) {
  Result<FaultPlan> plan = FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "[libgus] invalid fault spec: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }
  FaultInjector::Global()->Arm(std::move(plan).ValueOrDie());
}

}  // namespace gus
