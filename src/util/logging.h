// Internal invariant checking for libgus.
//
// GUS_CHECK* abort the process with a diagnostic; they guard programming
// errors, never user input (user input errors surface as Status).

#ifndef GUS_UTIL_LOGGING_H_
#define GUS_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace gus {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[libgus] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace internal
}  // namespace gus

#define GUS_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::gus::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (0)

#define GUS_DCHECK(cond) GUS_CHECK(cond)

#endif  // GUS_UTIL_LOGGING_H_
