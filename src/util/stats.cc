#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gus {

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace {

// Coefficients for Acklam's inverse normal CDF approximation.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double AcklamQuantile(double p) {
  constexpr double kPLow = 0.02425;
  constexpr double kPHigh = 1.0 - kPLow;
  double q, r, x;
  if (p < kPLow) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
         kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= kPHigh) {
    q = p - 0.5;
    r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
         kA[5]) *
        q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
         1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
          kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  return x;
}

}  // namespace

double NormalQuantile(double p) {
  GUS_CHECK(p > 0.0 && p < 1.0);
  double x = AcklamQuantile(p);
  // One Halley refinement step using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double ChebyshevMultiplier(double level) {
  GUS_CHECK(level > 0.0 && level < 1.0);
  return 1.0 / std::sqrt(1.0 - level);
}

double CantelliMultiplier(double tail_probability) {
  GUS_CHECK(tail_probability > 0.0 && tail_probability < 1.0);
  return std::sqrt(1.0 / tail_probability - 1.0);
}

void MeanVar::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MeanVar::variance_population() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double MeanVar::variance_sample() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MeanVar::stddev_sample() const { return std::sqrt(variance_sample()); }

void MeanVar::Merge(const MeanVar& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
}

double CoverageCounter::half_width95() const {
  if (total_ == 0) return 0.0;
  const double p = fraction();
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(total_));
}

double EmpiricalQuantile(std::vector<double> xs, double q) {
  GUS_CHECK(!xs.empty());
  GUS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace gus
