#include "util/thread_pool.h"

#include <algorithm>

namespace gus {
namespace {

// The pool (if any) whose task the current thread is executing. Set around
// every claim loop — including the caller's own participation — so nested
// ParallelFor calls on the same pool can detect themselves and run inline
// instead of deadlocking on the batch mutex.
thread_local ThreadPool* tls_current_pool = nullptr;

class CurrentPoolScope {
 public:
  explicit CurrentPoolScope(ThreadPool* pool) : prev_(tls_current_pool) {
    tls_current_pool = pool;
  }
  ~CurrentPoolScope() { tls_current_pool = prev_; }

 private:
  ThreadPool* prev_;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  configured_.store(n, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  Spawn(n - 1);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::InPoolTask() { return tls_current_pool != nullptr; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(1);  // grows on demand, workers persist
  return pool;
}

void ThreadPool::Spawn(int count) {
  if (count <= 0) return;
  const int have = static_cast<int>(threads_.size());
  threads_.reserve(have + count);
  for (int i = 0; i < count; ++i) {
    const int worker_id = have + i + 1;  // worker 0 is the caller
    // Start at the current epoch so a worker spawned mid-life doesn't
    // mistake past batches for a fresh one.
    threads_.emplace_back(
        [this, worker_id, e = epoch_] { WorkerLoop(worker_id, e); });
    spawned_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Re-allocating under mu_ with no batch active: workers only touch
  // range_next_ between a wake and the caller's completion wait, both of
  // which bracket this lock.
  const int slots = static_cast<int>(threads_.size()) + 1;
  range_next_ = std::make_unique<std::atomic<int64_t>[]>(slots);
}

void ThreadPool::EnsureThreads(int num_threads) {
  const int want = std::max(1, num_threads);
  if (want <= this->num_threads()) return;
  std::lock_guard<std::mutex> batch(batch_mu_);  // no batch while growing
  std::lock_guard<std::mutex> lock(mu_);
  const int have = configured_.load(std::memory_order_acquire);
  if (want <= have) return;
  Spawn(want - have);
  configured_.store(want, std::memory_order_release);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  ParallelForChunked(n, /*chunk=*/1, num_threads(), Placement::kDynamic,
                     [&fn](int /*worker*/, int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) fn(i);
                     });
}

void ThreadPool::ParallelForChunked(int64_t n, int64_t chunk, int max_workers,
                                    Placement placement, const RangeFn& fn) {
  if (n <= 0) return;
  if (chunk < 1) chunk = 1;
  int workers = std::min(std::max(1, max_workers), num_threads());
  const int64_t chunks = (n + chunk - 1) / chunk;
  if (chunks < workers) workers = static_cast<int>(chunks);

  // Serial fast path: one worker, or a nested call from inside one of this
  // pool's own tasks (waiting on batch_mu_ would deadlock — the outer
  // batch can't finish while this task blocks). Touches no pool state.
  if (workers == 1 || tls_current_pool == this) {
    CurrentPoolScope scope(this);
    for (int64_t b = 0; b < n; b += chunk) {
      fn(0, b, std::min(b + chunk, n));
    }
    return;
  }

  std::lock_guard<std::mutex> batch(batch_mu_);  // one batch at a time
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    limit_ = n;
    chunk_ = chunk;
    active_workers_ = workers;
    placement_ = placement;
    remaining_.store(n, std::memory_order_relaxed);
    cursor_.store(0, std::memory_order_relaxed);
    if (placement == Placement::kRangeBound) {
      for (int w = 0; w < workers; ++w) {
        range_next_[w].store(RangeBegin(n, workers, w),
                             std::memory_order_relaxed);
      }
    }
    ++epoch_;
  }
  work_cv_.notify_all();

  RunClaimLoop(/*worker=*/0, fn, n, chunk, placement, workers);

  std::unique_lock<std::mutex> lock(mu_);
  // Wait for every index to complete AND every spawned worker to leave its
  // claim loop — a straggler still probing the (drained) cursors must not
  // observe the next batch's reset state with this batch's fn.
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 &&
           workers_in_batch_ == 0;
  });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker_id, uint64_t seen_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Batch already drained (tiny n), or this worker isn't part of it.
    if (fn_ == nullptr || worker_id >= active_workers_) continue;
    const RangeFn* fn = fn_;
    const int64_t limit = limit_;
    const int64_t chunk = chunk_;
    const Placement placement = placement_;
    const int workers = active_workers_;
    ++workers_in_batch_;
    lock.unlock();
    RunClaimLoop(worker_id, *fn, limit, chunk, placement, workers);
    lock.lock();
    --workers_in_batch_;
    if (workers_in_batch_ == 0 &&
        remaining_.load(std::memory_order_acquire) == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunClaimLoop(int worker, const RangeFn& fn, int64_t limit,
                              int64_t chunk, Placement placement,
                              int workers) {
  // Mark the thread as inside one of this pool's tasks — covers both the
  // participating caller and spawned workers — so re-entrant ParallelFor
  // calls take the inline path instead of deadlocking on batch_mu_.
  CurrentPoolScope pool_scope(this);
  if (placement == Placement::kDynamic || workers <= 1) {
    while (true) {
      const int64_t b = cursor_.fetch_add(chunk, std::memory_order_relaxed);
      if (b >= limit) break;
      const int64_t e = std::min(b + chunk, limit);
      fn(worker, b, e);
      FinishIndexes(e - b);
    }
    return;
  }
  // Range-bound: drain the own contiguous range front to back, then steal
  // from the other ranges in ring order. Each range has its own cursor, so
  // every index is still claimed exactly once.
  for (int step = 0; step < workers; ++step) {
    const int v = (worker + step) % workers;
    const int64_t range_end = RangeBegin(limit, workers, v + 1);
    while (true) {
      const int64_t b =
          range_next_[v].fetch_add(chunk, std::memory_order_relaxed);
      if (b >= range_end) break;
      const int64_t e = std::min(b + chunk, range_end);
      fn(worker, b, e);
      FinishIndexes(e - b);
    }
  }
}

void ThreadPool::FinishIndexes(int64_t count) {
  if (remaining_.fetch_sub(count, std::memory_order_acq_rel) == count) {
    // Last indexes done: wake the caller. The lock pairs with the caller's
    // predicate check so the notify can't slip between its evaluation and
    // its wait.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

PoolLease::PoolLease(int num_threads) {
  if (ThreadPool::InPoolTask()) {
    local_.emplace(num_threads);
    pool_ = &*local_;
    // All of the transient pool's spawns are on this lease's account.
    spawned_before_ = 0;
    wakeups_before_ = 0;
  } else {
    pool_ = &ThreadPool::Shared();
    spawned_before_ = pool_->spawned_threads();
    wakeups_before_ = pool_->wakeups();
    pool_->EnsureThreads(num_threads);
  }
}

}  // namespace gus
