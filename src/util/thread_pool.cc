#include "util/thread_pool.h"

#include <algorithm>

namespace gus {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  // Serialize batches: wait until no batch is active.
  done_cv_.wait(lock, [this] { return fn_ == nullptr && in_flight_ == 0; });
  fn_ = &fn;
  next_ = 0;
  limit_ = n;
  ++epoch_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return next_ >= limit_ && in_flight_ == 0; });
  fn_ = nullptr;
  done_cv_.notify_all();  // wake any queued ParallelFor caller
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_epoch = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (fn_ != nullptr && epoch_ != seen_epoch);
    });
    if (shutdown_) return;
    seen_epoch = epoch_;
    while (fn_ != nullptr && next_ < limit_) {
      const int64_t i = next_++;
      ++in_flight_;
      const std::function<void(int64_t)>* fn = fn_;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      --in_flight_;
      if (next_ >= limit_ && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gus
