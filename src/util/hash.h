// 64-bit hashing utilities.
//
// Used for (a) hash-join / group-by keys and (b) the lineage-seeded
// pseudo-random sub-sampling of Section 7, which requires a deterministic
// high-quality map (seed, lineage id) -> [0,1).

#ifndef GUS_UTIL_HASH_H_
#define GUS_UTIL_HASH_H_

#include <cstdint>

namespace gus {

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// \brief Folds a byte span into a running FNV-1a 64-bit digest.
///
/// Seed with kFnv1aOffset (or chain calls for multi-part content). Used
/// for state digests and content fingerprints — one implementation so the
/// constants never diverge between call sites.
inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ULL;

inline uint64_t HashBytes(uint64_t h, const void* data, unsigned long len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (unsigned long i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Maps a 64-bit hash to a double uniform in [0, 1).
inline double HashToUnit(uint64_t h) {
  // Take the top 53 bits for a full-precision double mantissa.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// \brief Deterministic pseudo-random unit value for a lineage id.
///
/// This is the Section 7 primitive: the same (seed, id) pair always yields
/// the same value, so a tuple from a base relation receives one consistent
/// keep/drop decision across every result tuple it participates in.
inline double LineageUnitValue(uint64_t seed, uint64_t id) {
  return HashToUnit(Mix64(HashCombine(seed, id)));
}

}  // namespace gus

#endif  // GUS_UTIL_HASH_H_
