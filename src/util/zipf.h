// Zipf-distributed integer generator, used to put realistic skew into the
// synthetic TPC-H-style data (join fanouts, value distributions).

#ifndef GUS_UTIL_ZIPF_H_
#define GUS_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace gus {

/// \brief Samples ranks 1..n with P(k) proportional to 1/k^theta.
///
/// theta = 0 degenerates to uniform. Uses a precomputed inverse-CDF table;
/// construction is O(n), sampling is O(log n).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws a rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace gus

#endif  // GUS_UTIL_ZIPF_H_
