// Status / Result error model for libgus.
//
// Follows the Arrow/RocksDB idiom: library functions that can fail return
// Status (or Result<T> when they produce a value) instead of throwing.
// Internal invariant violations use GUS_CHECK (logging.h) and abort.

#ifndef GUS_UTIL_STATUS_H_
#define GUS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace gus {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kKeyError,
  kTypeError,
  /// A deadline elapsed before the operation completed. Retryable: the
  /// operation may succeed if re-attempted with a fresh deadline.
  kDeadlineExceeded,
  /// A transient availability failure (lost worker, torn or missing
  /// transport frame). Retryable: re-executing the same work is expected
  /// to succeed once the fault clears — unlike kInvalidArgument, which
  /// marks divergent state (seed/catalog/version skew) that no retry fixes.
  kUnavailable,
};

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Error statuses
/// carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Value-or-error: holds either a T or a non-OK Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result is a
/// programming error (checked in debug via the variant).
template <typename T>
class Result {
 public:
  /// Implicit from a value (OK result).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status.
  Result(Status status) : state_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Error status (Status::OK() when ok()).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& { return std::get<T>(state_); }
  T& ValueOrDie() & { return std::get<T>(state_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(state_)); }

  /// Alias matching Arrow naming.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace gus

/// Propagates a non-OK Status from an expression.
#define GUS_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::gus::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define GUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define GUS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define GUS_ASSIGN_OR_RETURN_NAME(x, y) GUS_ASSIGN_OR_RETURN_CONCAT(x, y)
#define GUS_ASSIGN_OR_RETURN(lhs, rexpr) \
  GUS_ASSIGN_OR_RETURN_IMPL(             \
      GUS_ASSIGN_OR_RETURN_NAME(_gus_result_, __COUNTER__), lhs, rexpr)

#endif  // GUS_UTIL_STATUS_H_
