// Deterministic random number generation for samplers, data generation and
// Monte-Carlo experiments.

#ifndef GUS_UTIL_RANDOM_H_
#define GUS_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "util/hash.h"
#include "util/logging.h"

namespace gus {

/// \brief xoshiro256**-style generator seeded via SplitMix64.
///
/// Small, fast, and fully deterministic given the seed; every randomized
/// component in libgus takes an explicit seed so experiments reproduce.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      sm += 0x9e3779b97f4a7c15ULL;
      word = Mix64(sm);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    ++num_draws_;
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return HashToUnit(Next()); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    GUS_DCHECK(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GUS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    while (u1 <= 0.0) u1 = Uniform();
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return -std::log(u) / lambda;
  }

  /// Derives an independent child generator (for per-trial streams).
  Rng Fork(uint64_t stream) {
    return Rng(HashCombine(Next(), Mix64(stream)));
  }

  /// \brief Pure SplitMix64 derivation of an independent stream from
  /// (seed, stream_id).
  ///
  /// Unlike Fork, no generator state is consumed: the result depends only on
  /// the two arguments. Morsel-parallel execution derives each partition's
  /// generator as ForkStream(base, morsel_index), so a partition's draws
  /// reproduce for a fixed (seed, partition) regardless of which worker runs
  /// it or in what order.
  static Rng ForkStream(uint64_t seed, uint64_t stream) {
    return Rng(Mix64(HashCombine(Mix64(seed), Mix64(stream))));
  }

  /// \brief Raw 64-bit values drawn since construction (or the last
  /// ResetDrawCount).
  ///
  /// Every public draw ultimately calls Next() exactly once per raw value,
  /// so this counts generator work — the benchmarks use it to verify the
  /// geometric-skip samplers' O(pN) draw bound.
  uint64_t num_draws() const { return num_draws_; }
  void ResetDrawCount() { num_draws_ = 0; }

  /// Words of generator state captured by SaveState / RestoreState.
  static constexpr int kStateWords = 4;

  /// \brief Copies the generator state (4 words) plus the draw counter.
  ///
  /// SaveState followed by RestoreState resumes the exact draw sequence —
  /// the distributed layer ships stream positions across processes this
  /// way (est/wire.h) and validates that every shard worker's serial phase
  /// consumed the identical prefix.
  void SaveState(uint64_t state[kStateWords], uint64_t* draws) const {
    for (int i = 0; i < kStateWords; ++i) state[i] = s_[i];
    *draws = num_draws_;
  }

  void RestoreState(const uint64_t state[kStateWords], uint64_t draws) {
    for (int i = 0; i < kStateWords; ++i) s_[i] = state[i];
    num_draws_ = draws;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  uint64_t num_draws_ = 0;
};

}  // namespace gus

#endif  // GUS_UTIL_RANDOM_H_
