// The SOA transform: rewrites a plan with interspersed sampling operators
// into the analyzable normal form
//
//     relational subtree  →  single GUS quasi-operator  →  aggregate
//
// (paper Section 4). The relational content is untouched — the transform is
// purely for analysis; execution still uses the original plan.
//
// Rewrite rules applied bottom-up:
//   scan             →  identity GUS over {relation}          (Prop. 4)
//   sample(child)    →  Compact(translate(spec), G_child)     (Prop. 8)
//   select(child)    →  G_child                               (Prop. 5)
//   join / product   →  GusJoin(G_left, G_right)              (Prop. 6)
//   union            →  GusUnion(G_left, G_right)             (Prop. 7;
//                       requires both children to be samples of the same
//                       relational expression)

#ifndef GUS_PLAN_SOA_TRANSFORM_H_
#define GUS_PLAN_SOA_TRANSFORM_H_

#include <string>
#include <vector>

#include "algebra/gus_params.h"
#include "plan/plan_node.h"
#include "util/status.h"

namespace gus {

/// One rewrite step, for tracing / reproducing the paper's figure panels.
struct SoaStep {
  /// Which rule fired ("Prop 4", "Prop 5", ...; "translate" for Fig. 1).
  std::string rule;
  /// Human-readable description of the rewrite.
  std::string description;
};

/// \brief Result of the SOA transform.
struct SoaResult {
  /// The single top GUS quasi-operator; feeding Theorem 1 with these
  /// parameters analyzes the original plan.
  GusParams top;
  /// The plan with every sample node removed (the relational subtree).
  PlanPtr relational;
  /// The rewrite trace, leaf-to-root.
  std::vector<SoaStep> trace;

  std::string TraceToString() const;
};

/// \brief Runs the transform.
///
/// Fails if the plan violates an algebra precondition (overlapping lineage
/// in a join — self-joins — or a union of samples of different
/// expressions).
Result<SoaResult> SoaTransform(const PlanPtr& plan);

}  // namespace gus

#endif  // GUS_PLAN_SOA_TRANSFORM_H_
