#include "plan/exec_stats.h"

#include <cstdlib>
#include <sstream>

namespace gus {

void ExecStats::Reset() {
  *this = ExecStats();
}

std::string ExecStats::ToString(const std::string& label) const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "[gus profile]";
  if (!label.empty()) out << " " << label;
  out << (serial_fallback ? " (serial fallback)" : "") << "\n";
  out << "  total      " << total_ms << " ms\n";
  out << "  prepare    " << prepare_ms << " ms\n";
  out << "  parallel   " << parallel_ms << " ms  (sink fold " << sink_fold_ms
      << " ms inside)\n";
  out << "  gather     " << gather_ms << " ms\n";
  out << "  pivot      " << pivot_rows << " rows -> " << morsels
      << " morsels x " << morsel_rows << " rows\n";
  out << "  emitted    " << rows_emitted << " rows, " << bytes_moved
      << " bytes\n";
  out << "  sinks      " << sinks_created << " created, " << sinks_recycled
      << " recycled\n";
  out << "  pool       " << workers << " workers, " << pool_wakeups
      << " wakeups, " << pool_threads_spawned << " spawned\n";
  out << "  morsels/worker ";
  for (size_t w = 0; w < worker_morsels.size(); ++w) {
    if (w > 0) out << " ";
    out << worker_morsels[w];
  }
  out << "\n";
  if (shard_attempts > 0) {
    out << "  shards     " << shard_attempts << " attempts, "
        << shard_retries << " retries, " << shard_deadline_hits
        << " deadline hits, " << shards_lost << " lost";
    if (degraded) {
      out << "  DEGRADED (coverage " << effective_coverage << ")";
    }
    out << "\n";
  }
  if (segments_total > 0 || segments_faulted > 0) {
    out << "  store      " << segments_total << " segments, "
        << segments_skipped << " skipped, " << segments_faulted
        << " faulted, " << store_bytes_read << " bytes read\n";
  }
  if (cache_hits > 0 || cache_misses > 0 || cache_invalidations > 0) {
    out << "  view cache " << cache_hits << " hits, " << cache_misses
        << " misses, " << cache_invalidations << " invalidations\n";
  }
  return out.str();
}

bool ProfileEnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("GUS_PROFILE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace gus
