#include "plan/soa_transform.h"

#include <sstream>

#include "algebra/ops.h"
#include "algebra/translate.h"

namespace gus {

namespace {

struct SubResult {
  GusParams gus;
  PlanPtr relational;
};

Result<SubResult> Transform(const PlanPtr& plan, std::vector<SoaStep>* trace) {
  switch (plan->op()) {
    case PlanOp::kScan: {
      GUS_ASSIGN_OR_RETURN(LineageSchema schema,
                           LineageSchema::Make({plan->relation()}));
      trace->push_back(
          {"Prop 4", "insert identity GUS G(1,1) over " + schema.ToString()});
      return SubResult{GusParams::Identity(std::move(schema)), plan};
    }
    case PlanOp::kSample: {
      GUS_ASSIGN_OR_RETURN(SubResult child, Transform(plan->child(), trace));
      GUS_ASSIGN_OR_RETURN(
          GusParams sampler_gus,
          TranslateSampling(plan->spec(), child.gus.schema()));
      trace->push_back({"translate", "rewrite " + plan->spec().ToString() +
                                         " as GUS quasi-operator " +
                                         sampler_gus.ToString()});
      GUS_ASSIGN_OR_RETURN(GusParams combined,
                           GusCompact(sampler_gus, child.gus));
      if (child.gus.a() != 1.0 ||
          child.gus.b(SubsetMask{0}) != 1.0) {  // Non-trivial child GUS.
        trace->push_back({"Prop 8", "compact stacked GUS operators over " +
                                        combined.schema().ToString() +
                                        " -> " + combined.ToString()});
      }
      return SubResult{std::move(combined), child.relational};
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(SubResult child, Transform(plan->child(), trace));
      trace->push_back({"Prop 5", "commute GUS over " +
                                      child.gus.schema().ToString() +
                                      " past selection " +
                                      plan->predicate()->ToString()});
      return SubResult{
          std::move(child.gus),
          PlanNode::SelectNode(plan->predicate(), child.relational)};
    }
    case PlanOp::kJoin:
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(SubResult l, Transform(plan->left(), trace));
      GUS_ASSIGN_OR_RETURN(SubResult r, Transform(plan->right(), trace));
      GUS_ASSIGN_OR_RETURN(GusParams joined, GusJoin(l.gus, r.gus));
      trace->push_back(
          {"Prop 6", "commute GUS over " + l.gus.schema().ToString() +
                         " and GUS over " + r.gus.schema().ToString() +
                         " past the join -> " + joined.ToString()});
      PlanPtr rel =
          plan->op() == PlanOp::kJoin
              ? PlanNode::Join(l.relational, r.relational, plan->left_key(),
                               plan->right_key())
              : PlanNode::Product(l.relational, r.relational);
      return SubResult{std::move(joined), std::move(rel)};
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(SubResult l, Transform(plan->left(), trace));
      GUS_ASSIGN_OR_RETURN(SubResult r, Transform(plan->right(), trace));
      if (!PlanNode::RelationalEqual(l.relational, r.relational)) {
        return Status::InvalidArgument(
            "GUS union (Prop 7) requires both union branches to be samples "
            "of the same relational expression");
      }
      GUS_ASSIGN_OR_RETURN(GusParams merged, GusUnion(l.gus, r.gus));
      trace->push_back({"Prop 7", "merge unioned samples over " +
                                      merged.schema().ToString() + " -> " +
                                      merged.ToString()});
      // Both branches are the same expression; keep one copy.
      return SubResult{std::move(merged), l.relational};
    }
  }
  return Status::Internal("unknown plan op");
}

}  // namespace

std::string SoaResult::TraceToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out << "  [" << i + 1 << "] (" << trace[i].rule << ") "
        << trace[i].description << "\n";
  }
  return out.str();
}

Result<SoaResult> SoaTransform(const PlanPtr& plan) {
  std::vector<SoaStep> trace;
  GUS_ASSIGN_OR_RETURN(SubResult sub, Transform(plan, &trace));
  return SoaResult{std::move(sub.gus), std::move(sub.relational),
                   std::move(trace)};
}

}  // namespace gus
