#include "plan/columnar_executor.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "plan/vector_eval.h"
#include "sampling/samplers.h"
#include "util/hash.h"
#include "util/logging.h"

namespace gus {

Result<const ColumnarRelation*> ColumnarCatalog::Get(const std::string& name) {
  auto cached = cache_.find(name);
  if (cached != cache_.end()) return &cached->second;
  auto it = catalog_->find(name);
  if (it == catalog_->end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  GUS_ASSIGN_OR_RETURN(ColumnarRelation col,
                       ColumnarRelation::FromRelation(it->second));
  return &cache_.emplace(name, std::move(col)).first->second;
}

void PrepareBatch(const LayoutPtr& layout, ColumnBatch* out) {
  if (out->layout_ptr() != layout) {
    out->ResetLayout(layout);
  } else {
    out->Clear();
  }
}

Result<ColumnarRelation> DrainSource(BatchSource* src) {
  ColumnarRelation out(src->layout());
  ColumnBatch scratch;
  while (true) {
    GUS_ASSIGN_OR_RETURN(bool more, src->Next(&scratch));
    if (!more) break;
    out.AppendBatch(scratch);
  }
  return out;
}

Result<LayoutPtr> ConcatBatchLayouts(const BatchLayout& left,
                                     const BatchLayout& right) {
  for (const auto& name : left.lineage_schema) {
    for (const auto& other : right.lineage_schema) {
      if (name == other) {
        return Status::InvalidArgument(
            "join inputs must have disjoint lineage schemas (self-joins are "
            "not supported by the GUS algebra, paper Prop. 6)");
      }
    }
  }
  auto layout = std::make_shared<BatchLayout>();
  GUS_ASSIGN_OR_RETURN(layout->schema,
                       Schema::Concat(left.schema, right.schema));
  layout->lineage_schema = left.lineage_schema;
  layout->lineage_schema.insert(layout->lineage_schema.end(),
                                right.lineage_schema.begin(),
                                right.lineage_schema.end());
  return LayoutPtr(layout);
}

/// Per-dictionary key hashes (must agree with Value::Hash — see
/// HashStringKey).
std::vector<uint64_t> DictKeyHashes(const ColumnData& col) {
  std::vector<uint64_t> hashes;
  if (col.type != ValueType::kString || col.dict == nullptr) return hashes;
  hashes.reserve(col.dict->values.size());
  for (const auto& s : col.dict->values) hashes.push_back(HashStringKey(s));
  return hashes;
}

uint64_t KeyHashAt(const ColumnData& col, int64_t i,
                   const std::vector<uint64_t>& dict_hashes) {
  switch (col.type) {
    case ValueType::kInt64: return HashInt64Key(col.i64[i]);
    case ValueType::kFloat64: return HashFloat64Key(col.f64[i]);
    case ValueType::kString: return dict_hashes[col.codes[i]];
  }
  GUS_CHECK(false && "unhandled ValueType");
  return 0;
}

/// Typed key equality mirroring Value::KeyEquals (mixed numeric types
/// compare by exact promoted value).
bool KeyEqualsAt(const ColumnData& a, int64_t i, const ColumnData& b,
                 int64_t j) {
  if (a.type == b.type) {
    switch (a.type) {
      case ValueType::kInt64: return a.i64[i] == b.i64[j];
      case ValueType::kFloat64: return a.f64[i] == b.f64[j];
      case ValueType::kString:
        if (a.dict == b.dict) return a.codes[i] == b.codes[j];
        return a.StringAt(i) == b.StringAt(j);
    }
    GUS_CHECK(false && "unhandled ValueType");
  }
  if (a.type == ValueType::kString || b.type == ValueType::kString) {
    return false;
  }
  const double d = a.type == ValueType::kFloat64 ? a.f64[i] : b.f64[j];
  const int64_t v = a.type == ValueType::kInt64 ? a.i64[i] : b.i64[j];
  int64_t as_int;
  return Float64AsExactInt64(d, &as_int) && as_int == v;
}

// ---- Sources ---------------------------------------------------------------

namespace {

class ScanSource final : public BatchSource {
 public:
  ScanSource(const ColumnarRelation* rel, int64_t batch_rows, int64_t begin,
             int64_t len)
      : BatchSource(rel->layout_ptr()),
        rel_(rel),
        batch_rows_(batch_rows),
        pos_(begin),
        end_(len < 0 ? rel->num_rows()
                     : std::min(begin + len, rel->num_rows())) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (pos_ >= end_) return false;
    const int64_t len = std::min(batch_rows_, end_ - pos_);
    rel_->EmitSlice(pos_, len, out);
    pos_ += len;
    return true;
  }

 private:
  const ColumnarRelation* rel_;
  int64_t batch_rows_;
  int64_t pos_;
  int64_t end_;
};

class SelectSource final : public BatchSource {
 public:
  SelectSource(std::unique_ptr<BatchSource> child, ExprPtr bound)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        bound_(std::move(bound)) {}

  Result<bool> Next(ColumnBatch* out) override {
    PrepareBatch(layout_, out);
    GUS_ASSIGN_OR_RETURN(bool more, child_->Next(&scratch_));
    if (!more) return false;
    GUS_RETURN_NOT_OK(EvalPredicateBatch(bound_, scratch_, &sel_));
    out->GatherFrom(scratch_, sel_);
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  ExprPtr bound_;
  ColumnBatch scratch_;
  std::vector<int64_t> sel_;
};

/// Exact-mode block sampling: streaming lineage re-key to block ids.
class BlockRekeySource final : public BatchSource {
 public:
  BlockRekeySource(std::unique_ptr<BatchSource> child, int64_t block_size)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        block_size_(block_size) {}

  Result<bool> Next(ColumnBatch* out) override {
    GUS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto& lineage = *out->mutable_lineage();
    for (int64_t i = 0; i < out->num_rows(); ++i) {
      lineage[i] = static_cast<uint64_t>((base_ + i) / block_size_);
    }
    base_ += out->num_rows();
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  int64_t block_size_;
  int64_t base_ = 0;
};

/// Sampled-mode sampler: pipeline breaker routed through the shared
/// index-selection core, so the Rng sequence matches the row engine's.
class SampleBreakerSource final : public BatchSource {
 public:
  SampleBreakerSource(std::unique_ptr<BatchSource> child, SamplingSpec spec,
                      Rng* rng, int64_t batch_rows)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        spec_(std::move(spec)),
        rng_(rng),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) {
      GUS_ASSIGN_OR_RETURN(mat_, DrainSource(child_.get()));
      const ColumnBatch& data = mat_.data();
      GUS_ASSIGN_OR_RETURN(
          SamplingDecision d,
          DecideSampling(spec_, mat_.num_rows(), mat_.lineage_schema(),
                         [&data](int64_t r, int dim) {
                           return data.lineage_at(r, dim);
                         },
                         rng_));
      keep_ = std::move(d.keep);
      rekey_ = d.rekey_block_lineage;
      drained_ = true;
    }
    if (pos_ >= static_cast<int64_t>(keep_.size())) return false;
    PrepareBatch(layout_, out);
    const int64_t len =
        std::min(batch_rows_, static_cast<int64_t>(keep_.size()) - pos_);
    const int64_t* sel = keep_.data() + pos_;
    out->GatherFrom(mat_.data(), sel, len);
    if (rekey_) {
      // Block lineage: id = pre-filter row index / block size.
      auto& lineage = *out->mutable_lineage();
      for (int64_t k = 0; k < len; ++k) {
        lineage[k] = static_cast<uint64_t>(sel[k] / spec_.block_size);
      }
    }
    pos_ += len;
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  SamplingSpec spec_;
  Rng* rng_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation mat_;
  std::vector<int64_t> keep_;
  bool rekey_ = false;
  int64_t pos_ = 0;
};

/// Hash equi-join: breaker on both inputs (left drains first, preserving
/// the row engine's post-order Rng consumption), streaming probe output.
class JoinSource final : public BatchSource {
 public:
  JoinSource(LayoutPtr layout, std::unique_ptr<BatchSource> left,
             std::unique_ptr<BatchSource> right, int left_key, int right_key,
             int64_t batch_rows)
      : BatchSource(std::move(layout)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) GUS_RETURN_NOT_OK(DrainAndBuild());
    const ColumnBatch& probe = probe_mat_->data();
    if (probe_pos_ >= probe.num_rows() && cands_ == nullptr) return false;
    PrepareBatch(layout_, out);
    const ColumnData& probe_key = probe.column(probe_key_);
    const ColumnData& build_key = build_mat_->data().column(build_key_);
    while (out->num_rows() < batch_rows_) {
      if (cands_ == nullptr) {
        if (probe_pos_ >= probe.num_rows()) break;
        const uint64_t h =
            KeyHashAt(probe_key, probe_pos_, probe_dict_hashes_);
        auto it = table_.find(h);
        if (it == table_.end()) {
          ++probe_pos_;
          continue;
        }
        cands_ = &it->second;
        cand_pos_ = 0;
      }
      while (cand_pos_ < cands_->size() && out->num_rows() < batch_rows_) {
        const int64_t b = (*cands_)[cand_pos_++];
        if (!KeyEqualsAt(build_key, b, probe_key, probe_pos_)) continue;
        const int64_t li = build_left_ ? b : probe_pos_;
        const int64_t ri = build_left_ ? probe_pos_ : b;
        out->AppendConcatRowFrom(left_mat_.data(), li, right_mat_.data(), ri);
      }
      if (cand_pos_ >= cands_->size()) {
        cands_ = nullptr;
        ++probe_pos_;
      }
    }
    return true;
  }

 private:
  Status DrainAndBuild() {
    GUS_ASSIGN_OR_RETURN(left_mat_, DrainSource(left_.get()));
    GUS_ASSIGN_OR_RETURN(right_mat_, DrainSource(right_.get()));
    // Build on the smaller input — the row engine's rule, bit for bit.
    build_left_ = left_mat_.num_rows() <= right_mat_.num_rows();
    build_mat_ = build_left_ ? &left_mat_ : &right_mat_;
    probe_mat_ = build_left_ ? &right_mat_ : &left_mat_;
    build_key_ = build_left_ ? left_key_ : right_key_;
    probe_key_ = build_left_ ? right_key_ : left_key_;
    const ColumnData& key = build_mat_->data().column(build_key_);
    build_dict_hashes_ = DictKeyHashes(key);
    probe_dict_hashes_ = DictKeyHashes(probe_mat_->data().column(probe_key_));
    table_.reserve(static_cast<size_t>(build_mat_->num_rows()));
    for (int64_t i = 0; i < build_mat_->num_rows(); ++i) {
      table_[KeyHashAt(key, i, build_dict_hashes_)].push_back(i);
    }
    drained_ = true;
    return Status::OK();
  }

  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int left_key_;
  int right_key_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation left_mat_, right_mat_;
  bool build_left_ = true;
  const ColumnarRelation* build_mat_ = nullptr;
  const ColumnarRelation* probe_mat_ = nullptr;
  int build_key_ = 0, probe_key_ = 0;
  std::vector<uint64_t> build_dict_hashes_, probe_dict_hashes_;
  std::unordered_map<uint64_t, std::vector<int64_t>> table_;
  int64_t probe_pos_ = 0;
  const std::vector<int64_t>* cands_ = nullptr;
  size_t cand_pos_ = 0;
};

/// Cross product: breaker on both inputs, left-major streaming output.
class ProductSource final : public BatchSource {
 public:
  ProductSource(LayoutPtr layout, std::unique_ptr<BatchSource> left,
                std::unique_ptr<BatchSource> right, int64_t batch_rows)
      : BatchSource(std::move(layout)),
        left_(std::move(left)),
        right_(std::move(right)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) {
      GUS_ASSIGN_OR_RETURN(left_mat_, DrainSource(left_.get()));
      GUS_ASSIGN_OR_RETURN(right_mat_, DrainSource(right_.get()));
      drained_ = true;
    }
    if (i_ >= left_mat_.num_rows() || right_mat_.num_rows() == 0) {
      return false;
    }
    PrepareBatch(layout_, out);
    while (out->num_rows() < batch_rows_ && i_ < left_mat_.num_rows()) {
      out->AppendConcatRowFrom(left_mat_.data(), i_, right_mat_.data(), j_);
      if (++j_ >= right_mat_.num_rows()) {
        j_ = 0;
        ++i_;
      }
    }
    return true;
  }

 private:
  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation left_mat_, right_mat_;
  int64_t i_ = 0, j_ = 0;
};

/// Exact-mode union: the exact evaluation of both branches yields the same
/// set, so only the left branch's rows flow downstream — but the right
/// branch still *runs* (rows discarded) once the left is exhausted, so its
/// runtime errors surface exactly as they do in the row engine, which
/// executes both branches.
class ExactUnionSource final : public BatchSource {
 public:
  ExactUnionSource(std::unique_ptr<BatchSource> left,
                   std::unique_ptr<BatchSource> right)
      : BatchSource(left->layout()),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!left_done_) {
      GUS_ASSIGN_OR_RETURN(bool more, left_->Next(out));
      if (more) return true;
      left_done_ = true;
    }
    while (!right_done_) {
      GUS_ASSIGN_OR_RETURN(bool more, right_->Next(&discard_));
      if (!more) right_done_ = true;
    }
    return false;
  }

 private:
  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  ColumnBatch discard_;
  bool left_done_ = false;
  bool right_done_ = false;
};

/// Bag union keeping each lineage once (first occurrence, left first) —
/// the sampled-mode GUS union of Prop. 7.
class UnionSource final : public BatchSource {
 public:
  UnionSource(std::unique_ptr<BatchSource> left,
              std::unique_ptr<BatchSource> right, int64_t batch_rows)
      : BatchSource(left->layout()),
        left_(std::move(left)),
        right_(std::move(right)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) GUS_RETURN_NOT_OK(DrainAndDedup());
    const int64_t total_a = static_cast<int64_t>(sel_a_.size());
    const int64_t total_b = static_cast<int64_t>(sel_b_.size());
    if (pos_ >= total_a + total_b) return false;
    PrepareBatch(layout_, out);
    while (out->num_rows() < batch_rows_ && pos_ < total_a + total_b) {
      const int64_t want = batch_rows_ - out->num_rows();
      if (pos_ < total_a) {
        const int64_t len = std::min(want, total_a - pos_);
        out->GatherFrom(a_mat_.data(), sel_a_.data() + pos_, len);
        pos_ += len;
      } else {
        const int64_t off = pos_ - total_a;
        const int64_t len = std::min(want, total_b - off);
        out->GatherFrom(b_mat_.data(), sel_b_.data() + off, len);
        pos_ += len;
      }
    }
    return true;
  }

 private:
  Status DrainAndDedup() {
    GUS_ASSIGN_OR_RETURN(a_mat_, DrainSource(left_.get()));
    GUS_ASSIGN_OR_RETURN(b_mat_, DrainSource(right_.get()));
    const int arity = layout_->lineage_arity();
    std::unordered_set<uint64_t> seen;
    seen.reserve(
        static_cast<size_t>(a_mat_.num_rows() + b_mat_.num_rows()));
    auto add_all = [&](const ColumnarRelation& mat,
                       std::vector<int64_t>* sel) {
      const auto& lineage = mat.data().lineage();
      for (int64_t i = 0; i < mat.num_rows(); ++i) {
        const uint64_t h = HashLineageRow(
            lineage.data() + static_cast<size_t>(i) * arity, arity);
        if (seen.insert(h).second) sel->push_back(i);
      }
    };
    add_all(a_mat_, &sel_a_);
    add_all(b_mat_, &sel_b_);
    drained_ = true;
    return Status::OK();
  }

  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation a_mat_, b_mat_;
  std::vector<int64_t> sel_a_, sel_b_;
  int64_t pos_ = 0;
};

}  // namespace

std::unique_ptr<BatchSource> MakeScanSource(const ColumnarRelation* rel,
                                            int64_t batch_rows, int64_t begin,
                                            int64_t len) {
  return std::unique_ptr<BatchSource>(
      new ScanSource(rel, batch_rows, begin, len));
}

Result<std::unique_ptr<BatchSource>> MakeSelectSource(
    std::unique_ptr<BatchSource> child, const ExprPtr& predicate) {
  GUS_ASSIGN_OR_RETURN(ExprPtr bound,
                       predicate->Bind(child->layout()->schema));
  return std::unique_ptr<BatchSource>(
      new SelectSource(std::move(child), std::move(bound)));
}

Result<std::unique_ptr<BatchSource>> MakeSampleSource(
    std::unique_ptr<BatchSource> child, const SamplingSpec& spec, Rng* rng,
    int64_t batch_rows) {
  return std::unique_ptr<BatchSource>(
      new SampleBreakerSource(std::move(child), spec, rng, batch_rows));
}

Result<std::unique_ptr<BatchSource>> CompileBatchPipeline(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    int64_t batch_rows) {
  if (batch_rows < 1) {
    return Status::InvalidArgument("batch_rows must be >= 1");
  }
  switch (plan->op()) {
    case PlanOp::kScan: {
      GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel,
                           catalog->Get(plan->relation()));
      return MakeScanSource(rel, batch_rows);
    }
    case PlanOp::kSample: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> child,
          CompileBatchPipeline(plan->child(), catalog, rng, mode, batch_rows));
      if (mode == ExecMode::kExact) {
        // Sampling is a no-op in exact mode, but block sampling still
        // re-keys lineage so both modes agree on lineage granularity.
        if (plan->spec().method == SamplingMethod::kBlockBernoulli) {
          if (plan->spec().block_size <= 0) {
            return Status::InvalidArgument("block_size must be positive");
          }
          if (child->layout()->lineage_arity() != 1) {
            return Status::InvalidArgument(
                "block lineage applies to base (single-lineage) relations");
          }
          return std::unique_ptr<BatchSource>(
              new BlockRekeySource(std::move(child), plan->spec().block_size));
        }
        return child;
      }
      return std::unique_ptr<BatchSource>(new SampleBreakerSource(
          std::move(child), plan->spec(), rng, batch_rows));
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> child,
          CompileBatchPipeline(plan->child(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(ExprPtr bound,
                           plan->predicate()->Bind(child->layout()->schema));
      return std::unique_ptr<BatchSource>(
          new SelectSource(std::move(child), std::move(bound)));
    }
    case PlanOp::kJoin: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          LayoutPtr layout,
          ConcatBatchLayouts(*left->layout(), *right->layout()));
      GUS_ASSIGN_OR_RETURN(int lk,
                           left->layout()->schema.IndexOf(plan->left_key()));
      GUS_ASSIGN_OR_RETURN(int rk,
                           right->layout()->schema.IndexOf(plan->right_key()));
      return std::unique_ptr<BatchSource>(
          new JoinSource(std::move(layout), std::move(left), std::move(right),
                         lk, rk, batch_rows));
    }
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          LayoutPtr layout,
          ConcatBatchLayouts(*left->layout(), *right->layout()));
      return std::unique_ptr<BatchSource>(new ProductSource(
          std::move(layout), std::move(left), std::move(right), batch_rows));
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      if (mode == ExecMode::kExact) {
        // No sampler below consumes the Rng in exact mode, so only the
        // left branch's rows are needed; the right branch runs for its
        // error effects (see ExactUnionSource).
        return std::unique_ptr<BatchSource>(
            new ExactUnionSource(std::move(left), std::move(right)));
      }
      if (!(left->layout()->schema == right->layout()->schema)) {
        return Status::InvalidArgument(
            "union inputs must share a column schema");
      }
      if (left->layout()->lineage_schema != right->layout()->lineage_schema) {
        return Status::InvalidArgument(
            "union inputs must share a lineage schema (samples of the same "
            "expression, paper Prop. 7)");
      }
      return std::unique_ptr<BatchSource>(
          new UnionSource(std::move(left), std::move(right), batch_rows));
    }
  }
  return Status::Internal("unknown plan op");
}

Result<ColumnarRelation> ExecutePlanColumnar(const PlanPtr& plan,
                                             ColumnarCatalog* catalog,
                                             Rng* rng, ExecMode mode,
                                             int64_t batch_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(plan, catalog, rng, mode, batch_rows));
  return DrainSource(pipeline.get());
}

Status ExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                         Rng* rng, ExecMode mode, BatchSink* sink,
                         int64_t batch_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(plan, catalog, rng, mode, batch_rows));
  ColumnBatch batch;
  while (true) {
    GUS_ASSIGN_OR_RETURN(bool more, pipeline->Next(&batch));
    if (!more) break;
    if (batch.num_rows() == 0) continue;
    GUS_RETURN_NOT_OK(sink->Consume(batch));
  }
  return Status::OK();
}

}  // namespace gus
