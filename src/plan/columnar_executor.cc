#include "plan/columnar_executor.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kernels/join_hash_table.h"
#include "kernels/key_hash.h"
#include "kernels/sampling_kernels.h"
#include "plan/vector_eval.h"
#include "sampling/samplers.h"
#include "store/segment_source.h"
#include "util/hash.h"
#include "util/logging.h"

namespace gus {

Result<bool> BatchSource::Next(ColumnBatch* out) {
  SelView view;
  GUS_ASSIGN_OR_RETURN(bool more, NextView(&view));
  if (!more) return false;
  PrepareBatch(layout_, out);
  if (view.num_rows() == 0) return true;
  if (view.contiguous()) {
    out->AppendRangeFrom(*view.data, view.begin, view.len);
  } else {
    out->GatherFrom(*view.data, view.sel, view.sel_len);
  }
  return true;
}

Result<bool> BatchSource::NextView(SelView* out) {
  GUS_ASSIGN_OR_RETURN(bool more, Next(&view_scratch_));
  if (!more) return false;
  *out = SelView::Whole(&view_scratch_);
  return true;
}

Result<const ColumnarRelation*> ColumnarCatalog::Get(const std::string& name) {
  auto cached = cache_.find(name);
  if (cached != cache_.end()) return &cached->second;
  auto it = catalog_->find(name);
  if (it == catalog_->end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  GUS_ASSIGN_OR_RETURN(ColumnarRelation col,
                       ColumnarRelation::FromRelation(it->second));
  return &cache_.emplace(name, std::move(col)).first->second;
}

Result<uint64_t> ColumnarCatalog::Fingerprint(const std::string& name) {
  auto cached = fingerprints_.find(name);
  if (cached != fingerprints_.end()) return cached->second;
  GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel, Get(name));
  const uint64_t h = ContentFingerprint(name, rel->data());
  fingerprints_.emplace(name, h);
  return h;
}

Result<int64_t> ColumnarCatalog::RowCountOf(const std::string& name) {
  GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel, Get(name));
  return rel->num_rows();
}

Result<LayoutPtr> ColumnarCatalog::LayoutOf(const std::string& name) {
  GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel, Get(name));
  return rel->layout_ptr();
}

void PrepareBatch(const LayoutPtr& layout, ColumnBatch* out) {
  if (out->layout_ptr() != layout) {
    out->ResetLayout(layout);
  } else {
    out->Clear();
  }
}

Result<ColumnarRelation> DrainSource(BatchSource* src) {
  ColumnarRelation out(src->layout());
  SelView view;
  while (true) {
    GUS_ASSIGN_OR_RETURN(bool more, src->NextView(&view));
    if (!more) break;
    if (view.num_rows() == 0) continue;
    if (view.contiguous()) {
      out.mutable_data()->AppendRangeFrom(*view.data, view.begin, view.len);
    } else {
      out.mutable_data()->GatherFrom(*view.data, view.sel, view.sel_len);
    }
  }
  return out;
}

Status PumpToSink(BatchSource* pipeline, BatchSink* sink) {
  SelView view;
  ColumnBatch scratch;
  const bool views = sink->wants_views();
  while (true) {
    GUS_ASSIGN_OR_RETURN(bool more, pipeline->NextView(&view));
    if (!more) break;
    if (view.num_rows() == 0) continue;
    if (view.whole_batch()) {
      GUS_RETURN_NOT_OK(sink->Consume(*view.data));
      continue;
    }
    if (views) {
      // Gather-free hand-off: the sink reads the borrowed columns through
      // the selection directly.
      GUS_RETURN_NOT_OK(sink->ConsumeView(view));
      continue;
    }
    PrepareBatch(pipeline->layout(), &scratch);
    if (view.contiguous()) {
      scratch.AppendRangeFrom(*view.data, view.begin, view.len);
    } else {
      scratch.GatherFrom(*view.data, view.sel, view.sel_len);
    }
    GUS_RETURN_NOT_OK(sink->Consume(scratch));
  }
  return Status::OK();
}

Result<LayoutPtr> ConcatBatchLayouts(const BatchLayout& left,
                                     const BatchLayout& right) {
  for (const auto& name : left.lineage_schema) {
    for (const auto& other : right.lineage_schema) {
      if (name == other) {
        return Status::InvalidArgument(
            "join inputs must have disjoint lineage schemas (self-joins are "
            "not supported by the GUS algebra, paper Prop. 6)");
      }
    }
  }
  auto layout = std::make_shared<BatchLayout>();
  GUS_ASSIGN_OR_RETURN(layout->schema,
                       Schema::Concat(left.schema, right.schema));
  layout->lineage_schema = left.lineage_schema;
  layout->lineage_schema.insert(layout->lineage_schema.end(),
                                right.lineage_schema.begin(),
                                right.lineage_schema.end());
  return LayoutPtr(layout);
}

// ---- Sources ---------------------------------------------------------------

namespace {

/// Zero-copy scan: emits range views straight over the resident columnar
/// relation — no per-batch slice copies.
class ScanSource final : public BatchSource {
 public:
  ScanSource(const ColumnarRelation* rel, int64_t batch_rows, int64_t begin,
             int64_t len)
      : BatchSource(rel->layout_ptr()),
        rel_(rel),
        batch_rows_(batch_rows),
        pos_(begin),
        end_(len < 0 ? rel->num_rows()
                     : std::min(begin + len, rel->num_rows())) {}

  Result<bool> NextView(SelView* out) override {
    if (pos_ >= end_) return false;
    const int64_t len = std::min(batch_rows_, end_ - pos_);
    *out = SelView::Range(&rel_->data(), pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const ColumnarRelation* rel_;
  int64_t batch_rows_;
  int64_t pos_;
  int64_t end_;
};

/// Fused select: composes the child view's selection with the predicate's
/// truthy rows; only the predicate's column footprint is gathered.
class SelectSource final : public BatchSource {
 public:
  SelectSource(std::unique_ptr<BatchSource> child, ExprPtr bound)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        bound_(std::move(bound)) {
    ExprColumnFootprint(bound_, layout_->schema.num_columns(), &footprint_);
  }

  Result<bool> NextView(SelView* out) override {
    SelView in;
    GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&in));
    if (!more) return false;
    GUS_RETURN_NOT_OK(EvalPredicateView(bound_, in, footprint_,
                                        &eval_scratch_, &range_scratch_,
                                        &sel_));
    *out = SelView::Selection(in.data, sel_);
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  ExprPtr bound_;
  std::vector<char> footprint_;
  ColumnBatch eval_scratch_;
  std::vector<int64_t> range_scratch_;
  std::vector<int64_t> sel_;
};

/// \brief Fused Bernoulli sampler: advances the resumable geometric-skip
/// kernel over the child's logical row stream and composes the kept rows
/// into the selection — no materialization, ~p rows' worth of Rng draws.
///
/// Only instantiated when no other streaming Rng consumer shares the
/// fragment (see FragmentHasStreamingRngSampler), so the draw order —
/// hence the keep-set — is bit-identical to the one-shot
/// BernoulliKeepIndices the row engine and breaker paths use.
class FusedBernoulliSource final : public BatchSource {
 public:
  FusedBernoulliSource(std::unique_ptr<BatchSource> child, double p, Rng* rng)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        state_(p),
        rng_(rng) {}

  Result<bool> NextView(SelView* out) override {
    SelView in;
    GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&in));
    if (!more) return false;
    local_.clear();
    state_.NextSpan(in.num_rows(), rng_, &local_);
    sel_.clear();
    sel_.reserve(local_.size());
    if (in.contiguous()) {
      for (const int64_t off : local_) sel_.push_back(in.begin + off);
    } else {
      for (const int64_t off : local_) sel_.push_back(in.sel[off]);
    }
    *out = SelView::Selection(in.data, sel_);
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  SkipBernoulliState state_;
  Rng* rng_;
  std::vector<int64_t> local_;
  std::vector<int64_t> sel_;
};

/// Fused Section-7 sub-sampler: lineage-hash filter composed into the
/// selection in one tight loop (no Rng, no Value boxing).
class FusedLineageBernoulliSource final : public BatchSource {
 public:
  FusedLineageBernoulliSource(std::unique_ptr<BatchSource> child, double p,
                              uint64_t seed, int dim)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        p_(p),
        seed_(seed),
        dim_(dim) {}

  Result<bool> NextView(SelView* out) override {
    SelView in;
    GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&in));
    if (!more) return false;
    sel_.clear();
    const int arity = layout_->lineage_arity();
    const uint64_t* lineage = in.data->lineage().data();
    if (in.contiguous()) {
      LineageBernoulliDense(p_, seed_, lineage, arity, dim_, in.begin, in.len,
                            &sel_);
    } else {
      LineageBernoulliGather(p_, seed_, lineage, arity, dim_, in.sel,
                             in.sel_len, &sel_);
    }
    *out = SelView::Selection(in.data, sel_);
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  double p_;
  uint64_t seed_;
  int dim_;
  std::vector<int64_t> sel_;
};

/// Exact-mode block sampling: streaming lineage re-key to block ids.
/// `base` is the global row index of the child's first row (non-zero when
/// the child is a morsel slice of the scan).
class BlockRekeySource final : public BatchSource {
 public:
  BlockRekeySource(std::unique_ptr<BatchSource> child, int64_t block_size,
                   int64_t base = 0)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        block_size_(block_size),
        base_(base) {}

  Result<bool> Next(ColumnBatch* out) override {
    GUS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto& lineage = *out->mutable_lineage();
    for (int64_t i = 0; i < out->num_rows(); ++i) {
      lineage[i] = static_cast<uint64_t>((base_ + i) / block_size_);
    }
    base_ += out->num_rows();
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  int64_t block_size_;
  int64_t base_ = 0;
};

/// Sampled-mode sampler: pipeline breaker routed through the shared
/// index-selection core, so the Rng sequence matches the row engine's.
class SampleBreakerSource final : public BatchSource {
 public:
  SampleBreakerSource(std::unique_ptr<BatchSource> child, SamplingSpec spec,
                      Rng* rng, int64_t batch_rows)
      : BatchSource(child->layout()),
        child_(std::move(child)),
        spec_(std::move(spec)),
        rng_(rng),
        batch_rows_(batch_rows) {}

  Result<bool> NextView(SelView* out) override {
    if (!drained_) {
      GUS_ASSIGN_OR_RETURN(mat_, DrainSource(child_.get()));
      const ColumnBatch& data = mat_.data();
      GUS_ASSIGN_OR_RETURN(
          SamplingDecision d,
          DecideSampling(spec_, mat_.num_rows(), mat_.lineage_schema(),
                         [&data](int64_t r, int dim) {
                           return data.lineage_at(r, dim);
                         },
                         rng_));
      keep_ = std::move(d.keep);
      rekey_ = d.rekey_block_lineage;
      drained_ = true;
    }
    if (pos_ >= static_cast<int64_t>(keep_.size())) return false;
    const int64_t len =
        std::min(batch_rows_, static_cast<int64_t>(keep_.size()) - pos_);
    const int64_t* sel = keep_.data() + pos_;
    if (rekey_) {
      // Block lineage re-key (id = pre-filter row index / block size)
      // mutates rows, so this path gathers into an owned batch.
      PrepareBatch(layout_, &rekey_scratch_);
      rekey_scratch_.GatherFrom(mat_.data(), sel, len);
      auto& lineage = *rekey_scratch_.mutable_lineage();
      for (int64_t k = 0; k < len; ++k) {
        lineage[k] = static_cast<uint64_t>(sel[k] / spec_.block_size);
      }
      *out = SelView::Whole(&rekey_scratch_);
    } else {
      SelView v;
      v.data = &mat_.data();
      v.sel = sel;
      v.sel_len = len;
      *out = v;
    }
    pos_ += len;
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  SamplingSpec spec_;
  Rng* rng_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation mat_;
  std::vector<int64_t> keep_;
  bool rekey_ = false;
  ColumnBatch rekey_scratch_;
  int64_t pos_ = 0;
};

/// Probe rows processed per batch-probe refill (hash + ProbeBatch +
/// vectorized key recheck amortize their type dispatch over this many
/// rows).
constexpr int64_t kProbeChunkRows = 1024;

/// Hash equi-join: breaker on both inputs (left drains first, preserving
/// the row engine's post-order Rng consumption), streaming probe output.
///
/// The probe loop runs chunk-at-a-time: hash a chunk of probe rows, batch-
/// probe the table (prefetched), then recheck key equality vectorized over
/// the candidate pair list (FilterEqualKeyPairs) instead of per row —
/// emission order is identical to the classic per-row loop (probe rows
/// ascending, candidates in build input order).
class JoinSource final : public BatchSource {
 public:
  JoinSource(LayoutPtr layout, std::unique_ptr<BatchSource> left,
             std::unique_ptr<BatchSource> right, int left_key, int right_key,
             int64_t batch_rows)
      : BatchSource(std::move(layout)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) GUS_RETURN_NOT_OK(DrainAndBuild());
    PrepareBatch(layout_, out);
    const ColumnBatch& probe = probe_mat_->data();
    const int64_t probe_rows = probe.num_rows();
    const ColumnData& probe_key = probe.column(probe_key_);
    const ColumnData& build_key = build_mat_->data().column(build_key_);
    while (out->num_rows() < batch_rows_) {
      if (emit_pos_ >= static_cast<int64_t>(pair_probe_.size())) {
        if (probe_pos_ >= probe_rows) break;
        const int64_t chunk =
            std::min(kProbeChunkRows, probe_rows - probe_pos_);
        hash_scratch_.resize(static_cast<size_t>(chunk));
        KeyHashRange(probe_key, probe_dict_hashes_, probe_pos_, chunk,
                     hash_scratch_.data());
        pair_probe_.clear();
        pair_build_.clear();
        table_.ProbeBatch(hash_scratch_.data(), chunk, &pair_probe_,
                          &pair_build_);
        for (int64_t& p : pair_probe_) p += probe_pos_;
        FilterEqualKeyPairs(probe_key, build_key, &pair_probe_, &pair_build_);
        emit_pos_ = 0;
        probe_pos_ += chunk;
        continue;
      }
      // Batch emit: typed column gathers over the surviving pair lists
      // instead of a per-row variant walk. Order is unchanged (pairs are
      // consumed front to back).
      const int64_t pairs = static_cast<int64_t>(pair_probe_.size());
      const int64_t take =
          std::min(batch_rows_ - out->num_rows(), pairs - emit_pos_);
      const int64_t* probe_idx = pair_probe_.data() + emit_pos_;
      const int64_t* build_idx = pair_build_.data() + emit_pos_;
      const int64_t* li = build_left_ ? build_idx : probe_idx;
      const int64_t* ri = build_left_ ? probe_idx : build_idx;
      out->AppendConcatGather(left_mat_.data(), li, right_mat_.data(), ri,
                              take);
      emit_pos_ += take;
    }
    if (out->num_rows() == 0 && probe_pos_ >= probe_rows &&
        emit_pos_ >= static_cast<int64_t>(pair_probe_.size())) {
      return false;
    }
    return true;
  }

 private:
  Status DrainAndBuild() {
    GUS_ASSIGN_OR_RETURN(left_mat_, DrainSource(left_.get()));
    GUS_ASSIGN_OR_RETURN(right_mat_, DrainSource(right_.get()));
    // Build on the smaller input — the row engine's rule, bit for bit.
    build_left_ = left_mat_.num_rows() <= right_mat_.num_rows();
    build_mat_ = build_left_ ? &left_mat_ : &right_mat_;
    probe_mat_ = build_left_ ? &right_mat_ : &left_mat_;
    build_key_ = build_left_ ? left_key_ : right_key_;
    probe_key_ = build_left_ ? right_key_ : left_key_;
    const ColumnData& key = build_mat_->data().column(build_key_);
    probe_dict_hashes_ = DictKeyHashes(probe_mat_->data().column(probe_key_));
    GUS_RETURN_NOT_OK(table_.BuildFrom(key, build_mat_->num_rows()));
    drained_ = true;
    return Status::OK();
  }

  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int left_key_;
  int right_key_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation left_mat_, right_mat_;
  bool build_left_ = true;
  const ColumnarRelation* build_mat_ = nullptr;
  const ColumnarRelation* probe_mat_ = nullptr;
  int build_key_ = 0, probe_key_ = 0;
  std::vector<uint64_t> probe_dict_hashes_;
  JoinHashTable table_;
  int64_t probe_pos_ = 0;
  std::vector<uint64_t> hash_scratch_;
  std::vector<int64_t> pair_probe_, pair_build_;
  int64_t emit_pos_ = 0;
};

/// Cross product: breaker on both inputs, left-major streaming output.
class ProductSource final : public BatchSource {
 public:
  ProductSource(LayoutPtr layout, std::unique_ptr<BatchSource> left,
                std::unique_ptr<BatchSource> right, int64_t batch_rows)
      : BatchSource(std::move(layout)),
        left_(std::move(left)),
        right_(std::move(right)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) {
      GUS_ASSIGN_OR_RETURN(left_mat_, DrainSource(left_.get()));
      GUS_ASSIGN_OR_RETURN(right_mat_, DrainSource(right_.get()));
      drained_ = true;
    }
    if (i_ >= left_mat_.num_rows() || right_mat_.num_rows() == 0) {
      return false;
    }
    PrepareBatch(layout_, out);
    // Stage the (i, j) index pairs of this output chunk, then emit them in
    // one batched gather per column.
    li_scratch_.clear();
    ri_scratch_.clear();
    while (static_cast<int64_t>(li_scratch_.size()) < batch_rows_ &&
           i_ < left_mat_.num_rows()) {
      li_scratch_.push_back(i_);
      ri_scratch_.push_back(j_);
      if (++j_ >= right_mat_.num_rows()) {
        j_ = 0;
        ++i_;
      }
    }
    out->AppendConcatGather(left_mat_.data(), li_scratch_.data(),
                            right_mat_.data(), ri_scratch_.data(),
                            static_cast<int64_t>(li_scratch_.size()));
    return true;
  }

 private:
  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation left_mat_, right_mat_;
  int64_t i_ = 0, j_ = 0;
  std::vector<int64_t> li_scratch_, ri_scratch_;
};

/// Exact-mode union: the exact evaluation of both branches yields the same
/// set, so only the left branch's rows flow downstream — but the right
/// branch still *runs* (rows discarded) once the left is exhausted, so its
/// runtime errors surface exactly as they do in the row engine, which
/// executes both branches.
class ExactUnionSource final : public BatchSource {
 public:
  ExactUnionSource(std::unique_ptr<BatchSource> left,
                   std::unique_ptr<BatchSource> right)
      : BatchSource(left->layout()),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!left_done_) {
      GUS_ASSIGN_OR_RETURN(bool more, left_->Next(out));
      if (more) return true;
      left_done_ = true;
    }
    while (!right_done_) {
      GUS_ASSIGN_OR_RETURN(bool more, right_->Next(&discard_));
      if (!more) right_done_ = true;
    }
    return false;
  }

 private:
  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  ColumnBatch discard_;
  bool left_done_ = false;
  bool right_done_ = false;
};

/// Bag union keeping each lineage once (first occurrence, left first) —
/// the sampled-mode GUS union of Prop. 7.
class UnionSource final : public BatchSource {
 public:
  UnionSource(std::unique_ptr<BatchSource> left,
              std::unique_ptr<BatchSource> right, int64_t batch_rows)
      : BatchSource(left->layout()),
        left_(std::move(left)),
        right_(std::move(right)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (!drained_) GUS_RETURN_NOT_OK(DrainAndDedup());
    const int64_t total_a = static_cast<int64_t>(sel_a_.size());
    const int64_t total_b = static_cast<int64_t>(sel_b_.size());
    if (pos_ >= total_a + total_b) return false;
    PrepareBatch(layout_, out);
    while (out->num_rows() < batch_rows_ && pos_ < total_a + total_b) {
      const int64_t want = batch_rows_ - out->num_rows();
      if (pos_ < total_a) {
        const int64_t len = std::min(want, total_a - pos_);
        out->GatherFrom(a_mat_.data(), sel_a_.data() + pos_, len);
        pos_ += len;
      } else {
        const int64_t off = pos_ - total_a;
        const int64_t len = std::min(want, total_b - off);
        out->GatherFrom(b_mat_.data(), sel_b_.data() + off, len);
        pos_ += len;
      }
    }
    return true;
  }

 private:
  Status DrainAndDedup() {
    GUS_ASSIGN_OR_RETURN(a_mat_, DrainSource(left_.get()));
    GUS_ASSIGN_OR_RETURN(b_mat_, DrainSource(right_.get()));
    const int arity = layout_->lineage_arity();
    std::unordered_set<uint64_t> seen;
    seen.reserve(
        static_cast<size_t>(a_mat_.num_rows() + b_mat_.num_rows()));
    auto add_all = [&](const ColumnarRelation& mat,
                       std::vector<int64_t>* sel) {
      const auto& lineage = mat.data().lineage();
      for (int64_t i = 0; i < mat.num_rows(); ++i) {
        const uint64_t h = HashLineageRow(
            lineage.data() + static_cast<size_t>(i) * arity, arity);
        if (seen.insert(h).second) sel->push_back(i);
      }
    };
    add_all(a_mat_, &sel_a_);
    add_all(b_mat_, &sel_b_);
    drained_ = true;
    return Status::OK();
  }

  std::unique_ptr<BatchSource> left_;
  std::unique_ptr<BatchSource> right_;
  int64_t batch_rows_;
  bool drained_ = false;
  ColumnarRelation a_mat_, b_mat_;
  std::vector<int64_t> sel_a_, sel_b_;
  int64_t pos_ = 0;
};

}  // namespace

std::unique_ptr<BatchSource> MakeScanSource(const ColumnarRelation* rel,
                                            int64_t batch_rows, int64_t begin,
                                            int64_t len) {
  return std::unique_ptr<BatchSource>(
      new ScanSource(rel, batch_rows, begin, len));
}

std::unique_ptr<BatchSource> MakeBlockRekeySource(
    std::unique_ptr<BatchSource> child, int64_t block_size, int64_t base_row) {
  return std::unique_ptr<BatchSource>(
      new BlockRekeySource(std::move(child), block_size, base_row));
}

Result<std::unique_ptr<BatchSource>> MakeUnionSource(
    std::unique_ptr<BatchSource> left, std::unique_ptr<BatchSource> right,
    int64_t batch_rows, ExecMode mode) {
  if (mode == ExecMode::kExact) {
    return std::unique_ptr<BatchSource>(
        new ExactUnionSource(std::move(left), std::move(right)));
  }
  if (!(left->layout()->schema == right->layout()->schema)) {
    return Status::InvalidArgument("union inputs must share a column schema");
  }
  if (left->layout()->lineage_schema != right->layout()->lineage_schema) {
    return Status::InvalidArgument(
        "union inputs must share a lineage schema (samples of the same "
        "expression, paper Prop. 7)");
  }
  return std::unique_ptr<BatchSource>(
      new UnionSource(std::move(left), std::move(right), batch_rows));
}

Result<std::unique_ptr<BatchSource>> MakeSelectSource(
    std::unique_ptr<BatchSource> child, const ExprPtr& predicate) {
  GUS_ASSIGN_OR_RETURN(ExprPtr bound,
                       predicate->Bind(child->layout()->schema));
  return std::unique_ptr<BatchSource>(
      new SelectSource(std::move(child), std::move(bound)));
}

Result<std::unique_ptr<BatchSource>> MakeSampleSource(
    std::unique_ptr<BatchSource> child, const SamplingSpec& spec, Rng* rng,
    int64_t batch_rows, bool stream_ok) {
  GUS_RETURN_NOT_OK(spec.Validate());
  switch (spec.method) {
    case SamplingMethod::kLineageBernoulli: {
      // Pure function of (seed, lineage id): always fuses.
      const auto& ls = child->layout()->lineage_schema;
      const auto it = std::find(ls.begin(), ls.end(), spec.lineage_relation);
      if (it == ls.end()) {
        return Status::KeyError("relation '" + spec.lineage_relation +
                                "' not in the input's lineage schema");
      }
      const int dim = static_cast<int>(it - ls.begin());
      return std::unique_ptr<BatchSource>(new FusedLineageBernoulliSource(
          std::move(child), spec.p, spec.seed, dim));
    }
    case SamplingMethod::kBernoulli:
      if (stream_ok) {
        return std::unique_ptr<BatchSource>(
            new FusedBernoulliSource(std::move(child), spec.p, rng));
      }
      break;
    default:
      break;
  }
  return std::unique_ptr<BatchSource>(
      new SampleBreakerSource(std::move(child), spec, rng, batch_rows));
}

bool FragmentHasStreamingRngSampler(const PlanPtr& plan, ExecMode mode) {
  if (mode == ExecMode::kExact) return false;  // samplers are no-ops
  switch (plan->op()) {
    case PlanOp::kScan:
      return false;
    case PlanOp::kSelect:
      return FragmentHasStreamingRngSampler(plan->child(), mode);
    case PlanOp::kSample:
      switch (plan->spec().method) {
        case SamplingMethod::kLineageBernoulli:
          // Streams but consumes no Rng: transparent to the fragment.
          return FragmentHasStreamingRngSampler(plan->child(), mode);
        case SamplingMethod::kBernoulli:
          // Streams iff nothing below already does; otherwise it runs as
          // a breaker, which resets the fragment above it.
          return !FragmentHasStreamingRngSampler(plan->child(), mode);
        default:
          return false;  // fixed-size / block samplers are breakers
      }
    case PlanOp::kJoin:
    case PlanOp::kProduct:
    case PlanOp::kUnion:
      // Breakers drain their subtrees (all draws done) before emitting.
      return false;
  }
  return false;
}

Result<std::unique_ptr<BatchSource>> CompileBatchPipeline(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    int64_t batch_rows) {
  if (batch_rows < 1) {
    return Status::InvalidArgument("batch_rows must be >= 1");
  }
  switch (plan->op()) {
    case PlanOp::kScan: {
      // Segment-backed catalogs stream the scan through the pinned cache
      // (one resident segment at a time) instead of materializing.
      GUS_ASSIGN_OR_RETURN(const StoredRelation* stored,
                           catalog->Stored(plan->relation()));
      if (stored != nullptr) {
        return MakeStoredScanSource(stored, catalog->segment_cache(),
                                    batch_rows);
      }
      GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel,
                           catalog->Get(plan->relation()));
      return MakeScanSource(rel, batch_rows);
    }
    case PlanOp::kSample: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> child,
          CompileBatchPipeline(plan->child(), catalog, rng, mode, batch_rows));
      if (mode == ExecMode::kExact) {
        // Sampling is a no-op in exact mode, but block sampling still
        // re-keys lineage so both modes agree on lineage granularity.
        if (plan->spec().method == SamplingMethod::kBlockBernoulli) {
          if (plan->spec().block_size <= 0) {
            return Status::InvalidArgument("block_size must be positive");
          }
          if (child->layout()->lineage_arity() != 1) {
            return Status::InvalidArgument(
                "block lineage applies to base (single-lineage) relations");
          }
          return std::unique_ptr<BatchSource>(
              new BlockRekeySource(std::move(child), plan->spec().block_size));
        }
        return child;
      }
      const bool stream_ok =
          !FragmentHasStreamingRngSampler(plan->child(), mode);
      return MakeSampleSource(std::move(child), plan->spec(), rng,
                              batch_rows, stream_ok);
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> child,
          CompileBatchPipeline(plan->child(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(ExprPtr bound,
                           plan->predicate()->Bind(child->layout()->schema));
      return std::unique_ptr<BatchSource>(
          new SelectSource(std::move(child), std::move(bound)));
    }
    case PlanOp::kJoin: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          LayoutPtr layout,
          ConcatBatchLayouts(*left->layout(), *right->layout()));
      GUS_ASSIGN_OR_RETURN(int lk,
                           left->layout()->schema.IndexOf(plan->left_key()));
      GUS_ASSIGN_OR_RETURN(int rk,
                           right->layout()->schema.IndexOf(plan->right_key()));
      return std::unique_ptr<BatchSource>(
          new JoinSource(std::move(layout), std::move(left), std::move(right),
                         lk, rk, batch_rows));
    }
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          LayoutPtr layout,
          ConcatBatchLayouts(*left->layout(), *right->layout()));
      return std::unique_ptr<BatchSource>(new ProductSource(
          std::move(layout), std::move(left), std::move(right), batch_rows));
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> left,
          CompileBatchPipeline(plan->left(), catalog, rng, mode, batch_rows));
      GUS_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchSource> right,
          CompileBatchPipeline(plan->right(), catalog, rng, mode, batch_rows));
      // Exact mode: no sampler below consumes the Rng, so only the left
      // branch's rows are needed; the right branch runs for its error
      // effects (see ExactUnionSource).
      return MakeUnionSource(std::move(left), std::move(right), batch_rows,
                             mode);
    }
  }
  return Status::Internal("unknown plan op");
}

Result<ColumnarRelation> ExecutePlanColumnar(const PlanPtr& plan,
                                             ColumnarCatalog* catalog,
                                             Rng* rng, ExecMode mode,
                                             int64_t batch_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(plan, catalog, rng, mode, batch_rows));
  return DrainSource(pipeline.get());
}

Status ExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                         Rng* rng, ExecMode mode, BatchSink* sink,
                         int64_t batch_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(plan, catalog, rng, mode, batch_rows));
  return PumpToSink(pipeline.get(), sink);
}

}  // namespace gus
