// Batch-at-a-time columnar plan execution.
//
// The plan compiles into a pull-based pipeline of batch operators:
//
//   scan            streams slices of the (cached) columnar base relation
//   select          vectorized predicate -> selection vector -> gather
//   sample          exact mode: pass-through (block sampling re-keys
//                   lineage on the fly); sampled mode: pipeline breaker —
//                   the child materializes, the shared index-selection core
//                   (sampling/samplers.h) draws the kept rows, and the
//                   output streams again
//   join            breaker on both inputs (build on the smaller, exactly
//                   like the row engine), streaming probe output
//   product/union   breakers; union dedups by lineage hash, streaming out
//
// Only breakers materialize; chains of scan/select/exact-sample/join-probe
// stream ColumnBatches of ExecOptions::batch_rows rows (default
// kDefaultBatchRows). The top of the pipeline either
// materializes into a ColumnarRelation (ExecutePlanColumnar) or pushes
// straight into a BatchSink (ExecutePlanToSink) — the latter is how the
// estimators consume the (lineage, f) stream without ever materializing
// the final relation (est/streaming.h).
//
// Engine parity: because sampling decisions come from the shared index
// core and the pipeline drains sub-plans in the row engine's post-order
// (left fully before right, children before samplers), a (plan, catalog,
// seed, mode) pair produces identical rows and lineage under both engines.

#ifndef GUS_PLAN_COLUMNAR_EXECUTOR_H_
#define GUS_PLAN_COLUMNAR_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/column_batch.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// \brief Lazy cache of row-engine catalog relations in columnar form.
///
/// Conversion happens once per base relation and is shared by every scan of
/// the plan (and across plans, if the caller keeps the catalog around — the
/// benchmarks do, mirroring a system that ingests columnar once).
class ColumnarCatalog {
 public:
  explicit ColumnarCatalog(const Catalog* catalog) : catalog_(catalog) {}

  /// The columnar form of base relation `name`, converting on first use.
  Result<const ColumnarRelation*> Get(const std::string& name);

 private:
  const Catalog* catalog_;
  std::map<std::string, ColumnarRelation> cache_;
};

/// \brief Pull iterator over a stream of column batches.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  const LayoutPtr& layout() const { return layout_; }

  /// \brief Pulls the next batch into `out` (cleared first).
  ///
  /// Returns false when the stream is exhausted; a true return may carry an
  /// empty batch (e.g. a fully-filtered chunk) and callers keep pulling.
  virtual Result<bool> Next(ColumnBatch* out) = 0;

 protected:
  explicit BatchSource(LayoutPtr layout) : layout_(std::move(layout)) {}

  LayoutPtr layout_;
};

// ---- Shared pipeline building blocks ---------------------------------------
//
// Used by CompileBatchPipeline and by the morsel-parallel executor
// (plan/parallel_executor.cc), which composes per-partition pipelines from
// the same physical operators.

/// Streams rows [begin, begin + len) of `rel` (len < 0 means "to the end").
std::unique_ptr<BatchSource> MakeScanSource(const ColumnarRelation* rel,
                                            int64_t batch_rows,
                                            int64_t begin = 0,
                                            int64_t len = -1);

/// Vectorized select over `child`; binds `predicate` against the child
/// layout.
Result<std::unique_ptr<BatchSource>> MakeSelectSource(
    std::unique_ptr<BatchSource> child, const ExprPtr& predicate);

/// Sampled-mode sampler over `child` (pipeline breaker routed through the
/// shared index-selection core; `rng` must outlive the source).
Result<std::unique_ptr<BatchSource>> MakeSampleSource(
    std::unique_ptr<BatchSource> child, const SamplingSpec& spec, Rng* rng,
    int64_t batch_rows);

/// Fully drains a source into a materialized columnar relation.
Result<ColumnarRelation> DrainSource(BatchSource* src);

/// Concatenated layout of two join/product inputs; fails on column-name or
/// lineage overlap.
Result<LayoutPtr> ConcatBatchLayouts(const BatchLayout& left,
                                     const BatchLayout& right);

/// Per-dictionary key hashes for a string column (agrees with Value::Hash);
/// empty for non-string columns.
std::vector<uint64_t> DictKeyHashes(const ColumnData& col);

/// Join-key hash of row `i` (dict_hashes from DictKeyHashes for strings).
uint64_t KeyHashAt(const ColumnData& col, int64_t i,
                   const std::vector<uint64_t>& dict_hashes);

/// Typed join-key equality mirroring Value::KeyEquals.
bool KeyEqualsAt(const ColumnData& a, int64_t i, const ColumnData& b,
                 int64_t j);

/// Resets `out` to `layout` (or just clears it when already laid out).
void PrepareBatch(const LayoutPtr& layout, ColumnBatch* out);

/// \brief Compiles `plan` into a batch pipeline (static checks — unknown
/// relations, schema overlap, batch_rows < 1 — surface here).
Result<std::unique_ptr<BatchSource>> CompileBatchPipeline(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    int64_t batch_rows = kDefaultBatchRows);

/// Runs the pipeline to completion, materializing the result.
Result<ColumnarRelation> ExecutePlanColumnar(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng,
    ExecMode mode = ExecMode::kSampled, int64_t batch_rows = kDefaultBatchRows);

/// \brief Runs the pipeline, pushing every output batch into `sink`.
///
/// The result relation is never materialized; this is the streaming path
/// the estimators build on.
Status ExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                         Rng* rng, ExecMode mode, BatchSink* sink,
                         int64_t batch_rows = kDefaultBatchRows);

}  // namespace gus

#endif  // GUS_PLAN_COLUMNAR_EXECUTOR_H_
