// Batch-at-a-time columnar plan execution.
//
// The plan compiles into a pull-based pipeline of batch operators:
//
//   scan            zero-copy range views over the (cached) columnar base
//                   relation
//   select          vectorized predicate over the incoming view's rows ->
//                   composed selection vector (only the predicate's column
//                   footprint is ever gathered)
//   sample          exact mode: pass-through (block sampling re-keys
//                   lineage on the fly); sampled mode: Bernoulli and
//                   lineage-Bernoulli fuse as streaming selection
//                   composers over the geometric-skip / lineage-hash
//                   kernels (kernels/sampling_kernels.h); fixed-size and
//                   block samplers stay pipeline breakers through the
//                   shared index-selection core (sampling/samplers.h)
//   join            breaker on both inputs (build on the smaller, exactly
//                   like the row engine) into a flat open-addressing
//                   JoinHashTable (kernels/join_hash_table.h), streaming
//                   probe output
//   product/union   breakers; union dedups by lineage hash, streaming out
//
// Fused chains of scan/select/streaming-sample exchange SelViews —
// selection vectors over borrowed batches — and gather exactly once, at
// the next breaker or at the sink (see BatchSource::NextView). The top of
// the pipeline either materializes into a ColumnarRelation
// (ExecutePlanColumnar) or pushes straight into a BatchSink
// (ExecutePlanToSink) — the latter is how the estimators consume the
// (lineage, f) stream without ever materializing the final relation
// (est/streaming.h).
//
// Engine parity: sampling decisions come from the shared kernels, the
// pipeline drains sub-plans in the row engine's post-order (left fully
// before right, children before breaker samplers), and a Bernoulli
// sampler only fuses when no other streaming Rng consumer shares its
// fragment (FragmentHasStreamingRngSampler) — so the Rng consumption
// order, and therefore every row and lineage value, is identical across
// both engines for a (plan, catalog, seed, mode) pair.

#ifndef GUS_PLAN_COLUMNAR_EXECUTOR_H_
#define GUS_PLAN_COLUMNAR_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/key_hash.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/column_batch.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

class SegmentCache;    // store/segment_cache.h
class StoredRelation;  // store/segment_store.h

/// \brief Catalog of base relations in columnar form.
///
/// The base class is the in-memory form: a lazy cache of row-engine catalog
/// relations converted on first use. Conversion happens once per base
/// relation and is shared by every scan of the plan (and across plans, if
/// the caller keeps the catalog around — the benchmarks do, mirroring a
/// system that ingests columnar once).
///
/// The virtual surface is what lets the execution engines run over other
/// storage unchanged: SegmentCatalog (store/segment_catalog.h) overrides it
/// to serve mmap-ed on-disk segments, exposing Stored()/segment_cache() so
/// scans can fault individual segments — and skip provably useless ones —
/// instead of materializing whole tables through Get().
class ColumnarCatalog {
 public:
  explicit ColumnarCatalog(const Catalog* catalog) : catalog_(catalog) {}
  virtual ~ColumnarCatalog() = default;

  /// \brief The fully materialized columnar form of base relation `name`.
  ///
  /// This is the compatibility surface: pipeline breakers that need a whole
  /// side resident (join builds, row-engine interop) call it. Streaming
  /// scans prefer Stored() when it returns non-null.
  virtual Result<const ColumnarRelation*> Get(const std::string& name);

  /// \brief Content fingerprint of base relation `name` (computed once,
  /// cached).
  ///
  /// Hashes the schema (names + types), lineage schema, row count, every
  /// column value (strings by content, floats by bit pattern), and the
  /// lineage matrix — catalogs agree on a relation iff it is content-
  /// equivalent (rel/column_batch.h ContentFingerprint). The shard protocol
  /// combines these per plan (PlanCatalogFingerprint, dist/shard.h) so
  /// workers detect divergent base data before their partial states merge.
  virtual Result<uint64_t> Fingerprint(const std::string& name);

  /// \brief The on-disk segment form of `name`, or null for purely
  /// in-memory catalogs (the default).
  ///
  /// Non-null means scans may stream the relation segment-at-a-time
  /// through segment_cache() instead of calling Get().
  virtual Result<const StoredRelation*> Stored(const std::string& name) {
    (void)name;
    return static_cast<const StoredRelation*>(nullptr);
  }

  /// Row count of `name` without forcing materialization (segment catalogs
  /// answer from the header; the default calls Get()).
  virtual Result<int64_t> RowCountOf(const std::string& name);

  /// Layout of `name` without forcing materialization.
  virtual Result<LayoutPtr> LayoutOf(const std::string& name);

  /// The pinned-segment cache backing Stored() relations (null for
  /// in-memory catalogs).
  virtual SegmentCache* segment_cache() { return nullptr; }

 protected:
  /// For derived catalogs that do not wrap a row-engine Catalog.
  ColumnarCatalog() : catalog_(nullptr) {}

 private:
  const Catalog* catalog_;
  std::map<std::string, ColumnarRelation> cache_;
  std::map<std::string, uint64_t> fingerprints_;
};

/// \brief Pull iterator over a stream of column batches.
///
/// Two pull surfaces, each with a default implemented via the other (a
/// concrete source overrides at least one):
///
///   * Next(out)     — the classic materializing pull: rows gathered into
///                     a caller-owned batch.
///   * NextView(out) — the fused pull: a SelView over producer-owned data.
///                     Selection-composing operators (scan, select,
///                     streaming samplers) override this one and never
///                     gather; consumers that need materialized rows
///                     (breakers, sinks) gather once, at their boundary.
///
/// A returned view borrows the producer's storage and stays valid until
/// the next pull on this source.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  const LayoutPtr& layout() const { return layout_; }

  /// \brief Pulls the next batch into `out` (cleared first).
  ///
  /// Returns false when the stream is exhausted; a true return may carry an
  /// empty batch (e.g. a fully-filtered chunk) and callers keep pulling.
  /// Default: NextView + one gather.
  virtual Result<bool> Next(ColumnBatch* out);

  /// \brief Pulls the next rows as a selection view (see class comment).
  ///
  /// Same exhaustion protocol as Next; a true return may carry an empty
  /// view. Default: Next into an internal scratch batch, viewed whole.
  virtual Result<bool> NextView(SelView* out);

 protected:
  explicit BatchSource(LayoutPtr layout) : layout_(std::move(layout)) {}

  LayoutPtr layout_;

 private:
  ColumnBatch view_scratch_;  // backs the default NextView only
};

// ---- Shared pipeline building blocks ---------------------------------------
//
// Used by CompileBatchPipeline and by the morsel-parallel executor
// (plan/parallel_executor.cc), which composes per-partition pipelines from
// the same physical operators.

/// Streams rows [begin, begin + len) of `rel` (len < 0 means "to the end").
std::unique_ptr<BatchSource> MakeScanSource(const ColumnarRelation* rel,
                                            int64_t batch_rows,
                                            int64_t begin = 0,
                                            int64_t len = -1);

/// Vectorized select over `child`; binds `predicate` against the child
/// layout.
Result<std::unique_ptr<BatchSource>> MakeSelectSource(
    std::unique_ptr<BatchSource> child, const ExprPtr& predicate);

/// \brief Sampled-mode sampler over `child`.
///
/// Lineage-seeded Bernoulli always fuses (selection-composing, consumes no
/// Rng). Plain Bernoulli fuses when `stream_ok` — the caller asserts no
/// other *streaming* Rng-consuming sampler is live below in the same
/// pipeline fragment, so the geometric-skip draws interleave with nothing
/// and match the one-shot order (see FragmentHasStreamingRngSampler).
/// Everything else is a pipeline breaker routed through the shared
/// index-selection core. `rng` must outlive the source.
Result<std::unique_ptr<BatchSource>> MakeSampleSource(
    std::unique_ptr<BatchSource> child, const SamplingSpec& spec, Rng* rng,
    int64_t batch_rows, bool stream_ok);

/// \brief Streaming lineage re-key to block granularity (exact-mode block
/// sampling). `base_row` is the global scan row index of the child's first
/// row — 0 for a whole-relation pipeline, the morsel offset for a slice.
std::unique_ptr<BatchSource> MakeBlockRekeySource(
    std::unique_ptr<BatchSource> child, int64_t block_size,
    int64_t base_row = 0);

/// \brief Union of two branch pipelines.
///
/// Sampled mode: bag union keeping each lineage once (first occurrence,
/// left branch first — the Prop. 7 GUS union); validates that the branches
/// share column and lineage schemas. Exact mode: the left branch's rows
/// with the right branch drained for its error effects. The morsel engine
/// instantiates this per pivot slice: lineage determines the slice, so
/// slice-local dedup equals global dedup.
Result<std::unique_ptr<BatchSource>> MakeUnionSource(
    std::unique_ptr<BatchSource> left, std::unique_ptr<BatchSource> right,
    int64_t batch_rows, ExecMode mode);

/// \brief True when `plan`'s subtree, within the current streaming
/// fragment (stopping at pipeline breakers), contains a sampler that will
/// execute as a *streaming* Rng consumer.
///
/// A plain-Bernoulli sampler may fuse only when this is false for its
/// child: two streaming Rng consumers in one fragment would interleave
/// their draws batch-by-batch, diverging from the row engine's post-order
/// consumption. Breakers (joins, products, unions, fixed-size and block
/// samplers — and a Bernoulli that itself broke) drain everything below
/// them before emitting a row, so they reset the fragment.
bool FragmentHasStreamingRngSampler(const PlanPtr& plan, ExecMode mode);

/// Fully drains a source into a materialized columnar relation (one gather
/// per pulled view).
Result<ColumnarRelation> DrainSource(BatchSource* src);

/// \brief Runs `pipeline` to exhaustion, pushing batches into `sink`.
///
/// Views that already cover a whole producer-owned batch pass through
/// without a copy; everything else gathers once into an internal scratch.
Status PumpToSink(BatchSource* pipeline, BatchSink* sink);

/// Concatenated layout of two join/product inputs; fails on column-name or
/// lineage overlap.
Result<LayoutPtr> ConcatBatchLayouts(const BatchLayout& left,
                                     const BatchLayout& right);

/// Resets `out` to `layout` (or just clears it when already laid out).
void PrepareBatch(const LayoutPtr& layout, ColumnBatch* out);

/// \brief Compiles `plan` into a batch pipeline (static checks — unknown
/// relations, schema overlap, batch_rows < 1 — surface here).
Result<std::unique_ptr<BatchSource>> CompileBatchPipeline(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    int64_t batch_rows = kDefaultBatchRows);

/// Runs the pipeline to completion, materializing the result.
Result<ColumnarRelation> ExecutePlanColumnar(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng,
    ExecMode mode = ExecMode::kSampled, int64_t batch_rows = kDefaultBatchRows);

/// \brief Runs the pipeline, pushing every output batch into `sink`.
///
/// The result relation is never materialized; this is the streaming path
/// the estimators build on.
Status ExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                         Rng* rng, ExecMode mode, BatchSink* sink,
                         int64_t batch_rows = kDefaultBatchRows);

}  // namespace gus

#endif  // GUS_PLAN_COLUMNAR_EXECUTOR_H_
