// Plan execution over an in-memory catalog.
//
// Two modes:
//   * sampled — sample nodes run their physical sampler (the plan as the
//     user wrote it),
//   * exact   — sample nodes are skipped, yielding the ground-truth result
//     used by tests and experiments.

#ifndef GUS_PLAN_EXECUTOR_H_
#define GUS_PLAN_EXECUTOR_H_

#include <map>
#include <string>

#include "plan/plan_node.h"
#include "rel/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// Base relations by name.
using Catalog = std::map<std::string, Relation>;

/// Execution mode: run samplers or skip them.
enum class ExecMode { kSampled, kExact };

/// \brief Executes `plan` against `catalog`.
///
/// `rng` drives every sampler in the plan (ignored in exact mode). Join
/// nodes use the hash equi-join; product and union use their respective
/// physical operators.
Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode = ExecMode::kSampled);

}  // namespace gus

#endif  // GUS_PLAN_EXECUTOR_H_
