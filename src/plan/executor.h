// Plan execution over an in-memory catalog.
//
// Two modes:
//   * sampled — sample nodes run their physical sampler (the plan as the
//     user wrote it),
//   * exact   — sample nodes are skipped, yielding the ground-truth result
//     used by tests and experiments.

#ifndef GUS_PLAN_EXECUTOR_H_
#define GUS_PLAN_EXECUTOR_H_

#include <map>
#include <string>

#include "plan/plan_node.h"
#include "rel/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// Base relations by name.
using Catalog = std::map<std::string, Relation>;

/// Execution mode: run samplers or skip them.
enum class ExecMode { kSampled, kExact };

/// \brief Which physical engine runs the plan.
///
/// Both engines draw their samples through the shared index-selection core
/// (sampling/samplers.h) and consume the Rng in the same order, so for a
/// given (plan, catalog, seed, mode) they produce identical rows and
/// lineage — the columnar engine just gets there without materializing
/// row-at-a-time intermediates (see plan/columnar_executor.h).
enum class ExecEngine { kRowAtATime, kColumnar };

/// \brief Executes `plan` against `catalog`.
///
/// `rng` drives every sampler in the plan (ignored in exact mode). Join
/// nodes use the hash equi-join; product and union use their respective
/// physical operators. With ExecEngine::kColumnar the plan runs on the
/// batch pipeline and the result converts back to a Relation at the end.
/// Each such call builds a throwaway ColumnarCatalog (one row-to-columnar
/// ingest per scanned base relation); callers issuing repeated queries
/// against the same catalog — or wanting to stay columnar / stream — hold
/// a ColumnarCatalog and use plan/columnar_executor.h directly, as the
/// benchmarks do.
Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode = ExecMode::kSampled,
                             ExecEngine engine = ExecEngine::kRowAtATime);

}  // namespace gus

#endif  // GUS_PLAN_EXECUTOR_H_
