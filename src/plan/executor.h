// Plan execution over an in-memory catalog.
//
// Two modes:
//   * sampled — sample nodes run their physical sampler (the plan as the
//     user wrote it),
//   * exact   — sample nodes are skipped, yielding the ground-truth result
//     used by tests and experiments.

#ifndef GUS_PLAN_EXECUTOR_H_
#define GUS_PLAN_EXECUTOR_H_

#include <map>
#include <string>

#include "plan/plan_node.h"
#include "rel/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// Base relations by name.
using Catalog = std::map<std::string, Relation>;

/// Execution mode: run samplers or skip them.
enum class ExecMode { kSampled, kExact };

/// \brief Which physical engine runs the plan.
///
/// kRowAtATime and kColumnar draw their samples through the shared
/// index-selection core (sampling/samplers.h) and consume the Rng in the
/// same order, so for a given (plan, catalog, seed, mode) they produce
/// identical rows and lineage — the columnar engine just gets there without
/// materializing row-at-a-time intermediates (see
/// plan/columnar_executor.h).
///
/// kMorselParallel splits one base scan into fixed-size morsels and runs
/// the columnar pipeline per partition (see plan/parallel_executor.h).
/// Every sampling operator is a partition-aware pivot: fixed-size (WOR /
/// WR) and block samplers adjacent to their scan are seed-decoupled (one
/// Rng draw, then pure functions of (seed, row/block)), unions partition
/// by lineage with per-slice dedup, and plain Bernoulli draws from
/// independently forked per-morsel streams. Plans whose Rng consumers are
/// all seed-decoupled or Rng-free reproduce the serial engines' rows BIT
/// FOR BIT — except union output, which is the identical multiset but
/// interleaves the branches per morsel slice instead of emitting all
/// left-branch rows first; plain Bernoulli keeps the same design with a
/// different (equally valid) draw. Either way the result is
/// bit-deterministic in
/// (plan, catalog, seed) and — because the morsel split and merge order
/// never depend on the worker count — identical across num_threads
/// values.
///
/// kSharded carves the same global morsel sequence into
/// ExecOptions::num_shards contiguous shard ranges, executes each shard
/// shared-nothing style (every shard re-runs the serial subtrees from the
/// same seed), and merges the per-shard states in shard order (src/dist/).
/// Because the unit split, per-unit Rng streams, and merge order are all
/// shard-count independent, its result is bit-identical across num_shards
/// values AND to kMorselParallel at the same (seed, morsel_rows); an
/// unset morsel_rows is pinned to kDefaultMorselRows rather than
/// auto-sized, so the split never depends on num_threads either.
///
/// kServed is the estimator-only serving engine (sqlish RunApproxQuery):
/// the kSharded scatter/gather fronted by the approximate-view cache
/// (serve/view_cache.h) — a repeated (query, catalog content, seed,
/// morsel geometry) answers from cached merged builder state, executing
/// nothing, with the identical result bits. It has no materializing form;
/// ExecutePlan rejects it.
enum class ExecEngine {
  kRowAtATime,
  kColumnar,
  kMorselParallel,
  kSharded,
  kServed,
};

struct ExecStats;  // plan/exec_stats.h

/// \brief How kMorselParallel hands morsels to workers.
///
/// Pure scheduling: every morsel still runs with its index-keyed Rng
/// stream and folds in ascending index order, so placement NEVER changes
/// any row, estimate, or digest — only which worker's cache (and NUMA
/// node, on multi-socket hosts) first touches each pivot slice.
enum class MorselPlacement {
  /// One global claim cursor; best load balance under skew.
  kDynamic,
  /// Contiguous per-worker morsel ranges (worker w gets the w-th slice of
  /// the morsel sequence) with ring stealing once a range drains.
  /// First-touch friendly: adjacent pivot slices stay on one worker.
  kRangeBound,
};

/// Default rows per columnar pipeline batch.
inline constexpr int64_t kDefaultBatchRows = 2048;

/// Fallback rows per parallel-execution morsel (used by callers that want
/// a fixed, thread-count-independent split without auto sizing).
inline constexpr int64_t kDefaultMorselRows = 32768;

/// Clamp bounds for auto morsel sizing (ExecOptions::morsel_rows == 0).
inline constexpr int64_t kMinAutoMorselRows = 8192;
inline constexpr int64_t kMaxAutoMorselRows = 131072;

/// \brief Per-shard retry discipline for the fault-tolerant scatter/gather
/// (dist/coordinator.h, FaultTolerantShardedSboxEstimate).
///
/// A shard attempt that fails *retryably* (Unavailable / DeadlineExceeded /
/// a missing bundle — lost workers, torn transport frames, deadlines) is
/// re-dispatched up to max_attempts times with exponential backoff; fatal
/// failures (InvalidArgument: seed/catalog/wire-version divergence) are
/// never retried, because re-executing identical divergent state cannot
/// succeed. Backoff jitter is drawn from Rng::ForkStream(jitter_seed,
/// shard*64 + attempt) — deterministic, so a fixed fault plan produces the
/// identical retry schedule on every run. Retries cannot change results:
/// a shard's unit range re-executes bit-reproducibly from the same seed
/// (plan/parallel_executor.h), so a successful retry is byte-identical to
/// an untroubled first attempt.
struct ShardRetryPolicy {
  /// Total attempts per shard (1 = no retry).
  int max_attempts = 3;
  /// Per-attempt wall-clock deadline, ms; 0 = unbounded. An attempt past
  /// its deadline is abandoned (counted in ExecStats::shard_deadline_hits)
  /// and the shard re-dispatched.
  int64_t deadline_ms = 0;
  /// Backoff before re-attempt i (1-based): min(base * mult^(i-1), max)
  /// plus up to one base of deterministic jitter, ms.
  int64_t backoff_base_ms = 1;
  double backoff_mult = 2.0;
  int64_t backoff_max_ms = 100;
  /// Stream seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::InvalidArgument(
          "ShardRetryPolicy::max_attempts must be >= 1");
    }
    if (deadline_ms < 0 || backoff_base_ms < 0 || backoff_max_ms < 0) {
      return Status::InvalidArgument(
          "ShardRetryPolicy durations must be >= 0");
    }
    if (backoff_mult < 1.0) {
      return Status::InvalidArgument(
          "ShardRetryPolicy::backoff_mult must be >= 1");
    }
    return Status::OK();
  }
};

/// \brief Execution knobs shared by every engine entry point.
///
/// Orthogonal to every knob here, the hot inner loops (predicate eval,
/// key hashing, join-pair recheck, gathers, Bernoulli keep-masks) run
/// through runtime-dispatched SIMD kernels (src/kernels/simd/): the best
/// tier the CPU supports — scalar, AVX2, or AVX-512 — is selected once at
/// startup and can be forced *down* with the GUS_SIMD environment
/// variable (scalar|avx2|avx512; requests above the detected tier clamp
/// with a one-time stderr note). The tiers are bit-identical by
/// construction, so GUS_SIMD never changes any estimate, row, or digest —
/// only the speed. It is an environment variable rather than an option
/// here precisely because no result can depend on it.
struct ExecOptions {
  ExecEngine engine = ExecEngine::kRowAtATime;
  /// Worker threads for kMorselParallel (ignored by the serial engines).
  int num_threads = 1;
  /// Rows per columnar pipeline batch (>= 1).
  int64_t batch_rows = kDefaultBatchRows;
  /// \brief Rows per morsel for kMorselParallel.
  ///
  /// 0 (the default) sizes morsels automatically: at least four morsels
  /// per worker for scheduling slack, shrunk until one morsel's weighted
  /// working set (pivot row bytes x plan cost weight) fits a ~2 MiB cache
  /// budget, clamped to [kMinAutoMorselRows, kMaxAutoMorselRows]. An
  /// explicit value >= 1 is authoritative and part of the result's
  /// identity: it fixes which forked Rng stream draws each row, making
  /// results reproducible across thread counts — auto-sized runs
  /// reproduce only at a fixed num_threads, because the heuristic reads
  /// it (the pivot layout and plan shape it also reads are fixed for a
  /// given query).
  int64_t morsel_rows = 0;
  /// \brief Logical shards for kSharded (ignored by the other engines).
  ///
  /// Shards are contiguous ranges of the global morsel sequence; the
  /// result is bit-identical for every value >= 1 (see src/dist/shard.h),
  /// so this knob trades per-shard work against shard count without
  /// touching the statistics.
  int num_shards = 1;
  /// \brief Morsel-to-worker placement for kMorselParallel.
  ///
  /// A pure scheduling knob (see MorselPlacement): results are identical
  /// for every value, pinned by the placement-parity tests.
  MorselPlacement placement = MorselPlacement::kDynamic;
  /// \brief Optional execution profile output (not owned; may be null).
  ///
  /// When set, the parallel engines Reset() and fill it with per-phase
  /// wall times and work counters (see plan/exec_stats.h). Never read by
  /// the execution logic, so it cannot change any result. The GUS_PROFILE
  /// environment variable additionally dumps the same profile to stderr
  /// whether or not this is set.
  ExecStats* stats = nullptr;
  /// Retry/deadline/backoff discipline for fault-tolerant sharded runs
  /// (read only by FaultTolerantShardedSboxEstimate).
  ShardRetryPolicy retry;
  /// \brief Acknowledges statistical degradation: when shards are lost
  /// past their retry budget, fold the survivors through the
  /// est/partial_gather re-weighting (unbiased estimate, honestly wider
  /// CI, DegradedReport attached) instead of failing the query.
  ///
  /// Defaults to false — partial answers are opt-in, never silent.
  bool allow_partial = false;
  /// \brief Zone-map / keep-set segment skipping for segment-backed pivot
  /// scans (store/pruner.h).
  ///
  /// Skipping operates at whole-morsel granularity and never changes any
  /// result bit (a skipped unit folds an untouched sink, exactly what an
  /// executed unit with zero surviving rows folds); this knob exists for
  /// A/B measurement, not correctness.
  bool prune_segments = true;

  Status Validate() const {
    if (batch_rows < 1) {
      return Status::InvalidArgument("ExecOptions::batch_rows must be >= 1");
    }
    if (morsel_rows < 0) {
      return Status::InvalidArgument(
          "ExecOptions::morsel_rows must be >= 1, or 0 for auto sizing");
    }
    if (num_threads < 1) {
      return Status::InvalidArgument("ExecOptions::num_threads must be >= 1");
    }
    if (num_shards < 1) {
      return Status::InvalidArgument("ExecOptions::num_shards must be >= 1");
    }
    GUS_RETURN_NOT_OK(retry.Validate());
    return Status::OK();
  }
};

/// \brief Executes `plan` against `catalog`.
///
/// `rng` drives every sampler in the plan (ignored in exact mode). Join
/// nodes use the hash equi-join; product and union use their respective
/// physical operators. With ExecEngine::kColumnar the plan runs on the
/// batch pipeline and the result converts back to a Relation at the end.
/// Each such call builds a throwaway ColumnarCatalog (one row-to-columnar
/// ingest per scanned base relation); callers issuing repeated queries
/// against the same catalog — or wanting to stay columnar / stream — hold
/// a ColumnarCatalog and use plan/columnar_executor.h directly, as the
/// benchmarks do.
Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode = ExecMode::kSampled,
                             ExecEngine engine = ExecEngine::kRowAtATime);

/// Full-options overload: engine, thread count, and batch/morsel sizing all
/// come from `options`.
Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode,
                             const ExecOptions& options);

}  // namespace gus

#endif  // GUS_PLAN_EXECUTOR_H_
