#include "plan/executor.h"

#include "dist/coordinator.h"
#include "plan/columnar_executor.h"
#include "plan/parallel_executor.h"
#include "rel/operators.h"
#include "sampling/samplers.h"

namespace gus {

namespace {

Result<Relation> ExecutePlanRow(const PlanPtr& plan, const Catalog& catalog,
                                Rng* rng, ExecMode mode) {
  switch (plan->op()) {
    case PlanOp::kScan: {
      auto it = catalog.find(plan->relation());
      if (it == catalog.end()) {
        return Status::KeyError("relation '" + plan->relation() +
                                "' not in catalog");
      }
      return it->second;
    }
    case PlanOp::kSample: {
      GUS_ASSIGN_OR_RETURN(Relation input,
                           ExecutePlanRow(plan->child(), catalog, rng, mode));
      if (mode == ExecMode::kExact) {
        // Exact mode computes the true aggregate: sampling is a no-op, but
        // block sampling still re-keys lineage so that sampled and exact
        // runs agree on lineage granularity.
        if (plan->spec().method == SamplingMethod::kBlockBernoulli) {
          return AssignBlockLineage(input, plan->spec().block_size);
        }
        return input;
      }
      return ApplySampling(input, plan->spec(), rng);
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(Relation input,
                           ExecutePlanRow(plan->child(), catalog, rng, mode));
      return Select(input, plan->predicate());
    }
    case PlanOp::kJoin: {
      GUS_ASSIGN_OR_RETURN(Relation l,
                           ExecutePlanRow(plan->left(), catalog, rng, mode));
      GUS_ASSIGN_OR_RETURN(Relation r,
                           ExecutePlanRow(plan->right(), catalog, rng, mode));
      return HashJoin(l, r, plan->left_key(), plan->right_key());
    }
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(Relation l,
                           ExecutePlanRow(plan->left(), catalog, rng, mode));
      GUS_ASSIGN_OR_RETURN(Relation r,
                           ExecutePlanRow(plan->right(), catalog, rng, mode));
      return CrossProduct(l, r);
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(Relation l,
                           ExecutePlanRow(plan->left(), catalog, rng, mode));
      GUS_ASSIGN_OR_RETURN(Relation r,
                           ExecutePlanRow(plan->right(), catalog, rng, mode));
      if (mode == ExecMode::kExact) {
        // Exact evaluation of both branches yields the same set; the union
        // of a set with itself is itself.
        return l;
      }
      return UnionDistinctLineage(l, r);
    }
  }
  return Status::Internal("unknown plan op");
}

}  // namespace

Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode, ExecEngine engine) {
  ExecOptions options;
  options.engine = engine;
  return ExecutePlan(plan, catalog, rng, mode, options);
}

Result<Relation> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                             Rng* rng, ExecMode mode,
                             const ExecOptions& options) {
  GUS_RETURN_NOT_OK(options.Validate());
  switch (options.engine) {
    case ExecEngine::kRowAtATime:
      return ExecutePlanRow(plan, catalog, rng, mode);
    case ExecEngine::kColumnar: {
      ColumnarCatalog columnar(&catalog);
      GUS_ASSIGN_OR_RETURN(
          ColumnarRelation result,
          ExecutePlanColumnar(plan, &columnar, rng, mode,
                              options.batch_rows));
      return result.ToRelation();
    }
    case ExecEngine::kMorselParallel: {
      ColumnarCatalog columnar(&catalog);
      GUS_ASSIGN_OR_RETURN(
          ColumnarRelation result,
          ExecutePlanMorsel(plan, &columnar, rng, mode, options));
      return result.ToRelation();
    }
    case ExecEngine::kSharded: {
      ColumnarCatalog columnar(&catalog);
      GUS_ASSIGN_OR_RETURN(
          ColumnarRelation result,
          ExecutePlanSharded(plan, &columnar, rng, mode, options));
      return result.ToRelation();
    }
    case ExecEngine::kServed:
      return Status::InvalidArgument(
          "ExecEngine::kServed serves cached estimates (sqlish "
          "RunApproxQuery), not materialized relations");
  }
  return Status::Internal("unknown execution engine");
}

}  // namespace gus
