#include "plan/plan_node.h"

#include <sstream>

#include "util/logging.h"

namespace gus {

int PlanNode::num_children() const {
  switch (op_) {
    case PlanOp::kScan: return 0;
    case PlanOp::kSample:
    case PlanOp::kSelect: return 1;
    default: return 2;
  }
}

Result<LineageSchema> PlanNode::ComputeLineageSchema() const {
  switch (op_) {
    case PlanOp::kScan:
      return LineageSchema::Make({relation_});
    case PlanOp::kSample:
    case PlanOp::kSelect:
      return child()->ComputeLineageSchema();
    case PlanOp::kJoin:
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(LineageSchema l, left()->ComputeLineageSchema());
      GUS_ASSIGN_OR_RETURN(LineageSchema r, right()->ComputeLineageSchema());
      return LineageSchema::Concat(l, r);
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(LineageSchema l, left()->ComputeLineageSchema());
      GUS_ASSIGN_OR_RETURN(LineageSchema r, right()->ComputeLineageSchema());
      if (l != r) {
        return Status::InvalidArgument(
            "union children must share a lineage schema");
      }
      return l;
    }
  }
  return Status::Internal("unknown plan op");
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream out;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad;
  switch (op_) {
    case PlanOp::kScan:
      out << "Scan(" << relation_ << ")\n";
      return out.str();
    case PlanOp::kSample:
      out << "Sample[" << spec_.ToString() << "]\n";
      break;
    case PlanOp::kSelect:
      out << "Select[" << predicate_->ToString() << "]\n";
      break;
    case PlanOp::kJoin:
      out << "Join[" << left_key_ << " = " << right_key_ << "]\n";
      break;
    case PlanOp::kProduct:
      out << "Product\n";
      break;
    case PlanOp::kUnion:
      out << "Union\n";
      break;
  }
  for (int i = 0; i < num_children(); ++i) {
    out << children_[i]->ToString(indent + 1);
  }
  return out.str();
}

bool PlanNode::RelationalEqual(const PlanPtr& a, const PlanPtr& b) {
  // Strip sampling wrappers: they are not part of the relational content.
  if (a->op() == PlanOp::kSample) return RelationalEqual(a->child(), b);
  if (b->op() == PlanOp::kSample) return RelationalEqual(a, b->child());
  if (a->op() != b->op()) return false;
  switch (a->op()) {
    case PlanOp::kScan:
      return a->relation() == b->relation();
    case PlanOp::kSelect:
      return a->predicate()->ToString() == b->predicate()->ToString() &&
             RelationalEqual(a->child(), b->child());
    case PlanOp::kJoin:
      if (a->left_key() != b->left_key() || a->right_key() != b->right_key()) {
        return false;
      }
      [[fallthrough]];
    case PlanOp::kProduct:
    case PlanOp::kUnion:
      return RelationalEqual(a->left(), b->left()) &&
             RelationalEqual(a->right(), b->right());
    case PlanOp::kSample:
      return false;  // Unreachable (stripped above).
  }
  return false;
}

PlanPtr PlanNode::Scan(std::string relation) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kScan;
  n->relation_ = std::move(relation);
  return n;
}

PlanPtr PlanNode::Sample(SamplingSpec spec, PlanPtr child) {
  GUS_CHECK(child != nullptr);
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kSample;
  n->spec_ = std::move(spec);
  n->children_[0] = std::move(child);
  return n;
}

PlanPtr PlanNode::SelectNode(ExprPtr predicate, PlanPtr child) {
  GUS_CHECK(predicate != nullptr && child != nullptr);
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kSelect;
  n->predicate_ = std::move(predicate);
  n->children_[0] = std::move(child);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right, std::string left_key,
                       std::string right_key) {
  GUS_CHECK(left != nullptr && right != nullptr);
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kJoin;
  n->children_[0] = std::move(left);
  n->children_[1] = std::move(right);
  n->left_key_ = std::move(left_key);
  n->right_key_ = std::move(right_key);
  return n;
}

PlanPtr PlanNode::Product(PlanPtr left, PlanPtr right) {
  GUS_CHECK(left != nullptr && right != nullptr);
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kProduct;
  n->children_[0] = std::move(left);
  n->children_[1] = std::move(right);
  return n;
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  GUS_CHECK(left != nullptr && right != nullptr);
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->op_ = PlanOp::kUnion;
  n->children_[0] = std::move(left);
  n->children_[1] = std::move(right);
  return n;
}

}  // namespace gus
