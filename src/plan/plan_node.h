// Logical query plans with interspersed sampling operators.
//
// A plan is an immutable tree of scan / sample / select / join / product /
// union nodes, capped by a SUM-like aggregate (the aggregate itself is held
// by the callers — SBox needs the pre-aggregation tuple stream).

#ifndef GUS_PLAN_PLAN_NODE_H_
#define GUS_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/lineage_schema.h"
#include "rel/expression.h"
#include "sampling/spec.h"
#include "util/status.h"

namespace gus {

enum class PlanOp { kScan, kSample, kSelect, kJoin, kProduct, kUnion };

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// \brief One node of a logical plan tree.
class PlanNode {
 public:
  PlanOp op() const { return op_; }
  /// kScan: base relation name.
  const std::string& relation() const { return relation_; }
  /// kSample: the sampling annotation.
  const SamplingSpec& spec() const { return spec_; }
  /// kSelect: the predicate.
  const ExprPtr& predicate() const { return predicate_; }
  /// kJoin: equi-join keys.
  const std::string& left_key() const { return left_key_; }
  const std::string& right_key() const { return right_key_; }

  const PlanPtr& child() const { return children_[0]; }
  const PlanPtr& left() const { return children_[0]; }
  const PlanPtr& right() const { return children_[1]; }
  int num_children() const;

  /// \brief The lineage schema this subtree produces (static property).
  ///
  /// scan -> {relation}; sample/select -> child; join/product -> concat
  /// (fails on overlap); union -> both children must agree.
  Result<LineageSchema> ComputeLineageSchema() const;

  /// Multi-line indented rendering (mirrors the paper's plan figures).
  std::string ToString(int indent = 0) const;

  /// \brief Structural equality of the *relational* content.
  ///
  /// Sample nodes are ignored on both sides — this is the check Prop. 7
  /// needs: two unioned samples must be samples *of the same expression*.
  static bool RelationalEqual(const PlanPtr& a, const PlanPtr& b);

  // -- Node factories ------------------------------------------------------
  static PlanPtr Scan(std::string relation);
  static PlanPtr Sample(SamplingSpec spec, PlanPtr child);
  static PlanPtr SelectNode(ExprPtr predicate, PlanPtr child);
  static PlanPtr Join(PlanPtr left, PlanPtr right, std::string left_key,
                      std::string right_key);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr Union(PlanPtr left, PlanPtr right);

 private:
  PlanNode() = default;

  PlanOp op_ = PlanOp::kScan;
  std::string relation_;
  SamplingSpec spec_;
  ExprPtr predicate_;
  std::string left_key_;
  std::string right_key_;
  PlanPtr children_[2];
};

}  // namespace gus

#endif  // GUS_PLAN_PLAN_NODE_H_
