#include "plan/vector_eval.h"

#include <string>
#include <utility>

#include "kernels/simd/simd_dispatch.h"
#include "util/logging.h"

namespace gus {

namespace {

/// Either a borrowed column (leaf references into the batch) or an owned
/// intermediate — avoids copying whole columns for column-reference leaves.
struct EvalOut {
  const ColumnData* ref = nullptr;
  ColumnData owned;

  const ColumnData& get() const { return ref != nullptr ? *ref : owned; }
};

double ElemToDouble(const ColumnData& col, int64_t i) {
  return col.type == ValueType::kInt64 ? static_cast<double>(col.i64[i])
                                       : col.f64[i];
}

Status NumericOperandError(ExprOp op) {
  return Status::TypeError(std::string("operator ") + ExprOpSymbol(op) +
                           " requires numeric operands");
}

Result<EvalOut> ArithmeticBatch(ExprOp op, const ColumnData& l,
                                const ColumnData& r, int64_t n) {
  if (l.type == ValueType::kString || r.type == ValueType::kString) {
    return NumericOperandError(op);
  }
  EvalOut out;
  // Integer arithmetic stays integral; mixed and division promote to
  // float64 (mirrors NumericBinary in rel/expression.cc).
  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64 &&
      op != ExprOp::kDiv) {
    out.owned.type = ValueType::kInt64;
    auto& dst = out.owned.i64;
    dst.resize(n);
    switch (op) {
      case ExprOp::kAdd:
        for (int64_t i = 0; i < n; ++i) dst[i] = l.i64[i] + r.i64[i];
        break;
      case ExprOp::kSub:
        for (int64_t i = 0; i < n; ++i) dst[i] = l.i64[i] - r.i64[i];
        break;
      case ExprOp::kMul:
        for (int64_t i = 0; i < n; ++i) dst[i] = l.i64[i] * r.i64[i];
        break;
      default:
        return Status::Internal("not a numeric op");
    }
    return out;
  }
  out.owned.type = ValueType::kFloat64;
  auto& dst = out.owned.f64;
  dst.resize(n);
  switch (op) {
    case ExprOp::kAdd:
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = ElemToDouble(l, i) + ElemToDouble(r, i);
      }
      break;
    case ExprOp::kSub:
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = ElemToDouble(l, i) - ElemToDouble(r, i);
      }
      break;
    case ExprOp::kMul:
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = ElemToDouble(l, i) * ElemToDouble(r, i);
      }
      break;
    case ExprOp::kDiv:
      for (int64_t i = 0; i < n; ++i) {
        const double b = ElemToDouble(r, i);
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        dst[i] = ElemToDouble(l, i) / b;
      }
      break;
    default:
      return Status::Internal("not a numeric op");
  }
  return out;
}

bool CompareOp(ExprOp op, int cmp) {
  switch (op) {
    case ExprOp::kEq: return cmp == 0;
    case ExprOp::kNe: return cmp != 0;
    case ExprOp::kLt: return cmp < 0;
    case ExprOp::kLe: return cmp <= 0;
    case ExprOp::kGt: return cmp > 0;
    case ExprOp::kGe: return cmp >= 0;
    default: GUS_CHECK(false && "not a comparison op"); return false;
  }
}

Result<EvalOut> CompareBatch(ExprOp op, const ColumnData& l,
                             const ColumnData& r, int64_t n) {
  EvalOut out;
  out.owned.type = ValueType::kInt64;
  auto& dst = out.owned.i64;
  dst.resize(n);
  const bool l_str = l.type == ValueType::kString;
  const bool r_str = r.type == ValueType::kString;
  if (!l_str && !r_str) {
    for (int64_t i = 0; i < n; ++i) {
      const double a = ElemToDouble(l, i), b = ElemToDouble(r, i);
      const int cmp = a < b ? -1 : (a > b ? 1 : 0);
      dst[i] = CompareOp(op, cmp) ? 1 : 0;
    }
    return out;
  }
  if (l_str && r_str) {
    // Interned codes within one dictionary are unique, so same-dict
    // equality reduces to code equality.
    if (l.dict == r.dict && l.dict != nullptr &&
        (op == ExprOp::kEq || op == ExprOp::kNe)) {
      const bool want_equal = op == ExprOp::kEq;
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = ((l.codes[i] == r.codes[i]) == want_equal) ? 1 : 0;
      }
      return out;
    }
    for (int64_t i = 0; i < n; ++i) {
      const int c = l.StringAt(i).compare(r.StringAt(i));
      const int cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      dst[i] = CompareOp(op, cmp) ? 1 : 0;
    }
    return out;
  }
  return Status::TypeError(
      "cannot compare " + std::string(ValueTypeName(l.type)) + " with " +
      ValueTypeName(r.type));
}

Status Truthify(const ColumnData& col, int64_t n, std::vector<char>* out) {
  if (col.type == ValueType::kString) {
    return Status::TypeError("boolean context requires a numeric value");
  }
  out->resize(n);
  if (col.type == ValueType::kInt64) {
    for (int64_t i = 0; i < n; ++i) (*out)[i] = col.i64[i] != 0;
  } else {
    for (int64_t i = 0; i < n; ++i) (*out)[i] = col.f64[i] != 0.0;
  }
  return Status::OK();
}

/// Marks the columns a bound expression reads (used[i] = 1).
void CollectColumns(const Expr& e, std::vector<char>* used) {
  if (e.op() == ExprOp::kColumn) {
    const int idx = e.column_index();
    if (idx >= 0 && idx < static_cast<int>(used->size())) (*used)[idx] = 1;
    return;
  }
  if (e.op() == ExprOp::kLiteral) return;
  if (e.left() != nullptr) CollectColumns(*e.left(), used);
  if (e.right() != nullptr) CollectColumns(*e.right(), used);
}

Result<EvalOut> EvalNode(const Expr& e, const ColumnBatch& batch) {
  const int64_t n = batch.num_rows();
  switch (e.op()) {
    case ExprOp::kColumn: {
      const int idx = e.column_index();
      if (idx < 0 || idx >= batch.num_columns()) {
        return Status::Internal("unbound or out-of-range column '" +
                                e.column_name() + "' — call Bind() first");
      }
      EvalOut out;
      out.ref = &batch.column(idx);
      return out;
    }
    case ExprOp::kLiteral: {
      EvalOut out;
      out.owned.type = e.literal().type();
      switch (e.literal().type()) {
        case ValueType::kInt64:
          out.owned.i64.assign(n, e.literal().AsInt64());
          break;
        case ValueType::kFloat64:
          out.owned.f64.assign(n, e.literal().AsFloat64());
          break;
        case ValueType::kString: {
          out.owned.dict = std::make_shared<StringDict>();
          const uint32_t code =
              out.owned.dict->Intern(e.literal().AsString());
          out.owned.codes.assign(n, code);
          break;
        }
      }
      return out;
    }
    case ExprOp::kNeg: {
      GUS_ASSIGN_OR_RETURN(EvalOut arg, EvalNode(*e.left(), batch));
      const ColumnData& col = arg.get();
      if (col.type == ValueType::kString) {
        return Status::TypeError("negation of non-number");
      }
      EvalOut out;
      out.owned.type = col.type;
      if (col.type == ValueType::kInt64) {
        out.owned.i64.resize(n);
        for (int64_t i = 0; i < n; ++i) out.owned.i64[i] = -col.i64[i];
      } else {
        out.owned.f64.resize(n);
        for (int64_t i = 0; i < n; ++i) out.owned.f64[i] = -col.f64[i];
      }
      return out;
    }
    case ExprOp::kNot: {
      GUS_ASSIGN_OR_RETURN(EvalOut arg, EvalNode(*e.left(), batch));
      std::vector<char> truth;
      GUS_RETURN_NOT_OK(Truthify(arg.get(), n, &truth));
      EvalOut out;
      out.owned.type = ValueType::kInt64;
      out.owned.i64.resize(n);
      for (int64_t i = 0; i < n; ++i) out.owned.i64[i] = truth[i] ? 0 : 1;
      return out;
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      // Row-level short-circuit, vectorized: the right operand only
      // evaluates over the rows whose outcome it decides, so guard
      // predicates like `x <> 0 AND 1/x > 2` behave exactly as in the row
      // engine.
      GUS_ASSIGN_OR_RETURN(EvalOut l, EvalNode(*e.left(), batch));
      std::vector<char> lt;
      GUS_RETURN_NOT_OK(Truthify(l.get(), n, &lt));
      const bool is_and = e.op() == ExprOp::kAnd;
      EvalOut out;
      out.owned.type = ValueType::kInt64;
      out.owned.i64.resize(n);
      std::vector<int64_t> undecided;
      for (int64_t i = 0; i < n; ++i) {
        if (static_cast<bool>(lt[i]) == is_and) {
          undecided.push_back(i);
        } else {
          out.owned.i64[i] = is_and ? 0 : 1;  // short-circuited
        }
      }
      if (undecided.empty()) return out;
      std::vector<char> rt;
      if (static_cast<int64_t>(undecided.size()) == n) {
        GUS_ASSIGN_OR_RETURN(EvalOut r, EvalNode(*e.right(), batch));
        GUS_RETURN_NOT_OK(Truthify(r.get(), n, &rt));
        for (int64_t i = 0; i < n; ++i) out.owned.i64[i] = rt[i] ? 1 : 0;
        return out;
      }
      // The sub-batch only carries the columns the right subtree reads
      // (and no lineage) — the rest of a wide row never gets copied.
      std::vector<char> used(batch.num_columns(), 0);
      CollectColumns(*e.right(), &used);
      ColumnBatch sub(batch.layout_ptr());
      sub.GatherColumnsFrom(batch, undecided.data(),
                            static_cast<int64_t>(undecided.size()), used);
      GUS_ASSIGN_OR_RETURN(EvalOut r, EvalNode(*e.right(), sub));
      GUS_RETURN_NOT_OK(
          Truthify(r.get(), static_cast<int64_t>(undecided.size()), &rt));
      for (size_t k = 0; k < undecided.size(); ++k) {
        out.owned.i64[undecided[k]] = rt[k] ? 1 : 0;
      }
      return out;
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      GUS_ASSIGN_OR_RETURN(EvalOut l, EvalNode(*e.left(), batch));
      GUS_ASSIGN_OR_RETURN(EvalOut r, EvalNode(*e.right(), batch));
      return ArithmeticBatch(e.op(), l.get(), r.get(), n);
    }
    default: {
      GUS_ASSIGN_OR_RETURN(EvalOut l, EvalNode(*e.left(), batch));
      GUS_ASSIGN_OR_RETURN(EvalOut r, EvalNode(*e.right(), batch));
      return CompareBatch(e.op(), l.get(), r.get(), n);
    }
  }
}

bool CmpOpFromExpr(ExprOp op, simd::CmpOp* out) {
  switch (op) {
    case ExprOp::kEq: *out = simd::CmpOp::kEq; return true;
    case ExprOp::kNe: *out = simd::CmpOp::kNe; return true;
    case ExprOp::kLt: *out = simd::CmpOp::kLt; return true;
    case ExprOp::kLe: *out = simd::CmpOp::kLe; return true;
    case ExprOp::kGt: *out = simd::CmpOp::kGt; return true;
    case ExprOp::kGe: *out = simd::CmpOp::kGe; return true;
    default: return false;
  }
}

/// Operator seen from the swapped operand order: a OP b == b MIRROR(OP) a.
/// Exact even against NaN, because cmp(b, a) == -cmp(a, b) in every case.
simd::CmpOp MirrorCmp(simd::CmpOp op) {
  switch (op) {
    case simd::CmpOp::kLt: return simd::CmpOp::kGt;
    case simd::CmpOp::kLe: return simd::CmpOp::kGe;
    case simd::CmpOp::kGt: return simd::CmpOp::kLt;
    case simd::CmpOp::kGe: return simd::CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// \brief Fused compare -> selection-vector path for the common predicate
/// shape `column OP column` / `column OP literal` over numeric operands.
///
/// Skips the materialized 0/1 column entirely: one dispatched kernel call
/// produces the selection vector, with the same promote-to-double compare
/// semantics as CompareBatch. Returns false (sel untouched) for any shape
/// it does not cover; the caller then takes the general EvalNode path.
bool TryFusedCompare(const Expr& e, const ColumnBatch& batch,
                     std::vector<int64_t>* sel) {
  simd::CmpOp op;
  if (!CmpOpFromExpr(e.op(), &op)) return false;
  const Expr* lhs = e.left().get();
  const Expr* rhs = e.right().get();
  if (lhs == nullptr || rhs == nullptr) return false;
  if (lhs->op() == ExprOp::kLiteral && rhs->op() == ExprOp::kColumn) {
    std::swap(lhs, rhs);
    op = MirrorCmp(op);
  }
  if (lhs->op() != ExprOp::kColumn) return false;
  const int li = lhs->column_index();
  if (li < 0 || li >= batch.num_columns()) return false;
  const ColumnData& lc = batch.column(li);
  if (lc.type == ValueType::kString) return false;
  const int64_t n = batch.num_rows();

  if (rhs->op() == ExprOp::kLiteral) {
    const Value& lit = rhs->literal();
    double litv;
    if (lit.type() == ValueType::kInt64) {
      litv = static_cast<double>(lit.AsInt64());
    } else if (lit.type() == ValueType::kFloat64) {
      litv = lit.AsFloat64();
    } else {
      return false;
    }
    sel->resize(static_cast<size_t>(n));
    const int64_t w =
        lc.type == ValueType::kInt64
            ? simd::SelCmpI64Lit(op, lc.i64.data(), n, litv, sel->data())
            : simd::SelCmpF64Lit(op, lc.f64.data(), n, litv, sel->data());
    sel->resize(static_cast<size_t>(w));
    return true;
  }

  if (rhs->op() != ExprOp::kColumn) return false;
  const int ri = rhs->column_index();
  if (ri < 0 || ri >= batch.num_columns()) return false;
  const ColumnData& rc = batch.column(ri);
  if (rc.type == ValueType::kString) return false;
  sel->resize(static_cast<size_t>(n));
  int64_t w;
  if (lc.type == ValueType::kInt64) {
    w = rc.type == ValueType::kInt64
            ? simd::SelCmpI64I64(op, lc.i64.data(), rc.i64.data(), n,
                                 sel->data())
            : simd::SelCmpI64F64(op, lc.i64.data(), rc.f64.data(), n,
                                 sel->data());
  } else {
    w = rc.type == ValueType::kInt64
            ? simd::SelCmpF64I64(op, lc.f64.data(), rc.i64.data(), n,
                                 sel->data())
            : simd::SelCmpF64F64(op, lc.f64.data(), rc.f64.data(), n,
                                 sel->data());
  }
  sel->resize(static_cast<size_t>(w));
  return true;
}

}  // namespace

Result<ColumnData> EvalExprBatch(const ExprPtr& bound,
                                 const ColumnBatch& batch) {
  GUS_ASSIGN_OR_RETURN(EvalOut out, EvalNode(*bound, batch));
  if (out.ref != nullptr) return *out.ref;  // copy only at the API boundary
  return std::move(out.owned);
}

Status EvalPredicateBatch(const ExprPtr& bound, const ColumnBatch& batch,
                          std::vector<int64_t>* sel) {
  sel->clear();
  if (TryFusedCompare(*bound, batch, sel)) return Status::OK();
  GUS_ASSIGN_OR_RETURN(EvalOut out, EvalNode(*bound, batch));
  const ColumnData& col = out.get();
  if (col.type == ValueType::kString) {
    return Status::TypeError("predicate must evaluate to a numeric/boolean");
  }
  const int64_t n = batch.num_rows();
  sel->resize(static_cast<size_t>(n));
  const int64_t w =
      col.type == ValueType::kInt64
          ? simd::SelNonZeroI64(col.i64.data(), n, sel->data())
          : simd::SelNonZeroF64(col.f64.data(), n, sel->data());
  sel->resize(static_cast<size_t>(w));
  return Status::OK();
}

void ExprColumnFootprint(const ExprPtr& bound, int num_columns,
                         std::vector<char>* out) {
  out->assign(static_cast<size_t>(num_columns), 0);
  CollectColumns(*bound, out);
}

Status EvalPredicateView(const ExprPtr& bound, const SelView& view,
                         const std::vector<char>& footprint,
                         ColumnBatch* scratch,
                         std::vector<int64_t>* range_scratch,
                         std::vector<int64_t>* sel_out) {
  sel_out->clear();
  if (view.num_rows() == 0) return Status::OK();
  if (view.whole_batch()) {
    // The view is a whole batch already: no gather, indexes line up.
    return EvalPredicateBatch(bound, *view.data, sel_out);
  }
  const int64_t* sel = view.sel;
  int64_t len = view.sel_len;
  if (view.contiguous()) {
    range_scratch->resize(static_cast<size_t>(view.len));
    for (int64_t i = 0; i < view.len; ++i) {
      (*range_scratch)[i] = view.begin + i;
    }
    sel = range_scratch->data();
    len = view.len;
  }
  if (scratch->layout_ptr() != view.data->layout_ptr()) {
    scratch->ResetLayout(view.data->layout_ptr());
  } else {
    scratch->Clear();
  }
  scratch->GatherColumnsFrom(*view.data, sel, len, footprint);
  GUS_RETURN_NOT_OK(EvalPredicateBatch(bound, *scratch, sel_out));
  // Remap scratch-local positions back to underlying row indexes in place.
  for (int64_t& k : *sel_out) k = sel[k];
  return Status::OK();
}

Status EvalExprBatchToDoubles(const ExprPtr& bound, const ColumnBatch& batch,
                              const char* type_error_message,
                              std::vector<double>* out) {
  GUS_ASSIGN_OR_RETURN(EvalOut result, EvalNode(*bound, batch));
  const ColumnData& col = result.get();
  if (col.type == ValueType::kString) {
    return Status::TypeError(type_error_message);
  }
  if (col.type == ValueType::kFloat64) {
    out->insert(out->end(), col.f64.begin(), col.f64.end());
  } else {
    const size_t base = out->size();
    out->resize(base + col.i64.size());
    simd::ConvertI64ToF64(col.i64.data(),
                          static_cast<int64_t>(col.i64.size()),
                          out->data() + base);
  }
  return Status::OK();
}

Result<std::vector<double>> ColumnToDouble(const ColumnData& col) {
  if (col.type == ValueType::kString) {
    return Status::TypeError("numeric column required");
  }
  if (col.type == ValueType::kFloat64) return col.f64;
  std::vector<double> out(col.i64.size());
  simd::ConvertI64ToF64(col.i64.data(), static_cast<int64_t>(col.i64.size()),
                        out.data());
  return out;
}

}  // namespace gus
