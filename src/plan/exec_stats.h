// Per-query execution profile for the parallel engines.
//
// The E3c bench sat at ~1x scaling for three PRs because nobody could say
// *which* phase was eating the time — this struct makes the answer a
// measurement instead of a guess. Point ExecOptions::stats at an ExecStats
// and the morsel-parallel executor fills in per-phase wall times, per-worker
// morsel counts, pool behavior, and data volume. Setting the GUS_PROFILE
// environment variable (any non-empty value except "0") prints the same
// profile to stderr after every parallel execution, with no code changes.
//
// Collection is cheap (a handful of steady_clock reads and relaxed atomic
// adds per query, not per row) and never changes results: the stats pointer
// is deliberately excluded from everything that feeds the deterministic
// morsel split / Rng stream derivation.

#ifndef GUS_PLAN_EXEC_STATS_H_
#define GUS_PLAN_EXEC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gus {

/// \brief Wall-clock and work profile of one parallel plan execution.
///
/// Filled by ParallelExecutePlanToSink / ExecutePlanParallel (and the
/// range/shard primitives underneath) when ExecOptions::stats points here.
/// Reset() is called on entry, so one instance can be reused across
/// queries. Phase times satisfy
///   prepare_ms + parallel_ms + gather_ms <= total_ms   (plus epsilon)
/// and sink_fold_ms is time *inside* parallel_ms spent in ordered
/// MergeFrom folds (it overlaps morsel work on other threads, so it is not
/// an additive phase).
struct ExecStats {
  // ---- Phase wall times (milliseconds) ----
  /// Serial prepare: pivot analysis, non-pivot subtree execution, sampler
  /// resolution, shared join-side builds.
  double prepare_ms = 0.0;
  /// The morsel loop: scan/sample/probe/emit across all workers, wall time.
  double parallel_ms = 0.0;
  /// Time spent folding per-morsel sinks in ascending morsel order
  /// (measured on whichever thread held the folder role; overlaps
  /// parallel_ms).
  double sink_fold_ms = 0.0;
  /// Result materialization after the fold: relation concat + dictionary
  /// unification (zero for estimator sinks, which fold to O(sample) state).
  double gather_ms = 0.0;
  /// Whole engine call, wall time.
  double total_ms = 0.0;

  // ---- Work accounting ----
  int64_t pivot_rows = 0;  ///< rows of the partitioned pivot scan
  int64_t morsels = 0;     ///< units the pivot was split into
  int64_t morsel_rows = 0; ///< resolved rows per morsel (after auto sizing)
  int64_t rows_emitted = 0;   ///< rows pushed into per-morsel sinks
  int64_t bytes_moved = 0;    ///< approx payload of those rows (cols+lineage)
  int64_t sinks_created = 0;  ///< fresh per-morsel sink allocations
  int64_t sinks_recycled = 0; ///< sinks served from the reuse arena
  /// Morsels run by each worker (index = worker id; 0 is the caller).
  std::vector<int64_t> worker_morsels;

  // ---- Pool behavior ----
  int workers = 0;                    ///< parallelism of the morsel loop
  uint64_t pool_wakeups = 0;          ///< worker cv wakeups for this query
  uint64_t pool_threads_spawned = 0;  ///< threads created (0 = pool reused)
  /// True when the plan had no partitionable pivot and fell back to the
  /// serial columnar pipeline (phase times then cover that path).
  bool serial_fallback = false;

  // ---- Fault tolerance (FaultTolerantShardedSboxEstimate) ----
  int64_t shard_attempts = 0;       ///< shard worker attempts launched
  int64_t shard_retries = 0;        ///< re-dispatches after retryable failure
  int64_t shard_deadline_hits = 0;  ///< attempts abandoned at the deadline
  int64_t shards_lost = 0;          ///< shards given up after the retry budget
  /// True when the result came from a degraded (partial) gather.
  bool degraded = false;
  /// Fraction of the global unit sequence the folded shards covered
  /// (1.0 for a complete gather; see DegradedReport).
  double effective_coverage = 1.0;

  // ---- Segment store (store/; filled when the pivot scan is
  // segment-backed) ----
  /// Segments of the pivot relation overlapping the executed unit range.
  int64_t segments_total = 0;
  /// Segments the pruner proved useless (their units folded empty sinks
  /// without executing; see store/pruner.h for the soundness argument).
  int64_t segments_skipped = 0;
  /// Segment decodes performed during this execution (cache-miss faults,
  /// including materializations of non-pivot relations).
  int64_t segments_faulted = 0;
  /// Page bytes decoded from disk during this execution. With a cold cache,
  /// one thread and a single-relation plan,
  ///   segments_skipped + segments_faulted == segments_total
  /// and store_bytes_read is exactly the faulted segments' page bytes.
  int64_t store_bytes_read = 0;

  // ---- Approximate-view cache (serve/view_cache.h; filled by the
  // serving layer and the sqlish kServed engine) ----
  int64_t cache_hits = 0;           ///< queries answered from merged state
  int64_t cache_misses = 0;         ///< queries that had to execute
  int64_t cache_invalidations = 0;  ///< entries dropped (catalog change/clear)

  /// Clears everything (worker_morsels becomes empty).
  void Reset();

  /// \brief Human-readable multi-line profile block, e.g. for GUS_PROFILE.
  ///
  /// `label` names the query in the header line (empty = none).
  std::string ToString(const std::string& label = "") const;
};

/// True when the GUS_PROFILE environment variable asks for per-query
/// profile dumps (set to anything but "" or "0"). Read once per process.
bool ProfileEnvEnabled();

}  // namespace gus

#endif  // GUS_PLAN_EXEC_STATS_H_
