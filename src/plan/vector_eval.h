// Vectorized expression evaluation over column batches.
//
// Semantics mirror the row-at-a-time Expr::Eval exactly — integer
// arithmetic stays integral (division always promotes to float64 and fails
// on a zero divisor), mixed numeric operands promote to float64, booleans
// are int64 0/1, string comparison is lexicographic, and AND/OR
// short-circuit at row granularity (the right operand only evaluates on
// rows the left leaves undecided, so guard predicates behave identically).
// One residual divergence: when *different* rows fail in different
// subtrees, the batch evaluator may report a different (equally valid)
// first error than the row-by-row order would.

#ifndef GUS_PLAN_VECTOR_EVAL_H_
#define GUS_PLAN_VECTOR_EVAL_H_

#include <vector>

#include "rel/column_batch.h"
#include "rel/expression.h"
#include "util/status.h"

namespace gus {

/// \brief Evaluates a *bound* expression over every row of `batch`.
///
/// Returns a column of batch.num_rows() values (a literal broadcasts).
Result<ColumnData> EvalExprBatch(const ExprPtr& bound, const ColumnBatch& batch);

/// \brief Evaluates a bound predicate and appends the truthy row indexes to
/// `sel` (cleared first). Fails on non-numeric predicate results.
Status EvalPredicateBatch(const ExprPtr& bound, const ColumnBatch& batch,
                          std::vector<int64_t>* sel);

/// Marks the columns a *bound* expression reads (out[i] = 1); `out` is
/// sized to `num_columns` and zeroed first.
void ExprColumnFootprint(const ExprPtr& bound, int num_columns,
                         std::vector<char>* out);

/// \brief Fused-select core: evaluates a bound predicate over the rows of
/// `view` and appends the truthy rows' *underlying* indexes (into
/// view.data) to `sel_out` (cleared first).
///
/// Only the predicate's column footprint is gathered (into `scratch`,
/// reused across calls); the full-width row is never copied. Row-level
/// semantics — promotion, short-circuit, error messages — are exactly
/// EvalPredicateBatch's, applied to the view's row sequence.
Status EvalPredicateView(const ExprPtr& bound, const SelView& view,
                         const std::vector<char>& footprint,
                         ColumnBatch* scratch,
                         std::vector<int64_t>* range_scratch,
                         std::vector<int64_t>* sel_out);

/// \brief Evaluates a bound numeric expression and *appends* each row's
/// value, widened to double, to `out` — no intermediate column copies
/// (the streaming estimators' hot path). Fails with
/// TypeError(`type_error_message`) on a non-numeric result, so callers
/// keep their row-path diagnostics.
Status EvalExprBatchToDoubles(const ExprPtr& bound, const ColumnBatch& batch,
                              const char* type_error_message,
                              std::vector<double>* out);

/// Widens a numeric column to double (bit-identical to Value::ToDouble per
/// row); fails on string columns.
Result<std::vector<double>> ColumnToDouble(const ColumnData& col);

}  // namespace gus

#endif  // GUS_PLAN_VECTOR_EVAL_H_
