// Morsel-driven partition-parallel plan execution.
//
// The engine picks one base scan of the plan — the *pivot* — whose path to
// the root crosses only partition-safe operators, and splits that relation
// into fixed-size morsels (ExecOptions::morsel_rows). Everything hanging
// off the pivot path (join build sides, product counterparts) executes once,
// serially, with the caller's Rng, exactly like the serial columnar engine;
// each morsel then runs the remaining pipeline — scan slice, vectorized
// selects, per-partition samplers, probes against the shared join hash
// tables — on whatever worker picks it up, drawing randomness from
// Rng::ForkStream(base, morsel_index).
//
// Partition-safe path operators:
//   * select — stateless per row;
//   * Bernoulli / lineage-seeded Bernoulli samplers — per-row (resp.
//     per-lineage) decisions, so independent per-morsel streams draw from
//     exactly the same sampling design as one serial stream;
//   * join / product — the non-pivot side is shared read-only;
//   * in exact mode additionally WOR / WR-distinct samplers (no-ops there).
// Fixed-size samplers in sampled mode, block sampling, and unions are not
// partition-safe; a plan with no safe pivot falls back to the serial
// columnar pipeline (same results as ExecEngine::kColumnar).
//
// Determinism: the morsel split depends only on (catalog, morsel_rows), the
// per-morsel Rng only on (seed, morsel index), and per-morsel sinks are
// folded in strictly ascending morsel order — so for a fixed (plan,
// catalog, seed, options) the merged result is bit-identical across
// repeated runs AND, with an explicit morsel_rows, across num_threads
// values (auto sizing — morsel_rows = 0 — derives the split from the
// thread count, so it reproduces only at a fixed num_threads). The draw
// differs from the serial engines' (different Rng streams) but follows
// the same design, so estimator unbiasedness and the Theorem 1 analysis
// are unaffected.

#ifndef GUS_PLAN_PARALLEL_EXECUTOR_H_
#define GUS_PLAN_PARALLEL_EXECUTOR_H_

#include <functional>
#include <memory>

#include "plan/columnar_executor.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/column_batch.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// \brief A batch sink whose state can absorb another instance's.
///
/// The parallel executor gives every morsel its own sink and folds them in
/// ascending morsel order; MergeFrom must treat `other` as the state of the
/// partitions immediately *after* this sink's (order matters for
/// floating-point sums and row order, and the executor guarantees it).
class MergeableBatchSink : public BatchSink {
 public:
  /// Absorbs `other` (same concrete type; consumed). The executor never
  /// passes a sink produced by a different factory.
  virtual Status MergeFrom(BatchSink* other) = 0;
};

/// \brief Creates one per-morsel sink for the pipeline's output `layout`.
///
/// Invoked concurrently from worker threads (one call per morsel, on
/// whichever worker claims it): the factory must be thread-safe — capture
/// shared state by const reference only, and put anything mutable inside
/// the sink it returns.
using MorselSinkFactory =
    std::function<Result<std::unique_ptr<MergeableBatchSink>>(
        const BatchLayout&)>;

/// \brief True when the morsel engine can partition `plan` (some scan has a
/// partition-safe path to the root) under `mode`.
///
/// Purely structural — no catalog needed. When false the engine still
/// executes the plan, via the serial fallback.
bool PlanIsPartitionable(const PlanPtr& plan, ExecMode mode);

/// \brief The deterministic execution-unit layout the morsel engine uses
/// for (plan, catalog, mode, options).
///
/// Exposed so the shared-nothing layer (src/dist/) can carve the *same*
/// global unit sequence into contiguous shard ranges: because the split
/// depends only on (catalog, morsel_rows) — never on worker or shard
/// counts — any partition of [0, num_units) into ordered ranges merges
/// back to the identical result.
struct MorselSplit {
  /// False: no partition-safe pivot. The plan still executes, as exactly
  /// one serial unit (unit 0) on the columnar fallback path.
  bool partitionable = false;
  /// Execution units: pivot morsels when partitionable (0 for an empty
  /// pivot relation), else exactly 1 (the serial fallback unit).
  int64_t num_units = 1;
  /// Rows per morsel after auto-sizing (0 when not partitionable). Note
  /// auto-sizing (ExecOptions::morsel_rows == 0) reads num_threads; pass
  /// an explicit morsel_rows for a split that is invariant across worker
  /// AND shard counts.
  int64_t morsel_rows = 0;
  /// Pivot relation rows (0 when not partitionable).
  int64_t pivot_rows = 0;
};

/// \brief Computes the unit split without executing anything (the pivot
/// relation is resolved, converting to columnar on first use).
Result<MorselSplit> AnalyzeMorselSplit(const PlanPtr& plan,
                                       ColumnarCatalog* catalog, ExecMode mode,
                                       const ExecOptions& options);

/// \brief Executes `plan` morsel-parallel, fanning batches into per-morsel
/// sinks from `make_sink` and folding them into `*out` in morsel order.
///
/// `rng` drives the serially-executed non-pivot subtrees and seeds the
/// per-morsel streams. On the fallback path (no safe pivot) a single sink
/// consumes the serial columnar pipeline.
Status ParallelExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                                 Rng* rng, ExecMode mode,
                                 const ExecOptions& options,
                                 const MorselSinkFactory& make_sink,
                                 std::unique_ptr<MergeableBatchSink>* out);

/// \brief Executes only the global units in [unit_begin, unit_end) of the
/// AnalyzeMorselSplit layout (clamped to the valid range), folding their
/// sinks into `*out` in ascending unit order.
///
/// This is the shard-worker primitive: unit u always draws from
/// Rng::ForkStream(stream_base, u) where stream_base is the caller Rng's
/// next draw *after* the serial non-pivot subtrees execute — so for a
/// fixed (plan, catalog, seed, morsel_rows) the concatenation of any
/// ordered range cover reproduces the full run bit for bit, regardless of
/// how many ranges (shards) or threads execute it. Note the serial phase
/// runs (and consumes `rng`) even for an empty range: every shard worker
/// must consume the identical Rng prefix for stream_base to agree. On the
/// non-partitionable fallback the single serial unit 0 runs iff the range
/// contains it. `stream_base_out` (optional) receives the stream base
/// (0 on the fallback path) so callers can cross-check shard consistency.
Status ParallelExecuteUnitRangeToSink(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end,
    const MorselSinkFactory& make_sink,
    std::unique_ptr<MergeableBatchSink>* out,
    uint64_t* stream_base_out = nullptr);

/// Morsel-parallel execution materializing the merged result (per-morsel
/// relations concatenate in morsel order, unifying string dictionaries).
Result<ColumnarRelation> ExecutePlanMorsel(const PlanPtr& plan,
                                           ColumnarCatalog* catalog, Rng* rng,
                                           ExecMode mode,
                                           const ExecOptions& options);

/// ExecutePlanMorsel restricted to units [unit_begin, unit_end) — the
/// materializing shard-worker path (ExecEngine::kSharded relations).
Result<ColumnarRelation> ExecutePlanMorselRange(const PlanPtr& plan,
                                                ColumnarCatalog* catalog,
                                                Rng* rng, ExecMode mode,
                                                const ExecOptions& options,
                                                int64_t unit_begin,
                                                int64_t unit_end);

}  // namespace gus

#endif  // GUS_PLAN_PARALLEL_EXECUTOR_H_
