// Morsel-driven partition-parallel plan execution.
//
// The engine picks one base scan of the plan — the *pivot* — whose path to
// the root crosses only partition-safe operators, and splits that relation
// into fixed-size morsels (ExecOptions::morsel_rows). Everything hanging
// off the pivot path (join build sides, product counterparts) executes once,
// serially, with the caller's Rng, exactly like the serial columnar engine;
// each morsel then runs the remaining pipeline — scan slice, vectorized
// selects, per-partition samplers, probes against the shared join hash
// tables, per-slice union dedup — on whatever worker picks it up.
//
// Pivot-eligibility (the full matrix lives in ARCHITECTURE.md):
//   * select — stateless per row;
//   * Bernoulli — independent per-morsel Rng streams
//     (Rng::ForkStream(stream_base, morsel)) draw from exactly the same
//     sampling design as one serial stream (a different, equally valid
//     draw than the serial engines');
//   * lineage-seeded Bernoulli — Rng-free pure function of (seed, lineage);
//   * fixed-size WOR / WR-distinct samplers directly above the pivot scan —
//     seed-decoupled: the sampler consumes one Rng value during the serial
//     prepare phase and the exact global keep-set (a mergeable-reservoir
//     top-n, resp. the n draw targets) is a pure function of (seed, row),
//     so every morsel filters its slice against the same global sample and
//     the draw is bit-identical to the serial engines';
//   * block sampling directly above the pivot scan — per-block decisions
//     are pure functions of (seed, block id), morsel boundaries align to
//     whole blocks (blocks are indivisible morsel units), and the draw is
//     bit-identical to the serial engines';
//   * join / product — the non-pivot side is shared read-only (the shared
//     JoinHashTable build is itself partition-parallel);
//   * union — both branches partition over the same pivot scan; each
//     morsel runs both branch pipelines on its slice and dedups locally.
//     Lineage is the partitioning key: a base tuple's result rows can only
//     appear in its own pivot slice, so slice-local first-occurrence dedup
//     equals the serial engines' global dedup (Prop. 7 composition is
//     untouched — the SOA transform still folds the branches with
//     GusUnion).
// A fixed-size or block sampler over a *derived* input (anything but the
// scan itself) still forces the serial fallback — those draws need the
// whole derived stream; in exact mode fixed-size samplers are no-ops and
// stay safe anywhere.
//
// Determinism: the morsel split depends only on (catalog, morsel_rows,
// block alignment), per-morsel randomness only on (seed, morsel index),
// sampler seeds and keep-sets only on (plan, seed), and per-morsel sinks
// are folded in strictly ascending morsel order — so for a fixed (plan,
// catalog, seed, options) the merged result is bit-identical across
// repeated runs AND, with an explicit morsel_rows, across num_threads
// values (auto sizing — morsel_rows = 0 — derives the split from the
// thread count plus the pivot layout and plan cost weight, so it
// reproduces only at a fixed num_threads). Placement (ExecOptions::
// placement) and profiling (ExecOptions::stats / GUS_PROFILE) are pure
// scheduling/observation knobs outside this identity: results are
// identical for every value. Plans whose
// only Rng consumers are seed-decoupled samplers (WOR / WR / block /
// lineage-seeded) additionally reproduce the serial row engine's rows bit
// for bit; plain Bernoulli keeps the same design but a different draw.

#ifndef GUS_PLAN_PARALLEL_EXECUTOR_H_
#define GUS_PLAN_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/columnar_executor.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/column_batch.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// \brief A batch sink whose state can absorb another instance's.
///
/// The parallel executor gives every morsel its own sink and folds them in
/// ascending morsel order; MergeFrom must treat `other` as the state of the
/// partitions immediately *after* this sink's (order matters for
/// floating-point sums and row order, and the executor guarantees it).
class MergeableBatchSink : public BatchSink {
 public:
  /// Absorbs `other` (same concrete type; consumed). The executor never
  /// passes a sink produced by a different factory.
  virtual Status MergeFrom(BatchSink* other) = 0;

  /// \brief Returns this sink to a reusable empty state after its contents
  /// were absorbed by MergeFrom, or false (the default) to be destroyed.
  ///
  /// Sinks that return true land in the executor's per-query reuse arena:
  /// instead of one allocation (plus expression re-binding, dictionary
  /// maps, ...) per morsel, the executor cycles roughly one sink per
  /// worker. Purely an allocation optimization — each morsel's sink still
  /// consumes only that morsel's stream and still folds in strictly
  /// ascending morsel order, so results are unchanged by construction
  /// (pinned by the sink-arena parity tests).
  virtual bool Recycle() { return false; }
};

/// \brief Creates one per-morsel sink for the pipeline's output `layout`.
///
/// Invoked concurrently from worker threads (one call per morsel, on
/// whichever worker claims it): the factory must be thread-safe — capture
/// shared state by const reference only, and put anything mutable inside
/// the sink it returns.
using MorselSinkFactory =
    std::function<Result<std::unique_ptr<MergeableBatchSink>>(
        const BatchLayout&)>;

/// \brief True when the morsel engine can partition `plan` (some scan has a
/// partition-safe path to the root) under `mode`.
///
/// Purely structural — no catalog needed. When false the engine still
/// executes the plan, via the serial fallback.
bool PlanIsPartitionable(const PlanPtr& plan, ExecMode mode);

/// \brief One seed-decoupled pivot-path sampler resolved during the serial
/// prepare phase.
///
/// The consistency fingerprint the shared-nothing layer ships in the SMPL
/// wire section: every shard resolves the same samplers from the same
/// seed, so byte-equal resolutions prove the shards agreed on the global
/// fixed-size draws before their partial states merge.
struct ResolvedPivotSampler {
  /// static_cast of SamplingMethod (stable small enum).
  uint8_t method = 0;
  /// The sampler seed drawn from the engine Rng stream.
  uint64_t seed = 0;
  /// FNV digest of the resolved keep-set (WOR / WR) or of the decision
  /// parameters (block sampling).
  uint64_t fingerprint = 0;

  bool operator==(const ResolvedPivotSampler& o) const {
    return method == o.method && seed == o.seed && fingerprint == o.fingerprint;
  }
};

/// \brief The deterministic execution-unit layout the morsel engine uses
/// for (plan, catalog, mode, options).
///
/// Exposed so the shared-nothing layer (src/dist/) can carve the *same*
/// global unit sequence into contiguous shard ranges: because the split
/// depends only on (catalog, morsel_rows, pivot block alignment) — never
/// on worker or shard counts — any partition of [0, num_units) into
/// ordered ranges merges back to the identical result.
struct MorselSplit {
  /// False: no partition-safe pivot. The plan still executes, as exactly
  /// one serial unit (unit 0) on the columnar fallback path.
  bool partitionable = false;
  /// Execution units: pivot morsels when partitionable (0 for an empty
  /// pivot relation), else exactly 1 (the serial fallback unit).
  int64_t num_units = 1;
  /// Rows per morsel after auto-sizing and block alignment (0 when not
  /// partitionable). Note auto-sizing (ExecOptions::morsel_rows == 0)
  /// reads num_threads; pass an explicit morsel_rows for a split that is
  /// invariant across worker AND shard counts.
  int64_t morsel_rows = 0;
  /// Pivot relation rows (0 when not partitionable).
  int64_t pivot_rows = 0;
  /// Chosen pivot base relation (empty when not partitionable).
  std::string pivot_relation;
  /// Rows per block when a pivot-adjacent block sampler forces block-
  /// aligned morsels; 1 otherwise.
  int64_t block_align = 1;
};

/// \brief Computes the unit split without executing anything (the pivot
/// relation is resolved, converting to columnar on first use).
Result<MorselSplit> AnalyzeMorselSplit(const PlanPtr& plan,
                                       ColumnarCatalog* catalog, ExecMode mode,
                                       const ExecOptions& options);

/// \brief Executes `plan` morsel-parallel, fanning batches into per-morsel
/// sinks from `make_sink` and folding them into `*out` in morsel order.
///
/// `rng` drives the serially-executed non-pivot subtrees, the pivot-path
/// sampler seeds, and the per-morsel streams. On the fallback path (no
/// safe pivot) a single sink consumes the serial columnar pipeline.
Status ParallelExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                                 Rng* rng, ExecMode mode,
                                 const ExecOptions& options,
                                 const MorselSinkFactory& make_sink,
                                 std::unique_ptr<MergeableBatchSink>* out);

/// \brief Executes only the global units in [unit_begin, unit_end) of the
/// AnalyzeMorselSplit layout (clamped to the valid range), folding their
/// sinks into `*out` in ascending unit order.
///
/// This is the shard-worker primitive: unit u always draws from
/// Rng::ForkStream(stream_base, u) where stream_base is the caller Rng's
/// next draw *after* the serial prepare phase (non-pivot subtrees +
/// pivot-path sampler seeds, consumed in the row engine's execution
/// order) — so for a fixed (plan, catalog, seed, morsel_rows) the
/// concatenation of any ordered range cover reproduces the full run bit
/// for bit, regardless of how many ranges (shards) or threads execute it.
/// Note the serial phase runs (and consumes `rng`) even for an empty
/// range: every shard worker must consume the identical Rng prefix for
/// stream_base to agree. On the non-partitionable fallback the single
/// serial unit 0 runs iff the range contains it. `stream_base_out`
/// (optional) receives the stream base (0 on the fallback path) and
/// `samplers_out` (optional) the resolved pivot-path fixed-size samplers,
/// so callers can cross-check shard consistency.
Status ParallelExecuteUnitRangeToSink(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end,
    const MorselSinkFactory& make_sink,
    std::unique_ptr<MergeableBatchSink>* out,
    uint64_t* stream_base_out = nullptr,
    std::vector<ResolvedPivotSampler>* samplers_out = nullptr);

/// Morsel-parallel execution materializing the merged result (per-morsel
/// relations concatenate in morsel order, unifying string dictionaries).
Result<ColumnarRelation> ExecutePlanMorsel(const PlanPtr& plan,
                                           ColumnarCatalog* catalog, Rng* rng,
                                           ExecMode mode,
                                           const ExecOptions& options);

/// ExecutePlanMorsel restricted to units [unit_begin, unit_end) — the
/// materializing shard-worker path (ExecEngine::kSharded relations).
Result<ColumnarRelation> ExecutePlanMorselRange(const PlanPtr& plan,
                                                ColumnarCatalog* catalog,
                                                Rng* rng, ExecMode mode,
                                                const ExecOptions& options,
                                                int64_t unit_begin,
                                                int64_t unit_end);

}  // namespace gus

#endif  // GUS_PLAN_PARALLEL_EXECUTOR_H_
