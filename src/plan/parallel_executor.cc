#include "plan/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "kernels/join_hash_table.h"
#include "plan/exec_stats.h"
#include "kernels/key_hash.h"
#include "kernels/sampling_kernels.h"
#include "sampling/samplers.h"
#include "store/pruner.h"
#include "store/segment_cache.h"
#include "store/segment_source.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gus {

namespace {

// ---- Pivot classification --------------------------------------------------

void MergeUnique(std::vector<std::string>* into,
                 const std::vector<std::string>& from) {
  for (const std::string& s : from) {
    if (std::find(into->begin(), into->end(), s) == into->end()) {
      into->push_back(s);
    }
  }
}

std::vector<std::string> IntersectOrdered(const std::vector<std::string>& a,
                                          const std::vector<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& s : a) {
    if (std::find(b.begin(), b.end(), s) != b.end()) out.push_back(s);
  }
  return out;
}

/// \brief The base relations that can pivot `plan`'s subtree — i.e. scans
/// whose path to this subtree's root crosses only partition-safe operators
/// (traversal order preserved; see the header for the eligibility matrix).
std::vector<std::string> PivotRelations(const PlanPtr& plan, ExecMode mode) {
  switch (plan->op()) {
    case PlanOp::kScan:
      return {plan->relation()};
    case PlanOp::kSelect:
      return PivotRelations(plan->child(), mode);
    case PlanOp::kSample:
      switch (plan->spec().method) {
        case SamplingMethod::kBernoulli:
        case SamplingMethod::kLineageBernoulli:
          // Per-row (resp. per-lineage) decisions: independent per-morsel
          // streams (resp. pure functions) reproduce the same design.
          return PivotRelations(plan->child(), mode);
        case SamplingMethod::kWithoutReplacement:
        case SamplingMethod::kWithReplacementDistinct:
          // Seed-decoupled fixed-size draws partition when the sampler sits
          // directly on the scan (the keep-set is then keyed by the scan's
          // global row index, which every morsel knows). In exact mode they
          // are no-ops and stay safe anywhere.
          if (mode == ExecMode::kExact) {
            return PivotRelations(plan->child(), mode);
          }
          if (plan->child()->op() == PlanOp::kScan) {
            return {plan->child()->relation()};
          }
          return {};
        case SamplingMethod::kBlockBernoulli:
          // Per-block decisions and the lineage re-key are keyed by the
          // scan's global row index — adjacent to the scan only (both
          // modes: exact mode still re-keys lineage).
          if (plan->child()->op() == PlanOp::kScan) {
            return {plan->child()->relation()};
          }
          return {};
      }
      return {};
    case PlanOp::kJoin:
    case PlanOp::kProduct: {
      // Pivot on either side; the other side executes once and is shared.
      std::vector<std::string> cands = PivotRelations(plan->left(), mode);
      MergeUnique(&cands, PivotRelations(plan->right(), mode));
      return cands;
    }
    case PlanOp::kUnion:
      // Both branches sample the same expression (Prop. 7): partition them
      // over a common pivot scan and dedup per slice — lineage is the
      // partitioning key, so slice-local dedup equals global dedup.
      return IntersectOrdered(PivotRelations(plan->left(), mode),
                              PivotRelations(plan->right(), mode));
  }
  return {};
}

bool ContainsRelation(const std::vector<std::string>& cands,
                      const std::string& name) {
  return std::find(cands.begin(), cands.end(), name) != cands.end();
}

/// LCM of the block sizes of block samplers sitting directly on scans of
/// `pivot` — morsels align to whole blocks so a block is never split
/// across execution units. Capped defensively (a cap only coarsens the
/// split; per-block decisions stay correct regardless).
int64_t BlockAlignFor(const PlanPtr& plan, const std::string& pivot) {
  constexpr int64_t kMaxAlign = int64_t{1} << 40;
  int64_t align = 1;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (node->op() == PlanOp::kSample &&
        node->spec().method == SamplingMethod::kBlockBernoulli &&
        node->child()->op() == PlanOp::kScan &&
        node->child()->relation() == pivot && node->spec().block_size > 0) {
      const int64_t b = node->spec().block_size;
      const int64_t g = std::gcd(align, b);
      if (align / g <= kMaxAlign / b) align = align / g * b;
    }
    for (int c = 0; c < node->num_children(); ++c) {
      walk(c == 0 ? node->left() : node->right());
    }
  };
  walk(plan);
  return align;
}

/// Picks the candidate scanning the largest base relation (first in
/// traversal order on ties — deterministic).
Result<std::string> ChoosePivotRelation(const std::vector<std::string>& cands,
                                        ColumnarCatalog* catalog) {
  std::string best;
  int64_t best_rows = -1;
  for (const std::string& name : cands) {
    GUS_ASSIGN_OR_RETURN(const int64_t rows, catalog->RowCountOf(name));
    if (rows > best_rows) {
      best_rows = rows;
      best = name;
    }
  }
  return best;
}

// ---- Shared (built-once) pipeline state ------------------------------------

/// Shared, read-only per-join state probed concurrently by every morsel
/// (the JoinHashTable is immutable after Build — no synchronization; the
/// build itself runs partition-parallel over directory regions).
struct SharedJoinBuild {
  ColumnarRelation build_mat;  // the non-pivot side, materialized once
  JoinHashTable table;
  int build_key = 0;  // key column within build_mat's schema
  int probe_key = 0;  // key column within the pivot-side layout
  bool pivot_is_left = true;
  LayoutPtr out_layout;
};

/// Shared non-pivot side of a product step.
struct SharedProductSide {
  ColumnarRelation other_mat;
  bool pivot_is_left = true;
  LayoutPtr out_layout;
};

// ---- The compiled per-morsel program ---------------------------------------

struct MorselProgramNode;
using ProgramPtr = std::unique_ptr<MorselProgramNode>;

/// One node of the per-morsel pipeline template — a mirror of the plan
/// restricted to the pivot path, with non-pivot subtrees collapsed into
/// shared state and fixed-size samplers resolved to global keep-sets.
struct MorselProgramNode {
  enum class Kind {
    kScanSlice,    // the pivot scan's morsel slice
    kKeepSlice,    // fixed-size sampler: global keep-set ∩ slice
    kBlockSample,  // sampled-mode block sampling over the slice
    kBlockRekey,   // exact-mode block lineage re-key over the slice
    kSelect,
    kStreamSample,  // Bernoulli / lineage-seeded Bernoulli
    kJoinProbe,
    kProduct,
    kUnion,  // both branches over the same slice, slice-local dedup
  };

  Kind kind = Kind::kScanSlice;
  const PlanNode* node = nullptr;  // kSelect / kStreamSample
  bool stream_ok = false;          // kStreamSample: Bernoulli may fuse
  std::shared_ptr<const std::vector<int64_t>> keep;  // kKeepSlice (sorted)
  uint64_t sampler_seed = 0;                         // kBlockSample
  double p = 0.0;                                    // kBlockSample
  int64_t block_size = 0;  // kBlockSample / kBlockRekey
  std::shared_ptr<SharedJoinBuild> join;       // kJoinProbe
  std::shared_ptr<SharedProductSide> product;  // kProduct
  ProgramPtr child;                            // input (left for kUnion)
  ProgramPtr right;                            // kUnion only
  LayoutPtr layout;                            // this node's output layout
};

/// Program mirror of FragmentHasStreamingRngSampler: is this subtree,
/// within the current morsel-pipeline fragment, a streaming Rng consumer?
bool ProgramFragmentHasStreamingRng(const MorselProgramNode& n) {
  switch (n.kind) {
    case MorselProgramNode::Kind::kScanSlice:
    case MorselProgramNode::Kind::kKeepSlice:
    case MorselProgramNode::Kind::kBlockSample:
    case MorselProgramNode::Kind::kBlockRekey:
      // Seed-decoupled or Rng-free: transparent to the fragment.
      return false;
    case MorselProgramNode::Kind::kSelect:
    case MorselProgramNode::Kind::kJoinProbe:
    case MorselProgramNode::Kind::kProduct:
      // The pivot side streams through probes, so the fragment continues.
      return ProgramFragmentHasStreamingRng(*n.child);
    case MorselProgramNode::Kind::kStreamSample:
      if (n.node->spec().method == SamplingMethod::kLineageBernoulli) {
        return ProgramFragmentHasStreamingRng(*n.child);
      }
      // Plain Bernoulli streams iff nothing below already does; otherwise
      // it runs as a breaker, which resets the fragment above it.
      return !ProgramFragmentHasStreamingRng(*n.child);
    case MorselProgramNode::Kind::kUnion:
      // Drains both branches before emitting: fragment resets.
      return false;
  }
  return false;
}

void AssignStreamOk(MorselProgramNode* n) {
  if (n->child != nullptr) AssignStreamOk(n->child.get());
  if (n->right != nullptr) AssignStreamOk(n->right.get());
  if (n->kind == MorselProgramNode::Kind::kStreamSample &&
      n->node->spec().method == SamplingMethod::kBernoulli) {
    n->stream_ok = !ProgramFragmentHasStreamingRng(*n->child);
  }
}

uint64_t FingerprintKeepSet(uint64_t seed, const std::vector<int64_t>& keep) {
  uint64_t h = Mix64(seed ^ 0x534D504Cull);  // "SMPL"
  h = HashCombine(h, static_cast<uint64_t>(keep.size()));
  for (const int64_t r : keep) h = HashCombine(h, static_cast<uint64_t>(r));
  return h;
}

uint64_t FingerprintBlockSampler(uint64_t seed, int64_t block_size, double p) {
  uint64_t p_bits = 0;
  __builtin_memcpy(&p_bits, &p, sizeof(p_bits));
  return HashCombine(HashCombine(Mix64(seed ^ 0x534D504Cull),
                                 static_cast<uint64_t>(block_size)),
                     p_bits);
}

// ---- Per-morsel physical sources -------------------------------------------

/// Streams the probe (pivot) side of a morsel through a shared, pre-built
/// hash table: per pulled view, hash the probe rows, batch-probe with
/// prefetching, recheck key equality vectorized over the candidate pairs,
/// then emit — same output order as the classic per-row loop (probe rows
/// ascending, candidates in build input order), in the plan's left++right
/// column order.
class SharedJoinProbeSource final : public BatchSource {
 public:
  SharedJoinProbeSource(std::unique_ptr<BatchSource> child,
                        std::shared_ptr<SharedJoinBuild> build,
                        int64_t batch_rows)
      : BatchSource(build->out_layout),
        child_(std::move(child)),
        build_(std::move(build)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    PrepareBatch(layout_, out);
    const ColumnBatch& build_data = build_->build_mat.data();
    const ColumnData& build_key = build_data.column(build_->build_key);
    while (out->num_rows() < batch_rows_) {
      if (emit_pos_ >= static_cast<int64_t>(pair_probe_.size())) {
        if (done_) break;
        // Fused pull: the probe rows arrive as a selection view over the
        // child's storage — no gather of the pivot chain's output. The
        // pair buffer never outlives the view (refilled only when empty).
        GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&probe_));
        if (!more) {
          done_ = true;
          break;
        }
        const ColumnData& key = probe_.data->column(build_->probe_key);
        if (key.type == ValueType::kString && key.dict != probe_dict_) {
          probe_dict_ = key.dict;
          probe_dict_hashes_ = DictKeyHashes(key);
        }
        const int64_t n = probe_.num_rows();
        hash_scratch_.resize(static_cast<size_t>(n));
        row_scratch_.resize(static_cast<size_t>(n));
        for (int64_t k = 0; k < n; ++k) row_scratch_[k] = probe_.row(k);
        KeyHashRows(key, probe_dict_hashes_, row_scratch_.data(), n,
                    hash_scratch_.data());
        pair_probe_.clear();
        pair_build_.clear();
        build_->table.ProbeBatch(hash_scratch_.data(), n, &pair_probe_,
                                 &pair_build_);
        for (int64_t& pr : pair_probe_) pr = row_scratch_[pr];
        FilterEqualKeyPairs(key, build_key, &pair_probe_, &pair_build_);
        emit_pos_ = 0;
        continue;
      }
      // Batch emit over the surviving pair lists (front-to-back, so the
      // classic per-row order is preserved).
      const int64_t pairs = static_cast<int64_t>(pair_probe_.size());
      const int64_t take =
          std::min(batch_rows_ - out->num_rows(), pairs - emit_pos_);
      const int64_t* probe_idx = pair_probe_.data() + emit_pos_;
      const int64_t* build_idx = pair_build_.data() + emit_pos_;
      if (build_->pivot_is_left) {
        out->AppendConcatGather(*probe_.data, probe_idx, build_data,
                                build_idx, take);
      } else {
        out->AppendConcatGather(build_data, build_idx, *probe_.data,
                                probe_idx, take);
      }
      emit_pos_ += take;
    }
    if (done_ && out->num_rows() == 0 &&
        emit_pos_ >= static_cast<int64_t>(pair_probe_.size())) {
      return false;
    }
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  std::shared_ptr<SharedJoinBuild> build_;
  int64_t batch_rows_;
  SelView probe_;
  DictPtr probe_dict_;
  std::vector<uint64_t> probe_dict_hashes_;
  std::vector<uint64_t> hash_scratch_;
  std::vector<int64_t> row_scratch_;
  std::vector<int64_t> pair_probe_, pair_build_;
  int64_t emit_pos_ = 0;
  bool done_ = false;
};

/// Cross product of the streaming pivot side with the shared other side.
class SharedProductSource final : public BatchSource {
 public:
  SharedProductSource(std::unique_ptr<BatchSource> child,
                      std::shared_ptr<SharedProductSide> side,
                      int64_t batch_rows)
      : BatchSource(side->out_layout),
        child_(std::move(child)),
        side_(std::move(side)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (done_) return false;
    PrepareBatch(layout_, out);
    const ColumnBatch& other = side_->other_mat.data();
    const int64_t n_other = other.num_rows();
    while (out->num_rows() < batch_rows_) {
      if (i_ >= pivot_.num_rows()) {
        GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&pivot_));
        if (!more) {
          done_ = true;
          break;
        }
        i_ = 0;
        j_ = 0;
        continue;
      }
      if (n_other == 0) {
        i_ = pivot_.num_rows();
        continue;
      }
      // Stage this chunk's (pivot, other) index pairs, then emit them in
      // one batched gather per column.
      pivot_scratch_.clear();
      other_scratch_.clear();
      const int64_t budget = batch_rows_ - out->num_rows();
      while (static_cast<int64_t>(pivot_scratch_.size()) < budget &&
             i_ < pivot_.num_rows()) {
        pivot_scratch_.push_back(pivot_.row(i_));
        other_scratch_.push_back(j_);
        if (++j_ >= n_other) {
          j_ = 0;
          ++i_;
        }
      }
      const auto take = static_cast<int64_t>(pivot_scratch_.size());
      if (side_->pivot_is_left) {
        out->AppendConcatGather(*pivot_.data, pivot_scratch_.data(), other,
                                other_scratch_.data(), take);
      } else {
        out->AppendConcatGather(other, other_scratch_.data(), *pivot_.data,
                                pivot_scratch_.data(), take);
      }
    }
    if (done_ && out->num_rows() == 0) return false;
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  std::shared_ptr<SharedProductSide> side_;
  int64_t batch_rows_;
  SelView pivot_;
  int64_t i_ = 0, j_ = 0;
  std::vector<int64_t> pivot_scratch_, other_scratch_;
  bool done_ = false;
};

/// Zero-copy stream of a pre-resolved keep-list slice: selection views
/// straight over the resident pivot relation (the fixed-size samplers'
/// per-morsel form — the global keep-set is shared, each morsel walks its
/// [lo, lo+len) sub-range).
class SelectionListSource final : public BatchSource {
 public:
  SelectionListSource(const ColumnarRelation* rel,
                      std::shared_ptr<const std::vector<int64_t>> keep,
                      int64_t offset, int64_t len, int64_t batch_rows)
      : BatchSource(rel->layout_ptr()),
        rel_(rel),
        keep_(std::move(keep)),
        pos_(offset),
        end_(offset + len),
        batch_rows_(batch_rows) {}

  Result<bool> NextView(SelView* out) override {
    if (pos_ >= end_) return false;
    const int64_t len = std::min(batch_rows_, end_ - pos_);
    SelView v;
    v.data = &rel_->data();
    v.sel = keep_->data() + pos_;
    v.sel_len = len;
    *out = v;
    pos_ += len;
    return true;
  }

 private:
  const ColumnarRelation* rel_;
  std::shared_ptr<const std::vector<int64_t>> keep_;
  int64_t pos_;
  int64_t end_;
  int64_t batch_rows_;
};

/// Sampled-mode block sampling over a morsel slice: per-block keep
/// decisions are pure functions of (seed, block id), kept rows gather with
/// their lineage re-keyed to the block id — bit-identical to the serial
/// engines' DecideSampling path on the whole scan.
class BlockSampleSource final : public BatchSource {
 public:
  BlockSampleSource(const ColumnarRelation* rel, int64_t begin, int64_t end,
                    uint64_t seed, double p, int64_t block_size,
                    int64_t batch_rows)
      : BatchSource(rel->layout_ptr()),
        rel_(rel),
        pos_(begin),
        end_(end),
        seed_(seed),
        p_(p),
        block_size_(block_size),
        batch_rows_(batch_rows) {}

  Result<bool> NextView(SelView* out) override {
    if (pos_ >= end_) return false;
    sel_.clear();
    const int64_t stop = std::min(end_, pos_ + batch_rows_);
    while (pos_ < stop) {
      const int64_t block = pos_ / block_size_;
      const int64_t block_end = std::min(stop, (block + 1) * block_size_);
      if (DecoupledBlockKeep(seed_, static_cast<uint64_t>(block), p_)) {
        for (int64_t r = pos_; r < block_end; ++r) sel_.push_back(r);
      }
      pos_ = block_end;
    }
    // The lineage re-key mutates rows, so this path gathers into an owned
    // batch (same discipline as the serial breaker's re-key path).
    PrepareBatch(layout_, &scratch_);
    scratch_.GatherFrom(rel_->data(), sel_.data(),
                        static_cast<int64_t>(sel_.size()));
    auto& lineage = *scratch_.mutable_lineage();
    for (size_t k = 0; k < sel_.size(); ++k) {
      lineage[k] = static_cast<uint64_t>(sel_[k] / block_size_);
    }
    *out = SelView::Whole(&scratch_);
    return true;
  }

 private:
  const ColumnarRelation* rel_;
  int64_t pos_;
  int64_t end_;
  uint64_t seed_;
  double p_;
  int64_t block_size_;
  int64_t batch_rows_;
  std::vector<int64_t> sel_;
  ColumnBatch scratch_;
};

// ---- Split geometry --------------------------------------------------------

/// Approximate bytes one pivot row occupies in the hot loop: 8 per numeric
/// column, 4 per dictionary-coded string column, 8 per lineage dimension.
int64_t RowBytes(const BatchLayout& layout) {
  int64_t bytes = int64_t{8} * layout.lineage_arity();
  for (int c = 0; c < layout.schema.num_columns(); ++c) {
    bytes += layout.schema.column(c).type == ValueType::kString ? 4 : 8;
  }
  return bytes;
}

/// \brief Coarse per-row operator cost of the plan: 1 + the number of
/// join / product / union nodes.
///
/// Each such operator roughly doubles a morsel's working set (probe output,
/// product emit, second branch), so the auto sizer shrinks morsels
/// proportionally. Deterministic in the plan shape alone.
int PlanCostWeight(const PlanPtr& plan) {
  int weight = 1;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (node->op() == PlanOp::kJoin || node->op() == PlanOp::kProduct ||
        node->op() == PlanOp::kUnion) {
      ++weight;
    }
    for (int c = 0; c < node->num_children(); ++c) {
      walk(c == 0 ? node->left() : node->right());
    }
  };
  walk(plan);
  return weight;
}

/// \brief Per-morsel working-set budget for auto sizing (phase 2).
///
/// Sized from the BENCH_E3_E4.json trajectory: the E4 kernel sweeps fall
/// off their fast tier once the touched span leaves the low megabytes
/// (private L2 territory), while the E3d batch-size sweep is flat — so the
/// morsel, not the batch, is the right cache-residency lever. 2 MiB keeps
/// a morsel's pivot slice plus one operator expansion inside a typical
/// private L2/L3 slice without creating so many morsels that claim/fold
/// overhead shows.
constexpr int64_t kAutoMorselBytesTarget = int64_t{2} << 20;

/// \brief Auto morsel sizing (ExecOptions::morsel_rows == 0), phase 2:
/// at least four morsels per worker for scheduling slack, shrunk so a
/// morsel's weighted working set (pivot row bytes x plan cost weight)
/// fits kAutoMorselBytesTarget, clamped to
/// [kMinAutoMorselRows, kMaxAutoMorselRows].
///
/// Deterministic in (pivot rows, pivot layout, plan shape, num_threads) —
/// but because it reads num_threads, auto-sized results are only
/// reproducible at a fixed thread count; callers needing
/// thread-count-invariant draws set morsel_rows explicitly (the knob
/// stays authoritative).
int64_t AutoMorselRows(int64_t pivot_rows, int64_t pivot_row_bytes,
                       int cost_weight, int num_threads) {
  const int64_t morsels_wanted = int64_t{4} * std::max(1, num_threads);
  const int64_t slack_rows = (pivot_rows + morsels_wanted - 1) / morsels_wanted;
  const int64_t weighted_bytes =
      std::max<int64_t>(1, pivot_row_bytes) * std::max(1, cost_weight);
  const int64_t cache_rows =
      std::max<int64_t>(1, kAutoMorselBytesTarget / weighted_bytes);
  return std::clamp(std::min(slack_rows, cache_rows), kMinAutoMorselRows,
                    kMaxAutoMorselRows);
}

// The (pivot rows/layout, plan, options, block alignment) -> split geometry
// formulas, shared by AnalyzeMorselSplit (shard planning) and
// PrepareMorselProgram (execution): the dist/ layer's correctness requires
// the planned and executed unit sequences to be the same, so there is
// exactly one implementation.

int64_t ResolveMorselRows(int64_t pivot_rows, int64_t pivot_row_bytes,
                          int cost_weight, const ExecOptions& options,
                          int64_t block_align) {
  int64_t rows = options.morsel_rows > 0
                     ? options.morsel_rows
                     : AutoMorselRows(pivot_rows, pivot_row_bytes, cost_weight,
                                      options.num_threads);
  if (block_align > 1) {
    // Blocks are indivisible morsel units: round the morsel up to whole
    // blocks so one block's rows always share an execution unit.
    rows = (rows + block_align - 1) / block_align * block_align;
  }
  return rows;
}

int64_t MorselCount(int64_t pivot_rows, int64_t morsel_rows) {
  return (pivot_rows + morsel_rows - 1) / morsel_rows;
}

/// \brief The pivot's backing storage plus the numbers the split geometry
/// reads from it.
///
/// Shared by AnalyzeMorselSplit and PrepareMorselProgram — the dist/
/// layer's correctness requires the planned and executed unit sequences
/// to coincide, so the stored-vs-materialized decision has exactly one
/// implementation. Segment-backed pivots additionally align morsels to
/// whole segments (LCM with the block alignment) so a prunable segment
/// maps to whole execution units and a skipped unit never faults its
/// segments, and they size morsels from mean on-disk row bytes — what a
/// morsel actually faults in — instead of the in-memory estimate.
struct PivotBacking {
  const StoredRelation* store = nullptr;  // non-null: segment-backed
  const ColumnarRelation* rel = nullptr;  // non-null: materialized
  int64_t rows = 0;
  LayoutPtr layout;
  int64_t row_bytes = 0;
  int64_t align = 1;
};

Result<PivotBacking> ResolvePivotBacking(const PlanPtr& plan,
                                         const std::string& pivot,
                                         ColumnarCatalog* catalog) {
  PivotBacking b;
  b.align = BlockAlignFor(plan, pivot);
  GUS_ASSIGN_OR_RETURN(b.store, catalog->Stored(pivot));
  if (b.store != nullptr) {
    b.rows = b.store->num_rows();
    b.layout = b.store->layout_ptr();
    b.row_bytes = b.store->OnDiskRowBytes();
    constexpr int64_t kMaxAlign = int64_t{1} << 40;
    const int64_t seg = b.store->segment_rows();
    const int64_t g = std::gcd(b.align, seg);
    if (b.align / g <= kMaxAlign / seg) b.align = b.align / g * seg;
  } else {
    GUS_ASSIGN_OR_RETURN(b.rel, catalog->Get(pivot));
    b.rows = b.rel->num_rows();
    b.layout = b.rel->layout_ptr();
    b.row_bytes = RowBytes(b.rel->layout());
  }
  return b;
}

// ---- Program compilation ---------------------------------------------------

/// \brief The prepared morsel execution: shared state built once, then one
/// pipeline instantiation per morsel.
struct MorselProgram {
  const ColumnarRelation* pivot_rel = nullptr;   // materialized pivot
  const StoredRelation* pivot_store = nullptr;   // segment-backed pivot
  SegmentCache* store_cache = nullptr;           // non-null iff pivot_store
  std::string pivot_name;
  int64_t pivot_rows = 0;
  LayoutPtr pivot_layout;
  ProgramPtr root;
  LayoutPtr out_layout;
  int64_t morsel_rows = kDefaultMorselRows;
  int64_t batch_rows = kDefaultBatchRows;
  ExecMode mode = ExecMode::kSampled;
  std::vector<ResolvedPivotSampler> samplers;
  /// Per-unit skip mask from the SegmentPruner (empty = nothing skipped):
  /// unit m is provably empty, so run_morsel folds its sink untouched.
  std::vector<char> unit_skip;

  int64_t num_morsels() const {
    return MorselCount(pivot_rows, morsel_rows);
  }

  Result<std::unique_ptr<BatchSource>> MakeMorselPipeline(int64_t m,
                                                          Rng* rng) const;
};

/// \brief Compiles the plan subtree containing the pivot into a program
/// node, consuming `rng` in exactly the row engine's execution order:
/// children before parents, left subtrees fully before right ones,
/// non-pivot subtrees materialized at their plan position, and
/// seed-decoupled samplers drawing their one seed where the row engine's
/// sampler would run.
///
/// That ordering is what makes plans free of plain-Bernoulli samplers
/// reproduce the serial engines bit for bit: the whole Rng consumption
/// sequence coincides.
Result<ProgramPtr> CompileNode(const PlanPtr& plan, ColumnarCatalog* catalog,
                               Rng* rng, ExecMode mode,
                               const ExecOptions& options,
                               MorselProgram* prog) {
  switch (plan->op()) {
    case PlanOp::kScan: {
      if (plan->relation() != prog->pivot_name) {
        return Status::Internal(
            "morsel program compiler reached a non-pivot scan");
      }
      auto node = std::make_unique<MorselProgramNode>();
      node->kind = MorselProgramNode::Kind::kScanSlice;
      node->layout = prog->pivot_layout;
      return node;
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(
          ProgramPtr child,
          CompileNode(plan->child(), catalog, rng, mode, options, prog));
      // Static resolution errors surface here, not on a worker.
      GUS_RETURN_NOT_OK(
          plan->predicate()->Bind(child->layout->schema).status());
      auto node = std::make_unique<MorselProgramNode>();
      node->kind = MorselProgramNode::Kind::kSelect;
      node->node = plan.get();
      node->layout = child->layout;
      node->child = std::move(child);
      return node;
    }
    case PlanOp::kSample: {
      const SamplingSpec& spec = plan->spec();
      if (mode == ExecMode::kExact &&
          spec.method != SamplingMethod::kBlockBernoulli) {
        // Samplers are no-ops in exact mode.
        return CompileNode(plan->child(), catalog, rng, mode, options, prog);
      }
      GUS_ASSIGN_OR_RETURN(
          ProgramPtr child,
          CompileNode(plan->child(), catalog, rng, mode, options, prog));
      GUS_RETURN_NOT_OK(spec.Validate());
      auto node = std::make_unique<MorselProgramNode>();
      node->node = plan.get();
      node->layout = child->layout;
      switch (spec.method) {
        case SamplingMethod::kBernoulli:
          node->kind = MorselProgramNode::Kind::kStreamSample;
          break;
        case SamplingMethod::kLineageBernoulli: {
          const auto& ls = child->layout->lineage_schema;
          if (std::find(ls.begin(), ls.end(), spec.lineage_relation) ==
              ls.end()) {
            return Status::KeyError("relation '" + spec.lineage_relation +
                                    "' not in the input's lineage schema");
          }
          node->kind = MorselProgramNode::Kind::kStreamSample;
          break;
        }
        case SamplingMethod::kWithoutReplacement:
        case SamplingMethod::kWithReplacementDistinct: {
          // Adjacent to the pivot scan (classification guarantees it):
          // resolve the exact global keep-set now, from one seed draw —
          // the same draw DecideSampling makes in the serial engines.
          const int64_t population = prog->pivot_rows;
          if (spec.population != population) {
            return Status::InvalidArgument(
                spec.method == SamplingMethod::kWithoutReplacement
                    ? "WOR spec population does not match the input "
                      "cardinality"
                    : "WR spec population does not match the input "
                      "cardinality");
          }
          const uint64_t seed = rng->Next();
          std::vector<int64_t> keep;
          if (spec.method == SamplingMethod::kWithoutReplacement) {
            GUS_ASSIGN_OR_RETURN(
                keep, DecoupledWorKeepIndices(population, spec.n, seed));
          } else {
            GUS_ASSIGN_OR_RETURN(keep, DecoupledWrDistinctKeepIndices(
                                           population, spec.n, seed));
          }
          ResolvedPivotSampler resolved;
          resolved.method = static_cast<uint8_t>(spec.method);
          resolved.seed = seed;
          resolved.fingerprint = FingerprintKeepSet(seed, keep);
          prog->samplers.push_back(resolved);
          node->kind = MorselProgramNode::Kind::kKeepSlice;
          node->keep = std::make_shared<const std::vector<int64_t>>(
              std::move(keep));
          break;
        }
        case SamplingMethod::kBlockBernoulli: {
          if (child->layout->lineage_arity() != 1) {
            return Status::InvalidArgument(
                "block lineage applies to base (single-lineage) relations");
          }
          node->block_size = spec.block_size;
          if (mode == ExecMode::kExact) {
            node->kind = MorselProgramNode::Kind::kBlockRekey;
            break;
          }
          const uint64_t seed = rng->Next();
          ResolvedPivotSampler resolved;
          resolved.method = static_cast<uint8_t>(spec.method);
          resolved.seed = seed;
          resolved.fingerprint =
              FingerprintBlockSampler(seed, spec.block_size, spec.p);
          prog->samplers.push_back(resolved);
          node->kind = MorselProgramNode::Kind::kBlockSample;
          node->sampler_seed = seed;
          node->p = spec.p;
          break;
        }
      }
      node->child = std::move(child);
      return node;
    }
    case PlanOp::kJoin:
    case PlanOp::kProduct: {
      const bool pivot_left =
          ContainsRelation(PivotRelations(plan->left(), mode),
                           prog->pivot_name);
      if (!pivot_left && !ContainsRelation(PivotRelations(plan->right(), mode),
                                           prog->pivot_name)) {
        return Status::Internal(
            "morsel program compiler lost track of the pivot");
      }
      // Row-engine execution order: the left subtree runs (and consumes
      // the Rng) fully before the right one.
      ProgramPtr child;
      ColumnarRelation other_mat;
      if (pivot_left) {
        GUS_ASSIGN_OR_RETURN(
            child, CompileNode(plan->left(), catalog, rng, mode, options,
                               prog));
        GUS_ASSIGN_OR_RETURN(other_mat,
                             ExecutePlanColumnar(plan->right(), catalog, rng,
                                                 mode, options.batch_rows));
      } else {
        GUS_ASSIGN_OR_RETURN(other_mat,
                             ExecutePlanColumnar(plan->left(), catalog, rng,
                                                 mode, options.batch_rows));
        GUS_ASSIGN_OR_RETURN(
            child, CompileNode(plan->right(), catalog, rng, mode, options,
                               prog));
      }
      auto node = std::make_unique<MorselProgramNode>();
      const BatchLayout& pivot_side = *child->layout;
      const BatchLayout& other_side = other_mat.layout();
      if (plan->op() == PlanOp::kJoin) {
        auto build = std::make_shared<SharedJoinBuild>();
        build->build_mat = std::move(other_mat);
        const std::string& pivot_key =
            pivot_left ? plan->left_key() : plan->right_key();
        const std::string& build_key =
            pivot_left ? plan->right_key() : plan->left_key();
        GUS_ASSIGN_OR_RETURN(build->probe_key,
                             pivot_side.schema.IndexOf(pivot_key));
        GUS_ASSIGN_OR_RETURN(
            build->build_key,
            build->build_mat.layout().schema.IndexOf(build_key));
        build->pivot_is_left = pivot_left;
        GUS_ASSIGN_OR_RETURN(
            build->out_layout,
            pivot_left
                ? ConcatBatchLayouts(pivot_side, build->build_mat.layout())
                : ConcatBatchLayouts(build->build_mat.layout(), pivot_side));
        const ColumnData& key =
            build->build_mat.data().column(build->build_key);
        // Partition-parallel build: per-worker region inserts merged
        // without rehashing, byte-identical at every thread count.
        GUS_RETURN_NOT_OK(build->table.BuildFrom(
            key, build->build_mat.num_rows(), options.num_threads));
        node->kind = MorselProgramNode::Kind::kJoinProbe;
        node->layout = build->out_layout;
        node->join = std::move(build);
      } else {
        auto side = std::make_shared<SharedProductSide>();
        side->other_mat = std::move(other_mat);
        side->pivot_is_left = pivot_left;
        GUS_ASSIGN_OR_RETURN(
            side->out_layout,
            pivot_left ? ConcatBatchLayouts(pivot_side, other_side)
                       : ConcatBatchLayouts(other_side, pivot_side));
        node->kind = MorselProgramNode::Kind::kProduct;
        node->layout = side->out_layout;
        node->product = std::move(side);
      }
      node->child = std::move(child);
      return node;
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(
          ProgramPtr left,
          CompileNode(plan->left(), catalog, rng, mode, options, prog));
      GUS_ASSIGN_OR_RETURN(
          ProgramPtr right,
          CompileNode(plan->right(), catalog, rng, mode, options, prog));
      if (mode == ExecMode::kSampled) {
        if (!(left->layout->schema == right->layout->schema)) {
          return Status::InvalidArgument(
              "union inputs must share a column schema");
        }
        if (left->layout->lineage_schema != right->layout->lineage_schema) {
          return Status::InvalidArgument(
              "union inputs must share a lineage schema (samples of the "
              "same expression, paper Prop. 7)");
        }
      }
      auto node = std::make_unique<MorselProgramNode>();
      node->kind = MorselProgramNode::Kind::kUnion;
      node->layout = left->layout;
      node->child = std::move(left);
      node->right = std::move(right);
      return node;
    }
  }
  return Status::Internal("unexpected morsel path step");
}

Result<std::unique_ptr<BatchSource>> InstantiateNode(
    const MorselProgramNode& n, const MorselProgram& prog, int64_t begin,
    int64_t len, Rng* rng) {
  switch (n.kind) {
    case MorselProgramNode::Kind::kScanSlice:
      if (prog.pivot_store != nullptr) {
        return MakeStoredScanSource(prog.pivot_store, prog.store_cache,
                                    prog.batch_rows, begin, len);
      }
      return MakeScanSource(prog.pivot_rel, prog.batch_rows, begin, len);
    case MorselProgramNode::Kind::kKeepSlice: {
      // The kept rows inside this slice: keep is globally sorted, so the
      // slice's sub-range is found with two binary searches.
      const std::vector<int64_t>& keep = *n.keep;
      const int64_t lo =
          std::lower_bound(keep.begin(), keep.end(), begin) - keep.begin();
      const int64_t hi =
          std::lower_bound(keep.begin(), keep.end(), begin + len) -
          keep.begin();
      if (prog.pivot_store != nullptr) {
        return std::unique_ptr<BatchSource>(new StoredKeepSliceSource(
            prog.pivot_store, prog.store_cache, n.keep, lo, hi - lo,
            prog.batch_rows));
      }
      return std::unique_ptr<BatchSource>(new SelectionListSource(
          prog.pivot_rel, n.keep, lo, hi - lo, prog.batch_rows));
    }
    case MorselProgramNode::Kind::kBlockSample:
      if (prog.pivot_store != nullptr) {
        return std::unique_ptr<BatchSource>(new StoredBlockSampleSource(
            prog.pivot_store, prog.store_cache, begin, begin + len,
            n.sampler_seed, n.p, n.block_size, prog.batch_rows));
      }
      return std::unique_ptr<BatchSource>(
          new BlockSampleSource(prog.pivot_rel, begin, begin + len,
                                n.sampler_seed, n.p, n.block_size,
                                prog.batch_rows));
    case MorselProgramNode::Kind::kBlockRekey: {
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> child,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      return MakeBlockRekeySource(std::move(child), n.block_size, begin);
    }
    case MorselProgramNode::Kind::kSelect: {
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> child,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      return MakeSelectSource(std::move(child), n.node->predicate());
    }
    case MorselProgramNode::Kind::kStreamSample: {
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> child,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      return MakeSampleSource(std::move(child), n.node->spec(), rng,
                              prog.batch_rows, n.stream_ok);
    }
    case MorselProgramNode::Kind::kJoinProbe: {
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> child,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      return std::unique_ptr<BatchSource>(
          new SharedJoinProbeSource(std::move(child), n.join,
                                    prog.batch_rows));
    }
    case MorselProgramNode::Kind::kProduct: {
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> child,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      return std::unique_ptr<BatchSource>(
          new SharedProductSource(std::move(child), n.product,
                                  prog.batch_rows));
    }
    case MorselProgramNode::Kind::kUnion: {
      // Both branches run over the same pivot slice; the left branch
      // instantiates (and, per morsel, drains) first, mirroring the row
      // engine's left-before-right execution.
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> left,
                           InstantiateNode(*n.child, prog, begin, len, rng));
      GUS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> right,
                           InstantiateNode(*n.right, prog, begin, len, rng));
      return MakeUnionSource(std::move(left), std::move(right),
                             prog.batch_rows, prog.mode);
    }
  }
  return Status::Internal("unexpected morsel program node");
}

Result<std::unique_ptr<BatchSource>> MorselProgram::MakeMorselPipeline(
    int64_t m, Rng* rng) const {
  const int64_t begin = m * morsel_rows;
  const int64_t len = std::min(morsel_rows, pivot_rows - begin);
  return InstantiateNode(*root, *this, begin, len, rng);
}

// ---- Prune-plan extraction -------------------------------------------------

/// One alternative under construction, carrying extraction-only state:
/// the mapping from the node's output columns back to pivot columns, and
/// whether the pivot's lineage ids still equal global row ids (falsified
/// by a block re-key below).
struct AltBuild {
  PruneAlternative alt;
  std::vector<int> colmap;
  bool lineage_rowids = true;
};

/// \brief Distills the compiled pivot path into prune alternatives (see
/// store/pruner.h): walks the program tree bottom-up, forking at unions,
/// and records per path the select conjuncts, resolved keep-sets, block
/// samplers and lineage-Bernoulli keeps that every surviving row must
/// pass. Anything it cannot express contributes nothing — the pruner only
/// gets weaker, never unsound.
void CollectPruneAlts(const MorselProgramNode& n, const MorselProgram& prog,
                      std::vector<AltBuild>* out) {
  switch (n.kind) {
    case MorselProgramNode::Kind::kScanSlice: {
      AltBuild base;
      const int ncols = prog.pivot_layout->schema.num_columns();
      base.colmap.resize(static_cast<size_t>(ncols));
      for (int c = 0; c < ncols; ++c) base.colmap[static_cast<size_t>(c)] = c;
      out->push_back(std::move(base));
      return;
    }
    case MorselProgramNode::Kind::kKeepSlice: {
      CollectPruneAlts(*n.child, prog, out);
      for (AltBuild& a : *out) a.alt.keep_lists.push_back(n.keep);
      return;
    }
    case MorselProgramNode::Kind::kBlockSample: {
      CollectPruneAlts(*n.child, prog, out);
      for (AltBuild& a : *out) {
        a.alt.block_samplers.push_back({n.sampler_seed, n.p, n.block_size});
        a.lineage_rowids = false;  // lineage re-keys to block ids
      }
      return;
    }
    case MorselProgramNode::Kind::kBlockRekey: {
      CollectPruneAlts(*n.child, prog, out);
      for (AltBuild& a : *out) a.lineage_rowids = false;
      return;
    }
    case MorselProgramNode::Kind::kSelect: {
      CollectPruneAlts(*n.child, prog, out);
      for (AltBuild& a : *out) {
        ExtractColumnConstraints(n.node->predicate(), n.layout->schema,
                                 a.colmap, &a.alt.constraints);
      }
      return;
    }
    case MorselProgramNode::Kind::kStreamSample: {
      CollectPruneAlts(*n.child, prog, out);
      const SamplingSpec& spec = n.node->spec();
      if (spec.method == SamplingMethod::kLineageBernoulli &&
          spec.lineage_relation == prog.pivot_name) {
        for (AltBuild& a : *out) {
          if (a.lineage_rowids) {
            a.alt.lineage_bernoullis.push_back({spec.seed, spec.p});
          }
        }
      }
      // Plain Bernoulli keeps depend on the morsel stream, not the rows —
      // no constraint, and skipping stays sound because a skipped unit's
      // forked stream is never consumed by anyone.
      return;
    }
    case MorselProgramNode::Kind::kJoinProbe:
    case MorselProgramNode::Kind::kProduct: {
      CollectPruneAlts(*n.child, prog, out);
      const bool pivot_left = n.kind == MorselProgramNode::Kind::kJoinProbe
                                  ? n.join->pivot_is_left
                                  : n.product->pivot_is_left;
      const int out_cols = n.layout->schema.num_columns();
      for (AltBuild& a : *out) {
        const std::vector<int> inner = std::move(a.colmap);
        const int inner_cols = static_cast<int>(inner.size());
        a.colmap.assign(static_cast<size_t>(out_cols), -1);
        const int at = pivot_left ? 0 : out_cols - inner_cols;
        for (int c = 0; c < inner_cols; ++c) {
          a.colmap[static_cast<size_t>(at + c)] =
              inner[static_cast<size_t>(c)];
        }
      }
      return;
    }
    case MorselProgramNode::Kind::kUnion: {
      // Each branch is its own alternative path: a segment prunes only
      // when every branch excludes it (the pruner intersects).
      CollectPruneAlts(*n.child, prog, out);
      CollectPruneAlts(*n.right, prog, out);
      return;
    }
  }
}

PrunePlan BuildPrunePlan(const MorselProgram& prog) {
  std::vector<AltBuild> alts;
  CollectPruneAlts(*prog.root, prog, &alts);
  PrunePlan plan;
  plan.alternatives.reserve(alts.size());
  for (AltBuild& a : alts) plan.alternatives.push_back(std::move(a.alt));
  return plan;
}

/// \brief Builds the shared morsel-program state: resolves the pivot
/// backing (segment store or materialized relation), executes every
/// non-pivot subtree serially with `rng`, binds predicates, resolves
/// fixed-size sampler keep-sets, pre-builds join hash tables
/// (partition-parallel), and — for segment-backed pivots — runs the
/// SegmentPruner to mark provably-empty units.
Result<MorselProgram> PrepareMorselProgram(const PlanPtr& plan,
                                           const std::string& pivot,
                                           ColumnarCatalog* catalog, Rng* rng,
                                           ExecMode mode,
                                           const ExecOptions& options) {
  MorselProgram prog;
  prog.batch_rows = options.batch_rows;
  prog.mode = mode;
  prog.pivot_name = pivot;
  GUS_ASSIGN_OR_RETURN(PivotBacking backing,
                       ResolvePivotBacking(plan, pivot, catalog));
  prog.pivot_rel = backing.rel;
  prog.pivot_store = backing.store;
  prog.store_cache =
      backing.store != nullptr ? catalog->segment_cache() : nullptr;
  prog.pivot_rows = backing.rows;
  prog.pivot_layout = backing.layout;
  prog.morsel_rows =
      ResolveMorselRows(prog.pivot_rows, backing.row_bytes,
                        PlanCostWeight(plan), options, backing.align);
  GUS_ASSIGN_OR_RETURN(prog.root,
                       CompileNode(plan, catalog, rng, mode, options, &prog));
  AssignStreamOk(prog.root.get());
  prog.out_layout = prog.root->layout;
  if (prog.pivot_store != nullptr && options.prune_segments) {
    const PrunePlan prune = BuildPrunePlan(prog);
    const std::vector<char> excluded =
        ComputeSegmentExclusion(*prog.pivot_store, prune);
    if (std::find(excluded.begin(), excluded.end(), char{1}) !=
        excluded.end()) {
      prog.unit_skip = ComputeUnitSkipMask(*prog.pivot_store, excluded,
                                           prog.morsel_rows);
    }
  }
  return prog;
}

/// \brief Materializing sink for ExecutePlanMorsel: each morsel's batches
/// accumulate into one part, and the ordered fold just *collects* the
/// parts (an O(1) list splice) instead of copying them into a growing
/// relation on the single folder thread.
///
/// The actual concatenation — the serial tail the old fold spent its time
/// in — runs once at the end, parallel over parts
/// (ConcatPartsToRelation), producing bit-identical bytes to folding with
/// sequential AppendBatch calls.
class RelationSink final : public MergeableBatchSink {
 public:
  explicit RelationSink(LayoutPtr layout)
      : layout_(std::move(layout)), part_(layout_) {}

  Status Consume(const ColumnBatch& batch) override {
    part_.AppendBatch(batch);
    return Status::OK();
  }

  Status MergeFrom(BatchSink* other) override {
    auto* o = static_cast<RelationSink*>(other);
    // Fold order == morsel order, so appending the later sink's parts
    // after ours preserves the global part sequence.
    if (o->part_.num_rows() > 0) parts_.push_back(std::move(o->part_));
    for (ColumnarRelation& p : o->parts_) parts_.push_back(std::move(p));
    o->parts_.clear();
    return Status::OK();
  }

  bool Recycle() override {
    part_ = ColumnarRelation(layout_);
    parts_.clear();
    return true;
  }

  /// This sink's own part followed by every collected one, in fold order.
  std::vector<ColumnarRelation> TakeParts() {
    std::vector<ColumnarRelation> out;
    out.reserve(parts_.size() + 1);
    out.push_back(std::move(part_));
    for (ColumnarRelation& p : parts_) out.push_back(std::move(p));
    parts_.clear();
    return out;
  }

  const LayoutPtr& layout() const { return layout_; }

 private:
  LayoutPtr layout_;
  ColumnarRelation part_;                // this sink's consumed rows
  std::vector<ColumnarRelation> parts_;  // merged later parts, in order
};

/// \brief Concatenates morsel parts into one relation, bit-identical to
/// appending them sequentially (ColumnarRelation::AppendBatch part by
/// part) but with the column copies parallel over parts.
///
/// The only order-sensitive work — string-dictionary unification — runs
/// serially first, walking the parts in order and replicating
/// AppendRangeFrom's semantics exactly: the first non-empty part's
/// dictionary is adopted (shared), later parts with the same dictionary
/// pointer copy codes verbatim, others intern their values in part order
/// and get a code remap table. Every destination row range is then
/// disjoint, so parts copy concurrently.
ColumnarRelation ConcatPartsToRelation(const LayoutPtr& layout,
                                       std::vector<ColumnarRelation> parts,
                                       ThreadPool* pool, int workers) {
  // Non-empty parts in order, with destination row offsets.
  std::vector<const ColumnBatch*> src;
  std::vector<int64_t> offset;
  int64_t total = 0;
  for (const ColumnarRelation& p : parts) {
    if (p.num_rows() == 0) continue;
    src.push_back(&p.data());
    offset.push_back(total);
    total += p.num_rows();
  }
  ColumnarRelation out(layout);
  if (total == 0) return out;
  ColumnBatch* dst = out.mutable_data();

  const int num_cols = layout->schema.num_columns();
  const int arity = layout->lineage_arity();
  const int64_t num_parts = static_cast<int64_t>(src.size());

  // Serial phase: dictionary unification in part order. remaps[p][c] is
  // empty when part p's column c copies codes verbatim.
  std::vector<std::vector<std::vector<uint32_t>>> remaps(
      static_cast<size_t>(num_parts));
  for (int c = 0; c < num_cols; ++c) {
    if (layout->schema.column(c).type != ValueType::kString) continue;
    ColumnData* dc = dst->mutable_column(c);
    for (int64_t p = 0; p < num_parts; ++p) {
      const ColumnData& from = src[p]->column(c);
      if (dc->dict == nullptr) {
        dc->dict = from.dict;  // first non-empty part: adopt (shared)
      }
      if (dc->dict != from.dict && from.dict != nullptr) {
        remaps[p].resize(num_cols);
        std::vector<uint32_t> remap;
        remap.reserve(from.dict->values.size());
        for (const std::string& s : from.dict->values) {
          remap.push_back(dc->dict->Intern(s));
        }
        remaps[p][c] = std::move(remap);
      }
    }
  }

  // Pre-size the destination, then copy parts into their disjoint ranges.
  for (int c = 0; c < num_cols; ++c) {
    ColumnData* dc = dst->mutable_column(c);
    switch (dc->type) {
      case ValueType::kInt64: dc->i64.resize(total); break;
      case ValueType::kFloat64: dc->f64.resize(total); break;
      case ValueType::kString: dc->codes.resize(total); break;
    }
  }
  dst->mutable_lineage()->resize(static_cast<size_t>(total) * arity);
  dst->SetNumRows(total);

  const auto copy_part = [&](int64_t p) {
    const ColumnBatch& from = *src[p];
    const int64_t rows = from.num_rows();
    const int64_t at = offset[p];
    for (int c = 0; c < num_cols; ++c) {
      const ColumnData& fc = from.column(c);
      ColumnData* dc = dst->mutable_column(c);
      switch (dc->type) {
        case ValueType::kInt64:
          std::copy_n(fc.i64.begin(), rows, dc->i64.begin() + at);
          break;
        case ValueType::kFloat64:
          std::copy_n(fc.f64.begin(), rows, dc->f64.begin() + at);
          break;
        case ValueType::kString: {
          const std::vector<uint32_t>* remap =
              remaps[p].empty() || remaps[p][c].empty() ? nullptr
                                                        : &remaps[p][c];
          if (remap == nullptr) {
            std::copy_n(fc.codes.begin(), rows, dc->codes.begin() + at);
          } else {
            for (int64_t i = 0; i < rows; ++i) {
              dc->codes[at + i] = (*remap)[fc.codes[i]];
            }
          }
          break;
        }
      }
    }
    std::copy_n(from.lineage().begin(), static_cast<size_t>(rows) * arity,
                dst->mutable_lineage()->begin() +
                    static_cast<size_t>(at) * arity);
  };

  if (pool == nullptr || workers <= 1 || num_parts <= 1) {
    for (int64_t p = 0; p < num_parts; ++p) copy_part(p);
  } else {
    pool->ParallelForChunked(num_parts, /*chunk=*/1, workers,
                             ThreadPool::Placement::kDynamic,
                             [&](int, int64_t b, int64_t e) {
                               for (int64_t p = b; p < e; ++p) copy_part(p);
                             });
  }
  return out;
}

// ---- Profiling helpers -----------------------------------------------------

using StatsClock = std::chrono::steady_clock;

double MsBetween(StatsClock::time_point a, StatsClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Pass-through sink counting emitted rows for ExecStats (bytes derive
/// from the layout's row width once, not per batch).
class CountingSink final : public BatchSink {
 public:
  CountingSink(BatchSink* inner, int64_t* rows) : inner_(inner), rows_(rows) {}

  Status Consume(const ColumnBatch& batch) override {
    *rows_ += batch.num_rows();
    return inner_->Consume(batch);
  }
  bool wants_views() const override { return inner_->wants_views(); }
  Status ConsumeView(const SelView& view) override {
    *rows_ += view.num_rows();
    return inner_->ConsumeView(view);
  }

 private:
  BatchSink* inner_;
  int64_t* rows_;
};

}  // namespace

bool PlanIsPartitionable(const PlanPtr& plan, ExecMode mode) {
  return !PivotRelations(plan, mode).empty();
}

Result<MorselSplit> AnalyzeMorselSplit(const PlanPtr& plan,
                                       ColumnarCatalog* catalog, ExecMode mode,
                                       const ExecOptions& options) {
  GUS_RETURN_NOT_OK(options.Validate());
  const std::vector<std::string> cands = PivotRelations(plan, mode);
  MorselSplit split;
  if (cands.empty()) return split;  // one serial fallback unit
  GUS_ASSIGN_OR_RETURN(split.pivot_relation,
                       ChoosePivotRelation(cands, catalog));
  GUS_ASSIGN_OR_RETURN(PivotBacking backing,
                       ResolvePivotBacking(plan, split.pivot_relation,
                                           catalog));
  split.partitionable = true;
  split.pivot_rows = backing.rows;
  split.block_align = backing.align;
  split.morsel_rows =
      ResolveMorselRows(split.pivot_rows, backing.row_bytes,
                        PlanCostWeight(plan), options, split.block_align);
  split.num_units = MorselCount(split.pivot_rows, split.morsel_rows);
  return split;
}

Status ParallelExecuteUnitRangeToSink(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end,
    const MorselSinkFactory& make_sink,
    std::unique_ptr<MergeableBatchSink>* out, uint64_t* stream_base_out,
    std::vector<ResolvedPivotSampler>* samplers_out) {
  GUS_RETURN_NOT_OK(options.Validate());
  // Profile plumbing. Collection stays off (null stats, no counting
  // wrappers, no timers read per batch) unless the caller passed
  // options.stats or the GUS_PROFILE environment variable asked for dumps.
  ExecStats env_stats;
  ExecStats* stats = options.stats;
  if (stats == nullptr && ProfileEnvEnabled()) stats = &env_stats;
  if (stats != nullptr) stats->Reset();
  const StatsClock::time_point t_start = StatsClock::now();
  const auto emit_profile = [&] {
    if (stats != nullptr && ProfileEnvEnabled()) {
      std::fputs(stats->ToString().c_str(), stderr);
    }
  };
  // Segment-store accounting: counter deltas around this execution (the
  // cache is shared, so only deltas are attributable to this query).
  SegmentCache* const seg_cache = catalog->segment_cache();
  SegmentCacheCounters cache_before;
  if (stats != nullptr && seg_cache != nullptr) {
    cache_before = seg_cache->counters();
  }
  const auto snap_store_stats = [&] {
    if (stats == nullptr || seg_cache == nullptr) return;
    const SegmentCacheCounters after = seg_cache->counters();
    stats->segments_faulted = after.faults - cache_before.faults;
    stats->store_bytes_read = after.bytes_read - cache_before.bytes_read;
  };

  if (stream_base_out != nullptr) *stream_base_out = 0;
  if (samplers_out != nullptr) samplers_out->clear();
  const std::vector<std::string> cands = PivotRelations(plan, mode);
  if (cands.empty()) {
    // Serial fallback — one execution unit (index 0), run iff the range
    // contains it. The pipeline is compiled either way so static errors
    // and the output layout never depend on the shard's range.
    GUS_ASSIGN_OR_RETURN(
        std::unique_ptr<BatchSource> pipeline,
        CompileBatchPipeline(plan, catalog, rng, mode, options.batch_rows));
    GUS_ASSIGN_OR_RETURN(std::unique_ptr<MergeableBatchSink> sink,
                         make_sink(*pipeline->layout()));
    if (stats != nullptr) {
      stats->serial_fallback = true;
      stats->workers = 1;
      stats->sinks_created = 1;
      stats->prepare_ms = MsBetween(t_start, StatsClock::now());
    }
    if (unit_begin <= 0 && unit_end > 0) {
      if (stats != nullptr) {
        const StatsClock::time_point t_run = StatsClock::now();
        int64_t rows = 0;
        CountingSink counter(sink.get(), &rows);
        GUS_RETURN_NOT_OK(PumpToSink(pipeline.get(), &counter));
        stats->morsels = 1;
        stats->rows_emitted = rows;
        stats->bytes_moved = rows * RowBytes(*pipeline->layout());
        stats->parallel_ms = MsBetween(t_run, StatsClock::now());
      } else {
        GUS_RETURN_NOT_OK(PumpToSink(pipeline.get(), sink.get()));
      }
    }
    if (stats != nullptr) {
      snap_store_stats();
      stats->total_ms = MsBetween(t_start, StatsClock::now());
      emit_profile();
    }
    *out = std::move(sink);
    return Status::OK();
  }

  GUS_ASSIGN_OR_RETURN(const std::string pivot,
                       ChoosePivotRelation(cands, catalog));
  GUS_ASSIGN_OR_RETURN(
      MorselProgram program,
      PrepareMorselProgram(plan, pivot, catalog, rng, mode, options));
  if (samplers_out != nullptr) *samplers_out = program.samplers;
  // One draw seeds every morsel stream; consumed after the serial prepare
  // phase (non-pivot subtrees + pivot sampler seeds) so the whole
  // consumption order is a pure function of (plan, seed) — and therefore
  // identical in every shard worker running this plan.
  const uint64_t stream_base = rng->Next();
  if (stream_base_out != nullptr) *stream_base_out = stream_base;

  const int64_t num_morsels = program.num_morsels();
  unit_begin = std::clamp<int64_t>(unit_begin, 0, num_morsels);
  unit_end = std::clamp<int64_t>(unit_end, unit_begin, num_morsels);
  if (unit_begin >= unit_end) {
    GUS_ASSIGN_OR_RETURN(*out, make_sink(*program.out_layout));
    if (stats != nullptr) {
      stats->sinks_created = 1;
      snap_store_stats();
      stats->prepare_ms = MsBetween(t_start, StatsClock::now());
      stats->total_ms = stats->prepare_ms;
      emit_profile();
    }
    return Status::OK();
  }

  const int64_t range_units = unit_end - unit_begin;
  const int workers = static_cast<int>(
      std::min<int64_t>(std::max(1, options.num_threads), range_units));
  const int64_t out_row_bytes =
      stats != nullptr ? RowBytes(*program.out_layout) : 0;
  if (stats != nullptr) {
    stats->pivot_rows = program.pivot_rows;
    stats->morsels = range_units;
    stats->morsel_rows = program.morsel_rows;
    stats->workers = workers;
    stats->worker_morsels.assign(workers, 0);
    stats->prepare_ms = MsBetween(t_start, StatsClock::now());
  }

  // Ordered fold: per-morsel sinks merge in strictly ascending morsel
  // index, regardless of completion order, so the result never depends on
  // scheduling or worker count. The fold itself runs *outside* the mutex
  // (merges can be large — a materializing sink copies whole partitions);
  // `merging` guarantees a single folder at a time, so `merged` needs no
  // lock of its own and the fold order stays strictly sequential. Sinks
  // whose Recycle() succeeds after being absorbed go back to `arena` and
  // serve later morsels, replacing a per-morsel factory call with a reset.
  std::mutex mu;
  std::map<int64_t, std::unique_ptr<MergeableBatchSink>> pending;
  int64_t next_merge = unit_begin;
  bool merging = false;
  std::unique_ptr<MergeableBatchSink> merged;
  Status error;
  std::vector<std::unique_ptr<MergeableBatchSink>> arena;
  int64_t sinks_created = 0;
  int64_t sinks_recycled = 0;
  double fold_ms = 0.0;
  std::atomic<int64_t> rows_emitted{0};

  const auto run_morsel = [&](int worker, int64_t m) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!error.ok()) return;
    }
    if (stats != nullptr) {
      // Distinct slot per worker; published by the pool's completion sync.
      stats->worker_morsels[worker] += 1;
    }
    Rng morsel_rng = Rng::ForkStream(stream_base, static_cast<uint64_t>(m));
    // Pruned unit: fold its sink untouched — byte-identical to "executed
    // and emitted nothing", which the exclusion proof guarantees; the
    // unit's forked stream is simply never consumed.
    const bool skip_unit =
        !program.unit_skip.empty() &&
        program.unit_skip[static_cast<size_t>(m)] != 0;
    Status status;
    std::unique_ptr<MergeableBatchSink> sink;
    do {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!arena.empty()) {
          sink = std::move(arena.back());
          arena.pop_back();
          ++sinks_recycled;
        } else {
          ++sinks_created;
        }
      }
      if (sink == nullptr) {
        auto sink_or = make_sink(*program.out_layout);
        if (!sink_or.ok()) {
          status = sink_or.status();
          break;
        }
        sink = std::move(sink_or).ValueOrDie();
      }
      if (skip_unit) break;
      auto pipeline_or = program.MakeMorselPipeline(m, &morsel_rng);
      if (!pipeline_or.ok()) {
        status = pipeline_or.status();
        break;
      }
      std::unique_ptr<BatchSource> pipeline =
          std::move(pipeline_or).ValueOrDie();
      if (stats != nullptr) {
        int64_t rows = 0;
        CountingSink counter(sink.get(), &rows);
        status = PumpToSink(pipeline.get(), &counter);
        rows_emitted.fetch_add(rows, std::memory_order_relaxed);
      } else {
        status = PumpToSink(pipeline.get(), sink.get());
      }
    } while (false);

    {
      std::lock_guard<std::mutex> lock(mu);
      if (!error.ok()) return;
      if (!status.ok()) {
        error = status;
        return;
      }
      pending.emplace(m, std::move(sink));
      if (merging) return;  // the active folder will pick this sink up
      merging = true;
    }
    std::vector<std::unique_ptr<MergeableBatchSink>> ready;
    std::vector<std::unique_ptr<MergeableBatchSink>> recycled;
    while (true) {
      ready.clear();
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = pending.find(next_merge);
        while (it != pending.end()) {
          ready.push_back(std::move(it->second));
          pending.erase(it);
          it = pending.find(++next_merge);
        }
        if (ready.empty() || !error.ok()) {
          merging = false;
          return;
        }
      }
      const StatsClock::time_point t_fold = StatsClock::now();
      Status fold_error;
      recycled.clear();
      for (std::unique_ptr<MergeableBatchSink>& next : ready) {
        if (merged == nullptr) {
          merged = std::move(next);
          continue;
        }
        Status st = merged->MergeFrom(next.get());
        if (!st.ok()) {
          fold_error = st;
          break;
        }
        if (next->Recycle()) recycled.push_back(std::move(next));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        fold_ms += MsBetween(t_fold, StatsClock::now());
        for (std::unique_ptr<MergeableBatchSink>& s : recycled) {
          arena.push_back(std::move(s));
        }
        if (!fold_error.ok()) {
          error = fold_error;
          merging = false;
          return;
        }
      }
    }
  };

  const ThreadPool::Placement placement =
      options.placement == MorselPlacement::kRangeBound
          ? ThreadPool::Placement::kRangeBound
          : ThreadPool::Placement::kDynamic;
  PoolLease lease(workers);
  const StatsClock::time_point t_par = StatsClock::now();
  lease->ParallelForChunked(range_units, /*chunk=*/1, workers, placement,
                            [&](int worker, int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                run_morsel(worker, unit_begin + i);
                              }
                            });

  if (stats != nullptr) {
    stats->parallel_ms = MsBetween(t_par, StatsClock::now());
    stats->sink_fold_ms = fold_ms;
    stats->rows_emitted = rows_emitted.load(std::memory_order_relaxed);
    stats->bytes_moved = stats->rows_emitted * out_row_bytes;
    stats->sinks_created = sinks_created;
    stats->sinks_recycled = sinks_recycled;
    stats->pool_wakeups = lease.wakeups_during();
    stats->pool_threads_spawned = lease.spawned_during();
    snap_store_stats();
    if (program.pivot_store != nullptr) {
      stats->segments_total = SegmentsInUnitRange(
          *program.pivot_store, program.morsel_rows, unit_begin, unit_end);
      stats->segments_skipped = SkippedSegmentsInUnitRange(
          *program.pivot_store, program.unit_skip, program.morsel_rows,
          unit_begin, unit_end);
    }
    stats->total_ms = MsBetween(t_start, StatsClock::now());
    emit_profile();
  }

  GUS_RETURN_NOT_OK(error);
  GUS_CHECK(merged != nullptr);
  *out = std::move(merged);
  return Status::OK();
}

Status ParallelExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                                 Rng* rng, ExecMode mode,
                                 const ExecOptions& options,
                                 const MorselSinkFactory& make_sink,
                                 std::unique_ptr<MergeableBatchSink>* out) {
  return ParallelExecuteUnitRangeToSink(
      plan, catalog, rng, mode, options, 0,
      std::numeric_limits<int64_t>::max(), make_sink, out);
}

namespace {

Result<ColumnarRelation> ExecuteRangeToRelation(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end) {
  std::unique_ptr<MergeableBatchSink> sink;
  GUS_RETURN_NOT_OK(ParallelExecuteUnitRangeToSink(
      plan, catalog, rng, mode, options, unit_begin, unit_end,
      [](const BatchLayout& layout)
          -> Result<std::unique_ptr<MergeableBatchSink>> {
        auto ptr = std::make_shared<BatchLayout>(layout);
        return std::unique_ptr<MergeableBatchSink>(
            new RelationSink(LayoutPtr(std::move(ptr))));
      },
      &sink));
  RelationSink* rel_sink = static_cast<RelationSink*>(sink.get());

  // Gather phase: the fold above only spliced part lists (O(1) per morsel);
  // the actual concat + dictionary unification copies run here, with the
  // disjoint per-part copies parallelized.
  const StatsClock::time_point t_gather = StatsClock::now();
  std::vector<ColumnarRelation> parts = rel_sink->TakeParts();
  const int64_t num_parts = static_cast<int64_t>(parts.size());
  const int workers = static_cast<int>(std::min<int64_t>(
      std::max(1, options.num_threads), std::max<int64_t>(num_parts, 1)));
  ColumnarRelation result(rel_sink->layout());
  if (workers > 1) {
    PoolLease lease(workers);
    result = ConcatPartsToRelation(rel_sink->layout(), std::move(parts),
                                   lease.get(), workers);
  } else {
    result = ConcatPartsToRelation(rel_sink->layout(), std::move(parts),
                                   /*pool=*/nullptr, /*workers=*/1);
  }
  const double gather_ms = MsBetween(t_gather, StatsClock::now());
  if (options.stats != nullptr) {
    options.stats->gather_ms = gather_ms;
    options.stats->total_ms += gather_ms;
  } else if (ProfileEnvEnabled()) {
    std::fprintf(stderr, "[gus profile]   gather     %.3f ms (%lld parts)\n",
                 gather_ms, static_cast<long long>(num_parts));
  }
  return result;
}

}  // namespace

Result<ColumnarRelation> ExecutePlanMorsel(const PlanPtr& plan,
                                           ColumnarCatalog* catalog, Rng* rng,
                                           ExecMode mode,
                                           const ExecOptions& options) {
  return ExecuteRangeToRelation(plan, catalog, rng, mode, options, 0,
                                std::numeric_limits<int64_t>::max());
}

Result<ColumnarRelation> ExecutePlanMorselRange(const PlanPtr& plan,
                                                ColumnarCatalog* catalog,
                                                Rng* rng, ExecMode mode,
                                                const ExecOptions& options,
                                                int64_t unit_begin,
                                                int64_t unit_end) {
  return ExecuteRangeToRelation(plan, catalog, rng, mode, options, unit_begin,
                                unit_end);
}

}  // namespace gus
