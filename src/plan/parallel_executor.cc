#include "plan/parallel_executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "kernels/join_hash_table.h"
#include "kernels/key_hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gus {

namespace {

/// Is this sampler a per-row (or per-lineage) decision that independent
/// per-morsel Rng streams reproduce as the same design?
bool SamplerIsPartitionSafe(const SamplingSpec& spec, ExecMode mode) {
  switch (spec.method) {
    case SamplingMethod::kBernoulli:
    case SamplingMethod::kLineageBernoulli:
      return true;
    case SamplingMethod::kWithoutReplacement:
    case SamplingMethod::kWithReplacementDistinct:
      // Fixed-size draws need the whole input; in exact mode they are
      // no-ops and the path stays safe.
      return mode == ExecMode::kExact;
    case SamplingMethod::kBlockBernoulli:
      // Blocks may span morsel boundaries (and exact mode re-keys lineage
      // with global offsets); keep the serial discipline.
      return false;
  }
  return false;
}

/// One operator on the path from the pivot scan up to the root.
struct PathStep {
  PlanOp op = PlanOp::kSelect;
  const PlanNode* node = nullptr;
  /// kJoin / kProduct: is the pivot the node's left input?
  bool pivot_is_left = true;
};

/// A candidate pivot: the scan node plus its root-to-scan operator path.
struct PivotCandidate {
  const PlanNode* scan = nullptr;
  /// Steps ordered from the scan upward (path[0] is the scan's parent).
  std::vector<PathStep> path;
};

/// Collects every scan whose path to the root is partition-safe.
/// `path_to_here` holds the steps from the root down to `plan`'s parent.
void CollectPivots(const PlanPtr& plan, ExecMode mode,
                   std::vector<PathStep>* path_to_here,
                   std::vector<PivotCandidate>* out) {
  switch (plan->op()) {
    case PlanOp::kScan: {
      PivotCandidate cand;
      cand.scan = plan.get();
      cand.path.assign(path_to_here->rbegin(), path_to_here->rend());
      out->push_back(std::move(cand));
      return;
    }
    case PlanOp::kSample:
      if (!SamplerIsPartitionSafe(plan->spec(), mode)) return;
      [[fallthrough]];
    case PlanOp::kSelect: {
      path_to_here->push_back({plan->op(), plan.get(), true});
      CollectPivots(plan->child(), mode, path_to_here, out);
      path_to_here->pop_back();
      return;
    }
    case PlanOp::kJoin:
    case PlanOp::kProduct: {
      path_to_here->push_back({plan->op(), plan.get(), true});
      CollectPivots(plan->left(), mode, path_to_here, out);
      path_to_here->back().pivot_is_left = false;
      CollectPivots(plan->right(), mode, path_to_here, out);
      path_to_here->pop_back();
      return;
    }
    case PlanOp::kUnion:
      // Union dedups by lineage across its whole input — not partitionable
      // from below.
      return;
  }
}

/// Shared, read-only per-join state probed concurrently by every morsel
/// (the JoinHashTable is immutable after Build — no synchronization).
struct SharedJoinBuild {
  ColumnarRelation build_mat;  // the non-pivot side, materialized once
  JoinHashTable table;
  int build_key = 0;  // key column within build_mat's schema
  int probe_key = 0;  // key column within the pivot-side layout
  bool pivot_is_left = true;
  LayoutPtr out_layout;
};

/// Shared non-pivot side of a product step.
struct SharedProductSide {
  ColumnarRelation other_mat;
  bool pivot_is_left = true;
  LayoutPtr out_layout;
};

/// A compiled step of the per-morsel pipeline template.
struct CompiledStep {
  PlanOp op = PlanOp::kSelect;
  const PlanNode* node = nullptr;              // kSelect / kSample
  std::shared_ptr<SharedJoinBuild> join;       // kJoin
  std::shared_ptr<SharedProductSide> product;  // kProduct
};

/// \brief Streams the probe (pivot) side of a morsel through a shared,
/// pre-built hash table.
///
/// Mirrors JoinSource's probe loop, but the build side is fixed to the
/// non-pivot input (whatever its size) so it can be shared read-only by
/// every worker; output rows keep the plan's left++right column order.
class SharedJoinProbeSource final : public BatchSource {
 public:
  SharedJoinProbeSource(std::unique_ptr<BatchSource> child,
                        std::shared_ptr<SharedJoinBuild> build,
                        int64_t batch_rows)
      : BatchSource(build->out_layout),
        child_(std::move(child)),
        build_(std::move(build)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (done_) return false;
    PrepareBatch(layout_, out);
    const ColumnBatch& build_data = build_->build_mat.data();
    const ColumnData& build_key = build_data.column(build_->build_key);
    while (out->num_rows() < batch_rows_) {
      if (probe_pos_ >= probe_.num_rows()) {
        // Fused pull: the probe rows arrive as a selection view over the
        // child's storage — no gather of the pivot chain's output.
        GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&probe_));
        if (!more) {
          done_ = true;
          break;
        }
        probe_pos_ = 0;
        const ColumnData& key = probe_.data->column(build_->probe_key);
        if (key.type == ValueType::kString && key.dict != probe_dict_) {
          probe_dict_ = key.dict;
          probe_dict_hashes_ = DictKeyHashes(key);
        }
        continue;
      }
      const ColumnData& probe_key = probe_.data->column(build_->probe_key);
      const int64_t row = probe_.row(probe_pos_);
      const uint64_t h = KeyHashAt(probe_key, row, probe_dict_hashes_);
      const JoinHashTable::Range cands = build_->table.Find(h);
      for (const int64_t* p = cands.begin; p != cands.end; ++p) {
        const int64_t b = *p;
        if (!KeyEqualsAt(build_key, b, probe_key, row)) continue;
        if (build_->pivot_is_left) {
          out->AppendConcatRowFrom(*probe_.data, row, build_data, b);
        } else {
          out->AppendConcatRowFrom(build_data, b, *probe_.data, row);
        }
      }
      ++probe_pos_;
    }
    if (done_ && out->num_rows() == 0) return false;
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  std::shared_ptr<SharedJoinBuild> build_;
  int64_t batch_rows_;
  SelView probe_;
  int64_t probe_pos_ = 0;
  DictPtr probe_dict_;
  std::vector<uint64_t> probe_dict_hashes_;
  bool done_ = false;
};

/// Cross product of the streaming pivot side with the shared other side.
class SharedProductSource final : public BatchSource {
 public:
  SharedProductSource(std::unique_ptr<BatchSource> child,
                      std::shared_ptr<SharedProductSide> side,
                      int64_t batch_rows)
      : BatchSource(side->out_layout),
        child_(std::move(child)),
        side_(std::move(side)),
        batch_rows_(batch_rows) {}

  Result<bool> Next(ColumnBatch* out) override {
    if (done_) return false;
    PrepareBatch(layout_, out);
    const ColumnBatch& other = side_->other_mat.data();
    const int64_t n_other = other.num_rows();
    while (out->num_rows() < batch_rows_) {
      if (i_ >= pivot_.num_rows()) {
        GUS_ASSIGN_OR_RETURN(bool more, child_->NextView(&pivot_));
        if (!more) {
          done_ = true;
          break;
        }
        i_ = 0;
        j_ = 0;
        continue;
      }
      if (n_other == 0) {
        i_ = pivot_.num_rows();
        continue;
      }
      const int64_t row = pivot_.row(i_);
      if (side_->pivot_is_left) {
        out->AppendConcatRowFrom(*pivot_.data, row, other, j_);
      } else {
        out->AppendConcatRowFrom(other, j_, *pivot_.data, row);
      }
      if (++j_ >= n_other) {
        j_ = 0;
        ++i_;
      }
    }
    if (done_ && out->num_rows() == 0) return false;
    return true;
  }

 private:
  std::unique_ptr<BatchSource> child_;
  std::shared_ptr<SharedProductSide> side_;
  int64_t batch_rows_;
  SelView pivot_;
  int64_t i_ = 0, j_ = 0;
  bool done_ = false;
};

int64_t ResolveMorselRows(int64_t pivot_rows, const ExecOptions& options);
int64_t MorselCount(int64_t pivot_rows, int64_t morsel_rows);

/// \brief The prepared morsel execution: shared state built once, then one
/// pipeline instantiation per morsel.
struct MorselPlan {
  const ColumnarRelation* pivot_rel = nullptr;
  std::vector<CompiledStep> steps;  // from the scan upward
  LayoutPtr out_layout;
  int64_t morsel_rows = kDefaultMorselRows;
  int64_t batch_rows = kDefaultBatchRows;
  ExecMode mode = ExecMode::kSampled;

  int64_t num_morsels() const {
    return MorselCount(pivot_rel->num_rows(), morsel_rows);
  }

  /// Builds morsel `m`'s pipeline; `rng` must outlive the returned source.
  Result<std::unique_ptr<BatchSource>> MakeMorselPipeline(int64_t m,
                                                          Rng* rng) const {
    const int64_t begin = m * morsel_rows;
    const int64_t len = std::min(morsel_rows, pivot_rel->num_rows() - begin);
    std::unique_ptr<BatchSource> src =
        MakeScanSource(pivot_rel, batch_rows, begin, len);
    // Same fragment discipline as the serial engine: at most one streaming
    // Rng-consuming sampler per fragment, later ones break. (Per-morsel
    // determinism would tolerate interleaved streams, but one rule
    // everywhere keeps the draw-order reasoning uniform.)
    bool streaming_rng_live = false;
    for (const CompiledStep& step : steps) {
      switch (step.op) {
        case PlanOp::kSelect: {
          GUS_ASSIGN_OR_RETURN(
              src, MakeSelectSource(std::move(src), step.node->predicate()));
          break;
        }
        case PlanOp::kSample: {
          if (mode == ExecMode::kExact) break;  // no-op (safe methods only)
          const bool is_bernoulli =
              step.node->spec().method == SamplingMethod::kBernoulli;
          const bool stream_ok = !streaming_rng_live;
          GUS_ASSIGN_OR_RETURN(
              src, MakeSampleSource(std::move(src), step.node->spec(), rng,
                                    batch_rows, stream_ok));
          if (is_bernoulli) {
            // Streamed: the fragment now has a live Rng consumer. Broke:
            // everything below (this sampler included) finishes its draws
            // before a row leaves the breaker, so the fragment resets.
            streaming_rng_live = stream_ok;
          }
          break;
        }
        case PlanOp::kJoin:
          src = std::unique_ptr<BatchSource>(new SharedJoinProbeSource(
              std::move(src), step.join, batch_rows));
          break;
        case PlanOp::kProduct:
          src = std::unique_ptr<BatchSource>(new SharedProductSource(
              std::move(src), step.product, batch_rows));
          break;
        default:
          return Status::Internal("unexpected morsel path step");
      }
    }
    return src;
  }
};

/// Picks the candidate scanning the largest base relation (first in
/// traversal order on ties — deterministic).
Result<const PivotCandidate*> ChoosePivot(
    const std::vector<PivotCandidate>& cands, ColumnarCatalog* catalog) {
  const PivotCandidate* best = nullptr;
  int64_t best_rows = -1;
  for (const PivotCandidate& cand : cands) {
    GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel,
                         catalog->Get(cand.scan->relation()));
    if (rel->num_rows() > best_rows) {
      best_rows = rel->num_rows();
      best = &cand;
    }
  }
  return best;
}

/// \brief Auto morsel sizing (ExecOptions::morsel_rows == 0): at least
/// four morsels per worker for scheduling slack, clamped to
/// [kMinAutoMorselRows, kMaxAutoMorselRows].
///
/// Deterministic in (pivot rows, num_threads) — but because it reads
/// num_threads, auto-sized results are only reproducible at a fixed
/// thread count; callers needing thread-count-invariant draws set
/// morsel_rows explicitly (the knob stays authoritative).
int64_t AutoMorselRows(int64_t pivot_rows, int num_threads) {
  const int64_t morsels_wanted = int64_t{4} * std::max(1, num_threads);
  const int64_t rows = (pivot_rows + morsels_wanted - 1) / morsels_wanted;
  return std::clamp(rows, kMinAutoMorselRows, kMaxAutoMorselRows);
}

// The (pivot rows, options) -> split geometry formulas, shared by
// AnalyzeMorselSplit (shard planning) and PrepareMorselPlan (execution):
// the dist/ layer's correctness requires the planned and executed unit
// sequences to be the same, so there is exactly one implementation.

int64_t ResolveMorselRows(int64_t pivot_rows, const ExecOptions& options) {
  return options.morsel_rows > 0
             ? options.morsel_rows
             : AutoMorselRows(pivot_rows, options.num_threads);
}

int64_t MorselCount(int64_t pivot_rows, int64_t morsel_rows) {
  return (pivot_rows + morsel_rows - 1) / morsel_rows;
}

/// \brief Builds the shared morsel-plan state: resolves the pivot relation,
/// executes every non-pivot subtree serially with `rng`, binds predicates,
/// and pre-builds join hash tables.
Result<MorselPlan> PrepareMorselPlan(const PivotCandidate& pivot,
                                     ColumnarCatalog* catalog, Rng* rng,
                                     ExecMode mode,
                                     const ExecOptions& options) {
  MorselPlan plan;
  plan.batch_rows = options.batch_rows;
  plan.mode = mode;
  GUS_ASSIGN_OR_RETURN(plan.pivot_rel,
                       catalog->Get(pivot.scan->relation()));
  plan.morsel_rows = ResolveMorselRows(plan.pivot_rel->num_rows(), options);

  LayoutPtr layout = plan.pivot_rel->layout_ptr();
  for (const PathStep& step : pivot.path) {
    CompiledStep compiled;
    compiled.op = step.op;
    switch (step.op) {
      case PlanOp::kSelect: {
        compiled.node = step.node;
        // Static resolution errors surface here, not on a worker.
        GUS_RETURN_NOT_OK(
            step.node->predicate()->Bind(layout->schema).status());
        break;
      }
      case PlanOp::kSample: {
        compiled.node = step.node;
        GUS_RETURN_NOT_OK(step.node->spec().Validate());
        break;
      }
      case PlanOp::kJoin: {
        const PlanPtr& other =
            step.pivot_is_left ? step.node->right() : step.node->left();
        auto build = std::make_shared<SharedJoinBuild>();
        GUS_ASSIGN_OR_RETURN(
            build->build_mat,
            ExecutePlanColumnar(other, catalog, rng, mode,
                                options.batch_rows));
        const BatchLayout& pivot_side = *layout;
        const BatchLayout& build_side = build->build_mat.layout();
        const std::string& pivot_key = step.pivot_is_left
                                           ? step.node->left_key()
                                           : step.node->right_key();
        const std::string& build_key = step.pivot_is_left
                                           ? step.node->right_key()
                                           : step.node->left_key();
        GUS_ASSIGN_OR_RETURN(build->probe_key,
                             pivot_side.schema.IndexOf(pivot_key));
        GUS_ASSIGN_OR_RETURN(build->build_key,
                             build_side.schema.IndexOf(build_key));
        build->pivot_is_left = step.pivot_is_left;
        GUS_ASSIGN_OR_RETURN(
            build->out_layout,
            step.pivot_is_left ? ConcatBatchLayouts(pivot_side, build_side)
                               : ConcatBatchLayouts(build_side, pivot_side));
        const ColumnData& key =
            build->build_mat.data().column(build->build_key);
        GUS_RETURN_NOT_OK(
            build->table.BuildFrom(key, build->build_mat.num_rows()));
        layout = build->out_layout;
        compiled.join = std::move(build);
        break;
      }
      case PlanOp::kProduct: {
        const PlanPtr& other =
            step.pivot_is_left ? step.node->right() : step.node->left();
        auto side = std::make_shared<SharedProductSide>();
        GUS_ASSIGN_OR_RETURN(
            side->other_mat,
            ExecutePlanColumnar(other, catalog, rng, mode,
                                options.batch_rows));
        side->pivot_is_left = step.pivot_is_left;
        GUS_ASSIGN_OR_RETURN(
            side->out_layout,
            step.pivot_is_left
                ? ConcatBatchLayouts(*layout, side->other_mat.layout())
                : ConcatBatchLayouts(side->other_mat.layout(), *layout));
        layout = side->out_layout;
        compiled.product = std::move(side);
        break;
      }
      default:
        return Status::Internal("unexpected morsel path step");
    }
    plan.steps.push_back(std::move(compiled));
  }
  plan.out_layout = layout;
  return plan;
}

/// Materializing sink for ExecutePlanMorsel.
class RelationSink final : public MergeableBatchSink {
 public:
  explicit RelationSink(LayoutPtr layout) : rel_(std::move(layout)) {}

  Status Consume(const ColumnBatch& batch) override {
    rel_.AppendBatch(batch);
    return Status::OK();
  }

  Status MergeFrom(BatchSink* other) override {
    auto* o = static_cast<RelationSink*>(other);
    rel_.AppendBatch(o->rel_.data());
    return Status::OK();
  }

  ColumnarRelation TakeRelation() { return std::move(rel_); }

 private:
  ColumnarRelation rel_;
};

}  // namespace

bool PlanIsPartitionable(const PlanPtr& plan, ExecMode mode) {
  std::vector<PathStep> path;
  std::vector<PivotCandidate> cands;
  CollectPivots(plan, mode, &path, &cands);
  return !cands.empty();
}

Result<MorselSplit> AnalyzeMorselSplit(const PlanPtr& plan,
                                       ColumnarCatalog* catalog, ExecMode mode,
                                       const ExecOptions& options) {
  GUS_RETURN_NOT_OK(options.Validate());
  std::vector<PathStep> path;
  std::vector<PivotCandidate> cands;
  CollectPivots(plan, mode, &path, &cands);
  MorselSplit split;
  if (cands.empty()) return split;  // one serial fallback unit
  GUS_ASSIGN_OR_RETURN(const PivotCandidate* pivot,
                       ChoosePivot(cands, catalog));
  GUS_ASSIGN_OR_RETURN(const ColumnarRelation* rel,
                       catalog->Get(pivot->scan->relation()));
  split.partitionable = true;
  split.pivot_rows = rel->num_rows();
  split.morsel_rows = ResolveMorselRows(split.pivot_rows, options);
  split.num_units = MorselCount(split.pivot_rows, split.morsel_rows);
  return split;
}

Status ParallelExecuteUnitRangeToSink(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end,
    const MorselSinkFactory& make_sink,
    std::unique_ptr<MergeableBatchSink>* out, uint64_t* stream_base_out) {
  GUS_RETURN_NOT_OK(options.Validate());
  if (stream_base_out != nullptr) *stream_base_out = 0;
  std::vector<PathStep> path;
  std::vector<PivotCandidate> cands;
  CollectPivots(plan, mode, &path, &cands);
  if (cands.empty()) {
    // Serial fallback — one execution unit (index 0), run iff the range
    // contains it. The pipeline is compiled either way so static errors
    // and the output layout never depend on the shard's range.
    GUS_ASSIGN_OR_RETURN(
        std::unique_ptr<BatchSource> pipeline,
        CompileBatchPipeline(plan, catalog, rng, mode, options.batch_rows));
    GUS_ASSIGN_OR_RETURN(std::unique_ptr<MergeableBatchSink> sink,
                         make_sink(*pipeline->layout()));
    if (unit_begin <= 0 && unit_end > 0) {
      GUS_RETURN_NOT_OK(PumpToSink(pipeline.get(), sink.get()));
    }
    *out = std::move(sink);
    return Status::OK();
  }

  GUS_ASSIGN_OR_RETURN(const PivotCandidate* pivot,
                       ChoosePivot(cands, catalog));
  GUS_ASSIGN_OR_RETURN(MorselPlan morsel_plan,
                       PrepareMorselPlan(*pivot, catalog, rng, mode, options));
  // One draw seeds every morsel stream; consumed after the serial subtrees
  // so the whole consumption order is a pure function of (plan, seed) —
  // and therefore identical in every shard worker running this plan.
  const uint64_t stream_base = rng->Next();
  if (stream_base_out != nullptr) *stream_base_out = stream_base;

  const int64_t num_morsels = morsel_plan.num_morsels();
  unit_begin = std::clamp<int64_t>(unit_begin, 0, num_morsels);
  unit_end = std::clamp<int64_t>(unit_end, unit_begin, num_morsels);
  if (unit_begin >= unit_end) {
    GUS_ASSIGN_OR_RETURN(*out, make_sink(*morsel_plan.out_layout));
    return Status::OK();
  }

  // Ordered fold: per-morsel sinks merge in strictly ascending morsel
  // index, regardless of completion order, so the result never depends on
  // scheduling or worker count. The fold itself runs *outside* the mutex
  // (merges can be large — a materializing sink copies whole partitions);
  // `merging` guarantees a single folder at a time, so `merged` needs no
  // lock of its own and the fold order stays strictly sequential.
  std::mutex mu;
  std::map<int64_t, std::unique_ptr<MergeableBatchSink>> pending;
  int64_t next_merge = unit_begin;
  bool merging = false;
  std::unique_ptr<MergeableBatchSink> merged;
  Status error;

  const int64_t range_units = unit_end - unit_begin;
  const int workers = static_cast<int>(
      std::min<int64_t>(std::max(1, options.num_threads), range_units));
  ThreadPool pool(workers);
  pool.ParallelFor(range_units, [&](int64_t i) {
    const int64_t m = unit_begin + i;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!error.ok()) return;
    }
    Rng morsel_rng = Rng::ForkStream(stream_base, static_cast<uint64_t>(m));
    Status status;
    std::unique_ptr<MergeableBatchSink> sink;
    do {
      auto sink_or = make_sink(*morsel_plan.out_layout);
      if (!sink_or.ok()) {
        status = sink_or.status();
        break;
      }
      sink = std::move(sink_or).ValueOrDie();
      auto pipeline_or = morsel_plan.MakeMorselPipeline(m, &morsel_rng);
      if (!pipeline_or.ok()) {
        status = pipeline_or.status();
        break;
      }
      std::unique_ptr<BatchSource> pipeline =
          std::move(pipeline_or).ValueOrDie();
      status = PumpToSink(pipeline.get(), sink.get());
    } while (false);

    {
      std::lock_guard<std::mutex> lock(mu);
      if (!error.ok()) return;
      if (!status.ok()) {
        error = status;
        return;
      }
      pending.emplace(m, std::move(sink));
      if (merging) return;  // the active folder will pick this sink up
      merging = true;
    }
    std::vector<std::unique_ptr<MergeableBatchSink>> ready;
    while (true) {
      ready.clear();
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = pending.find(next_merge);
        while (it != pending.end()) {
          ready.push_back(std::move(it->second));
          pending.erase(it);
          it = pending.find(++next_merge);
        }
        if (ready.empty() || !error.ok()) {
          merging = false;
          return;
        }
      }
      for (std::unique_ptr<MergeableBatchSink>& next : ready) {
        if (merged == nullptr) {
          merged = std::move(next);
          continue;
        }
        Status st = merged->MergeFrom(next.get());
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          error = st;
          merging = false;
          return;
        }
      }
    }
  });

  GUS_RETURN_NOT_OK(error);
  GUS_CHECK(merged != nullptr);
  *out = std::move(merged);
  return Status::OK();
}

Status ParallelExecutePlanToSink(const PlanPtr& plan, ColumnarCatalog* catalog,
                                 Rng* rng, ExecMode mode,
                                 const ExecOptions& options,
                                 const MorselSinkFactory& make_sink,
                                 std::unique_ptr<MergeableBatchSink>* out) {
  return ParallelExecuteUnitRangeToSink(
      plan, catalog, rng, mode, options, 0,
      std::numeric_limits<int64_t>::max(), make_sink, out);
}

namespace {

Result<ColumnarRelation> ExecuteRangeToRelation(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng, ExecMode mode,
    const ExecOptions& options, int64_t unit_begin, int64_t unit_end) {
  std::unique_ptr<MergeableBatchSink> sink;
  GUS_RETURN_NOT_OK(ParallelExecuteUnitRangeToSink(
      plan, catalog, rng, mode, options, unit_begin, unit_end,
      [](const BatchLayout& layout)
          -> Result<std::unique_ptr<MergeableBatchSink>> {
        auto ptr = std::make_shared<BatchLayout>(layout);
        return std::unique_ptr<MergeableBatchSink>(
            new RelationSink(LayoutPtr(std::move(ptr))));
      },
      &sink));
  return static_cast<RelationSink*>(sink.get())->TakeRelation();
}

}  // namespace

Result<ColumnarRelation> ExecutePlanMorsel(const PlanPtr& plan,
                                           ColumnarCatalog* catalog, Rng* rng,
                                           ExecMode mode,
                                           const ExecOptions& options) {
  return ExecuteRangeToRelation(plan, catalog, rng, mode, options, 0,
                                std::numeric_limits<int64_t>::max());
}

Result<ColumnarRelation> ExecutePlanMorselRange(const PlanPtr& plan,
                                                ColumnarCatalog* catalog,
                                                Rng* rng, ExecMode mode,
                                                const ExecOptions& options,
                                                int64_t unit_begin,
                                                int64_t unit_end) {
  return ExecuteRangeToRelation(plan, catalog, rng, mode, options, unit_begin,
                                unit_end);
}

}  // namespace gus
