#include "serve/daemon.h"

#include <functional>
#include <optional>
#include <utility>

#include "dist/shard.h"
#include "dist/worker.h"
#include "est/wire.h"
#include "plan/soa_transform.h"
#include "stream/admission.h"
#include "util/fault_inject.h"

namespace gus {

namespace {

/// Serial pre-warm of the columnar conversion caches for `plan`'s scans
/// (the same contract the one-shot coordinator honors: caches are lazily
/// written and not thread-safe, so they must be hot before concurrent
/// request threads share the catalog read-only).
Status WarmScans(const PlanPtr& plan, ColumnarCatalog* catalog) {
  std::function<Status(const PlanPtr&)> walk =
      [&](const PlanPtr& node) -> Status {
    if (node->op() == PlanOp::kScan) {
      // Segment-backed relations stream through the (thread-safe) pinned
      // cache; materializing them would defeat out-of-core serving.
      GUS_ASSIGN_OR_RETURN(const StoredRelation* stored,
                           catalog->Stored(node->relation()));
      if (stored != nullptr) return Status::OK();
      return catalog->Get(node->relation()).status();
    }
    for (int c = 0; c < node->num_children(); ++c) {
      GUS_RETURN_NOT_OK(walk(c == 0 ? node->left() : node->right()));
    }
    return Status::OK();
  };
  return walk(plan);
}

}  // namespace

uint64_t ServedQueryFingerprint(const ServedQuery& query) {
  WireWriter w;
  w.PutString(query.plan->ToString());
  w.PutString(query.f_expr->ToString());
  EncodeGusParams(query.gus, &w);
  w.PutDouble(query.sbox.confidence_level);
  w.PutU8(static_cast<uint8_t>(query.sbox.bound_kind));
  w.PutU8(query.sbox.subsample.has_value() ? 1 : 0);
  if (query.sbox.subsample.has_value()) {
    w.PutI64(query.sbox.subsample->target_rows);
    w.PutU64(query.sbox.subsample->seed);
  }
  return WireChecksum(w.buffer());
}

WorkerDaemon::WorkerDaemon(Catalog catalog) : catalog_(std::move(catalog)) {}

WorkerDaemon::WorkerDaemon(std::unique_ptr<ColumnarCatalog> columnar)
    : columnar_(std::move(columnar)), external_columnar_(true) {}

WorkerDaemon::~WorkerDaemon() { Stop(); }

Status WorkerDaemon::RegisterQuery(const std::string& name,
                                   ServedQuery query) {
  if (listener_ != nullptr) {
    return Status::InvalidArgument(
        "RegisterQuery must run before Start (the warm-up covers "
        "registered queries)");
  }
  if (query.plan == nullptr || query.f_expr == nullptr) {
    return Status::InvalidArgument("ServedQuery needs a plan and an f_expr");
  }
  if (!queries_.emplace(name, std::move(query)).second) {
    return Status::InvalidArgument("query '" + name + "' already registered");
  }
  return Status::OK();
}

Result<Endpoint> WorkerDaemon::Start(const Endpoint& listen) {
  std::lock_guard<std::mutex> lock(mu_);
  if (listener_ != nullptr) {
    return Status::InvalidArgument("daemon already serving on " +
                                   endpoint_.ToString());
  }
  stopping_.store(false, std::memory_order_release);
  // Load once, serve many: the whole point of the daemon. The columnar
  // conversion, content fingerprints, and shard split geometry for every
  // registered query are computed here, serially, so request threads
  // afterwards share them read-only.
  if (!external_columnar_) {
    columnar_ = std::make_unique<ColumnarCatalog>(&catalog_);
  }
  plan_infos_.clear();
  for (const auto& [name, query] : queries_) {
    GUS_RETURN_NOT_OK(WarmScans(query.plan, columnar_.get()));
    ServePlanInfo info;
    GUS_ASSIGN_OR_RETURN(
        info.catalog_fingerprint,
        PlanCatalogFingerprint(query.plan, columnar_.get()));
    GUS_ASSIGN_OR_RETURN(
        ShardPlan sp,
        PlanShards(query.plan, columnar_.get(), ExecMode::kSampled,
                   ShardedExecOptions(ExecOptions{}), 1));
    info.partitionable = sp.split.partitionable;
    info.pivot_relation =
        sp.split.partitionable ? sp.split.pivot_relation : std::string();
    info.query_fingerprint = ServedQueryFingerprint(query);
    plan_infos_[name] = info;
  }
  GUS_ASSIGN_OR_RETURN(listener_, SocketListener::Listen(listen));
  endpoint_ = listener_->endpoint();
  // The accept thread holds the raw listener pointer: Stop() keeps the
  // object alive until after the join, so the pointer never dangles and
  // the thread never touches the (mutex-guarded) member.
  SocketListener* listener = listener_.get();
  accept_thread_ = std::thread([this, listener] { AcceptLoop(listener); });
  return endpoint_;
}

void WorkerDaemon::Stop() {
  stopping_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(mu_);
  if (listener_ != nullptr) listener_->Close();
  // Closing sockets wakes every blocked reader; abrupt from the peer's
  // point of view — in-flight requests surface as mid-frame EOF, which is
  // exactly what a killed daemon looks like to the retry layer.
  for (auto& conn : connections_) {
    if (conn->socket != nullptr) conn->socket->Close();
  }
  std::thread accept = std::move(accept_thread_);
  std::vector<std::unique_ptr<LiveConnection>> conns =
      std::move(connections_);
  connections_.clear();
  // The listener object must outlive the accept thread (it may be blocked
  // inside Accept() on it); destroy it only after the join.
  std::unique_ptr<SocketListener> listener = std::move(listener_);
  lock.unlock();
  if (accept.joinable()) accept.join();
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void WorkerDaemon::AcceptLoop(SocketListener* listener) {
  for (;;) {
    Result<std::unique_ptr<SocketConnection>> accepted = listener->Accept();
    if (!accepted.ok()) return;  // Close() ended the loop
    auto conn = std::make_unique<LiveConnection>();
    conn->socket = std::move(accepted).ValueOrDie();
    conn->write_mu = std::make_shared<std::mutex>();
    LiveConnection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        conn->socket->Close();
        return;
      }
      conn->reader = std::thread([this, raw] { ConnectionLoop(raw); });
      connections_.push_back(std::move(conn));
    }
  }
}

void WorkerDaemon::ConnectionLoop(LiveConnection* conn) {
  std::shared_ptr<SocketConnection> socket = conn->socket;
  std::shared_ptr<std::mutex> write_mu = conn->write_mu;
  const auto reply = [socket, write_mu](const ServeHeader& header,
                                        std::string_view body) {
    std::lock_guard<std::mutex> lock(*write_mu);
    // A failed response write means the connection died; the reader loop
    // notices on its next recv, so the error needs no separate handling.
    (void)socket->SendFrame(EncodeServeMessage(header, body));
  };
  for (;;) {
    bool clean_eof = false;
    Result<std::string> frame = socket->RecvFrame(&clean_eof);
    if (!frame.ok()) break;  // clean close and wire damage both end it
    Result<std::pair<ServeHeader, std::string_view>> decoded =
        DecodeServeMessage(frame.ValueOrDie());
    if (!decoded.ok()) {
      ServeHeader err;
      err.type = ServeMsg::kError;
      reply(err, StatusToBytes(decoded.status()));
      continue;
    }
    const ServeHeader header = decoded.ValueOrDie().first;
    const std::string body(decoded.ValueOrDie().second);
    switch (header.type) {
      case ServeMsg::kExecRequest: {
        // Each request gets its own worker thread: responses leave in
        // completion order, so one connection multiplexes sessions
        // without head-of-line blocking.
        conn->workers.emplace_back([this, header, body, reply] {
          ServeHeader response = header;
          Result<ExecShardRequest> req = ExecShardRequestFromBytes(body);
          Result<std::string> bundle =
              req.ok() ? HandleExec(req.ValueOrDie())
                       : Result<std::string>(req.status());
          if (bundle.ok()) {
            response.type = ServeMsg::kExecResponse;
            reply(response, bundle.ValueOrDie());
          } else {
            response.type = ServeMsg::kError;
            reply(response, StatusToBytes(bundle.status()));
          }
        });
        break;
      }
      case ServeMsg::kPlanInfoRequest: {
        ServeHeader response = header;
        Result<std::string> info = HandlePlanInfo(body);
        if (info.ok()) {
          response.type = ServeMsg::kPlanInfoResponse;
          reply(response, info.ValueOrDie());
        } else {
          response.type = ServeMsg::kError;
          reply(response, StatusToBytes(info.status()));
        }
        break;
      }
      default: {
        ServeHeader response = header;
        response.type = ServeMsg::kError;
        reply(response,
              StatusToBytes(Status::InvalidArgument(
                  "daemon cannot handle this message type")));
        break;
      }
    }
  }
  for (std::thread& worker : conn->workers) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::string> WorkerDaemon::HandleExec(const ExecShardRequest& req) {
  // The PR 8 fault site: GUS_FAULT="serve.execute[@shard]=..." can fail,
  // delay, or kill a daemon mid-request.
  GUS_RETURN_NOT_OK(
      FaultInjector::Global()->Hit("serve.execute", req.shard_index));
  auto it = queries_.find(req.query);
  if (it == queries_.end()) {
    return Status::InvalidArgument("query '" + req.query +
                                   "' is not registered with this daemon");
  }
  const ServedQuery& query = it->second;
  if (req.num_shards < 1 || req.shard_index < 0 ||
      req.shard_index >= req.num_shards) {
    return Status::InvalidArgument(
        "bad shard geometry: shard " + std::to_string(req.shard_index) +
        " of " + std::to_string(req.num_shards));
  }
  ExecOptions exec;
  exec.engine = ExecEngine::kSharded;
  exec.num_threads = req.num_threads < 1 ? 1 : req.num_threads;
  exec.morsel_rows = req.morsel_rows;
  exec.num_shards = req.num_shards;
  const ExecOptions normalized = ShardedExecOptions(exec);

  PlanPtr plan = query.plan;
  GusParams gus = query.gus;
  if (req.admission_scale != 1.0) {
    if (!(req.admission_scale > 0.0 && req.admission_scale <= 1.0)) {
      return Status::InvalidArgument("admission scale must be in (0, 1]");
    }
    // Shed by design, not by dropping: shrink the sampling rates and
    // re-derive the top GUS so the estimate stays honest (stream/admission).
    GUS_ASSIGN_OR_RETURN(plan,
                         ScalePlanSamplingRates(plan, req.admission_scale));
    GUS_ASSIGN_OR_RETURN(SoaResult soa, SoaTransform(plan));
    gus = soa.top;
  }
  std::optional<uint64_t> expected;
  if (req.expected_catalog_fingerprint != 0) {
    expected = req.expected_catalog_fingerprint;
  }
  GUS_ASSIGN_OR_RETURN(
      std::string bundle,
      RunShardSbox(plan, columnar_.get(), req.seed, ExecMode::kSampled,
                   normalized, req.shard_index, req.num_shards, query.f_expr,
                   gus, query.sbox, expected));
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return bundle;
}

Result<std::string> WorkerDaemon::HandlePlanInfo(std::string_view body) {
  WireReader r(body);
  std::string name;
  GUS_RETURN_NOT_OK(r.ReadString(&name));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  auto it = plan_infos_.find(name);
  if (it == plan_infos_.end()) {
    return Status::InvalidArgument("query '" + name +
                                   "' is not registered with this daemon");
  }
  return ServePlanInfoToBytes(it->second);
}

}  // namespace gus
