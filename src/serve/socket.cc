#include "serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <stdexcept>
#include <ostream>
#include <streambuf>

#include "dist/transport.h"

namespace gus {

namespace {

/// \brief Unbuffered streambuf over a connected socket fd.
///
/// xsgetn returns whatever one recv() delivers (a partial count on a
/// fragmented frame) instead of looping to fill the request — that is
/// deliberate: it makes the socket behave like the short-read stream the
/// frame codec's ReadFully loop exists for, so the loop is exercised on
/// real traffic. Only EINTR retries here; everything else surfaces as
/// EOF/error to the codec, which classifies it.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {}

 protected:
  std::streamsize xsgetn(char* s, std::streamsize n) override {
    if (n <= 0) return 0;
    for (;;) {
      const ssize_t got = ::recv(fd_, s, static_cast<size_t>(n), 0);
      if (got >= 0) return static_cast<std::streamsize>(got);
      if (errno == EINTR) continue;
      return 0;
    }
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (n <= 0) return 0;
    for (;;) {
      const ssize_t put = ::send(fd_, s, static_cast<size_t>(n), MSG_NOSIGNAL);
      if (put >= 0) return static_cast<std::streamsize>(put);
      if (errno == EINTR) continue;
      return 0;
    }
  }

  // Single-character fallbacks (the codec only uses sgetn/sputn, but the
  // iostream layer may probe these).
  int_type underflow() override {
    char c;
    return xsgetn(&c, 1) == 1 ? traits_type::to_int_type(c)
                              : traits_type::eof();
  }
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
    const char c = traits_type::to_char_type(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  int fd_;
};

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Result<int> MakeSocket(Endpoint::Kind kind) {
  const int domain = kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket()");
  return fd;
}

Result<sockaddr_un> UnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: '" +
                                   path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Result<sockaddr_in> TcpAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string use = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, use.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host '" + use + "'");
  }
  return addr;
}

}  // namespace

Result<Endpoint> Endpoint::Parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.target = spec.substr(5);
    if (ep.target.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + spec +
                                     "'");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? rest : rest.substr(colon + 1);
    if (colon != std::string::npos) ep.target = rest.substr(0, colon);
    try {
      size_t used = 0;
      ep.port = std::stoi(port_str, &used);
      if (used != port_str.size()) throw std::invalid_argument(port_str);
    } catch (const std::exception&) {
      return Status::InvalidArgument("cannot parse TCP port in '" + spec +
                                     "'");
    }
    if (ep.port < 0 || ep.port > 65535) {
      return Status::InvalidArgument("TCP port out of range in '" + spec +
                                     "'");
    }
    return ep;
  }
  return Status::InvalidArgument(
      "endpoint must be 'unix:<path>', 'tcp:<host>:<port>', or "
      "'tcp:<port>'; got '" +
      spec + "'");
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + target;
  return "tcp:" + (target.empty() ? std::string("127.0.0.1") : target) + ":" +
         std::to_string(port);
}

SocketConnection::SocketConnection(int fd) : fd_(fd) {}

SocketConnection::~SocketConnection() {
  Close();
  // The fd is released only here, never in Close(): every concurrent
  // user of the connection holds it via shared_ptr, so by destruction
  // time no thread can still be blocked in recv/send on this fd — while
  // a close() inside Close() could race a parked reader and hand its
  // recv a *reused* descriptor number.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<std::unique_ptr<SocketConnection>> SocketConnection::Connect(
    const Endpoint& ep) {
  GUS_ASSIGN_OR_RETURN(int fd, MakeSocket(ep.kind));
  int rc = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    Result<sockaddr_un> addr = UnixAddr(ep.target);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    const sockaddr_un& sa = addr.ValueOrDie();
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    } while (rc < 0 && errno == EINTR);
  } else {
    Result<sockaddr_in> addr = TcpAddr(ep.target, ep.port);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    const sockaddr_in& sa = addr.ValueOrDie();
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (rc < 0) {
    const Status st = ErrnoStatus("connect(" + ep.ToString() + ")");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<SocketConnection>(new SocketConnection(fd));
}

Status SocketConnection::SendFrame(std::string_view payload) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("socket already closed");
  }
  FdStreamBuf buf(fd);
  std::ostream out(&buf);
  return WriteFrame(&out, payload);
}

Result<std::string> SocketConnection::RecvFrame(bool* clean_eof) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed_.load(std::memory_order_acquire)) {
    if (clean_eof != nullptr) *clean_eof = true;
    return Status::Unavailable("socket already closed");
  }
  FdStreamBuf buf(fd);
  std::istream in(&buf);
  return ReadFrame(&in, clean_eof);
}

void SocketConnection::Close() {
  // shutdown() only — it wakes any thread parked in recv/send (they see
  // EOF/EPIPE on the still-valid fd) without freeing the descriptor
  // number out from under them. The destructor does the close().
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

SocketListener::SocketListener(int fd, Endpoint endpoint)
    : fd_(fd), endpoint_(std::move(endpoint)) {}

SocketListener::~SocketListener() {
  Close();
  // Same split as SocketConnection: the accept thread is joined before
  // the listener is destroyed (daemon Stop()), so only now is it safe to
  // release the descriptor number.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::close(fd);
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.target.c_str());
    }
  }
}

Result<std::unique_ptr<SocketListener>> SocketListener::Listen(
    const Endpoint& ep) {
  GUS_ASSIGN_OR_RETURN(int fd, MakeSocket(ep.kind));
  Endpoint resolved = ep;
  int rc = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    Result<sockaddr_un> addr = UnixAddr(ep.target);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    // A daemon that died holding the address leaves the inode behind;
    // restarting on it must succeed.
    ::unlink(ep.target.c_str());
    const sockaddr_un& sa = addr.ValueOrDie();
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    Result<sockaddr_in> addr = TcpAddr(ep.target, ep.port);
    if (!addr.ok()) {
      ::close(fd);
      return addr.status();
    }
    const sockaddr_in& sa = addr.ValueOrDie();
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  }
  if (rc < 0) {
    const Status st = ErrnoStatus("bind(" + ep.ToString() + ")");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = ErrnoStatus("listen(" + ep.ToString() + ")");
    ::close(fd);
    return st;
  }
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      resolved.port = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  return std::unique_ptr<SocketListener>(
      new SocketListener(fd, std::move(resolved)));
}

Result<std::unique_ptr<SocketConnection>> SocketListener::Accept() {
  for (;;) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0 || closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener closed");
    }
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      if (endpoint_.kind == Endpoint::Kind::kTcp) {
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      return std::unique_ptr<SocketConnection>(new SocketConnection(conn));
    }
    if (errno == EINTR) continue;
    // Close() shut the fd down under us (EBADF/EINVAL) or the kernel
    // aborted a half-open connection; both end the accept loop.
    return Status::Unavailable("accept(" + endpoint_.ToString() +
                               ") ended: " + std::strerror(errno));
  }
}

void SocketListener::Close() {
  // shutdown() only, so a thread parked in accept() wakes without the
  // descriptor number being freed under it; the destructor closes the
  // fd and unlinks a Unix path once the accept loop is joined.
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace gus
