#include "serve/protocol.h"

#include "est/wire.h"

namespace gus {

namespace {

bool KnownServeMsg(uint32_t type) {
  switch (static_cast<ServeMsg>(type)) {
    case ServeMsg::kExecRequest:
    case ServeMsg::kExecResponse:
    case ServeMsg::kPlanInfoRequest:
    case ServeMsg::kPlanInfoResponse:
    case ServeMsg::kError:
      return true;
  }
  return false;
}

/// StatusCode values are serialized by name-stable ordinal; the enum is
/// append-only (util/status.h), so the mapping is a wire contract.
Status StatusFromCode(uint32_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      break;  // handled by caller
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kKeyError:
      return Status::KeyError(std::move(message));
    case StatusCode::kTypeError:
      return Status::TypeError(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal("unknown wire status code " + std::to_string(code) +
                          ": " + message);
}

}  // namespace

std::string EncodeServeMessage(const ServeHeader& header,
                               std::string_view body) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(header.type));
  w.PutU64(header.session_id);
  w.PutU64(header.request_id);
  std::string out = w.Take();
  out.append(body.data(), body.size());
  return out;
}

Result<std::pair<ServeHeader, std::string_view>> DecodeServeMessage(
    std::string_view payload) {
  constexpr size_t kHeaderBytes = 4 + 8 + 8;
  if (payload.size() < kHeaderBytes) {
    return Status::InvalidArgument("truncated serve message header");
  }
  WireReader r(payload.substr(0, kHeaderBytes));
  uint32_t type = 0;
  ServeHeader header;
  GUS_RETURN_NOT_OK(r.ReadU32(&type));
  GUS_RETURN_NOT_OK(r.ReadU64(&header.session_id));
  GUS_RETURN_NOT_OK(r.ReadU64(&header.request_id));
  if (!KnownServeMsg(type)) {
    return Status::InvalidArgument("unknown serve message type " +
                                   std::to_string(type));
  }
  header.type = static_cast<ServeMsg>(type);
  return std::make_pair(header, payload.substr(kHeaderBytes));
}

std::string ExecShardRequestToBytes(const ExecShardRequest& req) {
  WireWriter w;
  w.PutString(req.query);
  w.PutU64(req.seed);
  w.PutI32(req.shard_index);
  w.PutI32(req.num_shards);
  w.PutI64(req.morsel_rows);
  w.PutI32(req.num_threads);
  w.PutDouble(req.admission_scale);
  w.PutU64(req.expected_catalog_fingerprint);
  return w.Take();
}

Result<ExecShardRequest> ExecShardRequestFromBytes(std::string_view payload) {
  WireReader r(payload);
  ExecShardRequest req;
  GUS_RETURN_NOT_OK(r.ReadString(&req.query));
  GUS_RETURN_NOT_OK(r.ReadU64(&req.seed));
  GUS_RETURN_NOT_OK(r.ReadI32(&req.shard_index));
  GUS_RETURN_NOT_OK(r.ReadI32(&req.num_shards));
  GUS_RETURN_NOT_OK(r.ReadI64(&req.morsel_rows));
  GUS_RETURN_NOT_OK(r.ReadI32(&req.num_threads));
  GUS_RETURN_NOT_OK(r.ReadDouble(&req.admission_scale));
  GUS_RETURN_NOT_OK(r.ReadU64(&req.expected_catalog_fingerprint));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return req;
}

std::string ServePlanInfoToBytes(const ServePlanInfo& info) {
  WireWriter w;
  w.PutU8(info.partitionable ? 1 : 0);
  w.PutString(info.pivot_relation);
  w.PutU64(info.catalog_fingerprint);
  w.PutU64(info.query_fingerprint);
  return w.Take();
}

Result<ServePlanInfo> ServePlanInfoFromBytes(std::string_view payload) {
  WireReader r(payload);
  ServePlanInfo info;
  uint8_t partitionable = 0;
  GUS_RETURN_NOT_OK(r.ReadU8(&partitionable));
  info.partitionable = partitionable != 0;
  GUS_RETURN_NOT_OK(r.ReadString(&info.pivot_relation));
  GUS_RETURN_NOT_OK(r.ReadU64(&info.catalog_fingerprint));
  GUS_RETURN_NOT_OK(r.ReadU64(&info.query_fingerprint));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  return info;
}

std::string StatusToBytes(const Status& status) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status StatusFromBytes(std::string_view payload) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  GUS_RETURN_NOT_OK(r.ReadU32(&code));
  GUS_RETURN_NOT_OK(r.ReadString(&message));
  GUS_RETURN_NOT_OK(r.ExpectEnd());
  if (static_cast<StatusCode>(code) == StatusCode::kOk) {
    return Status::Internal(
        "kError message carried an OK status (protocol violation)");
  }
  return StatusFromCode(code, std::move(message));
}

}  // namespace gus
