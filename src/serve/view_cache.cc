#include "serve/view_cache.h"

#include <utility>

namespace gus {

namespace {

/// 64-bit mix (splitmix64 finalizer) — cheap avalanche for key fields.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

size_t ViewCacheKey::Hash::operator()(const ViewCacheKey& k) const {
  uint64_t h = Mix(k.query_fingerprint);
  h = Mix(h ^ k.catalog_fingerprint);
  h = Mix(h ^ k.seed);
  h = Mix(h ^ static_cast<uint64_t>(k.morsel_rows));
  h = Mix(h ^ k.scale_bits);
  return static_cast<size_t>(h);
}

ViewCache::ViewCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::optional<std::string> ViewCache::Lookup(const ViewCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.bundle;
}

void ViewCache::Insert(const ViewCacheKey& key, std::string bundle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.bundle = std::move(bundle);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(bundle), lru_.begin()});
  while (entries_.size() > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

int64_t ViewCache::InvalidateCatalog(uint64_t catalog_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.catalog_fingerprint == catalog_fingerprint) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

int64_t ViewCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t dropped = static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
  invalidations_ += dropped;
  return dropped;
}

int64_t ViewCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t ViewCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t ViewCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

size_t ViewCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ViewCache::CorruptEntryForTesting(const ViewCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.bundle.empty()) return false;
  // Flip bits in the middle of the container: the section directory or a
  // payload byte, never just the trailing checksum — the checksum must
  // *catch* this, which is the point of the test.
  std::string& bundle = it->second.bundle;
  bundle[bundle.size() / 2] = static_cast<char>(bundle[bundle.size() / 2] ^ 0x5A);
  return true;
}

ViewCache* ProcessViewCache() {
  static auto* cache = new ViewCache(128);
  return cache;
}

}  // namespace gus
