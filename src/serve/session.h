// The session coordinator: many concurrent queries over a fixed daemon
// fleet.
//
// One DaemonChannel per fleet endpoint. A channel is a single persistent
// connection multiplexing every in-flight request: Call() stamps a fresh
// request_id into the session header, sends the frame under the write
// lock, and parks on a per-request slot; a demux reader thread routes
// each response frame (daemons answer in completion order, not request
// order) back to its slot by request_id. Connection death fails every
// parked call with Unavailable — retryable — and the next Call()
// reconnects, which is how a killed-and-restarted daemon heals without
// anyone above the channel noticing more than a retry.
//
// SessionCoordinator::Execute is one query end to end: allocate a
// session id, resolve the query's ServePlanInfo (fetched once per name,
// then cached), consult the approximate-view cache, fan the shards out
// across the fleet (shard k -> channel[k % M], each shard retried under
// the ShardRetryPolicy with the same deterministic backoff as the
// in-process fault-tolerant path), and fold the gathered bundles through
// FoldGatheredShardBundles — the *same* fold as the one-shot kSharded
// gather, which is what makes a served answer bit-identical to it by
// construction. Execute is thread-safe; N client threads driving one
// coordinator is the intended shape (the concurrency tests do exactly
// that).
//
// Admission control sits at the front door: when a controller is
// attached, its current scale travels in every shard request and the
// observed load is reported back after the gather — overload shrinks the
// *design* (stream/admission.h), never the answer's honesty.

#ifndef GUS_SERVE_SESSION_H_
#define GUS_SERVE_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "est/partial_gather.h"
#include "est/sbox.h"
#include "plan/exec_stats.h"
#include "plan/executor.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "serve/view_cache.h"
#include "stream/admission.h"
#include "util/status.h"

namespace gus {

/// \brief One persistent, multiplexed connection to a worker daemon.
///
/// Thread-safe: any number of threads may Call() concurrently; frames
/// interleave on the wire and the reader thread demuxes responses by
/// request_id. Reconnects lazily after connection death.
class DaemonChannel {
 public:
  explicit DaemonChannel(Endpoint endpoint);
  ~DaemonChannel();

  DaemonChannel(const DaemonChannel&) = delete;
  DaemonChannel& operator=(const DaemonChannel&) = delete;

  /// \brief One request/response round trip.
  ///
  /// Sends `body` as `request_type` under `session_id`, waits for the
  /// response frame with the same request_id. A kError response decodes
  /// back to its original Status (the retryable/fatal distinction
  /// survives the wire); a lost connection fails as Unavailable;
  /// `deadline_ms` > 0 bounds the wait (DeadlineExceeded). Both are
  /// retryable — the next Call() reconnects.
  Result<std::string> Call(ServeMsg request_type, uint64_t session_id,
                           std::string_view body, ServeMsg expected_response,
                           int64_t deadline_ms = 0);

  /// Closes the connection and joins the reader threads. Idempotent;
  /// in-flight calls fail with Unavailable.
  void Shutdown();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  /// A parked Call() waiting for its response frame.
  struct Pending {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeMsg type = ServeMsg::kError;
    std::string body;
    Status error = Status::OK();
  };

  /// One connection generation: replaced wholesale on death, so a late
  /// frame from a dead generation can never satisfy a new call.
  struct ConnState {
    std::shared_ptr<SocketConnection> socket;
    std::mutex write_mu;
    std::thread reader;
    std::mutex mu;  // guards pending, dead
    std::map<uint64_t, std::shared_ptr<Pending>> pending;
    bool dead = false;
  };

  /// Current live generation, connecting a fresh one if needed.
  Result<std::shared_ptr<ConnState>> EnsureConnected();
  void ReaderLoop(std::shared_ptr<ConnState> conn);
  /// Marks the generation dead and fails every parked call with `why`.
  static void KillConn(const std::shared_ptr<ConnState>& conn,
                       const Status& why);

  const Endpoint endpoint_;
  std::atomic<uint64_t> next_request_{1};
  std::mutex conn_mu_;  // guards current_, generations_, shutdown_
  std::shared_ptr<ConnState> current_;
  /// Every generation ever connected — kept for reader joins at Shutdown.
  std::vector<std::shared_ptr<ConnState>> generations_;
  bool shutdown_ = false;
};

/// \brief One served query's knobs (the serving twin of ExecOptions).
struct ServedRequest {
  uint64_t seed = 0;
  int num_shards = 1;
  /// 0 normalizes to the pinned sharded default (ShardedExecOptions) on
  /// both sides of the wire.
  int64_t morsel_rows = 0;
  /// Daemon-side threads per shard (never affects result bits).
  int num_threads = 1;
  /// Fold survivors through est/partial_gather when shards are lost past
  /// their retry budget, instead of failing the query.
  bool allow_partial = false;
  ShardRetryPolicy retry;
  /// Consult/populate the view cache (degraded results are never cached).
  bool use_cache = false;
  ViewCache* cache = nullptr;  ///< defaults to ProcessViewCache() when null
  /// Admission scale in (0, 1]; overridden by the coordinator's attached
  /// AdmissionController when one is present.
  double admission_scale = 1.0;
  /// Optional profile output (cache + shard retry counters).
  ExecStats* stats = nullptr;
};

/// \brief Outcome of one served query.
struct ServedResult {
  SboxReport report;
  bool degraded = false;
  DegradedReport degradation;  ///< meaningful iff degraded
  SurvivingRangesInfo live;    ///< meaningful iff degraded
  /// True when the report came from cached merged state (no daemon ran).
  bool cache_hit = false;
  uint64_t session_id = 0;
  /// Scale the query actually ran at (controller- or request-supplied).
  double admission_scale = 1.0;
};

/// \brief Client-side coordinator over a fixed daemon fleet.
class SessionCoordinator {
 public:
  /// `admission` (optional, not owned) supplies the scale for every query
  /// and receives load observations; the coordinator serializes access
  /// (AdmissionController itself is not thread-safe).
  explicit SessionCoordinator(const std::vector<Endpoint>& fleet,
                              AdmissionController* admission = nullptr);
  ~SessionCoordinator();

  SessionCoordinator(const SessionCoordinator&) = delete;
  SessionCoordinator& operator=(const SessionCoordinator&) = delete;

  /// \brief Runs `query_name` end to end (see file comment). Thread-safe.
  Result<ServedResult> Execute(const std::string& query_name,
                               const ServedRequest& req);

  /// Closes every channel. Idempotent; the destructor also calls it.
  void Shutdown();

  size_t fleet_size() const { return channels_.size(); }

 private:
  /// The query's plan info, fetched from the fleet once and cached.
  Result<ServePlanInfo> ResolvePlanInfo(const std::string& query_name,
                                        uint64_t session_id,
                                        const ShardRetryPolicy& retry);

  std::vector<std::unique_ptr<DaemonChannel>> channels_;
  AdmissionController* admission_;
  std::mutex admission_mu_;
  std::atomic<uint64_t> next_session_{1};
  std::mutex info_mu_;
  std::map<std::string, ServePlanInfo> plan_infos_;
};

}  // namespace gus

#endif  // GUS_SERVE_SESSION_H_
