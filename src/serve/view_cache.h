// The approximate-view cache: merged estimator state as a servable value.
//
// The paper's estimator state is mergeable and tiny relative to base
// data; once a query's shard bundles have been gathered and merged, the
// merged state IS the answer's input — Finish() over it reproduces the
// report bit for bit (est/streaming.h round-trip guarantees). So the
// cache stores exactly that: one wire v2.1 bundle of merged state per
// (query definition, catalog content, seed, morsel geometry, admission
// scale). A hit re-runs Finish over deserialized state and touches no
// base data, no daemons, no executors.
//
// Keying doubles as invalidation:
//   * query_fingerprint  — plan shape, aggregate, GUS design, estimator
//     options; a different query (or confidence level) is a different
//     entry, never a wrong answer.
//   * catalog_fingerprint — PlanCatalogFingerprint over the scanned base
//     relations' *content*; any data change moves the key, so stale
//     state is structurally unreachable (and evictable in bulk via
//     InvalidateCatalog when a coordinator learns data changed).
//   * seed / morsel_rows / scale_bits — the remaining inputs the result
//     bits depend on. num_shards is deliberately absent: results are
//     shard-count invariant (dist/shard.h), so gathers at different
//     fleet sizes share one entry.
//
// Bundles are checksummed containers (est/wire.h); a poisoned entry
// fails ParseWireBundle loudly at hit time instead of serving numbers.
// Degraded (partial) gathers are never inserted — a cache must not
// immortalize an outage.

#ifndef GUS_SERVE_VIEW_CACHE_H_
#define GUS_SERVE_VIEW_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace gus {

/// \brief Identity of one cached merged-state bundle (see file comment).
struct ViewCacheKey {
  uint64_t query_fingerprint = 0;
  uint64_t catalog_fingerprint = 0;
  uint64_t seed = 0;
  int64_t morsel_rows = 0;
  /// IEEE-754 bits of the admission scale the entry ran at (scaled
  /// designs are different estimates; bit-compare, never epsilon).
  uint64_t scale_bits = 0;

  bool operator==(const ViewCacheKey& o) const {
    return query_fingerprint == o.query_fingerprint &&
           catalog_fingerprint == o.catalog_fingerprint && seed == o.seed &&
           morsel_rows == o.morsel_rows && scale_bits == o.scale_bits;
  }

  struct Hash {
    size_t operator()(const ViewCacheKey& k) const;
  };
};

/// \brief Thread-safe LRU cache of serialized merged estimator bundles.
class ViewCache {
 public:
  explicit ViewCache(size_t max_entries = 128);

  /// The cached bundle bytes, counting a hit (or miss). The returned
  /// copy is the caller's; the cache never hands out references.
  std::optional<std::string> Lookup(const ViewCacheKey& key);

  /// Inserts (or replaces) an entry, evicting LRU entries over capacity.
  void Insert(const ViewCacheKey& key, std::string bundle);

  /// \brief Drops every entry gathered against `catalog_fingerprint`;
  /// returns the count (also added to invalidations()).
  ///
  /// Keys already make stale entries unreachable — this reclaims their
  /// memory eagerly when a coordinator learns the data changed.
  int64_t InvalidateCatalog(uint64_t catalog_fingerprint);

  /// Drops everything (counted as invalidations).
  int64_t Clear();

  int64_t hits() const;
  int64_t misses() const;
  int64_t invalidations() const;
  size_t size() const;

  /// Test hook: flips bytes inside a cached bundle in place (true if the
  /// entry existed) — the poisoned-cache loud-failure path.
  bool CorruptEntryForTesting(const ViewCacheKey& key);

 private:
  struct Entry {
    std::string bundle;
    std::list<ViewCacheKey>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  size_t max_entries_;
  std::unordered_map<ViewCacheKey, Entry, ViewCacheKey::Hash> entries_;
  /// Most-recent first; back is the eviction victim.
  std::list<ViewCacheKey> lru_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t invalidations_ = 0;
};

/// \brief The process-wide cache behind ExecEngine::kServed (sqlish) —
/// one instance so repeated queries across call sites share entries.
ViewCache* ProcessViewCache();

}  // namespace gus

#endif  // GUS_SERVE_VIEW_CACHE_H_
