// Stream sockets for the serving layer: the GUSF frame codec lifted onto
// long-lived Unix-domain and TCP connections.
//
// dist/transport.h's frame codec "works over any std::iostream"; this
// file supplies the iostream — a raw-fd streambuf whose xsgetn/xsputn
// return per-recv/send partial counts (looping only on EINTR), so the
// ReadFrame/WriteFrame partial-transfer loops are exercised on every
// socket frame, not just in tests. One frame is one message; framing,
// checksumming, and damage classification (Unavailable = retryable wire
// damage, clean EOF = peer hung up between frames) are identical to the
// file transport because they are the same code.
//
// Endpoints parse from strings so daemons and coordinators can be wired
// from flags: "unix:/path/to.sock", "tcp:host:port", or "tcp:port"
// (loopback). Listening on "tcp:0" resolves the kernel-assigned port.

#ifndef GUS_SERVE_SOCKET_H_
#define GUS_SERVE_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gus {

/// \brief A parseable serving address: Unix-domain path or TCP host:port.
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  /// Socket path (kUnix) or host (kTcp; empty = loopback).
  std::string target;
  /// TCP port (0 = kernel-assigned; Listen resolves it).
  int port = 0;

  /// Parses "unix:<path>", "tcp:<host>:<port>", or "tcp:<port>".
  static Result<Endpoint> Parse(const std::string& spec);
  std::string ToString() const;
};

/// \brief One connected stream socket carrying GUSF frames.
///
/// SendFrame/RecvFrame are whole-message operations built on the shared
/// frame codec; partial sends/recvs are looped at the streambuf layer.
/// Not internally synchronized: concurrent senders (or receivers) must
/// hold their own lock so frames never interleave mid-write.
class SocketConnection {
 public:
  ~SocketConnection();
  SocketConnection(SocketConnection&&) = delete;
  SocketConnection& operator=(SocketConnection&&) = delete;

  /// Connects to a listening endpoint.
  static Result<std::unique_ptr<SocketConnection>> Connect(const Endpoint& ep);

  /// Frames `payload` and writes it fully to the socket.
  Status SendFrame(std::string_view payload);

  /// \brief Reads one complete frame (blocking).
  ///
  /// On a clean peer close between frames, returns Unavailable with
  /// `*clean_eof = true`; mid-frame death is truncation (clean_eof
  /// false) — the ReadFrame contract (dist/transport.h).
  Result<std::string> RecvFrame(bool* clean_eof = nullptr);

  /// \brief Shuts the socket down both ways.
  ///
  /// Any thread blocked in RecvFrame wakes with EOF; safe to call
  /// concurrently with transfers and more than once. The fd itself is
  /// released by the destructor, not here — closing it while a reader
  /// is parked in recv() would let the kernel reuse the descriptor
  /// number under that reader.
  void Close();

  int fd() const { return fd_.load(std::memory_order_acquire); }

 private:
  friend class SocketListener;
  explicit SocketConnection(int fd);

  /// Atomic so Close() may race transfers from other threads (the demux
  /// reader wakeup path) without a data race; the kernel serializes the
  /// actual fd operations.
  std::atomic<int> fd_{-1};
  /// Set by Close(); transfers refuse once it is up.
  std::atomic<bool> closed_{false};
};

/// \brief A listening socket producing SocketConnections.
class SocketListener {
 public:
  ~SocketListener();

  /// \brief Binds and listens on `ep`; the returned listener's
  /// endpoint() carries the resolved address (e.g. the real port for
  /// "tcp:0"). Unix paths are unlinked first so a daemon can restart on
  /// the address it died holding.
  static Result<std::unique_ptr<SocketListener>> Listen(const Endpoint& ep);

  /// Blocks for the next connection; Unavailable after Close().
  Result<std::unique_ptr<SocketConnection>> Accept();

  /// \brief Unblocks pending Accepts (idempotent).
  ///
  /// Like SocketConnection::Close(), this only shuts the socket down;
  /// the fd is closed (and a Unix path unlinked) by the destructor,
  /// after the accept loop has observed the shutdown.
  void Close();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  SocketListener(int fd, Endpoint endpoint);

  std::atomic<int> fd_{-1};
  /// Set by Close(); Accept refuses once it is up.
  std::atomic<bool> closed_{false};
  Endpoint endpoint_;
};

}  // namespace gus

#endif  // GUS_SERVE_SOCKET_H_
