// The worker daemon (`gusd`): a long-lived shard worker behind a socket.
//
// The one-shot scatter (dist/coordinator.h) pays the catalog load and
// warm-up on every query; a daemon pays it once. Start() ingests the
// catalog into columnar form, pre-warms the conversion and fingerprint
// caches for every registered query, then serves shard requests over
// persistent framed connections (serve/protocol.h) until stopped.
//
// Concurrency model: one reader thread per connection; each exec request
// runs on its own worker thread and writes its response under the
// connection's write lock when it finishes — so responses interleave in
// completion order, and one slow shard never blocks another session's
// request on the same connection (the session header is what lets the
// coordinator sort the answers out).
//
// Fault participation (the PR 8 model): every exec request passes the
// "serve.execute" fault site — GUS_FAULT plans can fail, delay, or kill
// it mid-request, and Stop() doubles as the in-process stand-in for a
// daemon kill (connections die abruptly; clients see mid-frame EOF or
// refused reconnects, exactly the retry layer's diet). Divergence
// protection is the same as one-shot workers: a request carrying an
// expected catalog fingerprint is refused before execution if the
// daemon's loaded data disagrees.

#ifndef GUS_SERVE_DAEMON_H_
#define GUS_SERVE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algebra/gus_params.h"
#include "est/sbox.h"
#include "plan/columnar_executor.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/expression.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/status.h"

namespace gus {

/// One registered servable query: the sampled plan plus its estimation
/// inputs (what RunShardSbox needs besides the shard geometry).
struct ServedQuery {
  PlanPtr plan;
  ExprPtr f_expr;
  GusParams gus;
  SboxOptions sbox;
};

/// \brief Fingerprint of a query *definition*: plan shape, aggregate,
/// GUS design, and estimator options.
///
/// Stable across processes (built from the canonical plan/expression
/// renderings and the wire encodings), so a coordinator can key its view
/// cache on it. Deliberately excludes the catalog (content travels in
/// PlanCatalogFingerprint) and the seed (a cache-key axis of its own).
uint64_t ServedQueryFingerprint(const ServedQuery& query);

/// \brief A long-lived worker daemon serving registered queries.
class WorkerDaemon {
 public:
  /// The daemon owns a copy of the base catalog (a real deployment loads
  /// it from storage once; tests hand it over directly).
  explicit WorkerDaemon(Catalog catalog);

  /// \brief Out-of-core form: the daemon serves straight from an external
  /// columnar catalog (typically a SegmentCatalog over a `.gseg`
  /// directory) instead of an in-memory row catalog.
  ///
  /// Segment-backed scans stream through the pinned-segment cache on
  /// demand, so the daemon's resident set is the cache budget, not the
  /// data size. Results are bit-identical to the in-memory form (the
  /// fingerprints come from the same ContentFingerprint chain).
  explicit WorkerDaemon(std::unique_ptr<ColumnarCatalog> columnar);
  ~WorkerDaemon();

  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  /// Registers `name` before Start (not thread-safe against serving).
  Status RegisterQuery(const std::string& name, ServedQuery query);

  /// \brief Loads + warms the columnar catalog for every registered
  /// query, binds `listen`, and starts serving; returns the resolved
  /// endpoint ("tcp:0" becomes the real port).
  ///
  /// Restartable: Stop() then Start() again rebinds (the reconnect test
  /// choreography — a killed daemon coming back on its address).
  Result<Endpoint> Start(const Endpoint& listen);

  /// \brief Stops serving: closes the listener and every live
  /// connection (clients see EOF mid-whatever), joins all threads.
  /// Idempotent.
  void Stop();

  /// Exec requests that ran to a response (cache tests pin this to prove
  /// a cache hit executed nothing).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  struct LiveConnection {
    std::shared_ptr<SocketConnection> socket;
    std::shared_ptr<std::mutex> write_mu;
    std::thread reader;
    /// In-flight request threads; joined when the connection ends.
    std::vector<std::thread> workers;
  };

  void AcceptLoop(SocketListener* listener);
  void ConnectionLoop(LiveConnection* conn);
  /// Handles one exec request end-to-end; returns the response body
  /// (bundle bytes) or the error to send back.
  Result<std::string> HandleExec(const ExecShardRequest& req);
  Result<std::string> HandlePlanInfo(std::string_view body);

  Catalog catalog_;
  std::unique_ptr<ColumnarCatalog> columnar_;
  /// True when columnar_ was handed in at construction (segment-backed):
  /// Start() must not rebuild it from catalog_.
  bool external_columnar_ = false;
  std::map<std::string, ServedQuery> queries_;
  std::map<std::string, ServePlanInfo> plan_infos_;

  std::mutex mu_;  // guards listener_, connections_, accept_thread_
  std::unique_ptr<SocketListener> listener_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<LiveConnection>> connections_;
  Endpoint endpoint_;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
};

}  // namespace gus

#endif  // GUS_SERVE_DAEMON_H_
