#include "serve/session.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "dist/shard.h"
#include "est/streaming.h"
#include "est/wire.h"
#include "util/random.h"

namespace gus {

namespace {

/// The fault-tolerant scatter's deterministic backoff, replicated for the
/// wire path: same formula, same (shard, attempt)-forked jitter stream,
/// so a fixed fault plan replays the same retry schedule over sockets as
/// it does in process.
void SleepServeBackoff(const ShardRetryPolicy& retry, int64_t shard,
                       int attempt) {
  if (retry.backoff_base_ms <= 0) return;
  const double scaled =
      static_cast<double>(retry.backoff_base_ms) *
      std::pow(retry.backoff_mult, static_cast<double>(attempt - 2));
  int64_t ms = std::min(static_cast<int64_t>(scaled), retry.backoff_max_ms);
  Rng jitter = Rng::ForkStream(retry.jitter_seed,
                               static_cast<uint64_t>(shard) * 64 +
                                   static_cast<uint64_t>(attempt));
  ms += static_cast<int64_t>(
      jitter.UniformInt(static_cast<uint64_t>(retry.backoff_base_ms) + 1));
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

// ---- DaemonChannel ---------------------------------------------------------

DaemonChannel::DaemonChannel(Endpoint endpoint)
    : endpoint_(std::move(endpoint)) {}

DaemonChannel::~DaemonChannel() { Shutdown(); }

Result<std::shared_ptr<DaemonChannel::ConnState>>
DaemonChannel::EnsureConnected() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (shutdown_) {
    return Status::Unavailable("channel to " + endpoint_.ToString() +
                               " is shut down");
  }
  if (current_ != nullptr) {
    std::lock_guard<std::mutex> state(current_->mu);
    if (!current_->dead) return current_;
  }
  GUS_ASSIGN_OR_RETURN(std::unique_ptr<SocketConnection> socket,
                       SocketConnection::Connect(endpoint_));
  auto conn = std::make_shared<ConnState>();
  conn->socket = std::shared_ptr<SocketConnection>(std::move(socket));
  // The reader captures only the generation it serves (never `this`), so
  // a channel being torn down has no live references from reader threads
  // beyond the joins Shutdown performs.
  conn->reader = std::thread([conn] {
    std::shared_ptr<SocketConnection> socket = conn->socket;
    for (;;) {
      Result<std::string> frame = socket->RecvFrame();
      if (!frame.ok()) {
        KillConn(conn, Status::Unavailable(
                           "connection to daemon lost: " +
                           frame.status().message()));
        return;
      }
      Result<std::pair<ServeHeader, std::string_view>> decoded =
          DecodeServeMessage(frame.ValueOrDie());
      if (!decoded.ok()) {
        // A frame that parses but doesn't decode means the stream is
        // unsynchronized or the peer is not a gusd; nothing later on this
        // connection can be trusted.
        KillConn(conn, Status::Unavailable("protocol violation from daemon: " +
                                           decoded.status().message()));
        return;
      }
      const ServeHeader& header = decoded.ValueOrDie().first;
      std::shared_ptr<Pending> pending;
      {
        std::lock_guard<std::mutex> state(conn->mu);
        auto it = conn->pending.find(header.request_id);
        if (it != conn->pending.end()) {
          pending = it->second;
          conn->pending.erase(it);
        }
      }
      // No slot: the call timed out and left — drop the late response.
      if (pending == nullptr) continue;
      {
        std::lock_guard<std::mutex> done(pending->mu);
        pending->type = header.type;
        pending->body.assign(decoded.ValueOrDie().second);
        pending->done = true;
      }
      pending->cv.notify_all();
    }
  });
  current_ = conn;
  generations_.push_back(conn);
  return conn;
}

void DaemonChannel::KillConn(const std::shared_ptr<ConnState>& conn,
                             const Status& why) {
  std::map<uint64_t, std::shared_ptr<Pending>> orphaned;
  {
    std::lock_guard<std::mutex> state(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    orphaned.swap(conn->pending);
  }
  conn->socket->Close();
  for (auto& [id, pending] : orphaned) {
    {
      std::lock_guard<std::mutex> done(pending->mu);
      pending->error = why;
      pending->done = true;
    }
    pending->cv.notify_all();
  }
}

Result<std::string> DaemonChannel::Call(ServeMsg request_type,
                                        uint64_t session_id,
                                        std::string_view body,
                                        ServeMsg expected_response,
                                        int64_t deadline_ms) {
  GUS_ASSIGN_OR_RETURN(std::shared_ptr<ConnState> conn, EnsureConnected());
  const uint64_t request_id =
      next_request_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<Pending>();
  {
    std::lock_guard<std::mutex> state(conn->mu);
    if (conn->dead) {
      return Status::Unavailable("connection to daemon lost before send");
    }
    conn->pending.emplace(request_id, pending);
  }
  ServeHeader header;
  header.type = request_type;
  header.session_id = session_id;
  header.request_id = request_id;
  {
    std::lock_guard<std::mutex> write(conn->write_mu);
    const Status sent = conn->socket->SendFrame(EncodeServeMessage(header, body));
    if (!sent.ok()) {
      KillConn(conn, Status::Unavailable("send to daemon failed: " +
                                         sent.message()));
      return Status::Unavailable("send to daemon failed: " + sent.message());
    }
  }
  std::unique_lock<std::mutex> wait(pending->mu);
  if (deadline_ms > 0) {
    if (!pending->cv.wait_for(wait, std::chrono::milliseconds(deadline_ms),
                              [&] { return pending->done; })) {
      // Timed out: withdraw the slot so a late response is dropped, but
      // re-check — the reader may have filled it in the gap.
      wait.unlock();
      {
        std::lock_guard<std::mutex> state(conn->mu);
        conn->pending.erase(request_id);
      }
      wait.lock();
      if (!pending->done) {
        return Status::DeadlineExceeded(
            "daemon did not answer within " + std::to_string(deadline_ms) +
            " ms");
      }
    }
  } else {
    pending->cv.wait(wait, [&] { return pending->done; });
  }
  GUS_RETURN_NOT_OK(pending->error);
  if (pending->type == ServeMsg::kError) {
    // The daemon-side Status, code intact (retryable vs fatal survives).
    return StatusFromBytes(pending->body);
  }
  if (pending->type != expected_response) {
    return Status::Internal(
        "daemon answered with message type " +
        std::to_string(static_cast<uint32_t>(pending->type)) +
        " where type " +
        std::to_string(static_cast<uint32_t>(expected_response)) +
        " was expected");
  }
  return std::move(pending->body);
}

void DaemonChannel::Shutdown() {
  std::vector<std::shared_ptr<ConnState>> generations;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    shutdown_ = true;
    generations.swap(generations_);
    current_.reset();
  }
  for (auto& conn : generations) {
    KillConn(conn, Status::Unavailable("channel shut down"));
    if (conn->reader.joinable()) conn->reader.join();
  }
}

// ---- SessionCoordinator ----------------------------------------------------

SessionCoordinator::SessionCoordinator(const std::vector<Endpoint>& fleet,
                                       AdmissionController* admission)
    : admission_(admission) {
  channels_.reserve(fleet.size());
  for (const Endpoint& ep : fleet) {
    channels_.push_back(std::make_unique<DaemonChannel>(ep));
  }
}

SessionCoordinator::~SessionCoordinator() { Shutdown(); }

void SessionCoordinator::Shutdown() {
  for (auto& channel : channels_) channel->Shutdown();
}

Result<ServePlanInfo> SessionCoordinator::ResolvePlanInfo(
    const std::string& query_name, uint64_t session_id,
    const ShardRetryPolicy& retry) {
  {
    std::lock_guard<std::mutex> lock(info_mu_);
    auto it = plan_infos_.find(query_name);
    if (it != plan_infos_.end()) return it->second;
  }
  WireWriter w;
  w.PutString(query_name);
  const std::string body = w.buffer();
  // Any daemon in the fleet can answer (they serve the same registry);
  // sweep the fleet, retrying the sweep under the usual backoff.
  Status last = Status::Unavailable("empty fleet");
  const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) SleepServeBackoff(retry, /*shard=*/0, attempt);
    for (auto& channel : channels_) {
      Result<std::string> answer =
          channel->Call(ServeMsg::kPlanInfoRequest, session_id, body,
                        ServeMsg::kPlanInfoResponse, retry.deadline_ms);
      if (answer.ok()) {
        GUS_ASSIGN_OR_RETURN(ServePlanInfo info,
                             ServePlanInfoFromBytes(answer.ValueOrDie()));
        std::lock_guard<std::mutex> lock(info_mu_);
        plan_infos_[query_name] = info;
        return info;
      }
      last = answer.status();
      if (!IsRetryableShardFailure(last)) return last;
    }
  }
  return last;
}

Result<ServedResult> SessionCoordinator::Execute(const std::string& query_name,
                                                 const ServedRequest& req) {
  if (channels_.empty()) {
    return Status::InvalidArgument("the coordinator has an empty fleet");
  }
  if (req.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const uint64_t session_id =
      next_session_.fetch_add(1, std::memory_order_relaxed);
  if (req.stats != nullptr) req.stats->Reset();

  double scale = req.admission_scale;
  if (admission_ != nullptr) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    scale = admission_->scale();
  }
  if (!(scale > 0.0 && scale <= 1.0)) {
    return Status::InvalidArgument("admission scale must be in (0, 1]");
  }

  GUS_ASSIGN_OR_RETURN(ServePlanInfo info,
                       ResolvePlanInfo(query_name, session_id, req.retry));

  // Both sides of the wire normalize an unset morsel geometry through
  // ShardedExecOptions — the cache key must use the same resolved value
  // the daemons execute at, or 0 and the default would alias two keys.
  ExecOptions geometry;
  geometry.num_threads = req.num_threads < 1 ? 1 : req.num_threads;
  geometry.morsel_rows = req.morsel_rows;
  const int64_t morsel_rows = ShardedExecOptions(geometry).morsel_rows;

  ViewCache* cache = nullptr;
  ViewCacheKey key;
  if (req.use_cache) {
    cache = req.cache != nullptr ? req.cache : ProcessViewCache();
    key.query_fingerprint = info.query_fingerprint;
    key.catalog_fingerprint = info.catalog_fingerprint;
    key.seed = req.seed;
    key.morsel_rows = morsel_rows;
    key.scale_bits = DoubleBits(scale);
    std::optional<std::string> bundle = cache->Lookup(key);
    if (bundle.has_value()) {
      if (req.stats != nullptr) ++req.stats->cache_hits;
      // A poisoned entry must fail here, loudly (checksum/parse), never
      // fall through to execution as if nothing happened.
      GUS_ASSIGN_OR_RETURN(std::vector<WireSectionView> sections,
                           ParseWireBundle(*bundle));
      GUS_ASSIGN_OR_RETURN(WireSectionView sbox,
                           FindWireSection(sections, WireTag::kSboxState));
      GUS_ASSIGN_OR_RETURN(
          StreamingSboxEstimator merged,
          StreamingSboxEstimator::DeserializeState(sbox.payload));
      ServedResult out;
      GUS_ASSIGN_OR_RETURN(out.report, merged.Finish());
      out.cache_hit = true;
      out.session_id = session_id;
      out.admission_scale = scale;
      return out;
    }
    if (req.stats != nullptr) ++req.stats->cache_misses;
  }

  // Scatter: shard k goes to channel k % M; every shard retries
  // independently under the policy (reconnecting channels make a restarted
  // daemon transparent to the retry loop).
  const int num_shards = req.num_shards;
  const int max_attempts =
      req.retry.max_attempts < 1 ? 1 : req.retry.max_attempts;
  std::vector<std::string> bundles(static_cast<size_t>(num_shards));
  std::vector<Status> final_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  std::vector<uint8_t> delivered(static_cast<size_t>(num_shards), 0);
  std::vector<int64_t> attempts_used(static_cast<size_t>(num_shards), 0);

  ExecShardRequest base;
  base.query = query_name;
  base.seed = req.seed;
  base.num_shards = num_shards;
  base.morsel_rows = req.morsel_rows;
  base.num_threads = req.num_threads < 1 ? 1 : req.num_threads;
  base.admission_scale = scale;
  base.expected_catalog_fingerprint = info.catalog_fingerprint;

  const auto run_shard = [&](int k) {
    DaemonChannel* channel = channels_[static_cast<size_t>(k) %
                                       channels_.size()]
                                 .get();
    ExecShardRequest ereq = base;
    ereq.shard_index = k;
    const std::string body = ExecShardRequestToBytes(ereq);
    Status last = Status::Unavailable("shard never attempted");
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) SleepServeBackoff(req.retry, k, attempt);
      ++attempts_used[static_cast<size_t>(k)];
      Result<std::string> answer =
          channel->Call(ServeMsg::kExecRequest, session_id, body,
                        ServeMsg::kExecResponse, req.retry.deadline_ms);
      if (answer.ok()) {
        bundles[static_cast<size_t>(k)] = std::move(answer).ValueOrDie();
        delivered[static_cast<size_t>(k)] = 1;
        return;
      }
      last = answer.status();
      if (!IsRetryableShardFailure(last)) break;
    }
    final_status[static_cast<size_t>(k)] = last;
  };

  {
    std::vector<std::thread> scatter;
    scatter.reserve(static_cast<size_t>(num_shards));
    for (int k = 0; k < num_shards; ++k) {
      scatter.emplace_back(run_shard, k);
    }
    for (std::thread& t : scatter) t.join();
  }

  std::vector<int> shard_ids;
  std::vector<const std::string*> views;
  std::vector<std::pair<int, std::string>> failed;
  int64_t total_attempts = 0;
  for (int k = 0; k < num_shards; ++k) {
    total_attempts += attempts_used[static_cast<size_t>(k)];
    if (delivered[static_cast<size_t>(k)]) {
      shard_ids.push_back(k);
      views.push_back(&bundles[static_cast<size_t>(k)]);
    } else {
      const Status& st = final_status[static_cast<size_t>(k)];
      // Fatal (divergent-state) failures propagate regardless of
      // allow_partial — degrading would hide a configuration bug.
      if (!IsRetryableShardFailure(st)) return st;
      failed.emplace_back(k, st.ToString());
    }
  }
  if (req.stats != nullptr) {
    req.stats->shard_attempts = total_attempts;
    req.stats->shard_retries = total_attempts - num_shards;
    req.stats->shards_lost = static_cast<int64_t>(failed.size());
  }
  if (!failed.empty() && !req.allow_partial) {
    const auto& [shard, message] = failed.front();
    return Status::Unavailable(
        "shard " + std::to_string(shard) + " failed after " +
        std::to_string(max_attempts) +
        " attempt(s) and ServedRequest::allow_partial is not set: " + message);
  }

  const bool complete = failed.empty();
  GUS_ASSIGN_OR_RETURN(
      FaultTolerantResult folded,
      FoldGatheredShardBundles(shard_ids, views, num_shards,
                               info.pivot_relation, failed,
                               /*capture_merged_state=*/complete &&
                                   req.use_cache));

  ServedResult out;
  out.report = folded.report;
  out.degraded = folded.degraded;
  out.degradation = folded.degradation;
  out.live = folded.live;
  out.session_id = session_id;
  out.admission_scale = scale;
  if (req.stats != nullptr) {
    req.stats->degraded = folded.degraded;
    req.stats->effective_coverage =
        folded.degraded ? folded.degradation.effective_coverage : 1.0;
  }
  if (complete && req.use_cache && !folded.merged_sbox_state.empty()) {
    WireBundleWriter bundle;
    bundle.AddSection(WireTag::kSboxState,
                      std::move(folded.merged_sbox_state));
    cache->Insert(key, bundle.Finish());
  }
  if (admission_ != nullptr) {
    // Report the *offered* load: rows this design would have admitted at
    // scale 1.0 (stream/admission.h).
    std::lock_guard<std::mutex> lock(admission_mu_);
    admission_->ObserveQuery(static_cast<int64_t>(
        std::llround(static_cast<double>(out.report.sample_rows) / scale)));
  }
  return out;
}

}  // namespace gus
