// The serving-layer message protocol: what travels inside a GUSF frame
// between a session coordinator and a worker daemon.
//
// One frame = one message. Every message opens with the session header
//
//   u32 type | u64 session_id | u64 request_id
//
// followed by a typed body (WireWriter encodings, docs/WIRE_FORMAT.md
// "Session-header framing"). The header is what makes one connection
// carry many concurrent queries: a daemon answers requests in whatever
// order its worker threads finish, echoing the header verbatim, and the
// coordinator demuxes responses back to their waiting sessions by
// request_id. The session_id groups a query's shard requests for
// logging/fault attribution; it never affects execution (shard identity
// and seed travel in the body), so interleaving sessions cannot change
// any estimate.
//
// Errors travel as first-class messages (kError: status code + text), so
// a daemon-side failure keeps its StatusCode across the wire — the
// coordinator's retry logic needs the retryable/fatal distinction
// (IsRetryableShardFailure) to survive serialization.

#ifndef GUS_SERVE_PROTOCOL_H_
#define GUS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace gus {

/// Message types (values are wire contract; never renumber).
enum class ServeMsg : uint32_t {
  /// Coordinator -> daemon: execute one shard of a registered query.
  kExecRequest = 1,
  /// Daemon -> coordinator: the shard's serialized wire bundle.
  kExecResponse = 2,
  /// Coordinator -> daemon: describe a registered query's plan.
  kPlanInfoRequest = 3,
  kPlanInfoResponse = 4,
  /// Daemon -> coordinator: a failure, carrying the original StatusCode.
  kError = 5,
};

/// The per-message session header (see file comment).
struct ServeHeader {
  ServeMsg type = ServeMsg::kError;
  uint64_t session_id = 0;
  uint64_t request_id = 0;
};

/// Frames `body` under `header` into one message payload.
std::string EncodeServeMessage(const ServeHeader& header,
                               std::string_view body);

/// \brief Splits a frame payload into header + body view (borrows
/// `payload`); rejects unknown message types loudly.
Result<std::pair<ServeHeader, std::string_view>> DecodeServeMessage(
    std::string_view payload);

/// \brief kExecRequest body: which registered query, which shard, under
/// what execution geometry.
///
/// The daemon recomputes the deterministic shard plan locally (the
/// scatter contract, dist/shard.h) — only the tiny tuple travels.
struct ExecShardRequest {
  std::string query;
  uint64_t seed = 0;
  int32_t shard_index = 0;
  int32_t num_shards = 1;
  /// Pinned morsel geometry (0 = daemon normalizes via ShardedExecOptions,
  /// which the coordinator also does; both sides agree on the default).
  int64_t morsel_rows = 0;
  /// Worker threads the daemon may use for this shard (never affects
  /// result bits; see plan/parallel_executor.h).
  int32_t num_threads = 1;
  /// Admission scale in (0, 1]: sampling rates are multiplied down and
  /// the top GUS re-derived before execution (stream/admission.h).
  double admission_scale = 1.0;
  /// When nonzero, the daemon refuses to execute against base data whose
  /// PlanCatalogFingerprint differs (divergence detected pre-execution).
  uint64_t expected_catalog_fingerprint = 0;
};

std::string ExecShardRequestToBytes(const ExecShardRequest& req);
Result<ExecShardRequest> ExecShardRequestFromBytes(std::string_view payload);

/// kPlanInfoResponse body: what a coordinator needs to gather and cache.
struct ServePlanInfo {
  /// MorselSplit::partitionable for the registered plan.
  bool partitionable = false;
  /// Partitioned pivot scan ("" when not partitionable) — the degraded
  /// gather's co-survival pivot (est/partial_gather.h).
  std::string pivot_relation;
  /// PlanCatalogFingerprint of the daemon's loaded base data.
  uint64_t catalog_fingerprint = 0;
  /// Fingerprint of the query *definition* (plan shape + aggregate +
  /// GUS design + estimator options) — half of the view-cache key.
  uint64_t query_fingerprint = 0;
};

std::string ServePlanInfoToBytes(const ServePlanInfo& info);
Result<ServePlanInfo> ServePlanInfoFromBytes(std::string_view payload);

/// kError body: round-trips a Status across the wire.
std::string StatusToBytes(const Status& status);
/// \brief Reconstructs the carried Status and returns it directly
/// (always non-OK). Protocol violations — truncated payloads
/// (InvalidArgument) or an OK status where an error was promised
/// (Internal) — decode to their own non-retryable failures, so callers
/// can uniformly `return StatusFromBytes(body)`.
Status StatusFromBytes(std::string_view payload);

}  // namespace gus

#endif  // GUS_SERVE_PROTOCOL_H_
