// Lineage schemas: the ordered set of base relations an expression is built
// from. Subsets of a lineage schema (the index set of the paper's b_T
// parameters) are represented as bitmasks over the schema ordering.

#ifndef GUS_ALGEBRA_LINEAGE_SCHEMA_H_
#define GUS_ALGEBRA_LINEAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "util/bits.h"
#include "util/status.h"

namespace gus {

/// \brief Ordered list of base-relation names, n <= kMaxLineageArity.
///
/// The GUS pairwise table has 2^n entries; the arity cap keeps that dense
/// table tractable (the paper's plans use n <= 10).
class LineageSchema {
 public:
  static constexpr int kMaxLineageArity = 20;

  LineageSchema() = default;

  /// Builds a schema; fails on duplicates or arity overflow.
  static Result<LineageSchema> Make(std::vector<std::string> relations);

  int arity() const { return static_cast<int>(relations_.size()); }
  const std::string& relation(int i) const { return relations_[i]; }
  const std::vector<std::string>& relations() const { return relations_; }

  /// Index of `name`, or KeyError.
  Result<int> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Bitmask of all relations (the paper's T = {1..n}).
  SubsetMask full_mask() const { return FullMask(arity()); }
  /// Number of subsets, 2^n.
  size_t num_subsets() const { return size_t{1} << arity(); }

  /// Mask for a set of relation names.
  Result<SubsetMask> MaskOf(const std::vector<std::string>& names) const;
  /// Names selected by `mask`, in schema order.
  std::vector<std::string> NamesOf(SubsetMask mask) const;

  /// Concatenation; fails if the schemas overlap (paper Prop. 6
  /// precondition: disjoint lineage).
  static Result<LineageSchema> Concat(const LineageSchema& a,
                                      const LineageSchema& b);

  /// True if the two schemas share no relation.
  static bool Disjoint(const LineageSchema& a, const LineageSchema& b);

  /// \brief Projects a mask over this schema onto `sub` (paper's T ∩ L_i).
  ///
  /// Every relation of `sub` must be present in this schema.
  Result<SubsetMask> ProjectMask(SubsetMask mask,
                                 const LineageSchema& sub) const;

  bool operator==(const LineageSchema& other) const {
    return relations_ == other.relations_;
  }
  bool operator!=(const LineageSchema& other) const {
    return !(*this == other);
  }

  /// Renders a mask like "{l,o}" ("{}" for empty).
  std::string MaskToString(SubsetMask mask) const;
  std::string ToString() const;

 private:
  std::vector<std::string> relations_;
};

}  // namespace gus

#endif  // GUS_ALGEBRA_LINEAGE_SCHEMA_H_
