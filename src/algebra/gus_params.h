// GusParams — the quasi-operator G(a, b̄) of the paper (Definition 1).
//
//   a   = P[t in sample]                        (first-order inclusion)
//   b_T = P[t, t' in sample | T(t,t') = T]      (pairwise, by lineage
//                                                agreement set T)
//
// b̄ is stored densely: one double per subset of the lineage schema,
// indexed by SubsetMask. Consistency invariant: b_full == a, because tuples
// agreeing on their entire lineage are the same tuple.

#ifndef GUS_ALGEBRA_GUS_PARAMS_H_
#define GUS_ALGEBRA_GUS_PARAMS_H_

#include <string>
#include <vector>

#include "algebra/lineage_schema.h"
#include "util/bits.h"
#include "util/status.h"

namespace gus {

/// \brief Parameters of one GUS quasi-operator.
class GusParams {
 public:
  GusParams() = default;

  /// \brief Builds and validates: probabilities in [0,1], b_full == a.
  static Result<GusParams> Make(LineageSchema schema, double a,
                                std::vector<double> b);

  /// The identity GUS G(1, 1̄) over `schema` (paper Prop. 4).
  static GusParams Identity(LineageSchema schema);

  /// The null GUS G(0, 0̄) (blocks everything; the union unit).
  static GusParams Null(LineageSchema schema);

  const LineageSchema& schema() const { return schema_; }
  double a() const { return a_; }

  /// Pairwise probability for an agreement mask.
  double b(SubsetMask mask) const { return b_[mask]; }
  /// Pairwise probability for a set of relation names.
  Result<double> b(const std::vector<std::string>& names) const;
  const std::vector<double>& b_table() const { return b_; }

  /// \brief The c_S coefficients of Theorem 1:
  ///   c_S = sum_{T subseteq S} (-1)^{|S|-|T|} b_T.
  ///
  /// Note the arXiv text sums over all of P(n); the subset-restricted form
  /// is the one that reproduces classical Bernoulli/WOR variances and is
  /// Monte-Carlo validated (see DESIGN.md erratum note).
  double c(SubsetMask mask) const;

  /// All 2^n coefficients via per-subset summation — O(3^n) total.
  std::vector<double> AllCNaive() const;

  /// All 2^n coefficients via the fast signed zeta (Moebius) transform —
  /// O(n 2^n). Identical values; benched against AllCNaive in A1.
  std::vector<double> AllCFast() const;

  /// \brief Embeds into a superset schema (relations not in this schema are
  /// unsampled): b'_T = b_{T ∩ old}. Equivalent to joining with the
  /// identity GUS on the extra relations, the Figure 4 G(1,1̄) step.
  Result<GusParams> ExtendTo(const LineageSchema& target) const;

  std::string ToString() const;

 private:
  LineageSchema schema_;
  double a_ = 1.0;
  std::vector<double> b_;
};

}  // namespace gus

#endif  // GUS_ALGEBRA_GUS_PARAMS_H_
