#include "algebra/ops.h"

#include <cmath>

namespace gus {

Result<GusParams> GusJoin(const GusParams& g1, const GusParams& g2) {
  GUS_ASSIGN_OR_RETURN(LineageSchema schema,
                       LineageSchema::Concat(g1.schema(), g2.schema()));
  const int n1 = g1.schema().arity();
  const SubsetMask full1 = g1.schema().full_mask();
  std::vector<double> b(schema.num_subsets());
  for (SubsetMask m = 0; m < b.size(); ++m) {
    const SubsetMask m1 = m & full1;
    const SubsetMask m2 = m >> n1;
    b[m] = g1.b(m1) * g2.b(m2);
  }
  return GusParams::Make(std::move(schema), g1.a() * g2.a(), std::move(b));
}

Result<GusParams> GusUnion(const GusParams& g1, const GusParams& g2) {
  if (g1.schema() != g2.schema()) {
    return Status::InvalidArgument(
        "GUS union requires both samples to come from the same expression "
        "(identical lineage schemas)");
  }
  const double a1 = g1.a();
  const double a2 = g2.a();
  const double a = a1 + a2 - a1 * a2;
  std::vector<double> b(g1.schema().num_subsets());
  for (SubsetMask m = 0; m < b.size(); ++m) {
    // Inclusion-exclusion on the pair of independent filters:
    // P[t,t' in S1 ∪ S2] expands to the paper's closed form.
    b[m] = 2.0 * a - 1.0 +
           (1.0 - 2.0 * a1 + g1.b(m)) * (1.0 - 2.0 * a2 + g2.b(m));
  }
  return GusParams::Make(g1.schema(), a, std::move(b));
}

Result<GusParams> GusCompact(const GusParams& g1, const GusParams& g2) {
  if (g1.schema() != g2.schema()) {
    return Status::InvalidArgument(
        "GUS compaction requires identical lineage schemas; extend one "
        "operand first (GusParams::ExtendTo)");
  }
  std::vector<double> b(g1.schema().num_subsets());
  for (SubsetMask m = 0; m < b.size(); ++m) {
    b[m] = g1.b(m) * g2.b(m);
  }
  return GusParams::Make(g1.schema(), g1.a() * g2.a(), std::move(b));
}

bool GusApproxEqual(const GusParams& g1, const GusParams& g2, double tol) {
  if (g1.schema() != g2.schema()) return false;
  if (std::fabs(g1.a() - g2.a()) > tol) return false;
  for (SubsetMask m = 0; m < g1.schema().num_subsets(); ++m) {
    if (std::fabs(g1.b(m) - g2.b(m)) > tol) return false;
  }
  return true;
}

}  // namespace gus
