// The sampling algebra: combinators on GUS parameters implementing the
// paper's Propositions 6-9 and Theorem 2.
//
// These functions operate purely on parameters; they never touch data. The
// SOA transform (plan/soa_transform.h) drives them to collapse a sampled
// query plan into a single top GUS quasi-operator.

#ifndef GUS_ALGEBRA_OPS_H_
#define GUS_ALGEBRA_OPS_H_

#include "algebra/gus_params.h"
#include "util/status.h"

namespace gus {

/// \brief Join / cross-product commutation (Prop. 6) and composition of
/// multi-dimensional samplers (Prop. 9).
///
///   G1(R1) ⋈ G2(R2) ⟺ G(a1·a2, b_T = b1_{T∩L1} · b2_{T∩L2})
///
/// Requires disjoint lineage schemas; the result schema is the
/// concatenation L1 ++ L2.
Result<GusParams> GusJoin(const GusParams& g1, const GusParams& g2);

/// Alias for GusJoin matching the paper's Prop. 9 terminology.
inline Result<GusParams> GusCompose(const GusParams& g1, const GusParams& g2) {
  return GusJoin(g1, g2);
}

/// \brief Union of two independent samples of the same expression (Prop. 7).
///
///   a   = a1 + a2 − a1·a2
///   b_T = 2a − 1 + (1 − 2·a1 + b1_T)(1 − 2·a2 + b2_T)
///
/// Requires identical lineage schemas.
Result<GusParams> GusUnion(const GusParams& g1, const GusParams& g2);

/// \brief Compaction / stacking G1(G2(R)) (Prop. 8):
///   a = a1·a2,  b_T = b1_T · b2_T.
///
/// Requires identical lineage schemas (both operators filter the same
/// expression). This is the "intersection" multiplication of Theorem 2's
/// semiring structure.
Result<GusParams> GusCompact(const GusParams& g1, const GusParams& g2);

/// \brief Parameter-space equality within `tol` (same schema, |Δa| and all
/// |Δb_T| below tol). Used by the semiring-law property tests.
bool GusApproxEqual(const GusParams& g1, const GusParams& g2,
                    double tol = 1e-12);

}  // namespace gus

#endif  // GUS_ALGEBRA_OPS_H_
