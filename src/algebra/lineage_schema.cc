#include "algebra/lineage_schema.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace gus {

Result<LineageSchema> LineageSchema::Make(
    std::vector<std::string> relations) {
  if (static_cast<int>(relations.size()) > kMaxLineageArity) {
    return Status::InvalidArgument(
        "lineage arity exceeds the supported maximum (" +
        std::to_string(kMaxLineageArity) + ")");
  }
  std::unordered_set<std::string> seen;
  for (const auto& r : relations) {
    if (!seen.insert(r).second) {
      return Status::InvalidArgument("duplicate relation '" + r +
                                     "' in lineage schema");
    }
  }
  LineageSchema s;
  s.relations_ = std::move(relations);
  return s;
}

Result<int> LineageSchema::IndexOf(const std::string& name) const {
  const auto it = std::find(relations_.begin(), relations_.end(), name);
  if (it == relations_.end()) {
    return Status::KeyError("relation '" + name + "' not in lineage schema " +
                            ToString());
  }
  return static_cast<int>(it - relations_.begin());
}

bool LineageSchema::Contains(const std::string& name) const {
  return std::find(relations_.begin(), relations_.end(), name) !=
         relations_.end();
}

Result<SubsetMask> LineageSchema::MaskOf(
    const std::vector<std::string>& names) const {
  SubsetMask mask = 0;
  for (const auto& name : names) {
    GUS_ASSIGN_OR_RETURN(int i, IndexOf(name));
    mask |= SubsetMask{1} << i;
  }
  return mask;
}

std::vector<std::string> LineageSchema::NamesOf(SubsetMask mask) const {
  std::vector<std::string> names;
  for (int i = 0; i < arity(); ++i) {
    if (mask & (SubsetMask{1} << i)) names.push_back(relations_[i]);
  }
  return names;
}

Result<LineageSchema> LineageSchema::Concat(const LineageSchema& a,
                                            const LineageSchema& b) {
  if (!Disjoint(a, b)) {
    return Status::InvalidArgument(
        "lineage schemas overlap: the GUS join/composition algebra requires "
        "disjoint lineage (no self-joins)");
  }
  std::vector<std::string> rels = a.relations_;
  rels.insert(rels.end(), b.relations_.begin(), b.relations_.end());
  return Make(std::move(rels));
}

bool LineageSchema::Disjoint(const LineageSchema& a, const LineageSchema& b) {
  for (const auto& r : a.relations_) {
    if (b.Contains(r)) return false;
  }
  return true;
}

Result<SubsetMask> LineageSchema::ProjectMask(SubsetMask mask,
                                              const LineageSchema& sub) const {
  SubsetMask out = 0;
  for (int j = 0; j < sub.arity(); ++j) {
    GUS_ASSIGN_OR_RETURN(int i, IndexOf(sub.relation(j)));
    if (mask & (SubsetMask{1} << i)) out |= SubsetMask{1} << j;
  }
  return out;
}

std::string LineageSchema::MaskToString(SubsetMask mask) const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (int i = 0; i < arity(); ++i) {
    if (mask & (SubsetMask{1} << i)) {
      if (!first) out << ",";
      out << relations_[i];
      first = false;
    }
  }
  out << "}";
  return out.str();
}

std::string LineageSchema::ToString() const {
  return MaskToString(full_mask());
}

}  // namespace gus
