// Translation of concrete sampling operators into GUS quasi-operator
// parameters — Figure 1 of the paper, extended to the full method set
// supported by this library.
//
// A sampler applied to an expression with lineage schema L yields GUS
// parameters over L:
//
//   Bernoulli(p)          a = p      b_full = p      b_T = p^2 otherwise
//   WOR(n, N)             a = n/N    b_full = n/N    b_T = n(n-1)/(N(N-1))
//   WRDistinct(n, N)      a = 1-q1   b_full = a      b_T = 1 - 2 q1 + q2,
//                         q1 = (1-1/N)^n, q2 = (1-2/N)^n
//   BlockBernoulli(p)     Bernoulli(p) at *block* lineage granularity
//   LineageBernoulli(R,p) a = p      b_T = p if R ∈ T else p^2
//
// where "full" is agreement on the entire lineage (t = t').

#ifndef GUS_ALGEBRA_TRANSLATE_H_
#define GUS_ALGEBRA_TRANSLATE_H_

#include <string>
#include <vector>

#include "algebra/gus_params.h"
#include "sampling/spec.h"
#include "util/status.h"

namespace gus {

/// \brief GUS parameters of `spec` applied to an expression whose lineage
/// schema is `input`.
///
/// For the size-based methods (WOR / WRDistinct) the spec's `population`
/// must equal the cardinality of the sampled expression.
Result<GusParams> TranslateSampling(const SamplingSpec& spec,
                                    const LineageSchema& input);

/// Convenience: `spec` applied to the base relation `relation`.
Result<GusParams> TranslateBaseSampling(const SamplingSpec& spec,
                                        const std::string& relation);

/// One dimension of a multi-dimensional Bernoulli sampler.
struct DimBernoulli {
  std::string relation;
  double p;
};

/// \brief Multi-dimensional Bernoulli over `schema` (paper Example 5):
/// the composition (Prop. 9) of per-relation lineage Bernoulli samplers.
///
///   a = prod p_i,   b_T = prod_i (p_i if R_i ∈ T else p_i^2)
///
/// Relations of `schema` not mentioned in `dims` are left unsampled
/// (treated as p = 1).
Result<GusParams> MultiDimBernoulliGus(const LineageSchema& schema,
                                       const std::vector<DimBernoulli>& dims);

/// \brief AQUA-style chained/star sampling: the fact table is sampled with
/// `fact_spec` (Bernoulli or WOR) and each dimension tuple joins in iff its
/// fact tuple was selected.
///
/// Over the star-join lineage schema {fact} ∪ dims, inclusion of a result
/// tuple depends only on its fact tuple, so
///   a = a_f,   b_T = a_f if fact ∈ T else b_f(pairwise).
Result<GusParams> ChainedStarGus(const std::string& fact_relation,
                                 const std::vector<std::string>& dimensions,
                                 const SamplingSpec& fact_spec);

}  // namespace gus

#endif  // GUS_ALGEBRA_TRANSLATE_H_
