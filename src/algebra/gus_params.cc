#include "algebra/gus_params.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace gus {

namespace {
constexpr double kProbTolerance = 1e-9;
}

Result<GusParams> GusParams::Make(LineageSchema schema, double a,
                                  std::vector<double> b) {
  if (b.size() != schema.num_subsets()) {
    return Status::InvalidArgument(
        "b table must have one entry per lineage subset (2^n)");
  }
  if (!(a >= -kProbTolerance && a <= 1.0 + kProbTolerance)) {
    return Status::InvalidArgument("GUS parameter a must be a probability");
  }
  for (double v : b) {
    if (!(v >= -kProbTolerance && v <= 1.0 + kProbTolerance)) {
      return Status::InvalidArgument(
          "GUS pairwise parameters must be probabilities");
    }
  }
  if (std::fabs(b[schema.full_mask()] - a) > 1e-6) {
    return Status::InvalidArgument(
        "inconsistent GUS parameters: b_full must equal a (tuples agreeing "
        "on all lineage are identical)");
  }
  GusParams g;
  g.schema_ = std::move(schema);
  g.a_ = a;
  g.b_ = std::move(b);
  return g;
}

GusParams GusParams::Identity(LineageSchema schema) {
  GusParams g;
  g.a_ = 1.0;
  g.b_.assign(schema.num_subsets(), 1.0);
  g.schema_ = std::move(schema);
  return g;
}

GusParams GusParams::Null(LineageSchema schema) {
  GusParams g;
  g.a_ = 0.0;
  g.b_.assign(schema.num_subsets(), 0.0);
  g.schema_ = std::move(schema);
  return g;
}

Result<double> GusParams::b(const std::vector<std::string>& names) const {
  GUS_ASSIGN_OR_RETURN(SubsetMask mask, schema_.MaskOf(names));
  return b_[mask];
}

double GusParams::c(SubsetMask mask) const {
  double sum = 0.0;
  for (SubsetIterator it(mask); !it.done(); it.Next()) {
    // (-1)^{|S| - |T|} == (-1)^{|S \ T|}.
    sum += ParitySign(mask & ~it.mask()) * b_[it.mask()];
  }
  return sum;
}

std::vector<double> GusParams::AllCNaive() const {
  std::vector<double> c_all(schema_.num_subsets());
  for (SubsetMask s = 0; s < c_all.size(); ++s) c_all[s] = c(s);
  return c_all;
}

std::vector<double> GusParams::AllCFast() const {
  // Signed zeta transform: after processing bit i,
  //   f[S] = sum over T agreeing with S outside bit i, T_i <= S_i, of
  //   (-1)^{S_i - T_i} b_T — inductively yields c_S.
  std::vector<double> f = b_;
  const int n = schema_.arity();
  for (int i = 0; i < n; ++i) {
    const SubsetMask bit = SubsetMask{1} << i;
    for (SubsetMask s = 0; s < f.size(); ++s) {
      if (s & bit) f[s] -= f[s ^ bit];
    }
  }
  return f;
}

Result<GusParams> GusParams::ExtendTo(const LineageSchema& target) const {
  for (const auto& r : schema_.relations()) {
    if (!target.Contains(r)) {
      return Status::InvalidArgument("extension target lacks relation '" + r +
                                     "'");
    }
  }
  std::vector<double> b_ext(target.num_subsets());
  for (SubsetMask m = 0; m < b_ext.size(); ++m) {
    GUS_ASSIGN_OR_RETURN(SubsetMask proj, target.ProjectMask(m, schema_));
    b_ext[m] = b_[proj];
  }
  return Make(target, a_, std::move(b_ext));
}

std::string GusParams::ToString() const {
  std::ostringstream out;
  out << "G(a=" << a_ << "; ";
  for (SubsetMask m = 0; m < b_.size(); ++m) {
    if (m) out << ", ";
    out << "b" << schema_.MaskToString(m) << "=" << b_[m];
  }
  out << ")";
  return out.str();
}

}  // namespace gus
