#include "algebra/translate.h"

#include <cmath>

#include "util/bits.h"

namespace gus {

namespace {

/// Builds the "uniform filter" pattern: b_full = a, every other b_T = pair.
Result<GusParams> UniformFilter(const LineageSchema& schema, double a,
                                double pair) {
  std::vector<double> b(schema.num_subsets(), pair);
  b[schema.full_mask()] = a;
  return GusParams::Make(schema, a, std::move(b));
}

}  // namespace

Result<GusParams> TranslateSampling(const SamplingSpec& spec,
                                    const LineageSchema& input) {
  GUS_RETURN_NOT_OK(spec.Validate());
  switch (spec.method) {
    case SamplingMethod::kBernoulli:
      return UniformFilter(input, spec.p, spec.p * spec.p);
    case SamplingMethod::kWithoutReplacement: {
      const auto n = static_cast<double>(spec.n);
      const auto N = static_cast<double>(spec.population);
      const double a = n / N;
      const double pair =
          spec.population > 1 ? n * (n - 1.0) / (N * (N - 1.0)) : 0.0;
      return UniformFilter(input, a, pair);
    }
    case SamplingMethod::kWithReplacementDistinct: {
      const auto n = static_cast<double>(spec.n);
      const auto N = static_cast<double>(spec.population);
      const double q1 = std::pow(1.0 - 1.0 / N, n);
      const double q2 =
          spec.population > 1 ? std::pow(1.0 - 2.0 / N, n) : 0.0;
      const double a = 1.0 - q1;
      const double pair = spec.population > 1 ? 1.0 - 2.0 * q1 + q2 : 0.0;
      return UniformFilter(input, a, pair);
    }
    case SamplingMethod::kBlockBernoulli:
      // Identical parameters to Bernoulli; the *lineage ids* are block ids
      // (AssignBlockLineage), which is what makes a whole-block filter
      // uniform on lineage.
      return UniformFilter(input, spec.p, spec.p * spec.p);
    case SamplingMethod::kLineageBernoulli: {
      GUS_ASSIGN_OR_RETURN(int dim, input.IndexOf(spec.lineage_relation));
      const SubsetMask dim_bit = SubsetMask{1} << dim;
      std::vector<double> b(input.num_subsets());
      for (SubsetMask m = 0; m < b.size(); ++m) {
        b[m] = (m & dim_bit) ? spec.p : spec.p * spec.p;
      }
      return GusParams::Make(input, spec.p, std::move(b));
    }
  }
  return Status::Internal("unknown sampling method");
}

Result<GusParams> TranslateBaseSampling(const SamplingSpec& spec,
                                        const std::string& relation) {
  GUS_ASSIGN_OR_RETURN(LineageSchema schema, LineageSchema::Make({relation}));
  return TranslateSampling(spec, schema);
}

Result<GusParams> MultiDimBernoulliGus(
    const LineageSchema& schema, const std::vector<DimBernoulli>& dims) {
  double a = 1.0;
  std::vector<int> dim_index(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    if (!(dims[i].p >= 0.0 && dims[i].p <= 1.0)) {
      return Status::InvalidArgument("dimension probability must be in [0,1]");
    }
    GUS_ASSIGN_OR_RETURN(dim_index[i], schema.IndexOf(dims[i].relation));
    a *= dims[i].p;
  }
  std::vector<double> b(schema.num_subsets());
  for (SubsetMask m = 0; m < b.size(); ++m) {
    double prod = 1.0;
    for (size_t i = 0; i < dims.size(); ++i) {
      const bool agrees = m & (SubsetMask{1} << dim_index[i]);
      prod *= agrees ? dims[i].p : dims[i].p * dims[i].p;
    }
    b[m] = prod;
  }
  return GusParams::Make(schema, a, std::move(b));
}

Result<GusParams> ChainedStarGus(const std::string& fact_relation,
                                 const std::vector<std::string>& dimensions,
                                 const SamplingSpec& fact_spec) {
  if (fact_spec.method != SamplingMethod::kBernoulli &&
      fact_spec.method != SamplingMethod::kWithoutReplacement) {
    return Status::InvalidArgument(
        "chained/star sampling supports Bernoulli or WOR on the fact table");
  }
  // Parameters of the fact-table sampler alone.
  GUS_ASSIGN_OR_RETURN(GusParams fact_gus,
                       TranslateBaseSampling(fact_spec, fact_relation));
  const double a_f = fact_gus.a();
  const double pair_f = fact_gus.b(SubsetMask{0});

  std::vector<std::string> rels = {fact_relation};
  rels.insert(rels.end(), dimensions.begin(), dimensions.end());
  GUS_ASSIGN_OR_RETURN(LineageSchema schema,
                       LineageSchema::Make(std::move(rels)));
  const SubsetMask fact_bit = SubsetMask{1} << 0;
  std::vector<double> b(schema.num_subsets());
  for (SubsetMask m = 0; m < b.size(); ++m) {
    b[m] = (m & fact_bit) ? a_f : pair_f;
  }
  return GusParams::Make(schema, a_f, std::move(b));
}

}  // namespace gus
