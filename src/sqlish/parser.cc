#include "sqlish/parser.h"

#include "sqlish/tokenizer.h"

namespace gus {
namespace sqlish {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery query;
    GUS_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    GUS_ASSIGN_OR_RETURN(SelectItem first, ParseItem());
    query.items.push_back(std::move(first));
    while (AcceptSymbol(",")) {
      GUS_ASSIGN_OR_RETURN(SelectItem item, ParseItem());
      query.items.push_back(std::move(item));
    }
    GUS_RETURN_NOT_OK(ExpectKeyword("FROM"));
    GUS_ASSIGN_OR_RETURN(TableRef first_table, ParseTable());
    query.tables.push_back(std::move(first_table));
    while (AcceptSymbol(",")) {
      GUS_ASSIGN_OR_RETURN(TableRef table, ParseTable());
      query.tables.push_back(std::move(table));
    }
    if (AcceptKeyword("WHERE")) {
      GUS_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      GUS_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected a GROUP BY column");
      }
      query.group_by = Advance().text;
      for (const SelectItem& item : query.items) {
        if (item.kind != AggKind::kSum) {
          return Status::InvalidArgument(
              "GROUP BY queries support SUM aggregates only");
        }
      }
    }
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " near offset " + std::to_string(Peek().position) +
        (Peek().type == TokenType::kEnd ? " (end of input)"
                                        : " ('" + Peek().text + "')"));
  }

  bool AcceptSymbol(const char* symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      return Error(std::string("expected '") + symbol + "'");
    }
    return Status::OK();
  }

  bool AcceptKeyword(const char* keyword) {
    if (IdentEquals(Peek(), keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!AcceptKeyword(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    return Status::OK();
  }

  Result<SelectItem> ParseItem() {
    SelectItem item;
    if (AcceptKeyword("SUM")) {
      item.kind = AggKind::kSum;
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      GUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
      return item;
    }
    if (AcceptKeyword("COUNT")) {
      item.kind = AggKind::kCount;
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      GUS_RETURN_NOT_OK(ExpectSymbol("*"));
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
      item.expr = Lit(Value(int64_t{1}));
      return item;
    }
    if (AcceptKeyword("AVG")) {
      item.kind = AggKind::kAvg;
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      GUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
      return item;
    }
    if (AcceptKeyword("QUANTILE")) {
      item.kind = AggKind::kQuantile;
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      GUS_RETURN_NOT_OK(ExpectKeyword("SUM"));
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      GUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
      GUS_RETURN_NOT_OK(ExpectSymbol(","));
      if (Peek().type != TokenType::kNumber) {
        return Error("expected a quantile value");
      }
      item.quantile = Advance().number;
      if (!(item.quantile > 0.0 && item.quantile < 1.0)) {
        return Status::InvalidArgument("quantile must be in (0,1)");
      }
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
      return item;
    }
    return Error("expected SUM, COUNT, AVG or QUANTILE");
  }

  Result<TableRef> ParseTable() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected a table name");
    }
    TableRef table;
    table.name = Advance().text;
    if (AcceptKeyword("TABLESAMPLE")) {
      GUS_RETURN_NOT_OK(ExpectSymbol("("));
      if (Peek().type != TokenType::kNumber) {
        return Error("expected a sampling amount");
      }
      const double amount = Advance().number;
      if (AcceptKeyword("PERCENT")) {
        if (!(amount >= 0.0 && amount <= 100.0)) {
          return Status::InvalidArgument("PERCENT must be in [0,100]");
        }
        table.percent = amount;
      } else if (AcceptKeyword("ROWS")) {
        if (amount < 0.0 || amount != static_cast<int64_t>(amount)) {
          return Status::InvalidArgument("ROWS must be a non-negative integer");
        }
        table.rows = static_cast<int64_t>(amount);
      } else {
        return Error("expected PERCENT or ROWS");
      }
      GUS_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    return table;
  }

  // Expression grammar, lowest precedence first:
  //   or:      and (OR and)*
  //   and:     not (AND not)*
  //   not:     NOT not | comparison
  //   cmp:     addsub (('='|'<>'|'<'|'<='|'>'|'>=') addsub)?
  //   addsub:  muldiv (('+'|'-') muldiv)*
  //   muldiv:  unary (('*'|'/') unary)*
  //   unary:   '-' unary | primary
  //   primary: number | string | ident | '(' or ')'
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GUS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      GUS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    GUS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      GUS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      GUS_ASSIGN_OR_RETURN(ExprPtr arg, ParseNot());
      return Not(std::move(arg));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GUS_ASSIGN_OR_RETURN(ExprPtr left, ParseAddSub());
    if (Peek().type == TokenType::kSymbol) {
      const std::string op = Peek().text;
      if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
          op == ">=") {
        ++pos_;
        GUS_ASSIGN_OR_RETURN(ExprPtr right, ParseAddSub());
        if (op == "=") return Eq(std::move(left), std::move(right));
        if (op == "<>") return Ne(std::move(left), std::move(right));
        if (op == "<") return Lt(std::move(left), std::move(right));
        if (op == "<=") return Le(std::move(left), std::move(right));
        if (op == ">") return Gt(std::move(left), std::move(right));
        return Ge(std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAddSub() {
    GUS_ASSIGN_OR_RETURN(ExprPtr left, ParseMulDiv());
    while (Peek().type == TokenType::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      const bool add = Advance().text == "+";
      GUS_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = add ? Add(std::move(left), std::move(right))
                 : Sub(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMulDiv() {
    GUS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().type == TokenType::kSymbol &&
           (Peek().text == "*" || Peek().text == "/")) {
      const bool mul = Advance().text == "*";
      GUS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = mul ? Mul(std::move(left), std::move(right))
                 : Div(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kSymbol && Peek().text == "-") {
      ++pos_;
      GUS_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary());
      return Neg(std::move(arg));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kNumber: {
        ++pos_;
        // Integral literals stay int64 so integer comparisons are exact.
        if (token.number == static_cast<int64_t>(token.number) &&
            token.text.find('.') == std::string::npos &&
            token.text.find('e') == std::string::npos &&
            token.text.find('E') == std::string::npos) {
          return Lit(Value(static_cast<int64_t>(token.number)));
        }
        return Lit(Value(token.number));
      }
      case TokenType::kString:
        ++pos_;
        return Lit(Value(token.text));
      case TokenType::kIdentifier: {
        // Reserved words cannot be column references.
        for (const char* kw : {"AND", "OR", "NOT", "FROM", "WHERE", "SELECT"}) {
          if (IdentEquals(token, kw)) {
            return Error("unexpected keyword in expression");
          }
        }
        ++pos_;
        return Col(token.text);
      }
      case TokenType::kSymbol:
        if (token.text == "(") {
          ++pos_;
          GUS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          GUS_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        return Error("unexpected symbol in expression");
      case TokenType::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& sql) {
  GUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace sqlish
}  // namespace gus
