#include "sqlish/planner.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "dist/coordinator.h"
#include "dist/shard.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "est/confidence.h"
#include "est/group_by.h"
#include "est/ratio.h"
#include "est/streaming.h"
#include "est/wire.h"
#include "plan/columnar_executor.h"
#include "plan/exec_stats.h"
#include "plan/parallel_executor.h"
#include "plan/soa_transform.h"
#include "serve/view_cache.h"

namespace gus {
namespace sqlish {

namespace {

/// Splits an expression on top-level ANDs.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->op() == ExprOp::kAnd) {
    CollectConjuncts(expr->left(), out);
    CollectConjuncts(expr->right(), out);
  } else {
    out->push_back(expr);
  }
}

/// Column name -> owning table, from the catalog schemas.
Result<std::unordered_map<std::string, std::string>> BuildColumnMap(
    const ParsedQuery& parsed, const Catalog& catalog) {
  std::unordered_map<std::string, std::string> owner;
  for (const TableRef& table : parsed.tables) {
    auto it = catalog.find(table.name);
    if (it == catalog.end()) {
      return Status::KeyError("table '" + table.name + "' not in catalog");
    }
    for (const Column& col : it->second.schema().columns()) {
      if (!owner.emplace(col.name, table.name).second) {
        return Status::InvalidArgument("ambiguous column '" + col.name +
                                       "' across FROM tables");
      }
    }
  }
  return owner;
}

/// Tables referenced by an expression (empty for constant expressions).
void CollectTables(const ExprPtr& expr,
                   const std::unordered_map<std::string, std::string>& owner,
                   std::set<std::string>* out) {
  if (expr->op() == ExprOp::kColumn) {
    auto it = owner.find(expr->column_name());
    if (it != owner.end()) out->insert(it->second);
    return;
  }
  if (expr->op() == ExprOp::kLiteral) return;
  CollectTables(expr->left(), owner, out);
  if (expr->right() != nullptr) CollectTables(expr->right(), owner, out);
}

struct JoinPredicate {
  std::string left_table, left_column;
  std::string right_table, right_column;
  bool used = false;
};

}  // namespace

Result<PlannedQuery> PlanQuery(const ParsedQuery& parsed,
                               const Catalog& catalog) {
  if (parsed.tables.empty()) {
    return Status::InvalidArgument("query needs at least one table");
  }
  GUS_ASSIGN_OR_RETURN(auto owner, BuildColumnMap(parsed, catalog));

  // Validate select-list columns resolve.
  for (const SelectItem& item : parsed.items) {
    std::set<std::string> used;
    CollectTables(item.expr, owner, &used);
    (void)used;
  }

  // Split WHERE into equi-join predicates and filters.
  std::vector<JoinPredicate> joins;
  std::vector<ExprPtr> filters;
  if (parsed.where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(parsed.where, &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      bool is_join = false;
      if (conjunct->op() == ExprOp::kEq &&
          conjunct->left()->op() == ExprOp::kColumn &&
          conjunct->right()->op() == ExprOp::kColumn) {
        const std::string& lc = conjunct->left()->column_name();
        const std::string& rc = conjunct->right()->column_name();
        auto li = owner.find(lc);
        auto ri = owner.find(rc);
        if (li == owner.end() || ri == owner.end()) {
          return Status::KeyError("unknown column in join predicate: " +
                                  conjunct->ToString());
        }
        if (li->second != ri->second) {
          joins.push_back({li->second, lc, ri->second, rc, false});
          is_join = true;
        }
      }
      if (!is_join) filters.push_back(conjunct);
    }
  }

  // Left-deep joins in FROM order.
  auto make_leaf = [&](const TableRef& table) -> Result<PlanPtr> {
    PlanPtr leaf = PlanNode::Scan(table.name);
    if (table.percent.has_value()) {
      leaf = PlanNode::Sample(SamplingSpec::Bernoulli(*table.percent / 100.0),
                              leaf);
    } else if (table.rows.has_value()) {
      const int64_t population = catalog.at(table.name).num_rows();
      if (*table.rows > population) {
        return Status::InvalidArgument(
            "TABLESAMPLE ROWS exceeds the cardinality of '" + table.name +
            "'");
      }
      leaf = PlanNode::Sample(
          SamplingSpec::WithoutReplacement(*table.rows, population), leaf);
    }
    return leaf;
  };

  GUS_ASSIGN_OR_RETURN(PlanPtr plan, make_leaf(parsed.tables[0]));
  std::set<std::string> joined = {parsed.tables[0].name};
  for (size_t i = 1; i < parsed.tables.size(); ++i) {
    const TableRef& table = parsed.tables[i];
    GUS_ASSIGN_OR_RETURN(PlanPtr leaf, make_leaf(table));
    // Find an unused equi-join predicate connecting `joined` and `table`.
    JoinPredicate* chosen = nullptr;
    for (JoinPredicate& jp : joins) {
      if (jp.used) continue;
      const bool forward = joined.count(jp.left_table) &&
                           jp.right_table == table.name;
      const bool backward = joined.count(jp.right_table) &&
                            jp.left_table == table.name;
      if (forward || backward) {
        chosen = &jp;
        if (backward) {
          std::swap(jp.left_table, jp.right_table);
          std::swap(jp.left_column, jp.right_column);
        }
        break;
      }
    }
    if (chosen != nullptr) {
      chosen->used = true;
      plan = PlanNode::Join(plan, leaf, chosen->left_column,
                            chosen->right_column);
    } else {
      plan = PlanNode::Product(plan, leaf);
    }
    joined.insert(table.name);
  }
  // Leftover join predicates (cycles) become filters.
  for (const JoinPredicate& jp : joins) {
    if (!jp.used) {
      filters.push_back(Eq(Col(jp.left_column), Col(jp.right_column)));
    }
  }
  for (const ExprPtr& filter : filters) {
    plan = PlanNode::SelectNode(filter, plan);
  }
  if (!parsed.group_by.empty() && !owner.count(parsed.group_by)) {
    return Status::KeyError("unknown GROUP BY column '" + parsed.group_by +
                            "'");
  }
  return PlannedQuery{std::move(plan), parsed.items, parsed.group_by};
}

std::string ApproxResult::ToString() const {
  std::ostringstream out;
  for (const ApproxValue& v : values) {
    if (!v.group.empty()) out << "[" << v.group << "] ";
    out << v.label << " = " << v.value;
    if (v.stddev > 0.0) {
      out << "  (stddev " << v.stddev << ", [" << v.lo << ", " << v.hi
          << "])";
    }
    out << "\n";
  }
  out << "(from " << sample_rows << " sampled tuples)";
  return out.str();
}

namespace {

/// One select item's estimate from its (lineage, f) view — shared by the
/// materializing and streaming paths.
Result<ApproxValue> EstimateItem(const SelectItem& item, const GusParams& top,
                                 const SampleView& view,
                                 const SboxOptions& options) {
  ApproxValue value;
  switch (item.kind) {
    case AggKind::kSum: {
      GUS_ASSIGN_OR_RETURN(SboxReport report,
                           SboxEstimate(top, view, options));
      value.label = "SUM(" + item.expr->ToString() + ")";
      value.value = report.estimate;
      value.stddev = report.stddev;
      value.lo = report.interval.lo;
      value.hi = report.interval.hi;
      break;
    }
    case AggKind::kCount: {
      GUS_ASSIGN_OR_RETURN(
          CountReport report,
          CountEstimate(top, view, options.confidence_level,
                        options.bound_kind));
      value.label = "COUNT(*)";
      value.value = report.estimate;
      value.stddev = report.stddev;
      value.lo = report.interval.lo;
      value.hi = report.interval.hi;
      break;
    }
    case AggKind::kAvg: {
      GUS_ASSIGN_OR_RETURN(
          RatioReport report,
          AvgEstimate(top, view, options.confidence_level,
                      options.bound_kind));
      value.label = "AVG(" + item.expr->ToString() + ")";
      value.value = report.estimate;
      value.stddev = report.stddev;
      value.lo = report.interval.lo;
      value.hi = report.interval.hi;
      break;
    }
    case AggKind::kQuantile: {
      GUS_ASSIGN_OR_RETURN(SboxReport report,
                           SboxEstimate(top, view, options));
      GUS_ASSIGN_OR_RETURN(
          double q, EstimateQuantile(report.estimate, report.variance,
                                     item.quantile, options.bound_kind));
      std::ostringstream label;
      label << "QUANTILE(SUM(" << item.expr->ToString() << "), "
            << item.quantile << ")";
      value.label = label.str();
      value.value = q;
      value.lo = q;
      value.hi = q;
      break;
    }
  }
  return value;
}

/// Ungrouped columnar path: one pipeline pass fans the batch stream out to
/// every item's SampleViewBuilder; the result is never materialized.
Result<ApproxResult> RunUngroupedStreaming(const PlannedQuery& planned,
                                           const SoaResult& soa,
                                           const Catalog& catalog, Rng* rng,
                                           const SboxOptions& options,
                                           int64_t batch_rows) {
  ColumnarCatalog columnar(&catalog);
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchSource> pipeline,
      CompileBatchPipeline(planned.plan, &columnar, rng, ExecMode::kSampled,
                           batch_rows));
  std::vector<SampleViewBuilder> builders;
  builders.reserve(planned.items.size());
  for (const SelectItem& item : planned.items) {
    GUS_ASSIGN_OR_RETURN(
        SampleViewBuilder builder,
        SampleViewBuilder::Make(*pipeline->layout(), item.expr,
                                soa.top.schema()));
    builders.push_back(std::move(builder));
  }
  ApproxResult result;
  // Adapter so the fused pipeline gathers once here, at the sink, and fans
  // the gathered batch to every item's builder.
  class FanoutSink final : public BatchSink {
   public:
    FanoutSink(std::vector<SampleViewBuilder>* builders, int64_t* rows)
        : builders_(builders), rows_(rows) {}
    Status Consume(const ColumnBatch& batch) override {
      *rows_ += batch.num_rows();
      for (SampleViewBuilder& builder : *builders_) {
        GUS_RETURN_NOT_OK(builder.Consume(batch));
      }
      return Status::OK();
    }

   private:
    std::vector<SampleViewBuilder>* builders_;
    int64_t* rows_;
  };
  FanoutSink fanout(&builders, &result.sample_rows);
  GUS_RETURN_NOT_OK(PumpToSink(pipeline.get(), &fanout));
  for (size_t i = 0; i < planned.items.size(); ++i) {
    GUS_ASSIGN_OR_RETURN(ApproxValue value,
                         EstimateItem(planned.items[i], soa.top,
                                      builders[i].view(), options));
    result.values.push_back(std::move(value));
  }
  return result;
}

/// \brief Per-morsel fan-out sink: one SampleViewBuilder per select item
/// (ungrouped) or one GroupedSumBuilder per item (grouped), plus the row
/// count; merges element-wise in morsel order.
class ItemFanoutSink final : public MergeableBatchSink {
 public:
  static Result<std::unique_ptr<ItemFanoutSink>> Make(
      const BatchLayout& layout, const std::vector<SelectItem>& items,
      const LineageSchema& schema, const std::string& group_by) {
    auto sink = std::unique_ptr<ItemFanoutSink>(new ItemFanoutSink());
    for (const SelectItem& item : items) {
      if (group_by.empty()) {
        GUS_ASSIGN_OR_RETURN(SampleViewBuilder builder,
                             SampleViewBuilder::Make(layout, item.expr,
                                                     schema));
        sink->views_.push_back(std::move(builder));
      } else {
        GUS_ASSIGN_OR_RETURN(
            GroupedSumBuilder builder,
            GroupedSumBuilder::Make(layout, item.expr, group_by, schema));
        sink->groups_.push_back(std::move(builder));
      }
    }
    return sink;
  }

  Status Consume(const ColumnBatch& batch) override {
    sample_rows_ += batch.num_rows();
    for (SampleViewBuilder& builder : views_) {
      GUS_RETURN_NOT_OK(builder.Consume(batch));
    }
    for (GroupedSumBuilder& builder : groups_) {
      GUS_RETURN_NOT_OK(builder.Consume(batch));
    }
    return Status::OK();
  }

  // Grouped mode accumulates straight off the selection (no gather);
  // ungrouped mode keeps the default gather-then-Consume path.
  bool wants_views() const override { return !groups_.empty(); }
  Status ConsumeView(const SelView& view) override {
    if (groups_.empty()) return BatchSink::ConsumeView(view);
    sample_rows_ += view.num_rows();
    for (GroupedSumBuilder& builder : groups_) {
      GUS_RETURN_NOT_OK(builder.ConsumeView(view));
    }
    return Status::OK();
  }

  Status MergeFrom(BatchSink* other) override {
    auto* o = static_cast<ItemFanoutSink*>(other);
    sample_rows_ += o->sample_rows_;
    for (size_t i = 0; i < views_.size(); ++i) {
      GUS_RETURN_NOT_OK(views_[i].Merge(std::move(o->views_[i])));
    }
    for (size_t i = 0; i < groups_.size(); ++i) {
      GUS_RETURN_NOT_OK(groups_[i].Merge(std::move(o->groups_[i])));
    }
    return Status::OK();
  }

  int64_t sample_rows() const { return sample_rows_; }
  std::vector<SampleViewBuilder>* views() { return &views_; }
  std::vector<GroupedSumBuilder>* groups() { return &groups_; }

 private:
  ItemFanoutSink() = default;

  int64_t sample_rows_ = 0;
  std::vector<SampleViewBuilder> views_;
  std::vector<GroupedSumBuilder> groups_;
};

/// The estimate tail shared by the morsel-parallel and sharded paths:
/// per-item estimation over the merged builders (views when ungrouped,
/// group tables otherwise), exactly one of which is populated.
Result<ApproxResult> EstimateFromBuilders(
    const PlannedQuery& planned, const SoaResult& soa,
    const SboxOptions& options, int64_t sample_rows,
    std::vector<SampleViewBuilder>* views,
    std::vector<GroupedSumBuilder>* groups) {
  ApproxResult result;
  result.sample_rows = sample_rows;
  for (size_t i = 0; i < planned.items.size(); ++i) {
    if (planned.group_by.empty()) {
      GUS_ASSIGN_OR_RETURN(ApproxValue value,
                           EstimateItem(planned.items[i], soa.top,
                                        (*views)[i].view(), options));
      result.values.push_back(std::move(value));
    } else {
      GUS_ASSIGN_OR_RETURN(
          auto estimates,
          (*groups)[i].Finish(soa.top, options.confidence_level,
                              options.bound_kind));
      for (const GroupEstimate& ge : estimates) {
        ApproxValue value;
        value.label = "SUM(" + planned.items[i].expr->ToString() + ")";
        value.group = planned.group_by + "=" + ge.key.ToString();
        value.value = ge.estimate;
        value.stddev = ge.stddev;
        value.lo = ge.interval.lo;
        value.hi = ge.interval.hi;
        result.values.push_back(std::move(value));
      }
    }
  }
  return result;
}

/// Morsel-parallel path, grouped or not: one parallel pass fans every
/// partition's stream into per-item builders, merged in morsel order.
Result<ApproxResult> RunMorselParallel(const PlannedQuery& planned,
                                       const SoaResult& soa,
                                       const Catalog& catalog, Rng* rng,
                                       const SboxOptions& options,
                                       const ExecOptions& exec) {
  ColumnarCatalog columnar(&catalog);
  std::unique_ptr<MergeableBatchSink> sink;
  GUS_RETURN_NOT_OK(ParallelExecutePlanToSink(
      planned.plan, &columnar, rng, ExecMode::kSampled, exec,
      [&](const BatchLayout& layout)
          -> Result<std::unique_ptr<MergeableBatchSink>> {
        GUS_ASSIGN_OR_RETURN(std::unique_ptr<ItemFanoutSink> fanout,
                             ItemFanoutSink::Make(layout, planned.items,
                                                  soa.top.schema(),
                                                  planned.group_by));
        return std::unique_ptr<MergeableBatchSink>(std::move(fanout));
      },
      &sink));
  auto* fanout = static_cast<ItemFanoutSink*>(sink.get());
  return EstimateFromBuilders(planned, soa, options, fanout->sample_rows(),
                              fanout->views(), fanout->groups());
}

/// \brief The scatter/gather core shared by kSharded and kServed:
/// scatter the query over num_shards shared-nothing workers, each
/// serializing its per-item builder states into an est/wire bundle, then
/// gather — deserialize and merge in shard order — leaving the merged
/// builders (and row count) with the caller.
///
/// The per-shard states round-trip through the real wire format and a
/// ShardTransport even in this single-process form, so the cross-node
/// contract is exercised on every kSharded query, not only in tests.
Status RunShardedCore(const PlannedQuery& planned, const SoaResult& soa,
                      const Catalog& catalog, uint64_t seed,
                      const ExecOptions& exec,
                      std::vector<SampleViewBuilder>* out_views,
                      std::vector<GroupedSumBuilder>* out_groups,
                      int64_t* out_sample_rows) {
  ColumnarCatalog columnar(&catalog);
  LocalTransport transport;
  const int num_shards = exec.num_shards;

  // Scatter: every worker recomputes the deterministic shard plan and
  // executes only its contiguous unit range.
  for (int k = 0; k < num_shards; ++k) {
    std::unique_ptr<MergeableBatchSink> sink;
    ShardMeta meta;
    std::vector<ResolvedPivotSampler> samplers;
    GUS_RETURN_NOT_OK(RunShardToSink(
        planned.plan, &columnar, seed, ExecMode::kSampled, exec, k,
        num_shards,
        [&](const BatchLayout& layout)
            -> Result<std::unique_ptr<MergeableBatchSink>> {
          GUS_ASSIGN_OR_RETURN(std::unique_ptr<ItemFanoutSink> fanout,
                               ItemFanoutSink::Make(layout, planned.items,
                                                    soa.top.schema(),
                                                    planned.group_by));
          return std::unique_ptr<MergeableBatchSink>(std::move(fanout));
        },
        &sink, &meta, &samplers));
    auto* fanout = static_cast<ItemFanoutSink*>(sink.get());
    meta.rows = fanout->sample_rows();
    std::vector<std::pair<WireTag, std::string>> item_sections;
    item_sections.reserve(planned.items.size());
    if (planned.group_by.empty()) {
      for (const SampleViewBuilder& builder : *fanout->views()) {
        item_sections.emplace_back(WireTag::kViewBuilder,
                                   builder.SerializeState());
      }
    } else {
      for (const GroupedSumBuilder& builder : *fanout->groups()) {
        item_sections.emplace_back(WireTag::kGroupedSum,
                                   builder.SerializeState());
      }
    }
    GUS_RETURN_NOT_OK(
        transport.Send(k, BuildShardBundle(meta, samplers, item_sections)));
  }

  // Gather: deserialize and fold shard states in ascending shard order
  // (the same global unit order the morsel engine merges in).
  std::vector<ShardMeta> metas;
  metas.reserve(num_shards);
  std::vector<std::string> sampler_payloads;
  sampler_payloads.reserve(num_shards);
  std::vector<SampleViewBuilder> views;
  std::vector<GroupedSumBuilder> groups;
  int64_t sample_rows = 0;
  std::string rng_fingerprint;
  const WireTag item_tag = planned.group_by.empty() ? WireTag::kViewBuilder
                                                    : WireTag::kGroupedSum;
  for (int k = 0; k < num_shards; ++k) {
    std::string bundle;
    GUS_ASSIGN_OR_RETURN(
        std::vector<WireSectionView> sections,
        ReceiveShardSections(&transport, k, &metas, &rng_fingerprint,
                             &sampler_payloads, &bundle));
    sample_rows += metas.back().rows;
    size_t matching = 0;
    for (const WireSectionView& section : sections) {
      if (section.tag == item_tag) ++matching;
    }
    if (matching != planned.items.size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(k) + " bundle carries " +
          std::to_string(matching) + " item states, expected " +
          std::to_string(planned.items.size()));
    }
    size_t item = 0;
    for (const WireSectionView& section : sections) {
      if (section.tag != item_tag) continue;
      if (planned.group_by.empty()) {
        GUS_ASSIGN_OR_RETURN(
            SampleViewBuilder builder,
            SampleViewBuilder::DeserializeState(section.payload));
        if (k == 0) {
          views.push_back(std::move(builder));
        } else {
          GUS_RETURN_NOT_OK(views[item].Merge(std::move(builder)));
        }
      } else {
        GUS_ASSIGN_OR_RETURN(
            GroupedSumBuilder builder,
            GroupedSumBuilder::DeserializeState(section.payload));
        if (k == 0) {
          groups.push_back(std::move(builder));
        } else {
          GUS_RETURN_NOT_OK(groups[item].Merge(std::move(builder)));
        }
      }
      ++item;
    }
  }
  GUS_RETURN_NOT_OK(ValidateShardMetas(metas));
  GUS_RETURN_NOT_OK(ValidateShardSamplerStates(sampler_payloads));
  *out_views = std::move(views);
  *out_groups = std::move(groups);
  *out_sample_rows = sample_rows;
  return Status::OK();
}

/// Sharded path (ExecEngine::kSharded): the core plus per-item estimation.
Result<ApproxResult> RunSharded(const PlannedQuery& planned,
                                const SoaResult& soa, const Catalog& catalog,
                                uint64_t seed, const SboxOptions& options,
                                const ExecOptions& exec) {
  std::vector<SampleViewBuilder> views;
  std::vector<GroupedSumBuilder> groups;
  int64_t sample_rows = 0;
  GUS_RETURN_NOT_OK(RunShardedCore(planned, soa, catalog, seed, exec, &views,
                                   &groups, &sample_rows));
  return EstimateFromBuilders(planned, soa, options, sample_rows, &views,
                              &groups);
}

/// \brief Served path (ExecEngine::kServed): the sharded core fronted by
/// the process-wide approximate-view cache.
///
/// The cache entry is a checksummed wire bundle holding the *merged*
/// per-item builder states plus the row count (a private META mini-payload
/// — just the i64 row count; only this reader consumes it). Builder
/// serialization round-trips bit-exactly, so a hit reproduces the miss's
/// ApproxResult to the last bit while executing nothing — ExecStats'
/// cache counters prove which path ran. Keyed on (sql + estimator
/// options, catalog content, seed, normalized morsel geometry);
/// num_shards is absent because kSharded results are shard-count
/// invariant.
Result<ApproxResult> RunServed(const PlannedQuery& planned,
                               const SoaResult& soa, const Catalog& catalog,
                               const std::string& sql, uint64_t seed,
                               const SboxOptions& options,
                               const ExecOptions& exec) {
  ViewCache* cache = ProcessViewCache();
  ViewCacheKey key;
  {
    WireWriter w;
    w.PutString(sql);
    w.PutDouble(options.confidence_level);
    w.PutU8(static_cast<uint8_t>(options.bound_kind));
    w.PutU8(options.subsample.has_value() ? 1 : 0);
    if (options.subsample.has_value()) {
      w.PutI64(options.subsample->target_rows);
      w.PutU64(options.subsample->seed);
    }
    key.query_fingerprint = WireChecksum(w.buffer());
  }
  {
    ColumnarCatalog columnar(&catalog);
    GUS_ASSIGN_OR_RETURN(key.catalog_fingerprint,
                         PlanCatalogFingerprint(planned.plan, &columnar));
  }
  key.seed = seed;
  key.morsel_rows = ShardedExecOptions(exec).morsel_rows;
  {
    const double scale = 1.0;  // sqlish has no admission front door (yet)
    uint64_t bits = 0;
    std::memcpy(&bits, &scale, sizeof(bits));
    key.scale_bits = bits;
  }

  const WireTag item_tag = planned.group_by.empty() ? WireTag::kViewBuilder
                                                    : WireTag::kGroupedSum;
  std::optional<std::string> cached = cache->Lookup(key);
  if (cached.has_value()) {
    if (exec.stats != nullptr) ++exec.stats->cache_hits;
    // A poisoned entry fails loudly here (container checksum / section
    // shape), never silently re-executes or serves damaged numbers.
    GUS_ASSIGN_OR_RETURN(std::vector<WireSectionView> sections,
                         ParseWireBundle(*cached));
    GUS_ASSIGN_OR_RETURN(WireSectionView meta,
                         FindWireSection(sections, WireTag::kMeta));
    WireReader r(meta.payload);
    int64_t sample_rows = 0;
    GUS_RETURN_NOT_OK(r.ReadI64(&sample_rows));
    GUS_RETURN_NOT_OK(r.ExpectEnd());
    std::vector<SampleViewBuilder> views;
    std::vector<GroupedSumBuilder> groups;
    for (const WireSectionView& section : sections) {
      if (section.tag != item_tag) continue;
      if (planned.group_by.empty()) {
        GUS_ASSIGN_OR_RETURN(
            SampleViewBuilder builder,
            SampleViewBuilder::DeserializeState(section.payload));
        views.push_back(std::move(builder));
      } else {
        GUS_ASSIGN_OR_RETURN(
            GroupedSumBuilder builder,
            GroupedSumBuilder::DeserializeState(section.payload));
        groups.push_back(std::move(builder));
      }
    }
    const size_t cached_items =
        planned.group_by.empty() ? views.size() : groups.size();
    if (cached_items != planned.items.size()) {
      return Status::InvalidArgument(
          "view-cache entry carries " + std::to_string(cached_items) +
          " item states, expected " + std::to_string(planned.items.size()) +
          "; refusing to serve");
    }
    return EstimateFromBuilders(planned, soa, options, sample_rows, &views,
                                &groups);
  }

  std::vector<SampleViewBuilder> views;
  std::vector<GroupedSumBuilder> groups;
  int64_t sample_rows = 0;
  GUS_RETURN_NOT_OK(RunShardedCore(planned, soa, catalog, seed, exec, &views,
                                   &groups, &sample_rows));
  if (exec.stats != nullptr) ++exec.stats->cache_misses;
  WireBundleWriter bundle;
  {
    WireWriter meta;
    meta.PutI64(sample_rows);
    bundle.AddSection(WireTag::kMeta, meta.Take());
  }
  for (const SampleViewBuilder& builder : views) {
    bundle.AddSection(item_tag, builder.SerializeState());
  }
  for (const GroupedSumBuilder& builder : groups) {
    bundle.AddSection(item_tag, builder.SerializeState());
  }
  cache->Insert(key, bundle.Finish());
  return EstimateFromBuilders(planned, soa, options, sample_rows, &views,
                              &groups);
}

}  // namespace

Result<ApproxResult> RunApproxQuery(const std::string& sql,
                                    const Catalog& catalog, uint64_t seed,
                                    const SboxOptions& options,
                                    ExecEngine engine) {
  ExecOptions exec;
  exec.engine = engine;
  return RunApproxQuery(sql, catalog, seed, options, exec);
}

Result<ApproxResult> RunApproxQuery(const std::string& sql,
                                    const Catalog& catalog, uint64_t seed,
                                    const SboxOptions& options,
                                    const ExecOptions& exec) {
  GUS_RETURN_NOT_OK(exec.Validate());
  GUS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(sql));
  GUS_ASSIGN_OR_RETURN(PlannedQuery planned, PlanQuery(parsed, catalog));
  GUS_ASSIGN_OR_RETURN(SoaResult soa, SoaTransform(planned.plan));

  Rng rng(seed);
  if (exec.engine == ExecEngine::kServed) {
    return RunServed(planned, soa, catalog, sql, seed, options, exec);
  }
  if (exec.engine == ExecEngine::kSharded) {
    return RunSharded(planned, soa, catalog, seed, options, exec);
  }
  if (exec.engine == ExecEngine::kMorselParallel) {
    return RunMorselParallel(planned, soa, catalog, &rng, options, exec);
  }
  if (exec.engine == ExecEngine::kColumnar && planned.group_by.empty()) {
    return RunUngroupedStreaming(planned, soa, catalog, &rng, options,
                                 exec.batch_rows);
  }
  GUS_ASSIGN_OR_RETURN(
      Relation sample,
      ExecutePlan(planned.plan, catalog, &rng, ExecMode::kSampled, exec));

  ApproxResult result;
  result.sample_rows = sample.num_rows();
  if (!planned.group_by.empty()) {
    // Grouped path: per-group SUM estimation with per-group intervals.
    for (const SelectItem& item : planned.items) {
      GUS_ASSIGN_OR_RETURN(
          auto groups,
          GroupedSumEstimate(soa.top, sample, item.expr, planned.group_by,
                             options.confidence_level, options.bound_kind));
      for (const GroupEstimate& ge : groups) {
        ApproxValue value;
        value.label = "SUM(" + item.expr->ToString() + ")";
        value.group = planned.group_by + "=" + ge.key.ToString();
        value.value = ge.estimate;
        value.stddev = ge.stddev;
        value.lo = ge.interval.lo;
        value.hi = ge.interval.hi;
        result.values.push_back(std::move(value));
      }
    }
    return result;
  }
  for (const SelectItem& item : planned.items) {
    GUS_ASSIGN_OR_RETURN(
        SampleView view,
        SampleView::FromRelation(sample, item.expr, soa.top.schema()));
    GUS_ASSIGN_OR_RETURN(ApproxValue value,
                         EstimateItem(item, soa.top, view, options));
    result.values.push_back(std::move(value));
  }
  return result;
}

}  // namespace sqlish
}  // namespace gus
