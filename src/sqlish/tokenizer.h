// Tokenizer for the SQL-ish query dialect of the paper:
//
//   SELECT SUM(l_discount*(1.0-l_tax))
//   FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
//   WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;

#ifndef GUS_SQLISH_TOKENIZER_H_
#define GUS_SQLISH_TOKENIZER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gus {
namespace sqlish {

enum class TokenType {
  kIdentifier,  // keywords are identifiers; the parser matches usage
  kNumber,
  kString,      // 'single quoted'
  kSymbol,      // ( ) , ; * / + - = < > <= >= <>
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  /// Raw text; identifiers are stored as written, keyword matching is
  /// case-insensitive at the parser level.
  std::string text;
  double number = 0.0;
  int position = 0;  // byte offset, for error messages
};

/// Splits `sql` into tokens; fails on unterminated strings or stray bytes.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// Case-insensitive identifier comparison (keyword matching).
bool IdentEquals(const Token& token, const char* upper_keyword);

}  // namespace sqlish
}  // namespace gus

#endif  // GUS_SQLISH_TOKENIZER_H_
