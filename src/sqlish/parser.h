// Parser for the paper's SQL dialect. Supported grammar:
//
//   query     := SELECT item (',' item)* FROM table (',' table)*
//                [WHERE expr] [GROUP BY ident] [';']
//   item      := SUM '(' expr ')'
//              | COUNT '(' '*' ')'
//              | AVG '(' expr ')'
//              | QUANTILE '(' SUM '(' expr ')' ',' number ')'
//   table     := ident [TABLESAMPLE '(' number (PERCENT | ROWS) ')']
//   expr      := standard arithmetic/comparison/boolean expression over
//                column identifiers and numeric/string literals
//
// The parser is purely syntactic; table/column resolution and plan
// construction live in planner.h.

#ifndef GUS_SQLISH_PARSER_H_
#define GUS_SQLISH_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "rel/expression.h"
#include "sampling/spec.h"
#include "util/status.h"

namespace gus {
namespace sqlish {

/// What a select-list item computes.
enum class AggKind { kSum, kCount, kAvg, kQuantile };

struct SelectItem {
  AggKind kind = AggKind::kSum;
  /// The aggregated expression (1 for COUNT).
  ExprPtr expr;
  /// For kQuantile: the requested quantile.
  double quantile = 0.0;
};

/// How a FROM-clause table is sampled.
struct TableRef {
  std::string name;
  /// Unset: the table is not sampled.
  /// PERCENT p  -> Bernoulli(p/100)
  /// n ROWS     -> WOR(n, |table|), population resolved by the planner.
  std::optional<double> percent;
  std::optional<int64_t> rows;
};

/// A parsed (but unresolved) query.
struct ParsedQuery {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  /// WHERE expression; null when absent.
  ExprPtr where;
  /// GROUP BY column; empty when absent. Grouped queries support SUM
  /// items only (per-group estimation, est/group_by.h).
  std::string group_by;
};

/// Parses `sql`; returns a syntax error with offset context on failure.
Result<ParsedQuery> ParseQuery(const std::string& sql);

}  // namespace sqlish
}  // namespace gus

#endif  // GUS_SQLISH_PARSER_H_
