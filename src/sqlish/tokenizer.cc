#include "sqlish/tokenizer.h"

#include <cctype>
#include <cstdlib>

namespace gus {
namespace sqlish {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      // Line comment.
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        ++j;
      }
      token.type = TokenType::kNumber;
      token.text = sql.substr(i, j - i);
      token.number = std::strtod(token.text.c_str(), nullptr);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = sql.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.type = TokenType::kSymbol;
          token.text = two == "!=" ? "<>" : two;
          tokens.push_back(token);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),;*/+-=<>";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
      }
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

bool IdentEquals(const Token& token, const char* upper_keyword) {
  if (token.type != TokenType::kIdentifier) return false;
  const std::string& s = token.text;
  size_t i = 0;
  for (; upper_keyword[i] != '\0'; ++i) {
    if (i >= s.size() ||
        std::toupper(static_cast<unsigned char>(s[i])) != upper_keyword[i]) {
      return false;
    }
  }
  return i == s.size();
}

}  // namespace sqlish
}  // namespace gus
