// Planner + one-call query interface for the SQL-ish dialect.
//
// The planner resolves columns against the catalog, splits the WHERE clause
// into equi-join conditions and filters, and builds a left-deep sampled
// plan in FROM order. RunApproxQuery then executes the plan, runs the SBox,
// and returns one estimated value (with interval) per select item — the
// complete "approximate query" experience of the paper's introduction.

#ifndef GUS_SQLISH_PLANNER_H_
#define GUS_SQLISH_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "est/sbox.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "sqlish/parser.h"

namespace gus {
namespace sqlish {

/// A planned query: the sampled plan plus the select items to evaluate.
struct PlannedQuery {
  PlanPtr plan;
  std::vector<SelectItem> items;
  /// GROUP BY column; empty when ungrouped.
  std::string group_by;
};

/// \brief Resolves and plans a parsed query against `catalog`.
///
/// TABLESAMPLE (p PERCENT) becomes Bernoulli(p/100); (n ROWS) becomes
/// WOR(n, |table|) with the population read from the catalog.
Result<PlannedQuery> PlanQuery(const ParsedQuery& parsed,
                               const Catalog& catalog);

/// One select item's output.
struct ApproxValue {
  /// "SUM(...)", "COUNT(*)", "AVG(...)", "QUANTILE(...,q)".
  std::string label;
  /// GROUP BY key rendered as text; empty for ungrouped queries.
  std::string group;
  double value = 0.0;
  /// Standard deviation of the estimator (0 for exact evaluation).
  double stddev = 0.0;
  /// Two-sided interval (for kQuantile: [value, value]).
  double lo = 0.0;
  double hi = 0.0;
};

/// The full result of an approximate query.
struct ApproxResult {
  std::vector<ApproxValue> values;
  int64_t sample_rows = 0;
  std::string ToString() const;
};

/// \brief Parses, plans, executes and estimates in one call.
///
/// `seed` drives the samplers; `options` control interval kind/level and
/// Section 7 sub-sampling. With ExecEngine::kColumnar, ungrouped queries
/// run on the batch pipeline and stream (lineage, f) straight into the
/// per-item estimators — the result relation is never materialized; the
/// row and columnar engines return identical results for identical seeds.
Result<ApproxResult> RunApproxQuery(const std::string& sql,
                                    const Catalog& catalog, uint64_t seed,
                                    const SboxOptions& options = {},
                                    ExecEngine engine = ExecEngine::kRowAtATime);

/// \brief Full-options overload: ExecEngine::kMorselParallel runs the plan
/// partition-parallel with exec.num_threads workers;
/// ExecEngine::kSharded scatters it over exec.num_shards shared-nothing
/// workers whose per-item builder states round-trip through the binary
/// wire format (est/wire.h, docs/WIRE_FORMAT.md) before the gather merge.
///
/// Ungrouped queries fan the batch stream into per-item SampleViewBuilders
/// per partition; grouped queries into per-item GroupedSumBuilders; both
/// merge in morsel order, so the result is bit-deterministic in (sql,
/// catalog, seed, exec) and identical across num_threads values — and,
/// for kSharded, across num_shards values (shards are contiguous ranges
/// of the same global morsel sequence; see src/dist/shard.h).
///
/// ExecEngine::kServed is kSharded fronted by the process-wide
/// approximate-view cache (serve/view_cache.h): a repeated (sql +
/// estimator options, catalog content, seed, morsel geometry) serves the
/// bit-identical result from cached merged builder state without
/// executing anything — ExecOptions::stats' cache counters record which
/// path answered.
Result<ApproxResult> RunApproxQuery(const std::string& sql,
                                    const Catalog& catalog, uint64_t seed,
                                    const SboxOptions& options,
                                    const ExecOptions& exec);

}  // namespace sqlish
}  // namespace gus

#endif  // GUS_SQLISH_PLANNER_H_
