// Typed join-key hashing and equality over columnar data.
//
// These are the column-at-a-time counterparts of Value::Hash and
// Value::KeyEquals (rel/value.h); the two layers must agree bit-for-bit so
// the row and columnar engines build and probe identical join tables.
// String columns hash through their dictionary: DictKeyHashes precomputes
// one hash per distinct string, and KeyHashAt then reads a per-row hash
// with one array index.

#ifndef GUS_KERNELS_KEY_HASH_H_
#define GUS_KERNELS_KEY_HASH_H_

#include <cstdint>
#include <vector>

#include "rel/column_batch.h"
#include "rel/value.h"
#include "util/logging.h"

namespace gus {

/// Per-dictionary key hashes for a string column (agrees with Value::Hash);
/// empty for non-string columns.
inline std::vector<uint64_t> DictKeyHashes(const ColumnData& col) {
  std::vector<uint64_t> hashes;
  if (col.type != ValueType::kString || col.dict == nullptr) return hashes;
  hashes.reserve(col.dict->values.size());
  for (const auto& s : col.dict->values) hashes.push_back(HashStringKey(s));
  return hashes;
}

/// Join-key hash of row `i` (dict_hashes from DictKeyHashes for strings).
inline uint64_t KeyHashAt(const ColumnData& col, int64_t i,
                          const std::vector<uint64_t>& dict_hashes) {
  switch (col.type) {
    case ValueType::kInt64: return HashInt64Key(col.i64[i]);
    case ValueType::kFloat64: return HashFloat64Key(col.f64[i]);
    case ValueType::kString: return dict_hashes[col.codes[i]];
  }
  GUS_CHECK(false && "unhandled ValueType");
  return 0;
}

/// Typed key equality mirroring Value::KeyEquals (mixed numeric types
/// compare by exact promoted value).
inline bool KeyEqualsAt(const ColumnData& a, int64_t i, const ColumnData& b,
                        int64_t j) {
  if (a.type == b.type) {
    switch (a.type) {
      case ValueType::kInt64: return a.i64[i] == b.i64[j];
      case ValueType::kFloat64: return a.f64[i] == b.f64[j];
      case ValueType::kString:
        if (a.dict == b.dict) return a.codes[i] == b.codes[j];
        return a.StringAt(i) == b.StringAt(j);
    }
    GUS_CHECK(false && "unhandled ValueType");
  }
  if (a.type == ValueType::kString || b.type == ValueType::kString) {
    return false;
  }
  const double d = a.type == ValueType::kFloat64 ? a.f64[i] : b.f64[j];
  const int64_t v = a.type == ValueType::kInt64 ? a.i64[i] : b.i64[j];
  int64_t as_int;
  return Float64AsExactInt64(d, &as_int) && as_int == v;
}

/// \brief "Same hash input" test for the join build's collision check.
///
/// A true 64-bit collision is two rows whose *hash inputs* differ yet
/// whose hashes agree. KeyEqualsAt alone is the wrong test: two NaNs of
/// equal bit pattern feed the hash identically (HashFloat64Key hashes the
/// bits) but compare unequal under ==, and flagging them as a collision
/// would fail whole queries that previously just produced no match for
/// those rows. So same-hash rows count as compatible when their keys
/// compare equal OR their float bit patterns are identical.
inline bool JoinBuildKeysCompatible(const ColumnData& col, int64_t i,
                                    int64_t j) {
  if (KeyEqualsAt(col, i, col, j)) return true;
  if (col.type == ValueType::kFloat64) {
    uint64_t a, b;
    __builtin_memcpy(&a, &col.f64[i], sizeof(a));
    __builtin_memcpy(&b, &col.f64[j], sizeof(b));
    return a == b;
  }
  return false;
}

/// \brief Per-row join-key hashes for a whole column.
///
/// Computes dictionary hashes internally for string columns; callers that
/// already hold DictKeyHashes can loop KeyHashAt instead.
std::vector<uint64_t> ColumnKeyHashes(const ColumnData& col, int64_t num_rows);

/// \brief Key hashes for the contiguous rows [begin, begin + len).
///
/// Batch form of KeyHashAt over a row range, routed through the dispatched
/// SIMD kernels for int64 and dictionary-string keys (float64 stays scalar:
/// its hash branches on Float64AsExactInt64). `out` must hold len hashes.
void KeyHashRange(const ColumnData& col, const std::vector<uint64_t>& dict_hashes,
                  int64_t begin, int64_t len, uint64_t* out);

/// Batch form of KeyHashAt over an arbitrary row list (`rows`, len entries).
void KeyHashRows(const ColumnData& col, const std::vector<uint64_t>& dict_hashes,
                 const int64_t* rows, int64_t len, uint64_t* out);

/// \brief Vectorized key-equality recheck over batch probe candidates.
///
/// `probe_rows` / `build_rows` hold aligned (probe, build) candidate pairs
/// from JoinHashTable::ProbeBatch; entries [begin, size) whose keys compare
/// unequal under KeyEqualsAt semantics are removed, compacting both vectors
/// in place and preserving order. The type dispatch happens once per call
/// instead of once per pair (the first ROADMAP kernels item). Returns the
/// new size.
int64_t FilterEqualKeyPairs(const ColumnData& probe_key,
                            const ColumnData& build_key,
                            std::vector<int64_t>* probe_rows,
                            std::vector<int64_t>* build_rows,
                            int64_t begin = 0);

}  // namespace gus

#endif  // GUS_KERNELS_KEY_HASH_H_
