// Flat open-addressing hash table for equi-join builds.
//
// Layout (all contiguous arrays, no per-key heap allocations):
//
//   slots_      power-of-two open-addressing directory, linear probing;
//               each slot stores the key hash *inline* next to its entry
//               index, so a probe miss costs a single 16-byte load and a
//               hit needs exactly one more (the entry's offset pair)
//   entries_    one [begin, end) offset pair per *distinct* key hash into
//               row_ids_
//   row_ids_    build-row ids packed by entry, each group in build input
//               order — so probing yields candidates in exactly the order
//               the row engine's unordered_map-of-vectors produced them,
//               keeping join outputs bit-identical across engines
//
// The table is keyed by the 64-bit key hash alone. Probes therefore return
// *candidates*: callers re-check real key equality (KeyEqualsAt /
// Value::KeyEquals) before emitting a match, exactly like the previous
// unordered_map paths. On the build side a true collision — two build rows
// whose hashes agree but whose keys differ — would make every later probe
// pay for the mixed candidate list, and (worse) silently merges keys in
// hash-only consumers; Build with a key-equality callback refuses loudly
// instead, mirroring the group-by builder's collision semantics.
//
// After Build the table is immutable, so it can be shared read-only across
// morsel workers without synchronization.

#ifndef GUS_KERNELS_JOIN_HASH_TABLE_H_
#define GUS_KERNELS_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rel/column_batch.h"
#include "util/status.h"

namespace gus {

class JoinHashTable {
 public:
  /// Candidate build-row ids for one probe hash, in build input order.
  struct Range {
    const int64_t* begin = nullptr;
    const int64_t* end = nullptr;
    bool empty() const { return begin == end; }
    int64_t size() const { return end - begin; }
  };

  /// True when rows i and j carry equal join keys (used to detect true
  /// hash collisions on the build side).
  using KeyEqFn = std::function<bool(int64_t i, int64_t j)>;

  JoinHashTable() = default;

  /// \brief Builds from precomputed per-row key hashes.
  ///
  /// With a non-null `eq`, two rows with equal hashes but unequal keys fail
  /// loudly (Status::Internal) instead of producing a merged candidate
  /// list. Passing nullptr skips the check (hash-only semantics).
  Status Build(const uint64_t* hashes, int64_t num_rows,
               const KeyEqFn& eq = nullptr);

  /// Convenience build straight from a key column (hashes via KeyHashAt,
  /// collision check via KeyEqualsAt).
  Status BuildFrom(const ColumnData& key, int64_t num_rows);

  /// Candidates whose build hash equals `hash` (empty range on miss).
  Range Find(uint64_t hash) const {
    if (slots_.empty()) return {};
    const uint64_t mask = slots_.size() - 1;
    for (uint64_t s = hash & mask;; s = (s + 1) & mask) {
      const Slot& slot = slots_[s];
      if (slot.entry == kEmptySlot) return {};
      if (slot.hash == hash) {
        const Entry& e = entries_[slot.entry];
        return {row_ids_.data() + e.begin, row_ids_.data() + e.end};
      }
    }
  }

  /// \brief Batch probe: for each probe row, appends one (probe, build)
  /// pair per candidate to the two output vectors (not cleared).
  ///
  /// Candidates are hash matches only — callers still re-check key
  /// equality when the key space can collide.
  void ProbeBatch(const uint64_t* hashes, int64_t num_rows,
                  std::vector<int64_t>* probe_idx,
                  std::vector<int64_t>* build_idx) const;

  int64_t num_build_rows() const {
    return static_cast<int64_t>(row_ids_.size());
  }
  int64_t num_distinct_hashes() const {
    return static_cast<int64_t>(entries_.size());
  }

 private:
  static constexpr int64_t kEmptySlot = -1;

  struct Slot {
    uint64_t hash = 0;
    int64_t entry = kEmptySlot;
  };
  struct Entry {
    int64_t begin = 0;  // offsets into row_ids_
    int64_t end = 0;
  };

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  std::vector<int64_t> row_ids_;
};

}  // namespace gus

#endif  // GUS_KERNELS_JOIN_HASH_TABLE_H_
