// Flat open-addressing hash table for equi-join builds.
//
// Layout (all contiguous arrays, no per-key heap allocations):
//
//   slots_      power-of-two open-addressing directory, linear probing;
//               each slot stores the key hash *inline* next to its entry
//               index, so a probe miss costs a single 16-byte load and a
//               hit needs exactly one more (the entry's offset pair)
//   entries_    one [begin, end) offset pair per *distinct* key hash into
//               row_ids_, numbered region-major (region order, then
//               first-occurrence order within the region)
//   row_ids_    build-row ids packed region-major and grouped by entry,
//               each group in build input order — so probing yields
//               candidates in exactly the order the row engine's
//               unordered_map-of-vectors produced them, keeping join
//               outputs bit-identical across engines
//
// Region-local probing: the directory is split into fixed power-of-two
// *regions* (a pure function of the capacity); a probe run wraps within
// its home region instead of spilling into the next one. Regions therefore
// never interact, which is what makes the build partition-parallel: each
// worker owns a set of regions and inserts its rows without any
// synchronization. Because the canonical layout is region-major, "merging"
// the per-region results is pure offset arithmetic — no rehashing, no
// re-sorting, no row copies — and the table is byte-identical at every
// thread count (slot contents per region depend only on that region's
// rows in input order, which the stable partition pass fixes). At the
// default load factor (<= 0.25 over the whole directory) a region
// overflow needs a 16x hash concentration; if it ever happens, the build
// deterministically falls back to a single region (classic global wrap),
// identically at every thread count.
//
// The table is keyed by the 64-bit key hash alone. Probes therefore return
// *candidates*: callers re-check real key equality (KeyEqualsAt /
// FilterEqualKeyPairs / Value::KeyEquals) before emitting a match, exactly
// like the previous unordered_map paths. On the build side a true
// collision — two build rows whose hashes agree but whose keys differ —
// would make every later probe pay for the mixed candidate list, and
// (worse) silently merges keys in hash-only consumers; Build with a
// key-equality callback refuses loudly instead, mirroring the group-by
// builder's collision semantics.
//
// After Build the table is immutable, so it can be shared read-only across
// morsel workers without synchronization.

#ifndef GUS_KERNELS_JOIN_HASH_TABLE_H_
#define GUS_KERNELS_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rel/column_batch.h"
#include "util/status.h"

namespace gus {

class JoinHashTable {
 public:
  /// Candidate build-row ids for one probe hash, in build input order.
  struct Range {
    const int64_t* begin = nullptr;
    const int64_t* end = nullptr;
    bool empty() const { return begin == end; }
    int64_t size() const { return end - begin; }
  };

  /// True when rows i and j carry equal join keys (used to detect true
  /// hash collisions on the build side).
  using KeyEqFn = std::function<bool(int64_t i, int64_t j)>;

  JoinHashTable() = default;

  /// \brief Builds from precomputed per-row key hashes.
  ///
  /// With a non-null `eq`, two rows with equal hashes but unequal keys fail
  /// loudly (Status::Internal) instead of producing a merged candidate
  /// list. Passing nullptr skips the check (hash-only semantics).
  /// `num_threads` > 1 builds directory regions in parallel; the resulting
  /// table is byte-identical at every thread count (see the header
  /// comment), so callers can scale the build without touching results.
  Status Build(const uint64_t* hashes, int64_t num_rows,
               const KeyEqFn& eq = nullptr, int num_threads = 1);

  /// Convenience build straight from a key column (hashes via KeyHashAt,
  /// collision check via KeyEqualsAt).
  Status BuildFrom(const ColumnData& key, int64_t num_rows,
                   int num_threads = 1);

  /// Candidates whose build hash equals `hash` (empty range on miss).
  Range Find(uint64_t hash) const {
    if (slots_.empty()) return {};
    const uint64_t mask = slots_.size() - 1;
    const uint64_t rmask = region_mask_;
    uint64_t s = hash & mask;
    while (true) {
      const Slot& slot = slots_[s];
      if (slot.entry == kEmptySlot) return {};
      if (slot.hash == hash) {
        const Entry& e = entries_[slot.entry];
        return {row_ids_.data() + e.begin, row_ids_.data() + e.end};
      }
      // Linear probe wrapping within the slot's home region.
      s = (s & ~rmask) | ((s + 1) & rmask);
    }
  }

  /// \brief Batch probe: for each probe row, appends one (probe, build)
  /// pair per candidate to the two output vectors (not cleared).
  ///
  /// Candidates are hash matches only — callers still re-check key
  /// equality when the key space can collide (FilterEqualKeyPairs does it
  /// vectorized over the appended pairs).
  void ProbeBatch(const uint64_t* hashes, int64_t num_rows,
                  std::vector<int64_t>* probe_idx,
                  std::vector<int64_t>* build_idx) const;

  int64_t num_build_rows() const {
    return static_cast<int64_t>(row_ids_.size());
  }
  int64_t num_distinct_hashes() const {
    return static_cast<int64_t>(entries_.size());
  }

  /// \brief FNV-1a digest of the complete internal state (directory,
  /// entries, packed row ids, region geometry).
  ///
  /// Equal digests mean byte-identical tables: the parity tests pin the
  /// parallel build to the serial one with this.
  uint64_t StateDigest() const;

 private:
  static constexpr int64_t kEmptySlot = -1;

  struct Slot {
    uint64_t hash = 0;
    int64_t entry = kEmptySlot;
  };
  struct Entry {
    int64_t begin = 0;  // offsets into row_ids_
    int64_t end = 0;
  };

  /// One attempt at the given region geometry; false = a region overflowed
  /// (caller retries with a single region).
  Result<bool> TryBuild(const uint64_t* hashes, int64_t num_rows,
                        const KeyEqFn& eq, uint64_t cap, uint64_t region_size,
                        int num_threads);

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  std::vector<int64_t> row_ids_;
  /// region_size - 1; probe runs stay within [s & ~mask, s | mask].
  uint64_t region_mask_ = 0;
};

}  // namespace gus

#endif  // GUS_KERNELS_JOIN_HASH_TABLE_H_
