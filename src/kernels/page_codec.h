// Little-endian column-page codec for the segment store.
//
// A column page is the raw body of one column over one segment's rows:
// fixed-width little-endian values, no header, no padding — the layout is
// exactly the in-memory vector on a little-endian host, so encode/decode
// are single memcpys there (the store refuses to open on big-endian hosts
// rather than silently byte-swapping; see store/segment_store.h). Keeping
// the copy loops here, next to the other flat hot-path kernels, gives the
// store one place to vectorize if page decode ever shows up in a profile.

#ifndef GUS_KERNELS_PAGE_CODEC_H_
#define GUS_KERNELS_PAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gus {

/// Appends `n` fixed-width values at `src` to `out` as raw page bytes.
template <typename T>
inline void EncodePage(const T* src, int64_t n, std::string* out) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8, "fixed-width pages only");
  const size_t bytes = static_cast<size_t>(n) * sizeof(T);
  const size_t at = out->size();
  out->resize(at + bytes);
  if (bytes > 0) std::memcpy(&(*out)[at], src, bytes);
}

/// \brief Decodes `n` fixed-width values from raw page bytes into `out`
/// (resized; previous contents dropped).
///
/// `src` may be unaligned (it points into an mmap-ed file at an arbitrary
/// byte offset) — the memcpy makes the access well-defined on every
/// platform.
template <typename T>
inline void DecodePage(const uint8_t* src, int64_t n, std::vector<T>* out) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8, "fixed-width pages only");
  out->resize(static_cast<size_t>(n));
  if (n > 0) std::memcpy(out->data(), src, static_cast<size_t>(n) * sizeof(T));
}

}  // namespace gus

#endif  // GUS_KERNELS_PAGE_CODEC_H_
