// Batch sampling kernels — the per-row hot loops behind the samplers in
// sampling/samplers.h.
//
// Geometric-skip Bernoulli (Vitter-style): instead of one Rng draw per
// input row, draw the gap to the next kept row directly from the geometric
// distribution, skip = floor(log(u) / log(1-p)) with u uniform in (0, 1].
// A Bernoulli(p) scan then costs ~pN + 1 draws instead of N. The state is
// resumable across spans: feeding the same Rng through any partition of a
// row stream into spans consumes the identical draw sequence and yields
// the identical keep-set as one span of the whole stream — the property
// that lets the fused streaming sampler (plan/columnar_executor.cc) stay
// bit-identical to the one-shot DecideSampling path used by the row
// engine and by pipeline-breaker samplers.
//
// Draw discipline (what makes the equivalence exact): the first skip is
// drawn when the first row arrives (never for an empty stream), and after
// emitting a kept row the next skip is drawn immediately. Total draws:
// 0 for an empty stream, #kept + 1 otherwise. p <= 0 and p >= 1 are
// handled without any draws (keep nothing / keep everything).
//
// The lineage-Bernoulli kernel is the Section 7 filter over flat lineage
// arrays: it hashes (seed, id) in a tight branch-free loop — no per-row
// Value boxing, no std::function dispatch — and consumes no Rng, so it is
// trivially identical between streaming and one-shot evaluation.

#ifndef GUS_KERNELS_SAMPLING_KERNELS_H_
#define GUS_KERNELS_SAMPLING_KERNELS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace gus {

/// \brief Resumable geometric-skip Bernoulli(p) position generator.
///
/// Positions are indexes into the logical row stream fed through
/// NextSpan; the caller maps them onto storage (selection vectors,
/// absolute batch offsets) as needed.
class SkipBernoulliState {
 public:
  explicit SkipBernoulliState(double p);

  /// \brief Advances over the next `len` logical rows, appending the kept
  /// offsets *relative to this span's start* (in [0, len)) to `keep`.
  void NextSpan(int64_t len, Rng* rng, std::vector<int64_t>* keep);

 private:
  void Advance(Rng* rng);  // draws one skip, moves next_ past it

  double p_;
  double inv_log_q_ = 0.0;  // 1 / log(1 - p) for 0 < p < 1
  bool drawn_ = false;      // first skip drawn yet?
  int64_t next_ = 0;        // absolute logical index of the next kept row
  int64_t consumed_ = 0;    // logical rows consumed so far
};

/// \brief One-shot geometric-skip Bernoulli keep-set over `num_rows` rows.
///
/// Bit-identical (same keeps, same Rng consumption) to streaming the rows
/// through SkipBernoulliState in arbitrary spans.
void SkipBernoulliKeepIndices(int64_t num_rows, double p, Rng* rng,
                              std::vector<int64_t>* keep);

/// \brief Lineage-seeded Bernoulli over a flat row-major lineage matrix.
///
/// Appends row indexes r in [begin, begin + len) with
/// LineageUnitValue(seed, lineage[r * arity + dim]) < p. Branch-free
/// append (no per-row conditional push).
void LineageBernoulliDense(double p, uint64_t seed, const uint64_t* lineage,
                           int arity, int dim, int64_t begin, int64_t len,
                           std::vector<int64_t>* keep);

/// Selection-vector variant: tests rows sel[0..len) of the lineage matrix
/// and appends the surviving sel values (composes selections in place).
void LineageBernoulliGather(double p, uint64_t seed, const uint64_t* lineage,
                            int arity, int dim, const int64_t* sel,
                            int64_t len, std::vector<int64_t>* keep);

/// \brief One keep/drop decision per distinct block id, drawn at first
/// occurrence.
///
/// Flat vector of states for the dense id range (block ids are row-index /
/// block-size or base-table lineage, both small dense integers), with a
/// hash-map spill for pathological ids beyond the dense cap. Reusable
/// across calls via Reset(), which is O(1): each dense slot carries the
/// epoch it was decided in, so stale decisions from earlier calls expire
/// by epoch bump rather than by re-zeroing the whole vector — repeated
/// block-sampled scans pay neither re-allocation nor an
/// O(historical max block id) clear.
class BlockDecisionCache {
 public:
  /// The block's decision, drawing it on first occurrence.
  bool Decide(uint64_t block, double p, Rng* rng);

  /// Forgets all decisions (keeps allocated capacity; O(1)).
  void Reset();

 private:
  static constexpr uint64_t kDenseCap = uint64_t{1} << 22;

  /// Dense slot: (epoch << 1) | keep. Decided this epoch iff the stored
  /// epoch matches epoch_.
  std::vector<uint32_t> dense_;
  uint32_t epoch_ = 1;  // slots default to 0 = "decided in epoch 0" = stale
  std::unordered_map<uint64_t, bool> sparse_;  // rare: ids >= kDenseCap
};

}  // namespace gus

#endif  // GUS_KERNELS_SAMPLING_KERNELS_H_
