// Batch sampling kernels — the per-row hot loops behind the samplers in
// sampling/samplers.h.
//
// Geometric-skip Bernoulli (Vitter-style): instead of one Rng draw per
// input row, draw the gap to the next kept row directly from the geometric
// distribution, skip = floor(log(u) / log(1-p)) with u uniform in (0, 1].
// A Bernoulli(p) scan then costs ~pN + 1 draws instead of N. The state is
// resumable across spans: feeding the same Rng through any partition of a
// row stream into spans consumes the identical draw sequence and yields
// the identical keep-set as one span of the whole stream — the property
// that lets the fused streaming sampler (plan/columnar_executor.cc) stay
// bit-identical to the one-shot DecideSampling path used by the row
// engine and by pipeline-breaker samplers.
//
// Draw discipline (what makes the equivalence exact): the first skip is
// drawn when the first row arrives (never for an empty stream), and after
// emitting a kept row the next skip is drawn immediately. Total draws:
// 0 for an empty stream, #kept + 1 otherwise. p <= 0 and p >= 1 are
// handled without any draws (keep nothing / keep everything).
//
// The lineage-Bernoulli kernel is the Section 7 filter over flat lineage
// arrays: it hashes (seed, id) in a tight branch-free loop — no per-row
// Value boxing, no std::function dispatch — and consumes no Rng, so it is
// trivially identical between streaming and one-shot evaluation.
//
// The seed-decoupled fixed-size kernels at the bottom are the partition-
// mergeable counterparts of the classic sequential draws: a sampler first
// consumes exactly ONE value from the engine's Rng stream (its sampler
// seed), and every per-row priority key / per-draw target / per-block
// decision is then a pure function of (seed, unit index) via
// Rng::ForkStream. Because no state flows between units, any partition of
// the rows into morsels or shards computes the identical keys, and a
// fixed-size WOR draw reduces to "the n smallest priority keys" — exactly
// computable from bounded per-partition candidate sets (MergeableReservoir)
// folded in any grouping.

#ifndef GUS_KERNELS_SAMPLING_KERNELS_H_
#define GUS_KERNELS_SAMPLING_KERNELS_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/random.h"

namespace gus {

/// \brief Resumable geometric-skip Bernoulli(p) position generator.
///
/// Positions are indexes into the logical row stream fed through
/// NextSpan; the caller maps them onto storage (selection vectors,
/// absolute batch offsets) as needed.
class SkipBernoulliState {
 public:
  explicit SkipBernoulliState(double p);

  /// \brief Advances over the next `len` logical rows, appending the kept
  /// offsets *relative to this span's start* (in [0, len)) to `keep`.
  void NextSpan(int64_t len, Rng* rng, std::vector<int64_t>* keep);

 private:
  void Advance(Rng* rng);  // draws one skip, moves next_ past it

  double p_;
  double inv_log_q_ = 0.0;  // 1 / log(1 - p) for 0 < p < 1
  bool drawn_ = false;      // first skip drawn yet?
  int64_t next_ = 0;        // absolute logical index of the next kept row
  int64_t consumed_ = 0;    // logical rows consumed so far
};

/// \brief One-shot geometric-skip Bernoulli keep-set over `num_rows` rows.
///
/// Bit-identical (same keeps, same Rng consumption) to streaming the rows
/// through SkipBernoulliState in arbitrary spans.
void SkipBernoulliKeepIndices(int64_t num_rows, double p, Rng* rng,
                              std::vector<int64_t>* keep);

/// \brief Lineage-seeded Bernoulli over a flat row-major lineage matrix.
///
/// Appends row indexes r in [begin, begin + len) with
/// LineageUnitValue(seed, lineage[r * arity + dim]) < p. Branch-free
/// append (no per-row conditional push).
void LineageBernoulliDense(double p, uint64_t seed, const uint64_t* lineage,
                           int arity, int dim, int64_t begin, int64_t len,
                           std::vector<int64_t>* keep);

/// Selection-vector variant: tests rows sel[0..len) of the lineage matrix
/// and appends the surviving sel values (composes selections in place).
void LineageBernoulliGather(double p, uint64_t seed, const uint64_t* lineage,
                            int arity, int dim, const int64_t* sel,
                            int64_t len, std::vector<int64_t>* keep);

/// \brief One keep/drop decision per distinct block id, drawn at first
/// occurrence.
///
/// Flat vector of states for the dense id range (block ids are row-index /
/// block-size or base-table lineage, both small dense integers), with a
/// hash-map spill for pathological ids beyond the dense cap. Reusable
/// across calls via Reset(), which is O(1): each dense slot carries the
/// epoch it was decided in, so stale decisions from earlier calls expire
/// by epoch bump rather than by re-zeroing the whole vector — repeated
/// block-sampled scans pay neither re-allocation nor an
/// O(historical max block id) clear.
class BlockDecisionCache {
 public:
  /// The block's decision, drawing it on first occurrence.
  bool Decide(uint64_t block, double p, Rng* rng);

  /// Forgets all decisions (keeps allocated capacity; O(1)).
  void Reset();

 private:
  static constexpr uint64_t kDenseCap = uint64_t{1} << 22;

  /// Dense slot: (epoch << 1) | keep. Decided this epoch iff the stored
  /// epoch matches epoch_.
  std::vector<uint32_t> dense_;
  uint32_t epoch_ = 1;  // slots default to 0 = "decided in epoch 0" = stale
  std::unordered_map<uint64_t, bool> sparse_;  // rare: ids >= kDenseCap
};

// ---- Seed-decoupled fixed-size sampling kernels ----------------------------

/// \brief Priority key of row `row` under sampler stream `seed`.
///
/// Pure function of its arguments — every engine, thread, and shard computes
/// the identical key for a row, so "keep the n smallest (priority, row)
/// pairs" is a partition-independent definition of a uniform WOR draw:
/// the keys are i.i.d. uniform 64-bit values, and the rows carrying the n
/// smallest keys form a uniformly distributed size-n subset.
inline uint64_t WorPriority(uint64_t seed, uint64_t row) {
  return Rng::ForkStream(seed, row).Next();
}

/// \brief Bernoulli(p) keep decision for block `block` under stream `seed`.
///
/// Pure function of (seed, block): a block's fate never depends on which
/// morsel or shard evaluates it, so block-sampled scans partition freely.
inline bool DecoupledBlockKeep(uint64_t seed, uint64_t block, double p) {
  return Rng::ForkStream(seed, block).Uniform() < p;
}

/// \brief Target row of the d-th with-replacement draw over `population`
/// rows (pure function of (seed, draw)).
///
/// Each draw runs Lemire rejection inside its own forked stream, so the
/// target is exact-uniform and independent across draws.
inline int64_t WrDrawTarget(uint64_t seed, int64_t draw, int64_t population) {
  Rng r = Rng::ForkStream(seed, static_cast<uint64_t>(draw));
  return static_cast<int64_t>(
      r.UniformInt(static_cast<uint64_t>(population)));
}

/// \brief Bounded candidate state for an exact distributed top-n
/// (smallest-priority) selection — the mergeable reservoir behind
/// fixed-size WOR/reservoir sampling.
///
/// Each partition offers its rows' (priority, row) pairs and retains at
/// most n candidates; folding the per-partition states (in morsel order,
/// though the result is grouping-independent) yields exactly the global
/// n smallest pairs, because a row outside a partition's local top-n can
/// never be in the global top-n. Ties break on the row index, so the
/// selection is total even under (astronomically unlikely) equal keys.
class MergeableReservoir {
 public:
  explicit MergeableReservoir(int64_t n) : n_(n) {}

  int64_t capacity() const { return n_; }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }

  /// Offers one candidate.
  void Offer(uint64_t priority, int64_t row);

  /// Offers rows [row_begin, row_end) with WorPriority(seed, row) keys.
  void OfferRange(uint64_t seed, int64_t row_begin, int64_t row_end);

  /// Folds another partition's candidates into this state (exact).
  void MergeFrom(const MergeableReservoir& other);

  /// The kept rows, ascending (input order — samplers are filters).
  std::vector<int64_t> SortedRows() const;

 private:
  using Candidate = std::pair<uint64_t, int64_t>;  // (priority, row)

  int64_t n_;
  /// Max-heap on (priority, row): top() is the weakest kept candidate.
  std::vector<Candidate> heap_;
};

}  // namespace gus

#endif  // GUS_KERNELS_SAMPLING_KERNELS_H_
