#include "kernels/sampling_kernels.h"

#include <algorithm>
#include <cmath>

#include "kernels/simd/simd_dispatch.h"
#include "util/hash.h"
#include "util/logging.h"

namespace gus {

namespace {

/// Positions never reach this; used to park the cursor "past any stream"
/// when a drawn skip is astronomically large, without risking overflow.
constexpr int64_t kFarAway = int64_t{1} << 62;

}  // namespace

SkipBernoulliState::SkipBernoulliState(double p) : p_(p) {
  if (p_ > 0.0 && p_ < 1.0) inv_log_q_ = 1.0 / std::log1p(-p_);
}

void SkipBernoulliState::Advance(Rng* rng) {
  // u in (0, 1]: log(u) is finite and <= 0, so skip >= 0 always.
  const double u = 1.0 - rng->Uniform();
  const double skip = std::floor(std::log(u) * inv_log_q_);
  if (!(skip < static_cast<double>(kFarAway)) || next_ >= kFarAway) {
    next_ = kFarAway;
  } else {
    next_ += 1 + static_cast<int64_t>(skip);
  }
}

void SkipBernoulliState::NextSpan(int64_t len, Rng* rng,
                                  std::vector<int64_t>* keep) {
  if (len <= 0 || p_ <= 0.0) {
    consumed_ += len > 0 ? len : 0;
    return;
  }
  const int64_t begin = consumed_;
  const int64_t end = consumed_ + len;
  if (p_ >= 1.0) {
    for (int64_t i = 0; i < len; ++i) keep->push_back(i);
    consumed_ = end;
    return;
  }
  if (!drawn_) {
    // First row of the stream: position the cursor with the first skip.
    drawn_ = true;
    next_ = begin - 1;
    Advance(rng);
  }
  while (next_ < end) {
    keep->push_back(next_ - begin);
    Advance(rng);
  }
  consumed_ = end;
}

void SkipBernoulliKeepIndices(int64_t num_rows, double p, Rng* rng,
                              std::vector<int64_t>* keep) {
  keep->reserve(keep->size() + static_cast<size_t>(p * num_rows) + 16);
  SkipBernoulliState state(p);
  state.NextSpan(num_rows, rng, keep);
}

void LineageBernoulliDense(double p, uint64_t seed, const uint64_t* lineage,
                           int arity, int dim, int64_t begin, int64_t len,
                           std::vector<int64_t>* keep) {
  const size_t base = keep->size();
  keep->resize(base + static_cast<size_t>(len));
  // The keep test runs as the integer-threshold form (exact equivalent of
  // `LineageUnitValue(seed, id) < p`) so every dispatch tier decides
  // identically; see simd::LineageKeepThreshold.
  const uint64_t threshold = simd::LineageKeepThreshold(p);
  const uint64_t* ids = lineage + static_cast<size_t>(begin) * arity + dim;
  const int64_t n = simd::LineageKeepDense(seed, threshold, ids, arity, begin,
                                           len, keep->data() + base);
  keep->resize(base + static_cast<size_t>(n));
}

void LineageBernoulliGather(double p, uint64_t seed, const uint64_t* lineage,
                            int arity, int dim, const int64_t* sel,
                            int64_t len, std::vector<int64_t>* keep) {
  const size_t base = keep->size();
  keep->resize(base + static_cast<size_t>(len));
  const uint64_t threshold = simd::LineageKeepThreshold(p);
  const int64_t n = simd::LineageKeepGather(seed, threshold, lineage, arity,
                                            dim, sel, len,
                                            keep->data() + base);
  keep->resize(base + static_cast<size_t>(n));
}

bool BlockDecisionCache::Decide(uint64_t block, double p, Rng* rng) {
  if (block < kDenseCap) {
    if (block >= dense_.size()) {
      dense_.resize(static_cast<size_t>(block) + 1, 0);
    }
    uint32_t& slot = dense_[block];
    if ((slot >> 1) != epoch_) {
      slot = (epoch_ << 1) | (rng->Bernoulli(p) ? 1u : 0u);
    }
    return (slot & 1u) != 0;
  }
  auto it = sparse_.find(block);
  if (it == sparse_.end()) {
    it = sparse_.emplace(block, rng->Bernoulli(p)).first;
  }
  return it->second;
}

void MergeableReservoir::Offer(uint64_t priority, int64_t row) {
  if (n_ <= 0) return;
  const Candidate cand{priority, row};
  if (static_cast<int64_t>(heap_.size()) < n_) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (cand < heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = cand;
    std::push_heap(heap_.begin(), heap_.end());
  }
}

void MergeableReservoir::OfferRange(uint64_t seed, int64_t row_begin,
                                    int64_t row_end) {
  for (int64_t row = row_begin; row < row_end; ++row) {
    Offer(WorPriority(seed, static_cast<uint64_t>(row)), row);
  }
}

void MergeableReservoir::MergeFrom(const MergeableReservoir& other) {
  for (const Candidate& cand : other.heap_) {
    Offer(cand.first, cand.second);
  }
}

std::vector<int64_t> MergeableReservoir::SortedRows() const {
  std::vector<int64_t> rows;
  rows.reserve(heap_.size());
  for (const Candidate& cand : heap_) rows.push_back(cand.second);
  std::sort(rows.begin(), rows.end());
  return rows;
}

void BlockDecisionCache::Reset() {
  // Epoch bump invalidates every dense decision in O(1). The epoch field
  // is 31 bits; on wraparound, fall back to one full clear.
  epoch_ = (epoch_ + 1) & 0x7fffffffu;
  if (epoch_ == 0) {
    std::fill(dense_.begin(), dense_.end(), 0u);
    epoch_ = 1;
  }
  sparse_.clear();
}

}  // namespace gus
