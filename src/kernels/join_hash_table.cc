#include "kernels/join_hash_table.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

#include "kernels/key_hash.h"
#include "kernels/simd/simd_dispatch.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gus {

namespace {

/// Smallest power of two >= 4n: a load factor of at most 0.25 keeps
/// linear-probe runs near one slot (16 bytes per extra slot is cheap
/// next to the probe stalls it avoids), with a minimum that keeps tiny
/// builds cheap.
uint64_t DirectoryCapacity(int64_t n) {
  uint64_t cap = 16;
  while (cap < static_cast<uint64_t>(n) * 4) cap <<= 1;
  return cap;
}

/// Region slot count (power of two) for a directory of `cap` slots — a
/// pure function of the capacity, so every build of the same input agrees
/// on the geometry regardless of thread count.
constexpr uint64_t kRegionSlots = 4096;
constexpr uint64_t kMaxBuildRegions = 256;

uint64_t RegionSize(uint64_t cap) {
  uint64_t regions = cap / kRegionSlots;
  if (regions <= 1) return cap;
  if (regions > kMaxBuildRegions) regions = kMaxBuildRegions;
  return cap / regions;
}

int Log2Pow2(uint64_t v) { return __builtin_ctzll(v); }

/// Per-region scratch produced by the region insert pass.
struct RegionState {
  std::vector<int64_t> entry_of;     // per region row (input order)
  std::vector<int64_t> first_row;    // per local entry
  std::vector<int64_t> count;        // per local entry
  std::vector<int64_t> group_begin;  // per local entry, region-local offset
  bool overflow = false;
  int64_t collision_first = -1, collision_second = -1;
};

template <typename Pred>
int64_t CompactPairs(std::vector<int64_t>* probe_rows,
                     std::vector<int64_t>* build_rows, int64_t begin,
                     const Pred& keep) {
  const auto n = static_cast<int64_t>(probe_rows->size());
  int64_t w = begin;
  for (int64_t k = begin; k < n; ++k) {
    const int64_t i = (*probe_rows)[k];
    const int64_t j = (*build_rows)[k];
    if (keep(i, j)) {
      (*probe_rows)[w] = i;
      (*build_rows)[w] = j;
      ++w;
    }
  }
  probe_rows->resize(static_cast<size_t>(w));
  build_rows->resize(static_cast<size_t>(w));
  return w;
}

}  // namespace

Status JoinHashTable::Build(const uint64_t* hashes, int64_t num_rows,
                            const KeyEqFn& eq, int num_threads) {
  slots_.clear();
  entries_.clear();
  row_ids_.clear();
  region_mask_ = 0;
  if (num_rows == 0) return Status::OK();

  const uint64_t cap = DirectoryCapacity(num_rows);
  uint64_t region_size = RegionSize(cap);
  while (true) {
    GUS_ASSIGN_OR_RETURN(
        bool built, TryBuild(hashes, num_rows, eq, cap, region_size,
                             num_threads));
    if (built) return Status::OK();
    // A region overflowed (pathological hash concentration): rebuild with
    // one region — global wrap cannot overflow at load <= 0.25. The
    // fallback condition depends only on the hash multiset, so serial and
    // parallel builds take it identically.
    GUS_CHECK(region_size < cap);
    region_size = cap;
  }
}

Result<bool> JoinHashTable::TryBuild(const uint64_t* hashes, int64_t num_rows,
                                     const KeyEqFn& eq, uint64_t cap,
                                     uint64_t region_size, int num_threads) {
  slots_.assign(cap, Slot{});
  entries_.clear();
  row_ids_.assign(static_cast<size_t>(num_rows), 0);
  region_mask_ = region_size - 1;
  const uint64_t mask = cap - 1;
  const auto num_regions = static_cast<int64_t>(cap / region_size);
  const int shift = Log2Pow2(region_size);
  const int workers = static_cast<int>(std::min<int64_t>(
      std::max(1, num_threads), std::max<int64_t>(num_regions, 1)));
  // Shared-pool lease: top-level builds reuse the process pool's workers
  // instead of spawning per build; builds issued from inside a pool task
  // (in-process shard workers) get a transient pool. The work split below
  // is a pure function of (hashes, cap, region_size, workers), never of
  // how many pool threads actually ran, so the table stays deterministic.
  PoolLease pool(workers);
  auto parallel_for = [&](int64_t n, const std::function<void(int64_t)>& fn) {
    if (workers > 1) {
      pool->ParallelFor(n, fn);
    } else {
      for (int64_t i = 0; i < n; ++i) fn(i);
    }
  };

  // Phase 1: stable partition of row ids by home region into one flat
  // array (regions see their rows in input order, which fixes entry
  // creation order and per-group row order). Parallel two-pass: contiguous
  // input chunks count into per-chunk histograms, a small serial prefix
  // turns them into write cursors, then the chunks scatter — input order
  // within a region is preserved because chunks are processed in input
  // order at disjoint, increasing offsets.
  std::vector<int64_t> rows_by_region(static_cast<size_t>(num_rows));
  std::vector<int64_t> region_row_start(static_cast<size_t>(num_regions) + 1,
                                        0);
  if (num_regions == 1) {
    std::iota(rows_by_region.begin(), rows_by_region.end(), int64_t{0});
    region_row_start[1] = num_rows;
  } else {
    const int64_t chunks = workers;
    const int64_t chunk_rows = (num_rows + chunks - 1) / chunks;
    std::vector<std::vector<int64_t>> chunk_counts(
        static_cast<size_t>(chunks),
        std::vector<int64_t>(static_cast<size_t>(num_regions), 0));
    parallel_for(chunks, [&](int64_t c) {
      const int64_t begin = c * chunk_rows;
      const int64_t end = std::min(num_rows, begin + chunk_rows);
      std::vector<int64_t>& counts = chunk_counts[static_cast<size_t>(c)];
      for (int64_t i = begin; i < end; ++i) {
        ++counts[(hashes[i] & mask) >> shift];
      }
    });
    std::vector<std::vector<int64_t>> cursors = chunk_counts;
    int64_t total = 0;
    for (int64_t r = 0; r < num_regions; ++r) {
      region_row_start[r] = total;
      for (int64_t c = 0; c < chunks; ++c) {
        const int64_t n = chunk_counts[c][r];
        cursors[c][r] = total;
        total += n;
      }
    }
    region_row_start[num_regions] = total;
    parallel_for(chunks, [&](int64_t c) {
      const int64_t begin = c * chunk_rows;
      const int64_t end = std::min(num_rows, begin + chunk_rows);
      std::vector<int64_t>& cursor = cursors[static_cast<size_t>(c)];
      for (int64_t i = begin; i < end; ++i) {
        rows_by_region[cursor[(hashes[i] & mask) >> shift]++] = i;
      }
    });
  }

  // Phase 2: independent per-region open addressing. Regions own disjoint
  // directory ranges and disjoint spans of row_ids_, so workers write the
  // shared arrays without synchronization. Row groups land directly in
  // their final (region-major) row_ids_ position.
  std::vector<RegionState> regions(static_cast<size_t>(num_regions));
  parallel_for(num_regions, [&](int64_t r) {
    RegionState& st = regions[static_cast<size_t>(r)];
    const int64_t row_begin = region_row_start[r];
    const int64_t row_end = region_row_start[r + 1];
    const uint64_t region_base = static_cast<uint64_t>(r) * region_size;
    const uint64_t rmask = region_size - 1;
    st.entry_of.resize(static_cast<size_t>(row_end - row_begin));
    for (int64_t k = row_begin; k < row_end; ++k) {
      const int64_t i = rows_by_region[k];
      const uint64_t h = hashes[i];
      uint64_t pos = h & rmask;
      uint64_t probes = 0;
      while (true) {
        if (++probes > region_size) {
          st.overflow = true;
          return;
        }
        Slot& slot = slots_[region_base + pos];
        int64_t e = slot.entry;
        if (e == kEmptySlot) {
          e = static_cast<int64_t>(st.first_row.size());
          st.first_row.push_back(i);
          st.count.push_back(0);
          slot.hash = h;
          slot.entry = e;  // region-local; rebased in phase 3
        } else if (slot.hash != h) {
          pos = (pos + 1) & rmask;
          continue;
        } else if (eq != nullptr && !eq(st.first_row[e], i)) {
          // Same hash as an earlier row with a differing key: a true
          // 64-bit collision — refuse to build a merged candidate list.
          st.collision_first = st.first_row[e];
          st.collision_second = i;
          return;
        }
        st.entry_of[k - row_begin] = e;
        ++st.count[e];
        break;
      }
    }
    // Scatter the region's rows into row_ids_ grouped by local entry,
    // preserving input order within each group.
    st.group_begin.resize(st.count.size());
    int64_t off = 0;
    for (size_t e = 0; e < st.count.size(); ++e) {
      st.group_begin[e] = off;
      off += st.count[e];
    }
    std::vector<int64_t> cursor = st.group_begin;
    for (int64_t k = row_begin; k < row_end; ++k) {
      row_ids_[row_begin + cursor[st.entry_of[k - row_begin]]++] =
          rows_by_region[k];
    }
  });

  bool overflow = false;
  for (const RegionState& st : regions) {
    if (st.collision_first >= 0) {
      return Status::Internal(
          "join build key hash collision between rows " +
          std::to_string(st.collision_first) + " and " +
          std::to_string(st.collision_second));
    }
    overflow = overflow || st.overflow;
  }
  if (overflow) return false;

  // Phase 3: region-major entry numbering — entry ids are a per-region
  // base plus the region-local first-occurrence index, so "merging"
  // regions is offset arithmetic: no rehash, no re-sort, no row copies.
  std::vector<int64_t> entry_base(static_cast<size_t>(num_regions) + 1, 0);
  for (int64_t r = 0; r < num_regions; ++r) {
    entry_base[r + 1] =
        entry_base[r] + static_cast<int64_t>(regions[r].first_row.size());
  }
  entries_.resize(static_cast<size_t>(entry_base[num_regions]));

  // Phase 4: per region, publish the entry offset pairs and rebase the
  // slots' entry ids to the global numbering.
  parallel_for(num_regions, [&](int64_t r) {
    const RegionState& st = regions[static_cast<size_t>(r)];
    const int64_t base = entry_base[r];
    const int64_t row_begin = region_row_start[r];
    for (size_t e = 0; e < st.count.size(); ++e) {
      const int64_t begin = row_begin + st.group_begin[e];
      entries_[static_cast<size_t>(base) + e] = {begin, begin + st.count[e]};
    }
    const uint64_t region_base = static_cast<uint64_t>(r) * region_size;
    for (uint64_t s = 0; s < region_size; ++s) {
      Slot& slot = slots_[region_base + s];
      if (slot.entry != kEmptySlot) slot.entry += base;
    }
  });
  return true;
}

Status JoinHashTable::BuildFrom(const ColumnData& key, int64_t num_rows,
                                int num_threads) {
  const std::vector<uint64_t> hashes = ColumnKeyHashes(key, num_rows);
  return Build(
      hashes.data(), num_rows,
      [&key](int64_t i, int64_t j) {
        return JoinBuildKeysCompatible(key, i, j);
      },
      num_threads);
}

void JoinHashTable::ProbeBatch(const uint64_t* hashes, int64_t num_rows,
                               std::vector<int64_t>* probe_idx,
                               std::vector<int64_t>* build_idx) const {
  if (slots_.empty() || num_rows == 0) return;
  // Probes are memory-latency-bound. Two-stage software pipeline over the
  // dependent load chain slot -> entry: the home slot is prefetched
  // kSlotAhead iterations out; at kEntryAhead the now-cached home slot is
  // peeked and, on a hash match, its entry prefetched — so by the time
  // Find runs, both levels are usually resident.
  constexpr int64_t kSlotAhead = 24;
  constexpr int64_t kEntryAhead = 8;
  const uint64_t mask = slots_.size() - 1;
  probe_idx->reserve(probe_idx->size() + static_cast<size_t>(num_rows));
  build_idx->reserve(build_idx->size() + static_cast<size_t>(num_rows));
  for (int64_t j = 0; j < num_rows; ++j) {
    if (j + kSlotAhead < num_rows) {
      __builtin_prefetch(&slots_[hashes[j + kSlotAhead] & mask]);
    }
    if (j + kEntryAhead < num_rows) {
      const uint64_t h2 = hashes[j + kEntryAhead];
      const Slot& peek = slots_[h2 & mask];
      if (peek.entry != kEmptySlot && peek.hash == h2) {
        __builtin_prefetch(&entries_[peek.entry]);
      }
    }
    const Range r = Find(hashes[j]);
    for (const int64_t* p = r.begin; p != r.end; ++p) {
      probe_idx->push_back(j);
      build_idx->push_back(*p);
    }
  }
}

uint64_t JoinHashTable::StateDigest() const {
  uint64_t h = kFnv1aOffset;
  h = HashBytes(h, &region_mask_, sizeof(region_mask_));
  h = HashBytes(h, slots_.data(), slots_.size() * sizeof(Slot));
  h = HashBytes(h, entries_.data(), entries_.size() * sizeof(Entry));
  h = HashBytes(h, row_ids_.data(), row_ids_.size() * sizeof(int64_t));
  return h;
}

std::vector<uint64_t> ColumnKeyHashes(const ColumnData& col,
                                      int64_t num_rows) {
  std::vector<uint64_t> hashes(static_cast<size_t>(num_rows));
  switch (col.type) {
    case ValueType::kInt64:
      simd::HashI64Keys(col.i64.data(), num_rows, hashes.data());
      break;
    case ValueType::kFloat64:
      // Stays scalar: HashFloat64Key branches on Float64AsExactInt64 and
      // f64 keys are rare on the hash-build path.
      for (int64_t i = 0; i < num_rows; ++i) {
        hashes[i] = HashFloat64Key(col.f64[i]);
      }
      break;
    case ValueType::kString: {
      const std::vector<uint64_t> dict_hashes = DictKeyHashes(col);
      simd::HashDictCodes(dict_hashes.data(), col.codes.data(), num_rows,
                          hashes.data());
      break;
    }
  }
  return hashes;
}

void KeyHashRange(const ColumnData& col,
                  const std::vector<uint64_t>& dict_hashes, int64_t begin,
                  int64_t len, uint64_t* out) {
  switch (col.type) {
    case ValueType::kInt64:
      simd::HashI64Keys(col.i64.data() + begin, len, out);
      return;
    case ValueType::kFloat64:
      for (int64_t i = 0; i < len; ++i) {
        out[i] = HashFloat64Key(col.f64[begin + i]);
      }
      return;
    case ValueType::kString:
      simd::HashDictCodes(dict_hashes.data(), col.codes.data() + begin, len,
                          out);
      return;
  }
  GUS_CHECK(false && "unhandled ValueType");
}

void KeyHashRows(const ColumnData& col,
                 const std::vector<uint64_t>& dict_hashes, const int64_t* rows,
                 int64_t len, uint64_t* out) {
  switch (col.type) {
    case ValueType::kInt64:
      simd::HashI64KeysGather(col.i64.data(), rows, len, out);
      return;
    case ValueType::kFloat64:
      for (int64_t i = 0; i < len; ++i) {
        out[i] = HashFloat64Key(col.f64[rows[i]]);
      }
      return;
    case ValueType::kString:
      simd::HashDictCodesGather(dict_hashes.data(), col.codes.data(), rows,
                                len, out);
      return;
  }
  GUS_CHECK(false && "unhandled ValueType");
}

int64_t FilterEqualKeyPairs(const ColumnData& probe_key,
                            const ColumnData& build_key,
                            std::vector<int64_t>* probe_rows,
                            std::vector<int64_t>* build_rows, int64_t begin) {
  GUS_DCHECK(probe_rows->size() == build_rows->size());
  // Same-type fast paths run through the dispatched compaction kernels
  // (in-place, order-preserving, identical survivors in every tier); the
  // lambda paths below handle the rare shapes.
  const auto n = static_cast<int64_t>(probe_rows->size());
  const auto shrink = [&](int64_t w) {
    probe_rows->resize(static_cast<size_t>(w));
    build_rows->resize(static_cast<size_t>(w));
    return w;
  };
  if (probe_key.type == build_key.type) {
    switch (probe_key.type) {
      case ValueType::kInt64:
        return shrink(simd::CompactEqualPairsI64(
            probe_key.i64.data(), build_key.i64.data(), probe_rows->data(),
            build_rows->data(), begin, n));
      case ValueType::kFloat64:
        return shrink(simd::CompactEqualPairsF64(
            probe_key.f64.data(), build_key.f64.data(), probe_rows->data(),
            build_rows->data(), begin, n));
      case ValueType::kString:
        if (probe_key.dict == build_key.dict) {
          return shrink(simd::CompactEqualPairsU32(
              probe_key.codes.data(), build_key.codes.data(),
              probe_rows->data(), build_rows->data(), begin, n));
        }
        return CompactPairs(probe_rows, build_rows, begin,
                            [&](int64_t i, int64_t j) {
                              return probe_key.StringAt(i) ==
                                     build_key.StringAt(j);
                            });
    }
    GUS_CHECK(false && "unhandled ValueType");
  }
  if (probe_key.type == ValueType::kString ||
      build_key.type == ValueType::kString) {
    // String never key-equals a numeric; drop everything.
    probe_rows->resize(static_cast<size_t>(begin));
    build_rows->resize(static_cast<size_t>(begin));
    return begin;
  }
  // Mixed numeric: exact promoted-value comparison (KeyEqualsAt semantics).
  return CompactPairs(probe_rows, build_rows, begin,
                      [&](int64_t i, int64_t j) {
                        return KeyEqualsAt(probe_key, i, build_key, j);
                      });
}

}  // namespace gus
