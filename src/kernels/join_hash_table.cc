#include "kernels/join_hash_table.h"

#include <algorithm>
#include <string>

#include "kernels/key_hash.h"

namespace gus {

namespace {

/// Smallest power of two >= 4n: a load factor of at most 0.25 keeps
/// linear-probe runs near one slot (16 bytes per extra slot is cheap
/// next to the probe stalls it avoids), with a minimum that keeps tiny
/// builds cheap.
uint64_t DirectoryCapacity(int64_t n) {
  uint64_t cap = 16;
  while (cap < static_cast<uint64_t>(n) * 4) cap <<= 1;
  return cap;
}

}  // namespace

Status JoinHashTable::Build(const uint64_t* hashes, int64_t num_rows,
                            const KeyEqFn& eq) {
  slots_.clear();
  entries_.clear();
  row_ids_.clear();
  if (num_rows == 0) return Status::OK();

  slots_.assign(DirectoryCapacity(num_rows), Slot{});
  entries_.reserve(static_cast<size_t>(num_rows));
  const uint64_t mask = slots_.size() - 1;

  // Pass 1: assign every row to a distinct-hash entry (created at first
  // occurrence), counting the entry's rows in Entry::end. Each entry's
  // first row id is kept in row_ids_ (scratch until pass 2) for the
  // collision check.
  std::vector<int64_t> entry_of_row(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    const uint64_t h = hashes[i];
    uint64_t s = h & mask;
    while (true) {
      Slot& slot = slots_[s];
      int64_t e = slot.entry;
      if (e == kEmptySlot) {
        e = static_cast<int64_t>(entries_.size());
        entries_.push_back({0, 0});
        row_ids_.push_back(i);
        slot.hash = h;
        slot.entry = e;
      } else if (slot.hash != h) {
        s = (s + 1) & mask;
        continue;
      } else if (eq != nullptr) {
        // Same hash as an earlier row: a differing key is a true 64-bit
        // collision — refuse to build a merged candidate list silently.
        const int64_t first = row_ids_[e];
        if (!eq(first, i)) {
          return Status::Internal(
              "join build key hash collision between rows " +
              std::to_string(first) + " and " + std::to_string(i));
        }
      }
      entry_of_row[i] = e;
      ++entries_[e].end;
      break;
    }
  }

  // Pass 2: prefix-sum the counts into [begin, end) offsets, then scatter
  // row ids grouped by entry, preserving input order within each group.
  int64_t total = 0;
  for (Entry& e : entries_) {
    e.begin = total;
    total += e.end;
    e.end = e.begin;  // reused as the scatter cursor below
  }
  row_ids_.assign(static_cast<size_t>(num_rows), 0);
  for (int64_t i = 0; i < num_rows; ++i) {
    row_ids_[entries_[entry_of_row[i]].end++] = i;
  }
  return Status::OK();
}

Status JoinHashTable::BuildFrom(const ColumnData& key, int64_t num_rows) {
  const std::vector<uint64_t> hashes = ColumnKeyHashes(key, num_rows);
  return Build(hashes.data(), num_rows, [&key](int64_t i, int64_t j) {
    return JoinBuildKeysCompatible(key, i, j);
  });
}

void JoinHashTable::ProbeBatch(const uint64_t* hashes, int64_t num_rows,
                               std::vector<int64_t>* probe_idx,
                               std::vector<int64_t>* build_idx) const {
  if (slots_.empty() || num_rows == 0) return;
  // Probes are memory-latency-bound. Two-stage software pipeline over the
  // dependent load chain slot -> entry: the home slot is prefetched
  // kSlotAhead iterations out; at kEntryAhead the now-cached home slot is
  // peeked and, on a hash match, its entry prefetched — so by the time
  // Find runs, both levels are usually resident.
  constexpr int64_t kSlotAhead = 24;
  constexpr int64_t kEntryAhead = 8;
  const uint64_t mask = slots_.size() - 1;
  probe_idx->reserve(probe_idx->size() + static_cast<size_t>(num_rows));
  build_idx->reserve(build_idx->size() + static_cast<size_t>(num_rows));
  for (int64_t j = 0; j < num_rows; ++j) {
    if (j + kSlotAhead < num_rows) {
      __builtin_prefetch(&slots_[hashes[j + kSlotAhead] & mask]);
    }
    if (j + kEntryAhead < num_rows) {
      const uint64_t h2 = hashes[j + kEntryAhead];
      const Slot& peek = slots_[h2 & mask];
      if (peek.entry != kEmptySlot && peek.hash == h2) {
        __builtin_prefetch(&entries_[peek.entry]);
      }
    }
    const Range r = Find(hashes[j]);
    for (const int64_t* p = r.begin; p != r.end; ++p) {
      probe_idx->push_back(j);
      build_idx->push_back(*p);
    }
  }
}

std::vector<uint64_t> ColumnKeyHashes(const ColumnData& col,
                                      int64_t num_rows) {
  std::vector<uint64_t> hashes(static_cast<size_t>(num_rows));
  switch (col.type) {
    case ValueType::kInt64:
      for (int64_t i = 0; i < num_rows; ++i) {
        hashes[i] = HashInt64Key(col.i64[i]);
      }
      break;
    case ValueType::kFloat64:
      for (int64_t i = 0; i < num_rows; ++i) {
        hashes[i] = HashFloat64Key(col.f64[i]);
      }
      break;
    case ValueType::kString: {
      const std::vector<uint64_t> dict_hashes = DictKeyHashes(col);
      for (int64_t i = 0; i < num_rows; ++i) {
        hashes[i] = dict_hashes[col.codes[i]];
      }
      break;
    }
  }
  return hashes;
}

}  // namespace gus
