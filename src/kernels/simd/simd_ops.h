// Internal to src/kernels/simd/: the per-tier function table and the
// scalar reference implementations.
//
// The scalar bodies here are THE semantics. The AVX2/AVX-512 translation
// units include this header and (a) install them unchanged for inputs too
// short to vectorize, (b) run them as the tail after the last full vector
// block. A vector block is only a reimplementation of ScalarX over W
// lanes; any divergence is a bug the parity tests are built to catch.

#ifndef GUS_KERNELS_SIMD_SIMD_OPS_H_
#define GUS_KERNELS_SIMD_SIMD_OPS_H_

#include <cstdint>

#include "kernels/simd/simd_dispatch.h"
#include "util/hash.h"

namespace gus::simd {

/// One entry per dispatched kernel; each tier provides a full table.
struct SimdOps {
  int64_t (*sel_nonzero_i64)(const int64_t*, int64_t, int64_t*);
  int64_t (*sel_nonzero_f64)(const double*, int64_t, int64_t*);
  int64_t (*sel_cmp_i64_lit)(CmpOp, const int64_t*, int64_t, double, int64_t*);
  int64_t (*sel_cmp_f64_lit)(CmpOp, const double*, int64_t, double, int64_t*);
  int64_t (*sel_cmp_i64_i64)(CmpOp, const int64_t*, const int64_t*, int64_t,
                             int64_t*);
  int64_t (*sel_cmp_f64_f64)(CmpOp, const double*, const double*, int64_t,
                             int64_t*);
  int64_t (*sel_cmp_i64_f64)(CmpOp, const int64_t*, const double*, int64_t,
                             int64_t*);
  int64_t (*sel_cmp_f64_i64)(CmpOp, const double*, const int64_t*, int64_t,
                             int64_t*);
  void (*hash_i64)(const int64_t*, int64_t, uint64_t*);
  void (*hash_i64_gather)(const int64_t*, const int64_t*, int64_t, uint64_t*);
  void (*hash_dict_codes)(const uint64_t*, const uint32_t*, int64_t,
                          uint64_t*);
  void (*hash_dict_codes_gather)(const uint64_t*, const uint32_t*,
                                 const int64_t*, int64_t, uint64_t*);
  int64_t (*compact_pairs_i64)(const int64_t*, const int64_t*, int64_t*,
                               int64_t*, int64_t, int64_t);
  int64_t (*compact_pairs_f64)(const double*, const double*, int64_t*,
                               int64_t*, int64_t, int64_t);
  int64_t (*compact_pairs_u32)(const uint32_t*, const uint32_t*, int64_t*,
                               int64_t*, int64_t, int64_t);
  int64_t (*lineage_keep_dense)(uint64_t, uint64_t, const uint64_t*, int64_t,
                                int64_t, int64_t, int64_t*);
  int64_t (*lineage_keep_gather)(uint64_t, uint64_t, const uint64_t*, int64_t,
                                 int64_t, const int64_t*, int64_t, int64_t*);
  void (*gather_i64)(const int64_t*, const int64_t*, int64_t, int64_t*);
  void (*gather_f64)(const double*, const int64_t*, int64_t, double*);
  void (*gather_u32)(const uint32_t*, const int64_t*, int64_t, uint32_t*);
  void (*gather_u64)(const uint64_t*, const int64_t*, int64_t, uint64_t*);
  void (*i64_to_f64)(const int64_t*, int64_t, double*);
};

/// ISA tier tables; each returns nullptr when its TU was compiled without
/// the ISA (the dispatcher then never offers the tier). The scalar table
/// lives inside simd_dispatch.cc.
const SimdOps* Avx2Ops();
const SimdOps* Avx512Ops();

// ---- Scalar reference implementations ---------------------------------------

/// vector_eval's comparison decision: cmp from (a<b, a>b) — NaN yields
/// cmp == 0 — then the operator test.
inline bool ScalarCmpKeeps(CmpOp op, double a, double b) {
  const int cmp = a < b ? -1 : (a > b ? 1 : 0);
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

inline int64_t ScalarSelNonZeroI64(const int64_t* x, int64_t n, int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0;
  }
  return w;
}

inline int64_t ScalarSelNonZeroF64(const double* x, int64_t n, int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0.0;
  }
  return w;
}

template <typename L, typename R>
inline int64_t ScalarSelCmp(CmpOp op, const L* x, const R* y, int64_t n,
                            int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]),
                        static_cast<double>(y[i]));
  }
  return w;
}

template <typename L>
inline int64_t ScalarSelCmpLit(CmpOp op, const L* x, int64_t n, double lit,
                               int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]), lit);
  }
  return w;
}

inline void ScalarHashI64(const int64_t* v, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = Mix64(static_cast<uint64_t>(v[i]));
}

inline void ScalarHashI64Gather(const int64_t* vals, const int64_t* rows,
                                int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = Mix64(static_cast<uint64_t>(vals[rows[i]]));
  }
}

inline void ScalarHashDictCodes(const uint64_t* dict_hashes,
                                const uint32_t* codes, int64_t n,
                                uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = dict_hashes[codes[i]];
}

inline void ScalarHashDictCodesGather(const uint64_t* dict_hashes,
                                      const uint32_t* codes,
                                      const int64_t* rows, int64_t n,
                                      uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = dict_hashes[codes[rows[i]]];
}

template <typename T>
inline int64_t ScalarCompactPairs(const T* probe_vals, const T* build_vals,
                                  int64_t* probe_rows, int64_t* build_rows,
                                  int64_t begin, int64_t n) {
  int64_t w = begin;
  for (int64_t k = begin; k < n; ++k) {
    const int64_t i = probe_rows[k];
    const int64_t j = build_rows[k];
    if (probe_vals[i] == build_vals[j]) {
      probe_rows[w] = i;
      build_rows[w] = j;
      ++w;
    }
  }
  return w;
}

/// h >> 11 compared against LineageKeepThreshold(p): exactly the scalar
/// `LineageUnitValue(seed, id) < p` (see the header's proof).
inline bool ScalarLineageKeeps(uint64_t seed, uint64_t threshold,
                               uint64_t id) {
  return (Mix64(HashCombine(seed, id)) >> 11) < threshold;
}

inline int64_t ScalarLineageKeepDense(uint64_t seed, uint64_t threshold,
                                      const uint64_t* ids, int64_t stride,
                                      int64_t begin, int64_t len,
                                      int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < len; ++i) {
    out[w] = begin + i;
    w += ScalarLineageKeeps(seed, threshold, ids[i * stride]);
  }
  return w;
}

inline int64_t ScalarLineageKeepGather(uint64_t seed, uint64_t threshold,
                                       const uint64_t* lineage, int64_t stride,
                                       int64_t dim, const int64_t* sel,
                                       int64_t len, int64_t* out) {
  int64_t w = 0;
  for (int64_t k = 0; k < len; ++k) {
    const int64_t r = sel[k];
    out[w] = r;
    w += ScalarLineageKeeps(seed, threshold, lineage[r * stride + dim]);
  }
  return w;
}

template <typename T>
inline void ScalarGather(const T* src, const int64_t* idx, int64_t n, T* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

inline void ScalarI64ToF64(const int64_t* src, int64_t n, double* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

}  // namespace gus::simd

#endif  // GUS_KERNELS_SIMD_SIMD_OPS_H_
