#include "kernels/simd/simd_dispatch.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/simd/simd_ops.h"

namespace gus::simd {

namespace {

const SimdOps kScalarOps = {
    &ScalarSelNonZeroI64,
    &ScalarSelNonZeroF64,
    &ScalarSelCmpLit<int64_t>,
    &ScalarSelCmpLit<double>,
    &ScalarSelCmp<int64_t, int64_t>,
    &ScalarSelCmp<double, double>,
    &ScalarSelCmp<int64_t, double>,
    &ScalarSelCmp<double, int64_t>,
    &ScalarHashI64,
    &ScalarHashI64Gather,
    &ScalarHashDictCodes,
    &ScalarHashDictCodesGather,
    &ScalarCompactPairs<int64_t>,
    &ScalarCompactPairs<double>,
    &ScalarCompactPairs<uint32_t>,
    &ScalarLineageKeepDense,
    &ScalarLineageKeepGather,
    &ScalarGather<int64_t>,
    &ScalarGather<double>,
    &ScalarGather<uint32_t>,
    &ScalarGather<uint64_t>,
    &ScalarI64ToF64,
};

const SimdOps* OpsForTier(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return &kScalarOps;
    case SimdTier::kAvx2: return Avx2Ops();
    case SimdTier::kAvx512: return Avx512Ops();
  }
  return &kScalarOps;
}

SimdTier DetectTier() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") && Avx512Ops() != nullptr) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && Avx2Ops() != nullptr) {
    return SimdTier::kAvx2;
  }
#endif
  return SimdTier::kScalar;
}

/// Startup tier: detection clamped by GUS_SIMD. An unknown value or a
/// request above the detected tier degrades to the best available with a
/// one-time note, so forced-tier CI jobs skip gracefully on older CPUs.
SimdTier StartupTier() {
  const SimdTier detected = DetectTier();
  const char* env = std::getenv("GUS_SIMD");
  if (env == nullptr || env[0] == '\0') return detected;
  SimdTier requested = detected;
  if (std::strcmp(env, "scalar") == 0) {
    requested = SimdTier::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = SimdTier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = SimdTier::kAvx512;
  } else {
    std::fprintf(stderr,
                 "gus: unknown GUS_SIMD value '%s' (want scalar|avx2|avx512); "
                 "using %s\n",
                 env, SimdTierName(detected));
    return detected;
  }
  if (requested > detected) {
    std::fprintf(stderr,
                 "gus: GUS_SIMD=%s not supported on this host/build; "
                 "using %s\n",
                 env, SimdTierName(detected));
    return detected;
  }
  return requested;
}

/// The installed table. Relaxed atomics suffice: every candidate value is
/// a pointer to an immutable table, and tests only flip the tier from the
/// main thread between single-threaded kernel calls.
std::atomic<const SimdOps*>& ActiveOpsSlot() {
  static std::atomic<const SimdOps*> active{nullptr};
  return active;
}

std::atomic<int>& ActiveTierSlot() {
  static std::atomic<int> tier{-1};
  return tier;
}

void InstallTier(SimdTier tier) {
  ActiveOpsSlot().store(OpsForTier(tier), std::memory_order_relaxed);
  ActiveTierSlot().store(static_cast<int>(tier), std::memory_order_relaxed);
}

const SimdOps& Active() {
  const SimdOps* ops = ActiveOpsSlot().load(std::memory_order_relaxed);
  if (ops == nullptr) {
    InstallTier(StartupTier());
    ops = ActiveOpsSlot().load(std::memory_order_relaxed);
  }
  return *ops;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "unknown";
}

SimdTier DetectedSimdTier() {
  static const SimdTier detected = DetectTier();
  return detected;
}

SimdTier ActiveSimdTier() {
  Active();  // ensure installed
  return static_cast<SimdTier>(
      ActiveTierSlot().load(std::memory_order_relaxed));
}

SimdTier SetSimdTierForTesting(SimdTier tier) {
  const SimdTier detected = DetectedSimdTier();
  const SimdTier installed = tier > detected ? detected : tier;
  InstallTier(installed);
  return installed;
}

void ResetSimdTierForTesting() { InstallTier(StartupTier()); }

uint64_t LineageKeepThreshold(double p) {
  if (!(p > 0.0)) return 0;                          // p <= 0 or NaN: drop all
  if (p >= 1.0) return uint64_t{1} << 53;            // every m < 2^53 keeps
  return static_cast<uint64_t>(std::ceil(p * 0x1.0p53));
}

// ---- Dispatching wrappers ---------------------------------------------------

int64_t SelNonZeroI64(const int64_t* x, int64_t n, int64_t* out) {
  return Active().sel_nonzero_i64(x, n, out);
}
int64_t SelNonZeroF64(const double* x, int64_t n, int64_t* out) {
  return Active().sel_nonzero_f64(x, n, out);
}
int64_t SelCmpI64Lit(CmpOp op, const int64_t* x, int64_t n, double lit,
                     int64_t* out) {
  return Active().sel_cmp_i64_lit(op, x, n, lit, out);
}
int64_t SelCmpF64Lit(CmpOp op, const double* x, int64_t n, double lit,
                     int64_t* out) {
  return Active().sel_cmp_f64_lit(op, x, n, lit, out);
}
int64_t SelCmpI64I64(CmpOp op, const int64_t* x, const int64_t* y, int64_t n,
                     int64_t* out) {
  return Active().sel_cmp_i64_i64(op, x, y, n, out);
}
int64_t SelCmpF64F64(CmpOp op, const double* x, const double* y, int64_t n,
                     int64_t* out) {
  return Active().sel_cmp_f64_f64(op, x, y, n, out);
}
int64_t SelCmpI64F64(CmpOp op, const int64_t* x, const double* y, int64_t n,
                     int64_t* out) {
  return Active().sel_cmp_i64_f64(op, x, y, n, out);
}
int64_t SelCmpF64I64(CmpOp op, const double* x, const int64_t* y, int64_t n,
                     int64_t* out) {
  return Active().sel_cmp_f64_i64(op, x, y, n, out);
}

void HashI64Keys(const int64_t* v, int64_t n, uint64_t* out) {
  Active().hash_i64(v, n, out);
}
void HashI64KeysGather(const int64_t* vals, const int64_t* rows, int64_t n,
                       uint64_t* out) {
  Active().hash_i64_gather(vals, rows, n, out);
}
void HashDictCodes(const uint64_t* dict_hashes, const uint32_t* codes,
                   int64_t n, uint64_t* out) {
  Active().hash_dict_codes(dict_hashes, codes, n, out);
}
void HashDictCodesGather(const uint64_t* dict_hashes, const uint32_t* codes,
                         const int64_t* rows, int64_t n, uint64_t* out) {
  Active().hash_dict_codes_gather(dict_hashes, codes, rows, n, out);
}

int64_t CompactEqualPairsI64(const int64_t* probe_vals,
                             const int64_t* build_vals, int64_t* probe_rows,
                             int64_t* build_rows, int64_t begin, int64_t n) {
  return Active().compact_pairs_i64(probe_vals, build_vals, probe_rows,
                                    build_rows, begin, n);
}
int64_t CompactEqualPairsF64(const double* probe_vals, const double* build_vals,
                             int64_t* probe_rows, int64_t* build_rows,
                             int64_t begin, int64_t n) {
  return Active().compact_pairs_f64(probe_vals, build_vals, probe_rows,
                                    build_rows, begin, n);
}
int64_t CompactEqualPairsU32(const uint32_t* probe_vals,
                             const uint32_t* build_vals, int64_t* probe_rows,
                             int64_t* build_rows, int64_t begin, int64_t n) {
  return Active().compact_pairs_u32(probe_vals, build_vals, probe_rows,
                                    build_rows, begin, n);
}

int64_t LineageKeepDense(uint64_t seed, uint64_t threshold,
                         const uint64_t* ids, int64_t stride, int64_t begin,
                         int64_t len, int64_t* out) {
  return Active().lineage_keep_dense(seed, threshold, ids, stride, begin, len,
                                     out);
}
int64_t LineageKeepGather(uint64_t seed, uint64_t threshold,
                          const uint64_t* lineage, int64_t stride, int64_t dim,
                          const int64_t* sel, int64_t len, int64_t* out) {
  return Active().lineage_keep_gather(seed, threshold, lineage, stride, dim,
                                      sel, len, out);
}

void GatherI64(const int64_t* src, const int64_t* idx, int64_t n,
               int64_t* dst) {
  Active().gather_i64(src, idx, n, dst);
}
void GatherF64(const double* src, const int64_t* idx, int64_t n, double* dst) {
  Active().gather_f64(src, idx, n, dst);
}
void GatherU32(const uint32_t* src, const int64_t* idx, int64_t n,
               uint32_t* dst) {
  Active().gather_u32(src, idx, n, dst);
}
void GatherU64(const uint64_t* src, const int64_t* idx, int64_t n,
               uint64_t* dst) {
  Active().gather_u64(src, idx, n, dst);
}
void ConvertI64ToF64(const int64_t* src, int64_t n, double* dst) {
  Active().i64_to_f64(src, n, dst);
}

}  // namespace gus::simd
