// AVX-512 kernel tier: 8 lanes of 64 bits per block, scalar reference
// tail. Requires F (masks, gathers) and DQ (64-bit mullo, int64 -> double
// convert); the dispatcher checks both CPUID bits before offering the
// tier.
//
// Bit parity is simpler than AVX2 here: the ISA has a native exact
// _mm512_cvtepi64_pd (same round-to-nearest as the scalar cast), a native
// 64x64 mullo, and mask compress-stores that keep survivors in lane
// (= input) order.

#include "kernels/simd/simd_ops.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace gus::simd {

namespace {

constexpr long long kMixAdd = static_cast<long long>(0x9e3779b97f4a7c15ULL);
constexpr long long kMixMul1 = static_cast<long long>(0xbf58476d1ce4e5b9ULL);
constexpr long long kMixMul2 = static_cast<long long>(0x94d049bb133111ebULL);

/// Vector SplitMix64 finalizer (util/hash.h Mix64, 8 lanes).
inline __m512i Mix64x8(__m512i x) {
  x = _mm512_add_epi64(x, _mm512_set1_epi64(kMixAdd));
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)),
                         _mm512_set1_epi64(kMixMul1));
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)),
                         _mm512_set1_epi64(kMixMul2));
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

inline __m512d LoadAsF64(const double* p) { return _mm512_loadu_pd(p); }
inline __m512d LoadAsF64(const int64_t* p) {
  return _mm512_cvtepi64_pd(_mm512_loadu_si512(p));
}

/// Keep mask for one comparison block — the mask algebra of
/// ScalarCmpKeeps (NaN: both lt and gt false).
inline __mmask8 CmpKeepMask8(CmpOp op, __m512d a, __m512d b) {
  const __mmask8 lt = _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  const __mmask8 gt = _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
  switch (op) {
    case CmpOp::kEq: return static_cast<__mmask8>(~(lt | gt));
    case CmpOp::kNe: return static_cast<__mmask8>(lt | gt);
    case CmpOp::kLt: return lt;
    case CmpOp::kLe: return static_cast<__mmask8>(~gt);
    case CmpOp::kGt: return gt;
    case CmpOp::kGe: return static_cast<__mmask8>(~lt);
  }
  return 0;
}

/// Compress-stores the masked lanes at out + w; returns the new w.
/// compressstoreu writes only the surviving lanes, so no overrun slack is
/// needed.
inline int64_t CompressStore8(int64_t* out, int64_t w, __m512i lanes,
                              __mmask8 mask) {
  _mm512_mask_compressstoreu_epi64(out + w, mask, lanes);
  return w + __builtin_popcount(static_cast<unsigned>(mask));
}

inline __m512i Iota8(int64_t base) {
  return _mm512_add_epi64(_mm512_set1_epi64(base),
                          _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
}

int64_t SelNonZeroI64Avx512(const int64_t* x, int64_t n, int64_t* out) {
  int64_t w = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(x + i);
    w = CompressStore8(out, w, Iota8(i), _mm512_test_epi64_mask(v, v));
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0;
  }
  return w;
}

int64_t SelNonZeroF64Avx512(const double* x, int64_t n, int64_t* out) {
  int64_t w = 0, i = 0;
  const __m512d zero = _mm512_setzero_pd();
  for (; i + 8 <= n; i += 8) {
    // NEQ_UQ: true for NaN, false for +-0 — the scalar `x[i] != 0.0`.
    const __mmask8 mask =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(x + i), zero, _CMP_NEQ_UQ);
    w = CompressStore8(out, w, Iota8(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0.0;
  }
  return w;
}

template <typename L>
int64_t SelCmpLitAvx512(CmpOp op, const L* x, int64_t n, double lit,
                        int64_t* out) {
  int64_t w = 0, i = 0;
  const __m512d vlit = _mm512_set1_pd(lit);
  for (; i + 8 <= n; i += 8) {
    const __mmask8 mask = CmpKeepMask8(op, LoadAsF64(x + i), vlit);
    w = CompressStore8(out, w, Iota8(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]), lit);
  }
  return w;
}

template <typename L, typename R>
int64_t SelCmpAvx512(CmpOp op, const L* x, const R* y, int64_t n,
                     int64_t* out) {
  int64_t w = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 mask = CmpKeepMask8(op, LoadAsF64(x + i), LoadAsF64(y + i));
    w = CompressStore8(out, w, Iota8(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]),
                        static_cast<double>(y[i]));
  }
  return w;
}

void HashI64Avx512(const int64_t* v, int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(out + i, Mix64x8(_mm512_loadu_si512(v + i)));
  }
  for (; i < n; ++i) out[i] = Mix64(static_cast<uint64_t>(v[i]));
}

void HashI64GatherAvx512(const int64_t* vals, const int64_t* rows, int64_t n,
                         uint64_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i idx = _mm512_loadu_si512(rows + i);
    const __m512i v = _mm512_i64gather_epi64(idx, vals, 8);
    _mm512_storeu_si512(out + i, Mix64x8(v));
  }
  for (; i < n; ++i) out[i] = Mix64(static_cast<uint64_t>(vals[rows[i]]));
}

void HashDictCodesAvx512(const uint64_t* dict_hashes, const uint32_t* codes,
                         int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m512i h = _mm512_i32gather_epi64(c, dict_hashes, 8);
    _mm512_storeu_si512(out + i, h);
  }
  for (; i < n; ++i) out[i] = dict_hashes[codes[i]];
}

void HashDictCodesGatherAvx512(const uint64_t* dict_hashes,
                               const uint32_t* codes, const int64_t* rows,
                               int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i idx = _mm512_loadu_si512(rows + i);
    const __m256i c = _mm512_i64gather_epi32(idx, codes, 4);
    const __m512i h = _mm512_i32gather_epi64(c, dict_hashes, 8);
    _mm512_storeu_si512(out + i, h);
  }
  for (; i < n; ++i) out[i] = dict_hashes[codes[rows[i]]];
}

/// Shared pair-compaction skeleton; see the AVX2 TU for the in-place
/// safety argument (w <= k at every block start; compress-store writes
/// only surviving lanes, which is even tighter here).
template <typename EqMaskFn, typename EqScalarFn>
int64_t CompactPairsAvx512(int64_t* probe_rows, int64_t* build_rows,
                           int64_t begin, int64_t n, const EqMaskFn& eq_mask,
                           const EqScalarFn& eq_scalar) {
  int64_t w = begin, k = begin;
  for (; k + 8 <= n; k += 8) {
    const __m512i pr = _mm512_loadu_si512(probe_rows + k);
    const __m512i br = _mm512_loadu_si512(build_rows + k);
    const __mmask8 mask = eq_mask(pr, br);
    _mm512_mask_compressstoreu_epi64(probe_rows + w, mask, pr);
    _mm512_mask_compressstoreu_epi64(build_rows + w, mask, br);
    w += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; k < n; ++k) {
    const int64_t i = probe_rows[k];
    const int64_t j = build_rows[k];
    if (eq_scalar(i, j)) {
      probe_rows[w] = i;
      build_rows[w] = j;
      ++w;
    }
  }
  return w;
}

int64_t CompactPairsI64Avx512(const int64_t* probe_vals,
                              const int64_t* build_vals, int64_t* probe_rows,
                              int64_t* build_rows, int64_t begin, int64_t n) {
  return CompactPairsAvx512(
      probe_rows, build_rows, begin, n,
      [&](__m512i pr, __m512i br) {
        const __m512i pv = _mm512_i64gather_epi64(pr, probe_vals, 8);
        const __m512i bv = _mm512_i64gather_epi64(br, build_vals, 8);
        return _mm512_cmpeq_epi64_mask(pv, bv);
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

int64_t CompactPairsF64Avx512(const double* probe_vals,
                              const double* build_vals, int64_t* probe_rows,
                              int64_t* build_rows, int64_t begin, int64_t n) {
  return CompactPairsAvx512(
      probe_rows, build_rows, begin, n,
      [&](__m512i pr, __m512i br) {
        // Value equality (EQ_OQ): NaN matches nothing, -0.0 == +0.0.
        const __m512d pv = _mm512_castsi512_pd(
            _mm512_i64gather_epi64(pr, probe_vals, 8));
        const __m512d bv = _mm512_castsi512_pd(
            _mm512_i64gather_epi64(br, build_vals, 8));
        return _mm512_cmp_pd_mask(pv, bv, _CMP_EQ_OQ);
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

int64_t CompactPairsU32Avx512(const uint32_t* probe_vals,
                              const uint32_t* build_vals, int64_t* probe_rows,
                              int64_t* build_rows, int64_t begin, int64_t n) {
  return CompactPairsAvx512(
      probe_rows, build_rows, begin, n,
      [&](__m512i pr, __m512i br) {
        const __m256i pv = _mm512_i64gather_epi32(pr, probe_vals, 4);
        const __m256i bv = _mm512_i64gather_epi32(br, build_vals, 4);
        return static_cast<__mmask8>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(pv, bv))));
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

/// id lanes -> keep mask; see the AVX2 TU. AVX-512 has a real unsigned
/// 64-bit compare, so the threshold test is direct.
struct LineageHasher {
  explicit LineageHasher(uint64_t seed, uint64_t threshold)
      : xor_seed(_mm512_set1_epi64(static_cast<long long>(seed))),
        add_k(_mm512_set1_epi64(static_cast<long long>(
            0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)))),
        thresh(_mm512_set1_epi64(static_cast<long long>(threshold))) {}

  __mmask8 KeepMask(__m512i ids) const {
    __m512i h = _mm512_xor_si512(xor_seed, _mm512_add_epi64(ids, add_k));
    h = Mix64x8(Mix64x8(h));
    return _mm512_cmplt_epu64_mask(_mm512_srli_epi64(h, 11), thresh);
  }

  __m512i xor_seed, add_k, thresh;
};

int64_t LineageKeepDenseAvx512(uint64_t seed, uint64_t threshold,
                               const uint64_t* ids, int64_t stride,
                               int64_t begin, int64_t len, int64_t* out) {
  const LineageHasher hasher(seed, threshold);
  int64_t w = 0, i = 0;
  if (stride == 1) {
    for (; i + 8 <= len; i += 8) {
      const __m512i v = _mm512_loadu_si512(ids + i);
      w = CompressStore8(out, w, Iota8(begin + i), hasher.KeepMask(v));
    }
  } else {
    __m512i idx = _mm512_mullo_epi64(_mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7),
                                     _mm512_set1_epi64(stride));
    const __m512i step = _mm512_set1_epi64(8 * stride);
    for (; i + 8 <= len; i += 8) {
      const __m512i v = _mm512_i64gather_epi64(idx, ids, 8);
      idx = _mm512_add_epi64(idx, step);
      w = CompressStore8(out, w, Iota8(begin + i), hasher.KeepMask(v));
    }
  }
  for (; i < len; ++i) {
    out[w] = begin + i;
    w += ScalarLineageKeeps(seed, threshold, ids[i * stride]);
  }
  return w;
}

int64_t LineageKeepGatherAvx512(uint64_t seed, uint64_t threshold,
                                const uint64_t* lineage, int64_t stride,
                                int64_t dim, const int64_t* sel, int64_t len,
                                int64_t* out) {
  const LineageHasher hasher(seed, threshold);
  int64_t w = 0, k = 0;
  const __m512i vstride = _mm512_set1_epi64(stride);
  const __m512i vdim = _mm512_set1_epi64(dim);
  for (; k + 8 <= len; k += 8) {
    const __m512i rows = _mm512_loadu_si512(sel + k);
    const __m512i idx =
        _mm512_add_epi64(_mm512_mullo_epi64(rows, vstride), vdim);
    const __m512i v = _mm512_i64gather_epi64(idx, lineage, 8);
    w = CompressStore8(out, w, rows, hasher.KeepMask(v));
  }
  for (; k < len; ++k) {
    const int64_t r = sel[k];
    out[w] = r;
    w += ScalarLineageKeeps(seed, threshold, lineage[r * stride + dim]);
  }
  return w;
}

void GatherI64Avx512(const int64_t* src, const int64_t* idx, int64_t n,
                     int64_t* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_i64gather_epi64(_mm512_loadu_si512(idx + i), src, 8);
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherF64Avx512(const double* src, const int64_t* idx, int64_t n,
                     double* dst) {
  GatherI64Avx512(reinterpret_cast<const int64_t*>(src), idx, n,
                  reinterpret_cast<int64_t*>(dst));
}

void GatherU32Avx512(const uint32_t* src, const int64_t* idx, int64_t n,
                     uint32_t* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm512_i64gather_epi32(_mm512_loadu_si512(idx + i), src, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherU64Avx512(const uint64_t* src, const int64_t* idx, int64_t n,
                     uint64_t* dst) {
  GatherI64Avx512(reinterpret_cast<const int64_t*>(src), idx, n,
                  reinterpret_cast<int64_t*>(dst));
}

void I64ToF64Avx512(const int64_t* src, int64_t n, double* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_cvtepi64_pd(_mm512_loadu_si512(src + i)));
  }
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

const SimdOps kAvx512Ops = {
    &SelNonZeroI64Avx512,
    &SelNonZeroF64Avx512,
    &SelCmpLitAvx512<int64_t>,
    &SelCmpLitAvx512<double>,
    &SelCmpAvx512<int64_t, int64_t>,
    &SelCmpAvx512<double, double>,
    &SelCmpAvx512<int64_t, double>,
    &SelCmpAvx512<double, int64_t>,
    &HashI64Avx512,
    &HashI64GatherAvx512,
    &HashDictCodesAvx512,
    &HashDictCodesGatherAvx512,
    &CompactPairsI64Avx512,
    &CompactPairsF64Avx512,
    &CompactPairsU32Avx512,
    &LineageKeepDenseAvx512,
    &LineageKeepGatherAvx512,
    &GatherI64Avx512,
    &GatherF64Avx512,
    &GatherU32Avx512,
    &GatherU64Avx512,
    &I64ToF64Avx512,
};

}  // namespace

const SimdOps* Avx512Ops() { return &kAvx512Ops; }

}  // namespace gus::simd

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace gus::simd {
const SimdOps* Avx512Ops() { return nullptr; }
}  // namespace gus::simd

#endif
