// Runtime-dispatched data-parallel kernels for the hot scalar loops.
//
// One tier is selected once at startup from CPUID (overridable with
// GUS_SIMD=scalar|avx2|avx512 for testing and benchmarking) and every
// kernel below forwards through a per-tier function table. The contract
// is strict bit parity: for any input, every tier produces byte-identical
// output — identical selection vectors (same indexes, same ascending
// order), identical hashes, identical keep-sets. Three ingredients make
// that hold:
//
//   * Compaction kernels preserve input order (compress-store writes
//     survivors in lane order, which is input order), so a selection
//     vector is the same sequence no matter how many lanes built it.
//   * Comparisons replicate the scalar semantics exactly, including the
//     promote-to-double rule of plan/vector_eval (int64 operands convert
//     with the same round-to-nearest cast in every tier) and its NaN
//     behavior (cmp = 0, so Eq/Le/Ge are true against NaN).
//   * The Bernoulli keep test `HashToUnit(h) < p` is replaced by the
//     exactly equivalent integer test `(h >> 11) < LineageKeepThreshold(p)`
//     in all tiers — see LineageKeepThreshold for the equivalence proof —
//     so no tier ever evaluates a float compare that another tier rounds
//     differently.
//
// Kernels that are pure data movement (gathers, widening converts) are
// trivially bit-identical. Nothing in this layer reassociates a float
// sum: estimator fold orders are owned by est/ and never change with the
// tier.

#ifndef GUS_KERNELS_SIMD_SIMD_DISPATCH_H_
#define GUS_KERNELS_SIMD_SIMD_DISPATCH_H_

#include <cstdint>

namespace gus::simd {

/// Dispatch tiers, ordered: a tier may be forced *down* but never above
/// what the CPU (and the build) supports.
enum class SimdTier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable tier name ("scalar" / "avx2" / "avx512").
const char* SimdTierName(SimdTier tier);

/// Best tier the running CPU supports among those compiled in (cached).
SimdTier DetectedSimdTier();

/// \brief The tier every kernel dispatches through.
///
/// DetectedSimdTier() clamped by the GUS_SIMD environment variable (read
/// once, at first use: "scalar", "avx2" or "avx512"; a request above the
/// detected tier clamps down with a one-time stderr note, so forced-tier
/// CI jobs degrade gracefully on older runners) and by the test override.
SimdTier ActiveSimdTier();

/// \brief Test hook: forces the dispatch tier from here on.
///
/// Clamped to DetectedSimdTier(); returns the tier actually installed so
/// tests can GTEST_SKIP when the host cannot run the requested ISA.
SimdTier SetSimdTierForTesting(SimdTier tier);

/// Test hook: restores the startup (env-derived) tier.
void ResetSimdTierForTesting();

/// Comparison operator for the fused predicate kernels. Semantics match
/// plan/vector_eval's CompareOp over cmp(a,b) = a<b ? -1 : (a>b ? 1 : 0):
/// against a NaN operand cmp is 0, so kEq/kLe/kGe hold and kNe/kLt/kGt do
/// not — every tier reproduces exactly that.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// ---- Predicate evaluation ---------------------------------------------------
// Each Sel* kernel appends to `out` the indexes i in [0, n) whose row
// passes, in ascending order, and returns the count. `out` must have room
// for n entries.

/// Truthiness compaction of an evaluated predicate column (x[i] != 0).
int64_t SelNonZeroI64(const int64_t* x, int64_t n, int64_t* out);
/// Float truthiness (x[i] != 0.0; NaN is truthy, as in the scalar path).
int64_t SelNonZeroF64(const double* x, int64_t n, int64_t* out);

/// Fused compare-against-literal over a dense column. Int64 lanes promote
/// to double first (the vector_eval rule), `lit` is already promoted.
int64_t SelCmpI64Lit(CmpOp op, const int64_t* x, int64_t n, double lit,
                     int64_t* out);
int64_t SelCmpF64Lit(CmpOp op, const double* x, int64_t n, double lit,
                     int64_t* out);

/// Fused column-vs-column compare (both sides promote to double).
int64_t SelCmpI64I64(CmpOp op, const int64_t* x, const int64_t* y, int64_t n,
                     int64_t* out);
int64_t SelCmpF64F64(CmpOp op, const double* x, const double* y, int64_t n,
                     int64_t* out);
int64_t SelCmpI64F64(CmpOp op, const int64_t* x, const double* y, int64_t n,
                     int64_t* out);
int64_t SelCmpF64I64(CmpOp op, const double* x, const int64_t* y, int64_t n,
                     int64_t* out);

// ---- 64-bit key hashing -----------------------------------------------------

/// out[i] = HashInt64Key(v[i]) (the SplitMix64 finalizer), 8 lanes wide.
void HashI64Keys(const int64_t* v, int64_t n, uint64_t* out);

/// out[i] = HashInt64Key(vals[rows[i]]) — gather + hash fused.
void HashI64KeysGather(const int64_t* vals, const int64_t* rows, int64_t n,
                       uint64_t* out);

/// out[i] = dict_hashes[codes[i]] (string keys hash via their dictionary).
void HashDictCodes(const uint64_t* dict_hashes, const uint32_t* codes,
                   int64_t n, uint64_t* out);

/// out[i] = dict_hashes[codes[rows[i]]].
void HashDictCodesGather(const uint64_t* dict_hashes, const uint32_t* codes,
                         const int64_t* rows, int64_t n, uint64_t* out);

// ---- Join key recheck (FilterEqualKeyPairs core) ----------------------------
// In-place order-preserving compaction of candidate pair lists: keep pair
// k in [begin, n) iff probe_vals[probe_rows[k]] == build_vals[build_rows[k]],
// writing survivors at [begin, w). Returns w. Equality is value equality
// (for doubles: IEEE ==, so NaN never matches and -0.0 == +0.0).

int64_t CompactEqualPairsI64(const int64_t* probe_vals,
                             const int64_t* build_vals, int64_t* probe_rows,
                             int64_t* build_rows, int64_t begin, int64_t n);
int64_t CompactEqualPairsF64(const double* probe_vals, const double* build_vals,
                             int64_t* probe_rows, int64_t* build_rows,
                             int64_t begin, int64_t n);
int64_t CompactEqualPairsU32(const uint32_t* probe_vals,
                             const uint32_t* build_vals, int64_t* probe_rows,
                             int64_t* build_rows, int64_t begin, int64_t n);

// ---- Lineage Bernoulli keep-mask --------------------------------------------

/// \brief The integer threshold T with `HashToUnit(h) < p  <=>  (h>>11) < T`.
///
/// m = h>>11 is an integer in [0, 2^53), and both (double)m and m * 2^-53
/// are exact doubles (53-bit integer; scaling by a power of two), so
/// m * 2^-53 < p  <=>  m < p * 2^53 over the reals  <=>  m < ceil(p * 2^53)
/// for integer m. p * 2^53 is itself exact for p in [0, 1] (pure exponent
/// shift), so T = ceil(p * 2^53) computes without rounding error.
uint64_t LineageKeepThreshold(double p);

/// \brief Dense keep-mask: appends `begin + i` to `out` for each i in
/// [0, len) with (Mix64(HashCombine(seed, ids[i * stride])) >> 11) <
/// threshold; returns the count. `ids` is pre-offset to the sampled
/// lineage dimension; `stride` is the lineage arity.
int64_t LineageKeepDense(uint64_t seed, uint64_t threshold,
                         const uint64_t* ids, int64_t stride, int64_t begin,
                         int64_t len, int64_t* out);

/// Gather form: appends sel[k] for each kept k, ids taken at
/// lineage[sel[k] * stride + dim].
int64_t LineageKeepGather(uint64_t seed, uint64_t threshold,
                          const uint64_t* lineage, int64_t stride, int64_t dim,
                          const int64_t* sel, int64_t len, int64_t* out);

// ---- Typed gathers and converts (batch join emit / group-by feeds) ----------

void GatherI64(const int64_t* src, const int64_t* idx, int64_t n,
               int64_t* dst);
void GatherF64(const double* src, const int64_t* idx, int64_t n, double* dst);
void GatherU32(const uint32_t* src, const int64_t* idx, int64_t n,
               uint32_t* dst);
void GatherU64(const uint64_t* src, const int64_t* idx, int64_t n,
               uint64_t* dst);

/// dst[i] = (double)src[i] (round-to-nearest, identical in every tier).
void ConvertI64ToF64(const int64_t* src, int64_t n, double* dst);

}  // namespace gus::simd

#endif  // GUS_KERNELS_SIMD_SIMD_DISPATCH_H_
