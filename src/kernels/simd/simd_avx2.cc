// AVX2 kernel tier: 4 lanes of 64 bits per block, scalar reference tail.
//
// Bit-parity notes specific to this tier:
//   * AVX2 has no 64x64->64 multiply; Mul64 builds it from 32-bit partial
//     products — exact mod 2^64, so the vector Mix64 equals the scalar.
//   * AVX2 has no int64 -> double convert; CvtI64ToF64 uses the exact
//     split-and-recombine trick (one rounding, in the final add, exactly
//     where the hardware convert rounds) so promoted compares match the
//     scalar static_cast lane for lane across the full int64 range. The
//     randomized parity tests cover the 2^52/2^53/2^63 boundaries.
//   * Compaction uses a 16-entry permutation table indexed by the keep
//     mask; survivors stay in lane (= input) order.

#include "kernels/simd/simd_ops.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace gus::simd {

namespace {

constexpr long long kMixAdd = static_cast<long long>(0x9e3779b97f4a7c15ULL);
constexpr long long kMixMul1 = static_cast<long long>(0xbf58476d1ce4e5b9ULL);
constexpr long long kMixMul2 = static_cast<long long>(0x94d049bb133111ebULL);

/// 64x64 -> low 64 multiply from 32-bit partial products (exact mod 2^64).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Vector SplitMix64 finalizer (util/hash.h Mix64, 4 lanes).
inline __m256i Mix64x4(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(kMixAdd));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(kMixMul1));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(kMixMul2));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// Exact full-range signed int64 -> double (single rounding in the final
/// add, matching the scalar cast's round-to-nearest).
inline __m256d CvtI64ToF64(__m256i v) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i magic_hi = _mm256_set1_epi64x(0x4530000080000000LL);
  const __m256d magic_all =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x4530000080100000LL));
  const __m256i lo = _mm256_blend_epi32(magic_lo, v, 0b01010101);
  const __m256i hi =
      _mm256_xor_si256(_mm256_srli_epi64(v, 32), magic_hi);
  const __m256d hi_d = _mm256_sub_pd(_mm256_castsi256_pd(hi), magic_all);
  return _mm256_add_pd(hi_d, _mm256_castsi256_pd(lo));
}

inline __m256d LoadAsF64(const double* p) { return _mm256_loadu_pd(p); }
inline __m256d LoadAsF64(const int64_t* p) {
  return CvtI64ToF64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

/// Keep mask for one comparison block, from the (a<b, a>b) masks — the
/// exact mask algebra of ScalarCmpKeeps (NaN: both false).
inline int CmpKeepMask4(CmpOp op, __m256d a, __m256d b) {
  const int lt = _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LT_OQ));
  const int gt = _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ));
  switch (op) {
    case CmpOp::kEq: return ~(lt | gt) & 0xF;
    case CmpOp::kNe: return (lt | gt) & 0xF;
    case CmpOp::kLt: return lt;
    case CmpOp::kLe: return ~gt & 0xF;
    case CmpOp::kGt: return gt;
    case CmpOp::kGe: return ~lt & 0xF;
  }
  return 0;
}

/// mask -> dword permutation compacting the kept 64-bit lanes leftward in
/// lane order (lane k occupies dwords 2k, 2k+1).
struct Compress4Table {
  uint32_t v[16][8];
};

constexpr Compress4Table MakeCompress4Table() {
  Compress4Table t{};
  for (int m = 0; m < 16; ++m) {
    int w = 0;
    for (uint32_t lane = 0; lane < 4; ++lane) {
      if (m & (1 << lane)) {
        t.v[m][2 * w] = 2 * lane;
        t.v[m][2 * w + 1] = 2 * lane + 1;
        ++w;
      }
    }
    for (; w < 4; ++w) {
      t.v[m][2 * w] = 0;
      t.v[m][2 * w + 1] = 1;
    }
  }
  return t;
}

constexpr Compress4Table kCompress4 = MakeCompress4Table();

/// Compress-stores the masked lanes at out + w; returns the new w. The
/// full 4-lane store is safe: callers only run vector blocks while
/// w + 4 <= capacity(out) (w never exceeds the block's start index).
inline int64_t CompressStore4(int64_t* out, int64_t w, __m256i lanes,
                              int mask) {
  const __m256i perm = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kCompress4.v[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                      _mm256_permutevar8x32_epi32(lanes, perm));
  return w + __builtin_popcount(static_cast<unsigned>(mask));
}

inline __m256i Iota4(int64_t base) {
  return _mm256_setr_epi64x(base, base + 1, base + 2, base + 3);
}

int64_t SelNonZeroI64Avx2(const int64_t* x, int64_t n, int64_t* out) {
  int64_t w = 0, i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const int zeros = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)));
    w = CompressStore4(out, w, Iota4(i), ~zeros & 0xF);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0;
  }
  return w;
}

int64_t SelNonZeroF64Avx2(const double* x, int64_t n, int64_t* out) {
  int64_t w = 0, i = 0;
  const __m256d zero = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    // NEQ_UQ: true for NaN, false for +-0 — the scalar `x[i] != 0.0`.
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_NEQ_UQ));
    w = CompressStore4(out, w, Iota4(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += x[i] != 0.0;
  }
  return w;
}

template <typename L>
int64_t SelCmpLitAvx2(CmpOp op, const L* x, int64_t n, double lit,
                      int64_t* out) {
  int64_t w = 0, i = 0;
  const __m256d vlit = _mm256_set1_pd(lit);
  for (; i + 4 <= n; i += 4) {
    const int mask = CmpKeepMask4(op, LoadAsF64(x + i), vlit);
    w = CompressStore4(out, w, Iota4(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]), lit);
  }
  return w;
}

template <typename L, typename R>
int64_t SelCmpAvx2(CmpOp op, const L* x, const R* y, int64_t n, int64_t* out) {
  int64_t w = 0, i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = CmpKeepMask4(op, LoadAsF64(x + i), LoadAsF64(y + i));
    w = CompressStore4(out, w, Iota4(i), mask);
  }
  for (; i < n; ++i) {
    out[w] = i;
    w += ScalarCmpKeeps(op, static_cast<double>(x[i]),
                        static_cast<double>(y[i]));
  }
  return w;
}

void HashI64Avx2(const int64_t* v, int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Mix64x4(x));
  }
  for (; i < n; ++i) out[i] = Mix64(static_cast<uint64_t>(v[i]));
}

void HashI64GatherAvx2(const int64_t* vals, const int64_t* rows, int64_t n,
                       uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(vals), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Mix64x4(v));
  }
  for (; i < n; ++i) out[i] = Mix64(static_cast<uint64_t>(vals[rows[i]]));
}

void HashDictCodesAvx2(const uint64_t* dict_hashes, const uint32_t* codes,
                       int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m256i h = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(dict_hashes), c, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) out[i] = dict_hashes[codes[i]];
}

void HashDictCodesGatherAvx2(const uint64_t* dict_hashes,
                             const uint32_t* codes, const int64_t* rows,
                             int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m128i c = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(codes), idx, 4);
    const __m256i h = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(dict_hashes), c, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) out[i] = dict_hashes[codes[rows[i]]];
}

/// Shared pair-compaction skeleton: EqMask4(k) yields the 4-bit equality
/// mask for pairs [k, k+4). In-place is safe: w <= k at every block start,
/// so the 4-lane stores never clobber unread pairs.
template <typename EqMaskFn, typename EqScalarFn>
int64_t CompactPairsAvx2(int64_t* probe_rows, int64_t* build_rows,
                         int64_t begin, int64_t n, const EqMaskFn& eq_mask,
                         const EqScalarFn& eq_scalar) {
  int64_t w = begin, k = begin;
  for (; k + 4 <= n; k += 4) {
    const __m256i pr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe_rows + k));
    const __m256i br =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(build_rows + k));
    const int mask = eq_mask(pr, br);
    const int64_t w_next = CompressStore4(probe_rows, w, pr, mask);
    CompressStore4(build_rows, w, br, mask);
    w = w_next;
  }
  for (; k < n; ++k) {
    const int64_t i = probe_rows[k];
    const int64_t j = build_rows[k];
    if (eq_scalar(i, j)) {
      probe_rows[w] = i;
      build_rows[w] = j;
      ++w;
    }
  }
  return w;
}

int64_t CompactPairsI64Avx2(const int64_t* probe_vals,
                            const int64_t* build_vals, int64_t* probe_rows,
                            int64_t* build_rows, int64_t begin, int64_t n) {
  return CompactPairsAvx2(
      probe_rows, build_rows, begin, n,
      [&](__m256i pr, __m256i br) {
        const __m256i pv = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(probe_vals), pr, 8);
        const __m256i bv = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(build_vals), br, 8);
        return _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(pv, bv)));
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

int64_t CompactPairsF64Avx2(const double* probe_vals, const double* build_vals,
                            int64_t* probe_rows, int64_t* build_rows,
                            int64_t begin, int64_t n) {
  return CompactPairsAvx2(
      probe_rows, build_rows, begin, n,
      [&](__m256i pr, __m256i br) {
        // Value equality (EQ_OQ): NaN matches nothing, -0.0 == +0.0.
        const __m256d pv = _mm256_castsi256_pd(_mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(probe_vals), pr, 8));
        const __m256d bv = _mm256_castsi256_pd(_mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(build_vals), br, 8));
        return _mm256_movemask_pd(_mm256_cmp_pd(pv, bv, _CMP_EQ_OQ));
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

int64_t CompactPairsU32Avx2(const uint32_t* probe_vals,
                            const uint32_t* build_vals, int64_t* probe_rows,
                            int64_t* build_rows, int64_t begin, int64_t n) {
  return CompactPairsAvx2(
      probe_rows, build_rows, begin, n,
      [&](__m256i pr, __m256i br) {
        const __m128i pv = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(probe_vals), pr, 4);
        const __m128i bv = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(build_vals), br, 4);
        return _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(pv, bv)));
      },
      [&](int64_t i, int64_t j) { return probe_vals[i] == build_vals[j]; });
}

/// id lanes -> keep mask: (Mix64(Mix64(seed ^ (id + K))) >> 11) < T with
/// K = HashCombine's seed-derived constant. Both sides are < 2^53, so the
/// signed cmpgt is a valid unsigned compare.
struct LineageHasher {
  explicit LineageHasher(uint64_t seed, uint64_t threshold)
      : xor_seed(_mm256_set1_epi64x(static_cast<long long>(seed))),
        add_k(_mm256_set1_epi64x(static_cast<long long>(
            0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)))),
        thresh(_mm256_set1_epi64x(static_cast<long long>(threshold))) {}

  int KeepMask(__m256i ids) const {
    __m256i h = _mm256_xor_si256(xor_seed, _mm256_add_epi64(ids, add_k));
    h = Mix64x4(Mix64x4(h));
    const __m256i m = _mm256_srli_epi64(h, 11);
    return _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(thresh, m)));
  }

  __m256i xor_seed, add_k, thresh;
};

int64_t LineageKeepDenseAvx2(uint64_t seed, uint64_t threshold,
                             const uint64_t* ids, int64_t stride,
                             int64_t begin, int64_t len, int64_t* out) {
  const LineageHasher hasher(seed, threshold);
  int64_t w = 0, i = 0;
  if (stride == 1) {
    for (; i + 4 <= len; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
      w = CompressStore4(out, w, Iota4(begin + i), hasher.KeepMask(v));
    }
  } else {
    // Strided gather: the index vector advances by 4*stride per block, so
    // no 64-bit multiply is needed in the loop.
    __m256i idx = _mm256_setr_epi64x(0, stride, 2 * stride, 3 * stride);
    const __m256i step = _mm256_set1_epi64x(4 * stride);
    for (; i + 4 <= len; i += 4) {
      const __m256i v = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(ids), idx, 8);
      idx = _mm256_add_epi64(idx, step);
      w = CompressStore4(out, w, Iota4(begin + i), hasher.KeepMask(v));
    }
  }
  for (; i < len; ++i) {
    out[w] = begin + i;
    w += ScalarLineageKeeps(seed, threshold, ids[i * stride]);
  }
  return w;
}

int64_t LineageKeepGatherAvx2(uint64_t seed, uint64_t threshold,
                              const uint64_t* lineage, int64_t stride,
                              int64_t dim, const int64_t* sel, int64_t len,
                              int64_t* out) {
  const LineageHasher hasher(seed, threshold);
  int64_t w = 0, k = 0;
  const __m256i vstride = _mm256_set1_epi64x(stride);
  const __m256i vdim = _mm256_set1_epi64x(dim);
  for (; k + 4 <= len; k += 4) {
    const __m256i rows =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + k));
    const __m256i idx = _mm256_add_epi64(Mul64(rows, vstride), vdim);
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(lineage), idx, 8);
    w = CompressStore4(out, w, rows, hasher.KeepMask(v));
  }
  for (; k < len; ++k) {
    const int64_t r = sel[k];
    out[w] = r;
    w += ScalarLineageKeeps(seed, threshold, lineage[r * stride + dim]);
  }
  return w;
}

void GatherI64Avx2(const int64_t* src, const int64_t* idx, int64_t n,
                   int64_t* dst) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(src),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)), 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherF64Avx2(const double* src, const int64_t* idx, int64_t n,
                   double* dst) {
  GatherI64Avx2(reinterpret_cast<const int64_t*>(src), idx, n,
                reinterpret_cast<int64_t*>(dst));
}

void GatherU32Avx2(const uint32_t* src, const int64_t* idx, int64_t n,
                   uint32_t* dst) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(src),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)), 4);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherU64Avx2(const uint64_t* src, const int64_t* idx, int64_t n,
                   uint64_t* dst) {
  GatherI64Avx2(reinterpret_cast<const int64_t*>(src), idx, n,
                reinterpret_cast<int64_t*>(dst));
}

void I64ToF64Avx2(const int64_t* src, int64_t n, double* dst) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     CvtI64ToF64(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(src + i))));
  }
  for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

const SimdOps kAvx2Ops = {
    &SelNonZeroI64Avx2,
    &SelNonZeroF64Avx2,
    &SelCmpLitAvx2<int64_t>,
    &SelCmpLitAvx2<double>,
    &SelCmpAvx2<int64_t, int64_t>,
    &SelCmpAvx2<double, double>,
    &SelCmpAvx2<int64_t, double>,
    &SelCmpAvx2<double, int64_t>,
    &HashI64Avx2,
    &HashI64GatherAvx2,
    &HashDictCodesAvx2,
    &HashDictCodesGatherAvx2,
    &CompactPairsI64Avx2,
    &CompactPairsF64Avx2,
    &CompactPairsU32Avx2,
    &LineageKeepDenseAvx2,
    &LineageKeepGatherAvx2,
    &GatherI64Avx2,
    &GatherF64Avx2,
    &GatherU32Avx2,
    &GatherU64Avx2,
    &I64ToF64Avx2,
};

}  // namespace

const SimdOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace gus::simd

#else  // !defined(__AVX2__)

namespace gus::simd {
const SimdOps* Avx2Ops() { return nullptr; }
}  // namespace gus::simd

#endif
