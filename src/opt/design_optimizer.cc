#include "opt/design_optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "algebra/translate.h"
#include "est/variance.h"

namespace gus {

namespace {

constexpr double kGolden = 0.618033988749894848;

Status ValidateDims(const LineageSchema& schema,
                    const std::vector<DesignDimension>& dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("need at least one design dimension");
  }
  for (const auto& d : dims) {
    if (!schema.Contains(d.relation)) {
      return Status::KeyError("dimension relation '" + d.relation +
                              "' not in the schema");
    }
    if (d.cardinality <= 0.0) {
      return Status::InvalidArgument("cardinality must be positive");
    }
    if (!(d.min_p > 0.0 && d.min_p <= d.max_p && d.max_p <= 1.0)) {
      return Status::InvalidArgument("need 0 < min_p <= max_p <= 1");
    }
  }
  return Status::OK();
}

double CostOf(const std::vector<DesignDimension>& dims,
              const std::vector<double>& rates) {
  double cost = 0.0;
  for (size_t i = 0; i < dims.size(); ++i) {
    cost += rates[i] * dims[i].cardinality;
  }
  return cost;
}

/// Scales `rates` down (never up) to satisfy the budget, respecting min_p.
void ProjectToBudget(const std::vector<DesignDimension>& dims, double budget,
                     std::vector<double>* rates) {
  for (int iter = 0; iter < 8; ++iter) {
    const double cost = CostOf(dims, *rates);
    if (cost <= budget * (1.0 + 1e-12)) return;
    const double scale = budget / cost;
    for (size_t i = 0; i < dims.size(); ++i) {
      (*rates)[i] = std::max(dims[i].min_p, (*rates)[i] * scale);
    }
  }
}

}  // namespace

std::string DesignResult::ToString(
    const std::vector<DesignDimension>& dims) const {
  std::ostringstream out;
  out << "design {";
  for (size_t i = 0; i < dims.size() && i < rates.size(); ++i) {
    if (i) out << ", ";
    out << dims[i].relation << ": p=" << rates[i];
  }
  out << "} predicted sigma " << std::sqrt(std::max(0.0, predicted_variance))
      << ", expected cost " << expected_cost;
  return out.str();
}

Result<double> PredictBernoulliVariance(
    const LineageSchema& schema, const std::vector<DesignDimension>& dims,
    const std::vector<double>& rates, const std::vector<double>& y_hat) {
  GUS_RETURN_NOT_OK(ValidateDims(schema, dims));
  if (rates.size() != dims.size()) {
    return Status::InvalidArgument("rates must align with dimensions");
  }
  std::vector<DimBernoulli> bernoulli_dims;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (!(rates[i] > 0.0 && rates[i] <= 1.0)) {
      return Status::InvalidArgument("rates must be in (0,1]");
    }
    bernoulli_dims.push_back({dims[i].relation, rates[i]});
  }
  GUS_ASSIGN_OR_RETURN(GusParams gus,
                       MultiDimBernoulliGus(schema, bernoulli_dims));
  return VarianceFromY(gus, y_hat);
}

Result<DesignResult> OptimizeBernoulliDesign(
    const LineageSchema& schema, const std::vector<DesignDimension>& dims,
    const std::vector<double>& y_hat, const OptimizerConfig& config) {
  GUS_RETURN_NOT_OK(ValidateDims(schema, dims));
  if (y_hat.size() != schema.num_subsets()) {
    return Status::InvalidArgument("y_hat must have 2^n entries");
  }
  if (config.budget <= 0.0) {
    return Status::InvalidArgument("budget must be positive");
  }
  {
    double min_cost = 0.0;
    for (const auto& d : dims) min_cost += d.min_p * d.cardinality;
    if (min_cost > config.budget) {
      return Status::InvalidArgument(
          "budget below the minimum feasible cost of the given rate ranges");
    }
  }

  auto objective = [&](const std::vector<double>& rates) -> double {
    auto var = PredictBernoulliVariance(schema, dims, rates, y_hat);
    // Validated inputs cannot fail here; guard anyway.
    return var.ok() ? std::max(0.0, var.ValueOrDie()) : 1e300;
  };

  const int n = static_cast<int>(dims.size());
  DesignResult best;
  best.predicted_variance = 1e300;

  // Multi-start: a coarse grid of initial allocations.
  const int starts = std::max(1, config.starts_per_dimension);
  std::vector<int> grid_index(n, 0);
  bool done = false;
  while (!done) {
    std::vector<double> rates(n);
    for (int i = 0; i < n; ++i) {
      const double t = starts == 1
                           ? 0.5
                           : static_cast<double>(grid_index[i]) / (starts - 1);
      rates[i] = dims[i].min_p +
                 t * (dims[i].max_p - dims[i].min_p);
    }
    ProjectToBudget(dims, config.budget, &rates);

    // Projected coordinate descent with golden-section line search.
    for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
      bool improved = false;
      for (int i = 0; i < n; ++i) {
        // Feasible interval for coordinate i given the others' cost.
        double other_cost = 0.0;
        for (int j = 0; j < n; ++j) {
          if (j != i) other_cost += rates[j] * dims[j].cardinality;
        }
        const double hi_budget =
            (config.budget - other_cost) / dims[i].cardinality;
        double lo = dims[i].min_p;
        double hi = std::min(dims[i].max_p, hi_budget);
        if (hi < lo) continue;
        // Golden-section over [lo, hi].
        double a = lo, b = hi;
        double x1 = b - kGolden * (b - a);
        double x2 = a + kGolden * (b - a);
        auto eval_at = [&](double p) {
          const double saved = rates[i];
          rates[i] = p;
          const double v = objective(rates);
          rates[i] = saved;
          return v;
        };
        double f1 = eval_at(x1), f2 = eval_at(x2);
        for (int it = 0; it < config.line_search_iters; ++it) {
          if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kGolden * (b - a);
            f1 = eval_at(x1);
          } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kGolden * (b - a);
            f2 = eval_at(x2);
          }
        }
        const double candidate = f1 < f2 ? x1 : x2;
        const double current = objective(rates);
        const double cand_value = eval_at(candidate);
        if (cand_value < current * (1.0 - 1e-10)) {
          rates[i] = candidate;
          improved = true;
        }
      }
      if (!improved) break;
    }

    const double variance = objective(rates);
    if (variance < best.predicted_variance) {
      best.rates = rates;
      best.predicted_variance = variance;
      best.expected_cost = CostOf(dims, rates);
    }

    // Advance the grid odometer.
    done = true;
    for (int i = 0; i < n; ++i) {
      if (++grid_index[i] < starts) {
        done = false;
        break;
      }
      grid_index[i] = 0;
    }
  }
  return best;
}

}  // namespace gus
