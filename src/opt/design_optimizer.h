// Sampling-design optimization (paper Section 8, "Choosing sampling
// parameters", made algorithmic).
//
// Theorem 1 factors the estimator variance into data statistics y_S and
// design coefficients c_S/a². Having unbiased Ŷ_S from one pilot sample,
// the variance of ANY candidate design is a cheap closed-form evaluation —
// so design selection becomes a small numeric optimization, no re-sampling
// or re-execution needed.
//
// The optimizer searches per-relation Bernoulli rates p_i minimizing the
// predicted variance subject to an expected-cost budget
//     sum_i p_i * |R_i| <= budget
// using projected coordinate descent over the (log-convex-ish) objective,
// with a multi-start grid to avoid poor local minima.

#ifndef GUS_OPT_DESIGN_OPTIMIZER_H_
#define GUS_OPT_DESIGN_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/gus_params.h"
#include "util/status.h"

namespace gus {

/// One relation's tunable sampling rate and its cost weight.
struct DesignDimension {
  std::string relation;
  /// Tuples scanned when p = 1 (the cost of fully reading the relation).
  double cardinality = 0.0;
  /// Allowed range of the Bernoulli rate.
  double min_p = 0.001;
  double max_p = 1.0;
};

/// Optimizer configuration.
struct OptimizerConfig {
  /// Expected total sampled tuples allowed: sum_i p_i * cardinality_i.
  double budget = 0.0;
  /// Coordinate-descent sweeps.
  int max_sweeps = 60;
  /// Per-coordinate golden-section iterations.
  int line_search_iters = 40;
  /// Multi-start grid resolution per dimension (>= 1).
  int starts_per_dimension = 3;
};

/// The chosen design and its predicted quality.
struct DesignResult {
  /// Bernoulli rate per dimension, aligned with the input dimensions.
  std::vector<double> rates;
  /// Predicted estimator variance at those rates.
  double predicted_variance = 0.0;
  /// Expected sampled tuples at those rates.
  double expected_cost = 0.0;

  std::string ToString(const std::vector<DesignDimension>& dims) const;
};

/// \brief Predicted variance of a per-relation Bernoulli design.
///
/// `y_hat` are (estimates of) the data statistics over `schema`
/// (from a pilot SboxReport::y_hat or exact y values). Dimensions of
/// `schema` not mentioned in `rates` are unsampled (p = 1).
Result<double> PredictBernoulliVariance(
    const LineageSchema& schema, const std::vector<DesignDimension>& dims,
    const std::vector<double>& rates, const std::vector<double>& y_hat);

/// \brief Minimizes predicted variance over per-relation Bernoulli rates
/// subject to the expected-cost budget.
Result<DesignResult> OptimizeBernoulliDesign(
    const LineageSchema& schema, const std::vector<DesignDimension>& dims,
    const std::vector<double>& y_hat, const OptimizerConfig& config);

}  // namespace gus

#endif  // GUS_OPT_DESIGN_OPTIMIZER_H_
