// Data streaming with load shedding (paper Section 8, "Data Streaming and
// Load Shedding"): when a stream runs faster than the system can process,
// drop tuples with a Bernoulli filter and *quantify* the induced error on
// windowed aggregates with the GUS machinery. Because shedding is a GUS,
// the theory extends to joined windows across multiple shedded streams —
// the multi-relation case the paper points out prior single-stream work
// could not handle.

#ifndef GUS_STREAM_LOAD_SHEDDER_H_
#define GUS_STREAM_LOAD_SHEDDER_H_

#include <cstdint>

#include "est/confidence.h"
#include "rel/expression.h"
#include "rel/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// \brief Controller that adapts the shedding probability to a capacity.
struct ShedderConfig {
  /// Maximum tuples the system can retain per window.
  int64_t capacity_per_window = 1000;
  /// Clamp range for the keep probability.
  double min_p = 0.001;
  double max_p = 1.0;
  /// Exponential smoothing factor for the arrival-rate estimate.
  double smoothing = 0.5;
};

/// \brief Adaptive Bernoulli load shedder.
///
/// Chooses the keep probability for the next window from a smoothed
/// arrival-rate estimate so the expected retained count matches capacity.
class BernoulliLoadShedder {
 public:
  explicit BernoulliLoadShedder(const ShedderConfig& config);

  /// Keep probability for the current window.
  double keep_probability() const { return p_; }

  /// Reports the current window's arrival count; adapts the probability
  /// used for the next window.
  void ObserveWindow(int64_t arrivals);

 private:
  ShedderConfig config_;
  double smoothed_arrivals_ = 0.0;
  bool seeded_ = false;
  double p_ = 1.0;
};

/// \brief One window's estimated aggregate.
struct WindowEstimate {
  double estimate = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
  /// Tuples retained after shedding.
  int64_t kept_rows = 0;
  /// Keep probability used.
  double p = 1.0;
};

/// \brief Sheds `window` with Bernoulli(p) and estimates SUM(f) over the
/// full window with a confidence interval (single-stream case).
///
/// `window` must be a base relation (one lineage column).
Result<WindowEstimate> ShedAndEstimateWindow(const Relation& window, double p,
                                             const ExprPtr& f, Rng* rng,
                                             double confidence_level = 0.95);

/// \brief Two-stream case: sheds both windows, joins the survivors on
/// `left_key` = `right_key`, and estimates SUM(f) over the *unshedded*
/// window join — the GUS join algebra supplies the variance that single-
/// stream load-shedding analyses could not.
Result<WindowEstimate> ShedAndEstimateJoinedWindows(
    const Relation& left_window, double left_p, const Relation& right_window,
    double right_p, const std::string& left_key, const std::string& right_key,
    const ExprPtr& f, Rng* rng, double confidence_level = 0.95);

}  // namespace gus

#endif  // GUS_STREAM_LOAD_SHEDDER_H_
