#include "stream/admission.h"

#include <algorithm>
#include <cmath>

#include "est/streaming.h"
#include "plan/soa_transform.h"

namespace gus {

namespace {

Result<SamplingSpec> ScaleSpec(const SamplingSpec& spec, double scale) {
  SamplingSpec scaled = spec;
  switch (spec.method) {
    case SamplingMethod::kBernoulli:
    case SamplingMethod::kBlockBernoulli:
    case SamplingMethod::kLineageBernoulli:
      scaled.p = std::min(1.0, spec.p * scale);
      break;
    case SamplingMethod::kWithoutReplacement:
    case SamplingMethod::kWithReplacementDistinct:
      scaled.n = std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::llround(static_cast<double>(spec.n) * scale)));
      break;
  }
  GUS_RETURN_NOT_OK(scaled.Validate());
  return scaled;
}

Result<PlanPtr> ScaleNode(const PlanPtr& node, double scale) {
  switch (node->op()) {
    case PlanOp::kScan:
      return node;
    case PlanOp::kSample: {
      GUS_ASSIGN_OR_RETURN(PlanPtr child, ScaleNode(node->child(), scale));
      GUS_ASSIGN_OR_RETURN(SamplingSpec spec, ScaleSpec(node->spec(), scale));
      return PlanNode::Sample(std::move(spec), std::move(child));
    }
    case PlanOp::kSelect: {
      GUS_ASSIGN_OR_RETURN(PlanPtr child, ScaleNode(node->child(), scale));
      return PlanNode::SelectNode(node->predicate(), std::move(child));
    }
    case PlanOp::kJoin: {
      GUS_ASSIGN_OR_RETURN(PlanPtr left, ScaleNode(node->left(), scale));
      GUS_ASSIGN_OR_RETURN(PlanPtr right, ScaleNode(node->right(), scale));
      return PlanNode::Join(std::move(left), std::move(right),
                            node->left_key(), node->right_key());
    }
    case PlanOp::kProduct: {
      GUS_ASSIGN_OR_RETURN(PlanPtr left, ScaleNode(node->left(), scale));
      GUS_ASSIGN_OR_RETURN(PlanPtr right, ScaleNode(node->right(), scale));
      return PlanNode::Product(std::move(left), std::move(right));
    }
    case PlanOp::kUnion: {
      GUS_ASSIGN_OR_RETURN(PlanPtr left, ScaleNode(node->left(), scale));
      GUS_ASSIGN_OR_RETURN(PlanPtr right, ScaleNode(node->right(), scale));
      return PlanNode::Union(std::move(left), std::move(right));
    }
  }
  return Status::Internal("unreachable plan op");
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : shedder_(ShedderConfig{config.capacity_rows, config.min_scale,
                             config.max_scale, config.smoothing}) {}

void AdmissionController::ObserveQuery(int64_t offered_rows) {
  shedder_.ObserveWindow(offered_rows);
}

Result<PlanPtr> ScalePlanSamplingRates(const PlanPtr& plan, double scale) {
  if (plan == nullptr) {
    return Status::InvalidArgument("ScalePlanSamplingRates: null plan");
  }
  if (!(scale > 0.0) || scale > 1.0) {
    return Status::InvalidArgument(
        "admission scale must be in (0, 1], got " + std::to_string(scale));
  }
  if (scale == 1.0) return plan;
  return ScaleNode(plan, scale);
}

Result<AdmittedEstimate> AdmitAndEstimate(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng,
    const ExprPtr& f_expr, const SboxOptions& options, ExecMode mode,
    const ExecOptions& exec, double scale) {
  GUS_ASSIGN_OR_RETURN(PlanPtr admitted, ScalePlanSamplingRates(plan, scale));
  // The scaled plan is a different sampling design; its honest analysis
  // comes from re-deriving the top GUS, never from patching the old one.
  GUS_ASSIGN_OR_RETURN(SoaResult soa, SoaTransform(admitted));
  AdmittedEstimate out;
  out.scale = scale;
  out.admitted_plan = admitted;
  GUS_ASSIGN_OR_RETURN(
      out.report, EstimatePlanParallel(admitted, catalog, rng, f_expr,
                                       soa.top, options, mode, exec));
  return out;
}

}  // namespace gus
