// Admission control: overload protection that degrades the *sampling
// design* instead of the answer's honesty.
//
// Under overload, conventional systems silently drop work and return a
// number whose error is unknowable. Here the load shedder's adaptive keep
// probability (stream/load_shedder.h, paper Section 8) is reused as an
// admission *scale*: before an overloaded query runs, every sampling
// operator's rate is multiplied down, the SOA transform re-derives the top
// GUS for the shrunken design, and the SBox quantifies exactly what the
// shrinkage cost — the estimate stays unbiased and the CI widens honestly.
// Shedding-by-design instead of shedding-by-dropping is the same move the
// fault-tolerant gather makes for lost shards (est/partial_gather.h): the
// degradation enters the algebra, never the bookkeeping's blind spot.

#ifndef GUS_STREAM_ADMISSION_H_
#define GUS_STREAM_ADMISSION_H_

#include <cstdint>

#include "est/sbox.h"
#include "plan/columnar_executor.h"
#include "plan/executor.h"
#include "plan/plan_node.h"
#include "rel/expression.h"
#include "stream/load_shedder.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// \brief Admission-control tuning: how hard sampling rates shrink under
/// sustained overload.
struct AdmissionConfig {
  /// Sample rows per query the system is provisioned for; observed loads
  /// above this shrink the admission scale proportionally.
  int64_t capacity_rows = 100000;
  /// Clamp range for the admission scale (1.0 = no shrinkage).
  double min_scale = 0.01;
  double max_scale = 1.0;
  /// Exponential smoothing factor for the offered-load estimate.
  double smoothing = 0.5;
};

/// \brief Adapts an admission scale from observed per-query sample loads.
///
/// A thin policy layer over BernoulliLoadShedder: the shedder's adaptive
/// keep probability *is* the admission scale, applied to query sampling
/// rates (ScalePlanSamplingRates) rather than to an arriving tuple stream.
/// Not thread-safe; one controller per admission queue.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Scale to apply to the next query's sampling rates, in
  /// [min_scale, max_scale].
  double scale() const { return shedder_.keep_probability(); }

  /// \brief Reports one query's *offered* load — the sample rows its
  /// design would admit at scale 1.0 (e.g. rows observed under a scaled
  /// run divided by the scale that ran).
  ///
  /// Smooths the load estimate and adapts the scale so the expected
  /// admitted rows of the next query match capacity_rows.
  void ObserveQuery(int64_t offered_rows);

 private:
  BernoulliLoadShedder shedder_;
};

/// \brief Rebuilds `plan` with every sampling operator's rate multiplied
/// by `scale` in (0, 1]: Bernoulli-family specs (plain, block, lineage)
/// scale p (clamped to 1.0); fixed-size specs (WOR, WR-distinct) scale n
/// (floored at 1 row).
///
/// Relational content, seeds, and structure are untouched, so the scaled
/// plan is the same query under a sparser design — re-running SoaTransform
/// on it yields the GUS parameters that keep its estimate unbiased.
/// scale == 1.0 returns `plan` unchanged (shared, not copied).
Result<PlanPtr> ScalePlanSamplingRates(const PlanPtr& plan, double scale);

/// \brief An admitted (possibly rate-shrunken) estimation run.
struct AdmittedEstimate {
  SboxReport report;
  /// Scale that was applied to the sampling rates.
  double scale = 1.0;
  /// The plan as executed (== the input plan when scale == 1.0).
  PlanPtr admitted_plan;
};

/// \brief Runs `plan` at admission scale `scale`: shrinks the sampling
/// rates, re-derives the top GUS via SoaTransform, and estimates on the
/// parallel streaming engine.
///
/// The report is exactly the shrunken design's honest analysis — unbiased
/// estimate, CI widened by however much the admission control cost.
/// Callers holding an AdmissionController pass controller.scale() here and
/// ObserveQuery(report.sample_rows / scale) afterwards.
Result<AdmittedEstimate> AdmitAndEstimate(
    const PlanPtr& plan, ColumnarCatalog* catalog, Rng* rng,
    const ExprPtr& f_expr, const SboxOptions& options, ExecMode mode,
    const ExecOptions& exec, double scale);

}  // namespace gus

#endif  // GUS_STREAM_ADMISSION_H_
