#include "stream/load_shedder.h"

#include <algorithm>
#include <cmath>

#include "algebra/ops.h"
#include "algebra/translate.h"
#include "est/sbox.h"
#include "rel/operators.h"
#include "sampling/samplers.h"

namespace gus {

BernoulliLoadShedder::BernoulliLoadShedder(const ShedderConfig& config)
    : config_(config) {}

void BernoulliLoadShedder::ObserveWindow(int64_t arrivals) {
  const auto observed = static_cast<double>(arrivals);
  if (!seeded_) {
    smoothed_arrivals_ = observed;
    seeded_ = true;
  } else {
    smoothed_arrivals_ = config_.smoothing * observed +
                         (1.0 - config_.smoothing) * smoothed_arrivals_;
  }
  if (smoothed_arrivals_ <= 0.0) {
    p_ = config_.max_p;
    return;
  }
  const double target =
      static_cast<double>(config_.capacity_per_window) / smoothed_arrivals_;
  p_ = std::clamp(target, config_.min_p, config_.max_p);
}

Result<WindowEstimate> ShedAndEstimateWindow(const Relation& window, double p,
                                             const ExprPtr& f, Rng* rng,
                                             double confidence_level) {
  if (window.lineage_schema().size() != 1) {
    return Status::InvalidArgument("window must be a base relation");
  }
  GUS_ASSIGN_OR_RETURN(Relation kept, BernoulliSample(window, p, rng));
  GUS_ASSIGN_OR_RETURN(
      GusParams gus,
      TranslateBaseSampling(SamplingSpec::Bernoulli(p),
                            window.lineage_schema()[0]));
  GUS_ASSIGN_OR_RETURN(SampleView view,
                       SampleView::FromRelation(kept, f, gus.schema()));
  SboxOptions options;
  options.confidence_level = confidence_level;
  GUS_ASSIGN_OR_RETURN(SboxReport report, SboxEstimate(gus, view, options));
  WindowEstimate estimate;
  estimate.estimate = report.estimate;
  estimate.stddev = report.stddev;
  estimate.interval = report.interval;
  estimate.kept_rows = kept.num_rows();
  estimate.p = p;
  return estimate;
}

Result<WindowEstimate> ShedAndEstimateJoinedWindows(
    const Relation& left_window, double left_p, const Relation& right_window,
    double right_p, const std::string& left_key, const std::string& right_key,
    const ExprPtr& f, Rng* rng, double confidence_level) {
  if (left_window.lineage_schema().size() != 1 ||
      right_window.lineage_schema().size() != 1) {
    return Status::InvalidArgument("windows must be base relations");
  }
  GUS_ASSIGN_OR_RETURN(Relation left_kept,
                       BernoulliSample(left_window, left_p, rng));
  GUS_ASSIGN_OR_RETURN(Relation right_kept,
                       BernoulliSample(right_window, right_p, rng));
  GUS_ASSIGN_OR_RETURN(Relation joined,
                       HashJoin(left_kept, right_kept, left_key, right_key));
  // The shedded join is GUS-sampled from the unshedded join: Prop 6.
  GUS_ASSIGN_OR_RETURN(
      GusParams gl,
      TranslateBaseSampling(SamplingSpec::Bernoulli(left_p),
                            left_window.lineage_schema()[0]));
  GUS_ASSIGN_OR_RETURN(
      GusParams gr,
      TranslateBaseSampling(SamplingSpec::Bernoulli(right_p),
                            right_window.lineage_schema()[0]));
  GUS_ASSIGN_OR_RETURN(GusParams gus, GusJoin(gl, gr));
  GUS_ASSIGN_OR_RETURN(SampleView view,
                       SampleView::FromRelation(joined, f, gus.schema()));
  SboxOptions options;
  options.confidence_level = confidence_level;
  GUS_ASSIGN_OR_RETURN(SboxReport report, SboxEstimate(gus, view, options));
  WindowEstimate estimate;
  estimate.estimate = report.estimate;
  estimate.stddev = report.stddev;
  estimate.interval = report.interval;
  estimate.kept_rows = joined.num_rows();
  estimate.p = left_p * right_p;
  return estimate;
}

}  // namespace gus
