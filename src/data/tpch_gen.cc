#include "data/tpch_gen.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/zipf.h"

namespace gus {

namespace {

// Stream namespaces for the parallel (gen_threads >= 2) layout: every
// entity row draws from Rng::ForkStream(HashCombine(seed, tag), index) — a
// pure function of (seed, entity, index), so the instance is identical for
// every gen_threads >= 2 and for any worker schedule.
constexpr uint64_t kCustomerStream = 0xC1;
constexpr uint64_t kPartStream = 0xC2;
constexpr uint64_t kOrdersStream = 0xC3;
constexpr uint64_t kLineitemStream = 0xC4;

/// Runs fill(begin, end) over [0, n) on up to `threads` workers (disjoint
/// ranges; fill must only write rows it owns).
void ParallelRows(int threads, int64_t n,
                  const std::function<void(int64_t, int64_t)>& fill) {
  const int workers = static_cast<int>(
      std::min<int64_t>(std::max(1, threads), std::max<int64_t>(n, 1)));
  if (workers <= 1 || n <= 0) {
    fill(0, n);
    return;
  }
  PoolLease pool(workers);
  pool->ParallelForChunked(n, /*chunk=*/1024, workers,
                           ThreadPool::Placement::kDynamic,
                           [&](int, int64_t b, int64_t e) { fill(b, e); });
}

}  // namespace

Catalog TpchData::MakeCatalog() const {
  Catalog catalog;
  catalog.emplace("l", lineitem);
  catalog.emplace("o", orders);
  catalog.emplace("c", customer);
  catalog.emplace("p", part);
  return catalog;
}

TpchData GenerateTpch(const TpchConfig& config) {
  Schema customer_schema({{"c_custkey", ValueType::kInt64},
                          {"c_nationkey", ValueType::kInt64},
                          {"c_acctbal", ValueType::kFloat64}});
  Schema part_schema({{"p_partkey", ValueType::kInt64},
                      {"p_retailprice", ValueType::kFloat64}});
  Schema orders_schema({{"o_orderkey", ValueType::kInt64},
                        {"o_custkey", ValueType::kInt64},
                        {"o_totalprice", ValueType::kFloat64}});
  Schema lineitem_schema({{"l_orderkey", ValueType::kInt64},
                          {"l_linenumber", ValueType::kInt64},
                          {"l_partkey", ValueType::kInt64},
                          {"l_quantity", ValueType::kInt64},
                          {"l_extendedprice", ValueType::kFloat64},
                          {"l_discount", ValueType::kFloat64},
                          {"l_tax", ValueType::kFloat64}});

  ZipfGenerator fanout_zipf(
      static_cast<uint64_t>(config.max_lineitems_per_order),
      config.fanout_zipf_theta);
  ZipfGenerator part_zipf(static_cast<uint64_t>(config.num_parts),
                          config.part_zipf_theta);

  std::vector<Row> customer_rows;
  std::vector<Row> part_rows;
  std::vector<Row> orders_rows;
  std::vector<Row> lineitem_rows;

  if (config.gen_threads <= 1) {
    // Legacy serial layout: one generator stream in entity order —
    // bit-identical to every instance this generator has ever produced.
    Rng rng(config.seed);

    customer_rows.reserve(config.num_customers);
    for (int64_t c = 0; c < config.num_customers; ++c) {
      customer_rows.push_back(
          Row{Value(c), Value(rng.UniformInt(int64_t{0}, int64_t{24})),
              Value(rng.Uniform(-999.99, 9999.99))});
    }

    part_rows.reserve(config.num_parts);
    for (int64_t p = 0; p < config.num_parts; ++p) {
      part_rows.push_back(Row{Value(p), Value(rng.Uniform(900.0, 2100.0))});
    }

    orders_rows.reserve(config.num_orders);
    for (int64_t o = 0; o < config.num_orders; ++o) {
      orders_rows.push_back(
          Row{Value(o),
              Value(static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(config.num_customers)))),
              Value(rng.Uniform(1000.0, 500000.0))});
    }

    for (int64_t o = 0; o < config.num_orders; ++o) {
      const auto fanout = static_cast<int64_t>(fanout_zipf.Sample(&rng));
      for (int64_t ln = 1; ln <= fanout; ++ln) {
        const auto partkey = static_cast<int64_t>(part_zipf.Sample(&rng) - 1);
        lineitem_rows.push_back(
            Row{Value(o), Value(ln), Value(partkey),
                Value(rng.UniformInt(int64_t{1}, int64_t{50})),
                Value(rng.Uniform(10.0, 105000.0)),
                Value(rng.Uniform(0.0, 0.10)),
                Value(rng.Uniform(0.0, 0.08))});
      }
    }
  } else {
    // Parallel layout: each row draws from its own forked stream, making
    // every row a pure function of (seed, entity, index) — identical for
    // ALL gen_threads >= 2, independent of worker count and schedule. The
    // per-row draw order matches the serial path; only the stream each
    // draw comes from differs, so this is a different (equally valid)
    // instance of the same distribution.
    const uint64_t cust_base = HashCombine(config.seed, kCustomerStream);
    const uint64_t part_base = HashCombine(config.seed, kPartStream);
    const uint64_t orders_base = HashCombine(config.seed, kOrdersStream);
    const uint64_t line_base = HashCombine(config.seed, kLineitemStream);

    customer_rows.resize(static_cast<size_t>(config.num_customers));
    ParallelRows(config.gen_threads, config.num_customers,
                 [&](int64_t b, int64_t e) {
                   for (int64_t c = b; c < e; ++c) {
                     Rng rng = Rng::ForkStream(cust_base,
                                               static_cast<uint64_t>(c));
                     customer_rows[static_cast<size_t>(c)] =
                         Row{Value(c),
                             Value(rng.UniformInt(int64_t{0}, int64_t{24})),
                             Value(rng.Uniform(-999.99, 9999.99))};
                   }
                 });

    part_rows.resize(static_cast<size_t>(config.num_parts));
    ParallelRows(config.gen_threads, config.num_parts,
                 [&](int64_t b, int64_t e) {
                   for (int64_t p = b; p < e; ++p) {
                     Rng rng = Rng::ForkStream(part_base,
                                               static_cast<uint64_t>(p));
                     part_rows[static_cast<size_t>(p)] =
                         Row{Value(p), Value(rng.Uniform(900.0, 2100.0))};
                   }
                 });

    orders_rows.resize(static_cast<size_t>(config.num_orders));
    ParallelRows(config.gen_threads, config.num_orders,
                 [&](int64_t b, int64_t e) {
                   for (int64_t o = b; o < e; ++o) {
                     Rng rng = Rng::ForkStream(orders_base,
                                               static_cast<uint64_t>(o));
                     orders_rows[static_cast<size_t>(o)] =
                         Row{Value(o),
                             Value(static_cast<int64_t>(rng.UniformInt(
                                 static_cast<uint64_t>(
                                     config.num_customers)))),
                             Value(rng.Uniform(1000.0, 500000.0))};
                   }
                 });

    // Lineitem is two-pass because row offsets depend on every earlier
    // order's fanout: pass 1 draws the fanouts, a serial prefix sum fixes
    // the offsets, and pass 2 re-forks each order's stream (re-drawing the
    // fanout to keep the stream position identical) and fills its rows at
    // the known offset.
    std::vector<int64_t> fanouts(static_cast<size_t>(config.num_orders), 0);
    ParallelRows(config.gen_threads, config.num_orders,
                 [&](int64_t b, int64_t e) {
                   for (int64_t o = b; o < e; ++o) {
                     Rng rng = Rng::ForkStream(line_base,
                                               static_cast<uint64_t>(o));
                     fanouts[static_cast<size_t>(o)] =
                         static_cast<int64_t>(fanout_zipf.Sample(&rng));
                   }
                 });
    std::vector<int64_t> offsets(static_cast<size_t>(config.num_orders) + 1,
                                 0);
    for (int64_t o = 0; o < config.num_orders; ++o) {
      offsets[static_cast<size_t>(o) + 1] =
          offsets[static_cast<size_t>(o)] + fanouts[static_cast<size_t>(o)];
    }
    lineitem_rows.resize(static_cast<size_t>(offsets.back()));
    ParallelRows(
        config.gen_threads, config.num_orders, [&](int64_t b, int64_t e) {
          for (int64_t o = b; o < e; ++o) {
            Rng rng = Rng::ForkStream(line_base, static_cast<uint64_t>(o));
            const auto fanout = static_cast<int64_t>(fanout_zipf.Sample(&rng));
            int64_t at = offsets[static_cast<size_t>(o)];
            for (int64_t ln = 1; ln <= fanout; ++ln, ++at) {
              const auto partkey =
                  static_cast<int64_t>(part_zipf.Sample(&rng) - 1);
              lineitem_rows[static_cast<size_t>(at)] =
                  Row{Value(o), Value(ln), Value(partkey),
                      Value(rng.UniformInt(int64_t{1}, int64_t{50})),
                      Value(rng.Uniform(10.0, 105000.0)),
                      Value(rng.Uniform(0.0, 0.10)),
                      Value(rng.Uniform(0.0, 0.08))};
            }
          }
        });
  }

  TpchData data;
  data.lineitem = Relation::MakeBase("l", std::move(lineitem_schema),
                                     std::move(lineitem_rows));
  data.orders =
      Relation::MakeBase("o", std::move(orders_schema), std::move(orders_rows));
  data.customer = Relation::MakeBase("c", std::move(customer_schema),
                                     std::move(customer_rows));
  data.part =
      Relation::MakeBase("p", std::move(part_schema), std::move(part_rows));
  return data;
}

}  // namespace gus
