#include "data/tpch_gen.h"

#include "util/random.h"
#include "util/zipf.h"

namespace gus {

Catalog TpchData::MakeCatalog() const {
  Catalog catalog;
  catalog.emplace("l", lineitem);
  catalog.emplace("o", orders);
  catalog.emplace("c", customer);
  catalog.emplace("p", part);
  return catalog;
}

TpchData GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);

  // customer(c_custkey, c_nationkey, c_acctbal)
  std::vector<Row> customer_rows;
  customer_rows.reserve(config.num_customers);
  for (int64_t c = 0; c < config.num_customers; ++c) {
    customer_rows.push_back(Row{Value(c), Value(rng.UniformInt(int64_t{0}, int64_t{24})),
                                Value(rng.Uniform(-999.99, 9999.99))});
  }
  Schema customer_schema({{"c_custkey", ValueType::kInt64},
                          {"c_nationkey", ValueType::kInt64},
                          {"c_acctbal", ValueType::kFloat64}});

  // part(p_partkey, p_retailprice)
  std::vector<Row> part_rows;
  part_rows.reserve(config.num_parts);
  for (int64_t p = 0; p < config.num_parts; ++p) {
    part_rows.push_back(Row{Value(p), Value(rng.Uniform(900.0, 2100.0))});
  }
  Schema part_schema({{"p_partkey", ValueType::kInt64},
                      {"p_retailprice", ValueType::kFloat64}});

  // orders(o_orderkey, o_custkey, o_totalprice)
  std::vector<Row> orders_rows;
  orders_rows.reserve(config.num_orders);
  for (int64_t o = 0; o < config.num_orders; ++o) {
    orders_rows.push_back(
        Row{Value(o),
            Value(static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(config.num_customers)))),
            Value(rng.Uniform(1000.0, 500000.0))});
  }
  Schema orders_schema({{"o_orderkey", ValueType::kInt64},
                        {"o_custkey", ValueType::kInt64},
                        {"o_totalprice", ValueType::kFloat64}});

  // lineitem: fanout per order, optionally Zipf-skewed.
  ZipfGenerator fanout_zipf(
      static_cast<uint64_t>(config.max_lineitems_per_order),
      config.fanout_zipf_theta);
  ZipfGenerator part_zipf(static_cast<uint64_t>(config.num_parts),
                          config.part_zipf_theta);
  std::vector<Row> lineitem_rows;
  for (int64_t o = 0; o < config.num_orders; ++o) {
    const auto fanout = static_cast<int64_t>(fanout_zipf.Sample(&rng));
    for (int64_t ln = 1; ln <= fanout; ++ln) {
      const auto partkey = static_cast<int64_t>(part_zipf.Sample(&rng) - 1);
      lineitem_rows.push_back(
          Row{Value(o), Value(ln), Value(partkey),
              Value(rng.UniformInt(int64_t{1}, int64_t{50})),
              Value(rng.Uniform(10.0, 105000.0)),
              Value(rng.Uniform(0.0, 0.10)), Value(rng.Uniform(0.0, 0.08))});
    }
  }
  Schema lineitem_schema({{"l_orderkey", ValueType::kInt64},
                          {"l_linenumber", ValueType::kInt64},
                          {"l_partkey", ValueType::kInt64},
                          {"l_quantity", ValueType::kInt64},
                          {"l_extendedprice", ValueType::kFloat64},
                          {"l_discount", ValueType::kFloat64},
                          {"l_tax", ValueType::kFloat64}});

  TpchData data;
  data.lineitem = Relation::MakeBase("l", std::move(lineitem_schema),
                                     std::move(lineitem_rows));
  data.orders =
      Relation::MakeBase("o", std::move(orders_schema), std::move(orders_rows));
  data.customer = Relation::MakeBase("c", std::move(customer_schema),
                                     std::move(customer_rows));
  data.part =
      Relation::MakeBase("p", std::move(part_schema), std::move(part_rows));
  return data;
}

}  // namespace gus
