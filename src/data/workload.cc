#include "data/workload.h"

namespace gus {

namespace {

ExprPtr DiscountTaxAggregate() {
  // l_discount * (1.0 - l_tax)
  return Mul(Col("l_discount"), Sub(Lit(1.0), Col("l_tax")));
}

PlanPtr Query1Core(const Query1Params& params) {
  PlanPtr l = PlanNode::Sample(SamplingSpec::Bernoulli(params.lineitem_p),
                               PlanNode::Scan("l"));
  PlanPtr o = PlanNode::Sample(
      SamplingSpec::WithoutReplacement(params.orders_n,
                                       params.orders_population),
      PlanNode::Scan("o"));
  PlanPtr join = PlanNode::Join(l, o, "l_orderkey", "o_orderkey");
  return PlanNode::SelectNode(Gt(Col("l_extendedprice"),
                                 Lit(params.price_threshold)),
                              join);
}

}  // namespace

Workload MakeQuery1(const Query1Params& params) {
  return Workload{Query1Core(params), DiscountTaxAggregate()};
}

Workload MakeExample4(const Example4Params& params) {
  PlanPtr l = PlanNode::Sample(SamplingSpec::Bernoulli(params.lineitem_p),
                               PlanNode::Scan("l"));
  PlanPtr o = PlanNode::Sample(
      SamplingSpec::WithoutReplacement(params.orders_n,
                                       params.orders_population),
      PlanNode::Scan("o"));
  // Figure 4 shape: ((l ⋈ o) ⋈ c) ⋈ p, with customers unsampled and parts
  // Bernoulli(0.5)-sampled.
  PlanPtr lo = PlanNode::Join(l, o, "l_orderkey", "o_orderkey");
  PlanPtr loc = PlanNode::Join(lo, PlanNode::Scan("c"), "o_custkey",
                               "c_custkey");
  PlanPtr p = PlanNode::Sample(SamplingSpec::Bernoulli(params.part_p),
                               PlanNode::Scan("p"));
  PlanPtr locp = PlanNode::Join(loc, p, "l_partkey", "p_partkey");
  return Workload{locp, DiscountTaxAggregate()};
}

Workload MakeExample6(const Query1Params& params, double sub_p_lineitem,
                      double sub_p_orders, uint64_t seed) {
  PlanPtr core = Query1Core(params);
  // The bi-dimensional Bernoulli B(p_l, p_o) is the composition of two
  // lineage-seeded Bernoulli filters (Prop. 9 / Example 5); stacking the
  // two sample nodes compacts into the composed GUS.
  PlanPtr sub_l = PlanNode::Sample(
      SamplingSpec::LineageBernoulli("l", sub_p_lineitem, seed), core);
  PlanPtr sub_lo = PlanNode::Sample(
      SamplingSpec::LineageBernoulli("o", sub_p_orders, seed + 1), sub_l);
  return Workload{sub_lo, DiscountTaxAggregate()};
}

}  // namespace gus
