// Synthetic TPC-H-shaped data generator.
//
// The paper's running queries use lineitem, orders, customer and part with
// the columns referenced below. This generator reproduces that shape at any
// scale with configurable join fanout and value skew — the substitution for
// the authors' TPC-H instance (see DESIGN.md): every property under test is
// a property of the sampling algebra, which only sees lineage and f-values.

#ifndef GUS_DATA_TPCH_GEN_H_
#define GUS_DATA_TPCH_GEN_H_

#include <cstdint>

#include "plan/executor.h"
#include "rel/relation.h"

namespace gus {

/// \brief Generator knobs.
struct TpchConfig {
  int64_t num_orders = 1500;
  int64_t num_customers = 150;
  int64_t num_parts = 200;
  /// Lineitems per order are uniform in [1, max_lineitems_per_order], or
  /// Zipf-skewed towards 1 when fanout_zipf_theta > 0.
  int64_t max_lineitems_per_order = 7;
  double fanout_zipf_theta = 0.0;
  /// Zipf skew of part popularity (0 = uniform).
  double part_zipf_theta = 0.0;
  uint64_t seed = 0xDB5EEDULL;
  /// \brief Generator worker threads.
  ///
  /// 1 (the default) is the legacy single-stream layout — bit-identical to
  /// every instance this generator has ever produced. Any value >= 2
  /// switches to the parallel layout, where each row draws from a forked
  /// per-(entity, index) stream: the instance is identical for EVERY
  /// gen_threads >= 2 (worker count and schedule never matter), but it is
  /// a different — equally valid — draw than the serial layout, so pick
  /// one layout per experiment and stay with it. The big benchmarks use
  /// the parallel layout to keep data generation out of the measured
  /// region.
  int gen_threads = 1;
};

/// \brief The generated star-ish schema.
///
/// lineitem(l_orderkey, l_linenumber, l_partkey, l_quantity,
///          l_extendedprice, l_discount, l_tax)
/// orders(o_orderkey, o_custkey, o_totalprice)
/// customer(c_custkey, c_nationkey, c_acctbal)
/// part(p_partkey, p_retailprice)
struct TpchData {
  Relation lineitem;
  Relation orders;
  Relation customer;
  Relation part;

  /// Catalog keyed by the paper's short names: l, o, c, p.
  Catalog MakeCatalog() const;
};

/// Generates a deterministic instance for `config`.
TpchData GenerateTpch(const TpchConfig& config);

}  // namespace gus

#endif  // GUS_DATA_TPCH_GEN_H_
