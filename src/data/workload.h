// The paper's workload queries as plan builders.
//
// Query 1 (Introduction / Example 1, Figure 2):
//   SELECT SUM(l_discount*(1.0-l_tax))
//   FROM lineitem TABLESAMPLE (10 PERCENT),
//        orders   TABLESAMPLE (1000 ROWS)
//   WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0;
//
// Example 4 query (Figure 4): the four-relation join
//   ((B0.1(l) ⋈ WOR1000(o)) ⋈ c) ⋈ B0.5(p)
//
// Example 6 (Figure 5): Query 1 capped by a bi-dimensional Bernoulli
// B(0.2, 0.3) sub-sampler.

#ifndef GUS_DATA_WORKLOAD_H_
#define GUS_DATA_WORKLOAD_H_

#include <cstdint>

#include "plan/plan_node.h"
#include "rel/expression.h"

namespace gus {

/// \brief One workload query: the sampled plan plus its aggregate function.
struct Workload {
  PlanPtr plan;
  ExprPtr aggregate;  // f(t) of the SUM
};

/// Sampling knobs for Query 1 (defaults are the paper's).
struct Query1Params {
  double lineitem_p = 0.1;
  int64_t orders_n = 1000;
  /// Cardinality of orders; the paper uses 150000.
  int64_t orders_population = 150000;
  double price_threshold = 100.0;
};

/// The paper's Query 1 over catalog relations "l" and "o".
Workload MakeQuery1(const Query1Params& params);

/// Sampling knobs for the Example 4 plan (defaults are the paper's).
struct Example4Params {
  double lineitem_p = 0.1;
  int64_t orders_n = 1000;
  int64_t orders_population = 150000;
  double part_p = 0.5;
};

/// The Figure 4 four-relation plan over "l", "o", "c", "p".
Workload MakeExample4(const Example4Params& params);

/// \brief Query 1 capped by the Example 5/6 bi-dimensional Bernoulli
/// B(p_l, p_o) lineage sub-sampler (Figure 5).
Workload MakeExample6(const Query1Params& params, double sub_p_lineitem,
                      double sub_p_orders, uint64_t seed);

}  // namespace gus

#endif  // GUS_DATA_WORKLOAD_H_
