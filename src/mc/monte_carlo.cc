#include "mc/monte_carlo.h"

#include <unordered_map>

#include "est/variance.h"
#include "est/ys.h"
#include "util/hash.h"
#include "util/random.h"

namespace gus {

Result<SboxTrialStats> RunSboxTrials(const Workload& workload,
                                     const Catalog& catalog, int trials,
                                     uint64_t seed,
                                     const SboxOptions& options) {
  GUS_ASSIGN_OR_RETURN(SoaResult soa, SoaTransform(workload.plan));

  // Ground truth and oracle variance from the exact result.
  Rng exact_rng(seed);
  GUS_ASSIGN_OR_RETURN(
      Relation exact,
      ExecutePlan(workload.plan, catalog, &exact_rng, ExecMode::kExact));
  GUS_ASSIGN_OR_RETURN(
      SampleView exact_view,
      SampleView::FromRelation(exact, workload.aggregate, soa.top.schema()));

  SboxTrialStats stats;
  stats.truth = exact_view.SumF();
  stats.y_true = ComputeAllYS(exact_view);
  GUS_ASSIGN_OR_RETURN(stats.oracle_variance,
                       VarianceFromY(soa.top, stats.y_true));
  stats.y_hat.resize(soa.top.schema().num_subsets());

  Rng master(seed + 1);
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = master.Fork(static_cast<uint64_t>(t));
    GUS_ASSIGN_OR_RETURN(
        Relation sampled,
        ExecutePlan(workload.plan, catalog, &trial_rng, ExecMode::kSampled));
    GUS_ASSIGN_OR_RETURN(SampleView view,
                         SampleView::FromRelation(sampled, workload.aggregate,
                                                  soa.top.schema()));
    SboxOptions trial_options = options;
    if (trial_options.subsample.has_value()) {
      // Fresh sub-sampling randomness per trial.
      trial_options.subsample->seed =
          HashCombine(options.subsample->seed, static_cast<uint64_t>(t));
    }
    GUS_ASSIGN_OR_RETURN(SboxReport report,
                         SboxEstimate(soa.top, view, trial_options));
    stats.estimates.Add(report.estimate);
    stats.predicted_variance.Add(report.variance);
    stats.coverage.Add(report.interval.Contains(stats.truth));
    for (size_t m = 0; m < report.y_hat.size(); ++m) {
      stats.y_hat[m].Add(report.y_hat[m]);
    }
  }
  return stats;
}

Result<InclusionStats> MeasureInclusion(const PlanPtr& plan,
                                        const Catalog& catalog, int trials,
                                        uint64_t seed) {
  GUS_ASSIGN_OR_RETURN(LineageSchema schema, plan->ComputeLineageSchema());
  Rng exact_rng(seed);
  GUS_ASSIGN_OR_RETURN(
      Relation exact, ExecutePlan(plan, catalog, &exact_rng, ExecMode::kExact));
  const auto m = static_cast<size_t>(exact.num_rows());

  // Index the exact result tuples by their full lineage.
  std::unordered_map<uint64_t, size_t> index;
  index.reserve(m);
  auto lineage_key = [](const LineageRow& lin) {
    uint64_t h = 0x1234abcd5678ef90ULL;
    for (uint64_t id : lin) h = HashCombine(h, id);
    return h;
  };
  for (size_t i = 0; i < m; ++i) {
    index.emplace(lineage_key(exact.lineage(i)), i);
  }
  if (index.size() != m) {
    return Status::Internal("duplicate lineage in exact result");
  }

  // Precompute the agreement mask of every tuple pair.
  const int n = schema.arity();
  // Align the relation's lineage columns to the schema order.
  std::vector<int> source(n);
  for (int d = 0; d < n; ++d) {
    int found = -1;
    for (size_t c = 0; c < exact.lineage_schema().size(); ++c) {
      if (exact.lineage_schema()[c] == schema.relation(d)) {
        found = static_cast<int>(c);
      }
    }
    if (found < 0) return Status::Internal("lineage schema mismatch");
    source[d] = found;
  }
  auto agreement_mask = [&](size_t i, size_t j) {
    SubsetMask mask = 0;
    for (int d = 0; d < n; ++d) {
      if (exact.lineage(i)[source[d]] == exact.lineage(j)[source[d]]) {
        mask |= SubsetMask{1} << d;
      }
    }
    return mask;
  };

  std::vector<int64_t> single_count(m, 0);
  std::vector<int64_t> pair_count(m * m, 0);  // co-inclusion counts (i<j)
  std::vector<char> present(m);

  Rng master(seed + 1);
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = master.Fork(static_cast<uint64_t>(t));
    GUS_ASSIGN_OR_RETURN(
        Relation sampled,
        ExecutePlan(plan, catalog, &trial_rng, ExecMode::kSampled));
    std::fill(present.begin(), present.end(), 0);
    for (int64_t r = 0; r < sampled.num_rows(); ++r) {
      auto it = index.find(lineage_key(sampled.lineage(r)));
      if (it == index.end()) {
        return Status::Internal("sampled tuple missing from exact result");
      }
      present[it->second] = 1;
    }
    for (size_t i = 0; i < m; ++i) {
      if (!present[i]) continue;
      ++single_count[i];
      for (size_t j = i + 1; j < m; ++j) {
        if (present[j]) ++pair_count[i * m + j];
      }
    }
  }

  InclusionStats stats;
  stats.schema = schema;
  stats.result_size = static_cast<int64_t>(m);
  stats.trials = trials;
  stats.pair_by_mask.assign(schema.num_subsets(), -1.0);
  stats.pairs_per_mask.assign(schema.num_subsets(), 0);
  if (m > 0) {
    double sum = 0.0, mn = 1.0, mx = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double f = static_cast<double>(single_count[i]) / trials;
      sum += f;
      mn = std::min(mn, f);
      mx = std::max(mx, f);
    }
    stats.mean_single = sum / static_cast<double>(m);
    stats.min_single = mn;
    stats.max_single = mx;
  }
  std::vector<double> freq_sum(schema.num_subsets(), 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const SubsetMask mask = agreement_mask(i, j);
      freq_sum[mask] += static_cast<double>(pair_count[i * m + j]) / trials;
      ++stats.pairs_per_mask[mask];
    }
  }
  for (size_t mask = 0; mask < freq_sum.size(); ++mask) {
    if (stats.pairs_per_mask[mask] > 0) {
      stats.pair_by_mask[mask] =
          freq_sum[mask] / static_cast<double>(stats.pairs_per_mask[mask]);
    }
  }
  return stats;
}

}  // namespace gus
