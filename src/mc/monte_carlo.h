// Monte-Carlo oracle for the sampling algebra.
//
// Two instruments:
//   * RunSboxTrials — repeatedly executes a sampled workload, runs the SBox,
//     and accumulates the empirical distribution of the estimator plus
//     confidence-interval coverage against the exact answer. This validates
//     Theorem 1 end-to-end.
//   * MeasureInclusion — estimates the first- and second-order inclusion
//     probabilities of a plan's result tuples, grouped by lineage-agreement
//     mask. By Proposition 3 (SOA-set equivalence), these must match the a
//     and b_T of the transform's top GUS — the most direct check of the
//     algebra there is.

#ifndef GUS_MC_MONTE_CARLO_H_
#define GUS_MC_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "data/workload.h"
#include "est/sbox.h"
#include "plan/executor.h"
#include "plan/soa_transform.h"
#include "util/stats.h"
#include "util/status.h"

namespace gus {

/// \brief Accumulated results of repeated estimation trials.
struct SboxTrialStats {
  /// The exact (unsampled) aggregate.
  double truth = 0.0;
  /// Theorem 1 variance evaluated on the full data (the oracle variance of
  /// the estimator's sampling distribution).
  double oracle_variance = 0.0;
  /// Empirical moments of the per-trial estimates.
  MeanVar estimates;
  /// Mean of the per-trial *estimated* variances.
  MeanVar predicted_variance;
  /// CI coverage of the truth.
  CoverageCounter coverage;
  /// Mean of per-trial unbiased Ŷ_S estimates, indexed by mask.
  std::vector<MeanVar> y_hat;
  /// True y_S of the full data, indexed by mask.
  std::vector<double> y_true;
};

/// \brief Runs `trials` independent executions of `workload` over `catalog`,
/// estimating with the SBox under `options`.
Result<SboxTrialStats> RunSboxTrials(const Workload& workload,
                                     const Catalog& catalog, int trials,
                                     uint64_t seed,
                                     const SboxOptions& options = {});

/// \brief Empirical inclusion probabilities of a plan's result tuples.
struct InclusionStats {
  /// Lineage schema of the plan.
  LineageSchema schema;
  /// Size of the exact (unsampled) result.
  int64_t result_size = 0;
  int trials = 0;
  /// Mean per-tuple inclusion frequency (estimates a).
  double mean_single = 0.0;
  /// Min/max per-tuple frequency (uniformity check).
  double min_single = 0.0;
  double max_single = 0.0;
  /// Mean pairwise co-inclusion frequency per agreement mask (estimates
  /// b_T); entry is -1 when no pair with that mask exists in the result.
  std::vector<double> pair_by_mask;
  /// Number of distinct tuple pairs per agreement mask.
  std::vector<int64_t> pairs_per_mask;
};

/// \brief Estimates inclusion probabilities by executing `plan` `trials`
/// times. The exact result must be small (cost is O(trials * m^2)).
Result<InclusionStats> MeasureInclusion(const PlanPtr& plan,
                                        const Catalog& catalog, int trials,
                                        uint64_t seed);

}  // namespace gus

#endif  // GUS_MC_MONTE_CARLO_H_
