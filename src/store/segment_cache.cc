#include "store/segment_cache.h"

#include <utility>

namespace gus {

Result<std::shared_ptr<const ColumnBatch>> SegmentCache::Fault(
    const StoredRelation& rel, int64_t s) {
  const Key key{&rel, s};
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = slots_.find(key);
    if (it == slots_.end()) break;
    if (!it->second.loading) {
      counters_.hits += 1;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      return it->second.batch;
    }
    // Another worker is decoding this segment: wait, then re-look-up (the
    // slot may have been evicted or replaced by the time we wake).
    load_done_.wait(lock);
  }
  Slot& slot = slots_[key];
  slot.loading = true;
  lock.unlock();

  Result<ColumnBatch> decoded = rel.DecodeSegment(s);

  lock.lock();
  auto it = slots_.find(key);
  GUS_CHECK(it != slots_.end() && it->second.loading);
  if (!decoded.ok()) {
    slots_.erase(it);
    load_done_.notify_all();
    return decoded.status();
  }
  const int64_t bytes = rel.segment(s).page_bytes;
  auto batch =
      std::make_shared<const ColumnBatch>(std::move(decoded).ValueOrDie());
  it->second.loading = false;
  it->second.batch = batch;
  it->second.bytes = bytes;
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  counters_.faults += 1;
  counters_.bytes_read += bytes;
  counters_.resident_bytes += bytes;
  EvictOverBudgetLocked();
  load_done_.notify_all();
  return {std::move(batch)};
}

void SegmentCache::EvictOverBudgetLocked() {
  while (counters_.resident_bytes > options_.max_bytes && !lru_.empty()) {
    const Key victim = lru_.back();
    auto it = slots_.find(victim);
    GUS_CHECK(it != slots_.end() && !it->second.loading);
    counters_.resident_bytes -= it->second.bytes;
    counters_.evictions += 1;
    lru_.pop_back();
    slots_.erase(it);
  }
}

void SegmentCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Loading slots are owned by their decoding worker; drop only settled
  // entries.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.loading) {
      ++it;
      continue;
    }
    counters_.resident_bytes -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    it = slots_.erase(it);
  }
}

SegmentCacheCounters SegmentCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gus
