#include "store/pruner.h"

#include <algorithm>

#include "kernels/sampling_kernels.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_ops.h"

namespace gus {

namespace {

/// Mirrored comparison op for flipping `literal cmp column` into
/// `column cmp literal`.
ExprOp MirrorCmp(ExprOp op) {
  switch (op) {
    case ExprOp::kLt: return ExprOp::kGt;
    case ExprOp::kLe: return ExprOp::kGe;
    case ExprOp::kGt: return ExprOp::kLt;
    case ExprOp::kGe: return ExprOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsCmp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Evaluating more blocks than this per segment is not worth the pruning
/// it could buy; the pruner keeps the segment instead.
constexpr int64_t kMaxBlocksPerSegment = int64_t{1} << 16;

/// Expected kept rows above which a per-row lineage-Bernoulli sweep of a
/// segment is pointless ((1-p)^rows is already astronomically small).
constexpr double kMaxExpectedLineageKeeps = 48.0;

}  // namespace

void ExtractColumnConstraints(const ExprPtr& predicate, const Schema& schema,
                              const std::vector<int>& colmap,
                              std::vector<ColumnConstraint>* out) {
  if (predicate == nullptr) return;
  if (predicate->op() == ExprOp::kAnd) {
    ExtractColumnConstraints(predicate->left(), schema, colmap, out);
    ExtractColumnConstraints(predicate->right(), schema, colmap, out);
    return;
  }
  if (!IsCmp(predicate->op())) return;
  const Expr* col = predicate->left().get();
  const Expr* lit = predicate->right().get();
  ExprOp op = predicate->op();
  if (col->op() == ExprOp::kLiteral && lit->op() == ExprOp::kColumn) {
    std::swap(col, lit);
    op = MirrorCmp(op);
  }
  if (col->op() != ExprOp::kColumn || lit->op() != ExprOp::kLiteral) return;
  auto index = schema.IndexOf(col->column_name());
  if (!index.ok()) return;
  const int schema_col = std::move(index).ValueOrDie();
  const int pivot_col = colmap[static_cast<size_t>(schema_col)];
  if (pivot_col < 0) return;
  // Only homogeneous comparisons prune: a string/numeric mix is a runtime
  // TypeError, which skipping must not hide.
  const bool col_is_string =
      schema.column(schema_col).type == ValueType::kString;
  const bool lit_is_string = lit->literal().type() == ValueType::kString;
  if (col_is_string != lit_is_string) return;
  ColumnConstraint c;
  c.column = pivot_col;
  c.op = op;
  c.literal = lit->literal();
  out->push_back(std::move(c));
}

bool ZoneMayMatch(const ColumnZone& zone, ValueType type, ExprOp op,
                  const Value& literal) {
  if (zone.kind == ColumnZone::kUnknown) return true;
  if (zone.kind == ColumnZone::kEmpty) return false;
  if (type == ValueType::kString) {
    const std::string& v = literal.AsString();
    switch (op) {
      case ExprOp::kEq: return zone.min_str <= v && v <= zone.max_str;
      case ExprOp::kNe:
        return !(zone.min_str == zone.max_str && zone.min_str == v);
      case ExprOp::kLt: return zone.min_str < v;
      case ExprOp::kLe: return zone.min_str <= v;
      case ExprOp::kGt: return zone.max_str > v;
      case ExprOp::kGe: return zone.max_str >= v;
      default: return true;
    }
  }
  // Numeric: the evaluator compares through double promotion
  // (CompareBinary), so the zone bounds go through the same cast. The
  // cast is monotonic, so double(min) / double(max) still bound every
  // promoted value, and NaN literals compare false everywhere — exactly
  // like the evaluator.
  const double lo = type == ValueType::kInt64
                        ? static_cast<double>(zone.min_i64)
                        : zone.min_f64;
  const double hi = type == ValueType::kInt64
                        ? static_cast<double>(zone.max_i64)
                        : zone.max_f64;
  const bool single_value = type == ValueType::kInt64
                                ? zone.min_i64 == zone.max_i64
                                : zone.min_f64 == zone.max_f64;
  const double v = literal.ToDouble();
  switch (op) {
    case ExprOp::kEq: return lo <= v && v <= hi;
    case ExprOp::kNe: return !(single_value && lo == v);
    case ExprOp::kLt: return lo < v;
    case ExprOp::kLe: return lo <= v;
    case ExprOp::kGt: return hi > v;
    case ExprOp::kGe: return hi >= v;
    default: return true;
  }
}

bool AlternativeExcludesSegment(const StoredRelation& store, int64_t s,
                                const PruneAlternative& alt) {
  const SegmentInfo& info = store.segment(s);
  const int64_t row_begin = info.row_begin;
  const int64_t row_end = info.row_begin + info.row_count;
  const Schema& schema = store.layout_ptr()->schema;

  for (const ColumnConstraint& c : alt.constraints) {
    const ColumnZone& zone = info.zones[static_cast<size_t>(c.column)];
    const ValueType type = schema.column(c.column).type;
    if (zone.null_count == static_cast<uint64_t>(info.row_count) &&
        info.row_count > 0) {
      return true;  // all-null page: the predicate can hold for no row
    }
    if (!ZoneMayMatch(zone, type, c.op, c.literal)) return true;
  }

  for (const auto& keep : alt.keep_lists) {
    auto it = std::lower_bound(keep->begin(), keep->end(), row_begin);
    if (it == keep->end() || *it >= row_end) return true;
  }

  for (const PruneAlternative::BlockSampler& b : alt.block_samplers) {
    const int64_t first = row_begin / b.block_size;
    const int64_t last = (row_end - 1) / b.block_size;
    if (last - first + 1 > kMaxBlocksPerSegment) continue;
    bool any = false;
    for (int64_t block = first; block <= last && !any; ++block) {
      any = DecoupledBlockKeep(b.seed, static_cast<uint64_t>(block), b.p);
    }
    if (!any) return true;
  }

  for (const PruneAlternative::LineageBernoulli& l : alt.lineage_bernoullis) {
    if (l.p * static_cast<double>(info.row_count) > kMaxExpectedLineageKeeps) {
      continue;  // a kept row is near-certain; not worth the sweep
    }
    const uint64_t threshold = simd::LineageKeepThreshold(l.p);
    bool any = false;
    for (int64_t id = row_begin; id < row_end && !any; ++id) {
      any = simd::ScalarLineageKeeps(l.seed, threshold,
                                     static_cast<uint64_t>(id));
    }
    if (!any) return true;
  }

  return false;
}

std::vector<char> ComputeSegmentExclusion(const StoredRelation& store,
                                          const PrunePlan& plan) {
  const int64_t n = store.num_segments();
  std::vector<char> excluded(static_cast<size_t>(n), 0);
  if (plan.alternatives.empty()) return excluded;
  for (int64_t s = 0; s < n; ++s) {
    bool all = true;
    for (const PruneAlternative& alt : plan.alternatives) {
      if (!AlternativeExcludesSegment(store, s, alt)) {
        all = false;
        break;
      }
    }
    excluded[static_cast<size_t>(s)] = all ? 1 : 0;
  }
  return excluded;
}

std::vector<char> ComputeUnitSkipMask(const StoredRelation& store,
                                      const std::vector<char>& excluded,
                                      int64_t morsel_rows) {
  const int64_t rows = store.num_rows();
  const int64_t units = (rows + morsel_rows - 1) / morsel_rows;
  std::vector<char> skip(static_cast<size_t>(units), 0);
  const int64_t seg_rows = store.segment_rows();
  for (int64_t u = 0; u < units; ++u) {
    const int64_t lo = u * morsel_rows;
    const int64_t hi = std::min(rows, lo + morsel_rows);
    const int64_t s_first = lo / seg_rows;
    const int64_t s_last = (hi - 1) / seg_rows;
    bool all = true;
    for (int64_t s = s_first; s <= s_last && all; ++s) {
      all = excluded[static_cast<size_t>(s)] != 0;
    }
    skip[static_cast<size_t>(u)] = all ? 1 : 0;
  }
  return skip;
}

int64_t SegmentsInUnitRange(const StoredRelation& store, int64_t morsel_rows,
                            int64_t unit_begin, int64_t unit_end) {
  if (unit_begin >= unit_end) return 0;
  const int64_t rows = store.num_rows();
  const int64_t lo = unit_begin * morsel_rows;
  const int64_t hi = std::min(rows, unit_end * morsel_rows);
  if (lo >= hi) return 0;
  return (hi - 1) / store.segment_rows() - lo / store.segment_rows() + 1;
}

int64_t SkippedSegmentsInUnitRange(const StoredRelation& store,
                                   const std::vector<char>& unit_skip,
                                   int64_t morsel_rows, int64_t unit_begin,
                                   int64_t unit_end) {
  if (unit_skip.empty()) return 0;
  const int64_t rows = store.num_rows();
  const int64_t seg_rows = store.segment_rows();
  int64_t skipped = 0;
  const int64_t end =
      std::min<int64_t>(unit_end, static_cast<int64_t>(unit_skip.size()));
  for (int64_t u = std::max<int64_t>(0, unit_begin); u < end; ++u) {
    if (!unit_skip[static_cast<size_t>(u)]) continue;
    const int64_t lo = u * morsel_rows;
    const int64_t hi = std::min(rows, lo + morsel_rows);
    if (lo >= hi) continue;
    skipped += (hi - 1) / seg_rows - lo / seg_rows + 1;
  }
  return skipped;
}

}  // namespace gus
