// SegmentCatalog: the on-disk catalog behind the ColumnarCatalog surface.
//
// Opens every `.gseg` file in a directory and serves all four execution
// engines unchanged:
//
//   * kColumnar / kMorselParallel / kSharded take a ColumnarCatalog* —
//     scans stream segment-at-a-time through Stored() + the pinned cache
//     (and the SegmentPruner skips segments first; store/pruner.h), while
//     pipeline breakers that need a whole side resident (join builds)
//     materialize through Get() as before.
//   * kRowAtATime takes a row Catalog — MaterializeRowCatalog() converts
//     once for the compatibility path.
//
// Fingerprints come straight from the file headers (stamped at write time
// with the identical ContentFingerprint chain), so the shard and serving
// protocols see exactly the values an in-memory catalog would compute —
// an on-disk catalog and its in-memory twin are indistinguishable on the
// wire.
//
// Thread safety: Get()/Fingerprint()/Stored() are safe to call
// concurrently (in-process shard workers share one catalog); the stored
// relations themselves are immutable after Open.

#ifndef GUS_STORE_SEGMENT_CATALOG_H_
#define GUS_STORE_SEGMENT_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/columnar_executor.h"
#include "store/segment_cache.h"
#include "store/segment_store.h"

namespace gus {

class SegmentCatalog final : public ColumnarCatalog {
 public:
  /// Opens every `*.gseg` file under `dir` (relation name from the file's
  /// meta block). Fails if the directory cannot be read or any file is
  /// corrupt.
  static Result<std::unique_ptr<SegmentCatalog>> Open(
      const std::string& dir, SegmentCacheOptions cache_options = {});

  /// Opens an explicit list of segment files.
  static Result<std::unique_ptr<SegmentCatalog>> OpenFiles(
      const std::vector<std::string>& paths,
      SegmentCacheOptions cache_options = {});

  Result<const ColumnarRelation*> Get(const std::string& name) override;
  Result<uint64_t> Fingerprint(const std::string& name) override;
  Result<const StoredRelation*> Stored(const std::string& name) override;
  Result<int64_t> RowCountOf(const std::string& name) override;
  Result<LayoutPtr> LayoutOf(const std::string& name) override;
  SegmentCache* segment_cache() override { return &cache_; }

  std::vector<std::string> RelationNames() const;

  /// Row-engine form of the whole catalog (one full materialization per
  /// relation; the kRowAtATime compatibility path).
  Result<Catalog> MaterializeRowCatalog();

 private:
  explicit SegmentCatalog(SegmentCacheOptions cache_options)
      : cache_(cache_options) {}

  std::map<std::string, std::unique_ptr<StoredRelation>> stored_;
  SegmentCache cache_;

  std::mutex mu_;  // guards materialized_ only (stored_ is Open-time const)
  std::map<std::string, std::unique_ptr<ColumnarRelation>> materialized_;
};

/// Writes every relation of a row-engine catalog as `.gseg` files under
/// `dir` (created if missing) — the generator → segments ingestion step
/// used by gus_ingest and the tests.
Status WriteCatalogSegments(const Catalog& catalog, const std::string& dir,
                            int64_t segment_rows = kDefaultSegmentRows);

}  // namespace gus

#endif  // GUS_STORE_SEGMENT_CATALOG_H_
