#include "store/segment_source.h"

#include <algorithm>
#include <utility>

#include "kernels/sampling_kernels.h"

namespace gus {

namespace {

/// ScanSource's stored twin: contiguous range views over pinned segments,
/// clipped at segment ends.
class StoredScanSliceSource final : public BatchSource {
 public:
  StoredScanSliceSource(const StoredRelation* store, SegmentCache* cache,
                        int64_t batch_rows, int64_t begin, int64_t len)
      : BatchSource(store->layout_ptr()),
        store_(store),
        cache_(cache),
        batch_rows_(batch_rows),
        pos_(begin),
        end_(len < 0 ? store->num_rows()
                     : std::min(begin + len, store->num_rows())) {}

  Result<bool> NextView(SelView* out) override {
    if (pos_ >= end_) return false;
    const int64_t s = store_->SegmentOfRow(pos_);
    if (s != pin_seg_) {
      GUS_ASSIGN_OR_RETURN(pin_, cache_->Fault(*store_, s));
      pin_seg_ = s;
    }
    const SegmentInfo& info = store_->segment(s);
    const int64_t seg_end = info.row_begin + info.row_count;
    const int64_t len =
        std::min(batch_rows_, std::min(end_, seg_end) - pos_);
    *out = SelView::Range(pin_.get(), pos_ - info.row_begin, len);
    pos_ += len;
    return true;
  }

 private:
  const StoredRelation* store_;
  SegmentCache* cache_;
  int64_t batch_rows_;
  int64_t pos_;
  int64_t end_;
  int64_t pin_seg_ = -1;
  std::shared_ptr<const ColumnBatch> pin_;
};

}  // namespace

std::unique_ptr<BatchSource> MakeStoredScanSource(const StoredRelation* store,
                                                  SegmentCache* cache,
                                                  int64_t batch_rows,
                                                  int64_t begin, int64_t len) {
  return std::unique_ptr<BatchSource>(
      new StoredScanSliceSource(store, cache, batch_rows, begin, len));
}

Result<bool> StoredKeepSliceSource::NextView(SelView* out) {
  if (pos_ >= end_) return false;
  const std::vector<int64_t>& keep = *keep_;
  const int64_t s = store_->SegmentOfRow(keep[pos_]);
  if (s != pin_seg_) {
    GUS_ASSIGN_OR_RETURN(pin_, cache_->Fault(*store_, s));
    pin_seg_ = s;
  }
  const SegmentInfo& info = store_->segment(s);
  const int64_t seg_end = info.row_begin + info.row_count;
  sel_.clear();
  while (pos_ < end_ && static_cast<int64_t>(sel_.size()) < batch_rows_ &&
         keep[pos_] < seg_end) {
    sel_.push_back(keep[pos_] - info.row_begin);
    ++pos_;
  }
  *out = SelView::Selection(pin_.get(), sel_);
  return true;
}

Result<bool> StoredBlockSampleSource::NextView(SelView* out) {
  if (pos_ >= end_) return false;
  sel_.clear();
  const int64_t stop = std::min(end_, pos_ + batch_rows_);
  while (pos_ < stop) {
    const int64_t block = pos_ / block_size_;
    const int64_t block_end = std::min(stop, (block + 1) * block_size_);
    if (DecoupledBlockKeep(seed_, static_cast<uint64_t>(block), p_)) {
      for (int64_t r = pos_; r < block_end; ++r) sel_.push_back(r);
    }
    pos_ = block_end;
  }
  // Gather segment-run at a time (a kept block may straddle a segment
  // boundary); GatherFrom appends, so runs concatenate in row order.
  PrepareBatch(layout_, &scratch_);
  size_t k = 0;
  while (k < sel_.size()) {
    const int64_t s = store_->SegmentOfRow(sel_[k]);
    if (s != pin_seg_) {
      GUS_ASSIGN_OR_RETURN(pin_, cache_->Fault(*store_, s));
      pin_seg_ = s;
    }
    const SegmentInfo& info = store_->segment(s);
    const int64_t seg_end = info.row_begin + info.row_count;
    local_sel_.clear();
    while (k < sel_.size() && sel_[k] < seg_end) {
      local_sel_.push_back(sel_[k] - info.row_begin);
      ++k;
    }
    scratch_.GatherFrom(*pin_, local_sel_.data(),
                        static_cast<int64_t>(local_sel_.size()));
  }
  auto& lineage = *scratch_.mutable_lineage();
  for (size_t i = 0; i < sel_.size(); ++i) {
    lineage[i] = static_cast<uint64_t>(sel_[i] / block_size_);
  }
  *out = SelView::Whole(&scratch_);
  return true;
}

}  // namespace gus
