// Segment-backed pipeline sources: the streaming bridge between the
// on-disk store and the columnar/morsel execution engines.
//
// Each source mirrors an existing in-memory operator exactly — same row
// order, same lineage values, same per-row sampler stream consumption —
// but pulls its rows from pinned segments (store/segment_cache.h) instead
// of a materialized ColumnarRelation:
//
//   * MakeStoredScanSource      — ScanSource over [begin, begin+len)
//   * StoredKeepSliceSource     — SelectionListSource (sorted keep list)
//   * StoredBlockSampleSource   — BlockSampleSource (decoupled block keep)
//
// Views emitted by the scan/keep sources clip at segment boundaries, so
// chunk sizes differ from the in-memory sources'. That is parity-safe:
// every downstream consumer is chunk-boundary invariant (the resumable
// geometric-skip Bernoulli kernel advances per logical row, selects are
// stateless, estimator folds are sequential over rows) — the row stream
// itself is identical.
//
// A source holds at most one segment pin at a time, so a full scan's
// resident footprint is one decoded segment per pipeline leaf (plus
// whatever the cache keeps warm), not the whole relation.

#ifndef GUS_STORE_SEGMENT_SOURCE_H_
#define GUS_STORE_SEGMENT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "plan/columnar_executor.h"
#include "store/segment_cache.h"
#include "store/segment_store.h"

namespace gus {

/// Streams rows [begin, begin + len) of `store` (len < 0 means "to the
/// end"), faulting segments through `cache` and emitting contiguous views
/// over the pinned batches.
std::unique_ptr<BatchSource> MakeStoredScanSource(const StoredRelation* store,
                                                  SegmentCache* cache,
                                                  int64_t batch_rows,
                                                  int64_t begin = 0,
                                                  int64_t len = -1);

/// \brief Keep-list slice over stored segments: emits the rows named by
/// `keep[offset, offset+len)` (global row ids, ascending) as selection
/// views over pinned segment batches.
///
/// The morsel engine's SelectionListSource twin for WOR / WR-distinct
/// keep-sets whose pivot lives on disk.
class StoredKeepSliceSource final : public BatchSource {
 public:
  StoredKeepSliceSource(const StoredRelation* store, SegmentCache* cache,
                        std::shared_ptr<const std::vector<int64_t>> keep,
                        int64_t offset, int64_t len, int64_t batch_rows)
      : BatchSource(store->layout_ptr()),
        store_(store),
        cache_(cache),
        keep_(std::move(keep)),
        pos_(offset),
        end_(offset + len),
        batch_rows_(batch_rows) {}

  Result<bool> NextView(SelView* out) override;

 private:
  const StoredRelation* store_;
  SegmentCache* cache_;
  std::shared_ptr<const std::vector<int64_t>> keep_;
  int64_t pos_;
  int64_t end_;
  int64_t batch_rows_;
  int64_t pin_seg_ = -1;
  std::shared_ptr<const ColumnBatch> pin_;
  std::vector<int64_t> sel_;  // segment-local indices of the current view
};

/// \brief Decoupled block sampling over a stored morsel slice — the
/// BlockSampleSource twin.
///
/// Per-block keep decisions are the same pure function of (seed, block
/// id); kept rows gather from pinned segments into an owned batch and
/// their lineage re-keys to the global block id, so the emitted rows are
/// bit-identical to the in-memory path whatever the segment geometry.
class StoredBlockSampleSource final : public BatchSource {
 public:
  StoredBlockSampleSource(const StoredRelation* store, SegmentCache* cache,
                          int64_t begin, int64_t end, uint64_t seed, double p,
                          int64_t block_size, int64_t batch_rows)
      : BatchSource(store->layout_ptr()),
        store_(store),
        cache_(cache),
        pos_(begin),
        end_(end),
        seed_(seed),
        p_(p),
        block_size_(block_size),
        batch_rows_(batch_rows) {}

  Result<bool> NextView(SelView* out) override;

 private:
  const StoredRelation* store_;
  SegmentCache* cache_;
  int64_t pos_;
  int64_t end_;
  uint64_t seed_;
  double p_;
  int64_t block_size_;
  int64_t batch_rows_;
  int64_t pin_seg_ = -1;
  std::shared_ptr<const ColumnBatch> pin_;
  std::vector<int64_t> sel_;        // kept global row ids this pull
  std::vector<int64_t> local_sel_;  // per-segment-run local indices
  ColumnBatch scratch_;
};

}  // namespace gus

#endif  // GUS_STORE_SEGMENT_SOURCE_H_
