#include "store/segment_catalog.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace gus {

Result<std::unique_ptr<SegmentCatalog>> SegmentCatalog::Open(
    const std::string& dir, SegmentCacheOptions cache_options) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::InvalidArgument("cannot open catalog directory '" + dir +
                                   "'");
  }
  std::vector<std::string> paths;
  const std::string ext = kSegmentFileExt;
  while (struct dirent* entry = readdir(d)) {
    const std::string file = entry->d_name;
    if (file.size() > ext.size() &&
        file.compare(file.size() - ext.size(), ext.size(), ext) == 0) {
      paths.push_back(dir + "/" + file);
    }
  }
  closedir(d);
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return Status::InvalidArgument("catalog directory '" + dir +
                                   "' holds no " + ext + " files");
  }
  return OpenFiles(paths, cache_options);
}

Result<std::unique_ptr<SegmentCatalog>> SegmentCatalog::OpenFiles(
    const std::vector<std::string>& paths, SegmentCacheOptions cache_options) {
  std::unique_ptr<SegmentCatalog> catalog(new SegmentCatalog(cache_options));
  for (const std::string& path : paths) {
    GUS_ASSIGN_OR_RETURN(std::unique_ptr<StoredRelation> rel,
                         StoredRelation::Open(path));
    const std::string name = rel->name();
    if (!catalog->stored_.emplace(name, std::move(rel)).second) {
      return Status::InvalidArgument("catalog holds two relations named '" +
                                     name + "'");
    }
  }
  return catalog;
}

Result<const ColumnarRelation*> SegmentCatalog::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto cached = materialized_.find(name);
  if (cached != materialized_.end()) return cached->second.get();
  auto it = stored_.find(name);
  if (it == stored_.end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  const StoredRelation& rel = *it->second;
  auto out = std::make_unique<ColumnarRelation>(rel.layout_ptr());
  out->mutable_data()->Reserve(rel.num_rows());
  for (int64_t s = 0; s < rel.num_segments(); ++s) {
    GUS_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnBatch> pin,
                         cache_.Fault(rel, s));
    out->AppendBatch(*pin);
  }
  return materialized_.emplace(name, std::move(out)).first->second.get();
}

Result<uint64_t> SegmentCatalog::Fingerprint(const std::string& name) {
  auto it = stored_.find(name);
  if (it == stored_.end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  return it->second->content_fingerprint();
}

Result<const StoredRelation*> SegmentCatalog::Stored(const std::string& name) {
  auto it = stored_.find(name);
  if (it == stored_.end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  return static_cast<const StoredRelation*>(it->second.get());
}

Result<int64_t> SegmentCatalog::RowCountOf(const std::string& name) {
  auto it = stored_.find(name);
  if (it == stored_.end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  return it->second->num_rows();
}

Result<LayoutPtr> SegmentCatalog::LayoutOf(const std::string& name) {
  auto it = stored_.find(name);
  if (it == stored_.end()) {
    return Status::KeyError("relation '" + name + "' not in catalog");
  }
  return it->second->layout_ptr();
}

std::vector<std::string> SegmentCatalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(stored_.size());
  for (const auto& [name, rel] : stored_) names.push_back(name);
  return names;
}

Result<Catalog> SegmentCatalog::MaterializeRowCatalog() {
  Catalog out;
  for (const auto& [name, rel] : stored_) {
    GUS_ASSIGN_OR_RETURN(const ColumnarRelation* col, Get(name));
    out.emplace(name, col->ToRelation());
  }
  return out;
}

Status WriteCatalogSegments(const Catalog& catalog, const std::string& dir,
                            int64_t segment_rows) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::InvalidArgument("cannot create catalog directory '" + dir +
                                   "'");
  }
  for (const auto& [name, rel] : catalog) {
    GUS_ASSIGN_OR_RETURN(ColumnarRelation col,
                         ColumnarRelation::FromRelation(rel));
    GUS_ASSIGN_OR_RETURN(SegmentFileWriter::Summary summary,
                         WriteRelationSegments(
                             name, col, dir + "/" + name + kSegmentFileExt,
                             segment_rows));
    (void)summary;
  }
  return Status::OK();
}

}  // namespace gus
