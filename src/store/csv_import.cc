#include "store/csv_import.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gus {

namespace {

/// Type-inference lattice position: int64 <= float64 <= string.
enum class InferredType { kInt64 = 0, kFloat64 = 1, kString = 2 };

InferredType Widen(InferredType a, InferredType b) {
  return a >= b ? a : b;
}

/// Strictest type the text parses as. Whole-field parses only — "12abc"
/// is a string, not 12.
InferredType ClassifyField(const std::string& s) {
  if (s.empty()) return InferredType::kString;
  errno = 0;
  char* end = nullptr;
  const long long i = std::strtoll(s.c_str(), &end, 10);
  if (errno == 0 && end == s.c_str() + s.size()) {
    (void)i;
    return InferredType::kInt64;
  }
  errno = 0;
  end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  if (errno == 0 && end == s.c_str() + s.size()) {
    (void)d;
    return InferredType::kFloat64;
  }
  return InferredType::kString;
}

Result<Value> ParseField(const std::string& s, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(s.c_str(), &end, 10);
      if (errno != 0 || end != s.c_str() + s.size() || s.empty()) {
        return Status::InvalidArgument("CSV field '" + s +
                                       "' is not an int64");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kFloat64: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (errno != 0 || end != s.c_str() + s.size() || s.empty()) {
        return Status::InvalidArgument("CSV field '" + s +
                                       "' is not a float64");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(s);
  }
  return Status::Internal("unhandled ValueType");
}

Result<ValueType> NamedType(const std::string& name) {
  if (name == "int64") return ValueType::kInt64;
  if (name == "float64") return ValueType::kFloat64;
  if (name == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown column type '" + name +
                                 "' (want int64|float64|string)");
}

/// Splits `text` into lines, tolerating \r\n and a missing final newline;
/// blank lines are dropped.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    size_t end = nl;
    if (end > pos && text[end - 1] == '\r') --end;
    if (end > pos) lines.push_back(text.substr(pos, end - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quote in CSV record: " +
                                   line);
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<Relation> ImportCsvText(const std::string& name,
                               const std::string& text,
                               const CsvImportOptions& options) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return Status::InvalidArgument("CSV input for '" + name + "' is empty");
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  GUS_ASSIGN_OR_RETURN(std::vector<std::string> head,
                       SplitCsvRecord(lines[0], options.delimiter));
  const size_t num_cols = head.size();
  if (options.has_header) {
    names = std::move(head);
    first_data = 1;
  } else {
    for (size_t i = 0; i < num_cols; ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }

  // Split all records once; column counts must agree everywhere.
  std::vector<std::vector<std::string>> records;
  records.reserve(lines.size() - first_data);
  for (size_t i = first_data; i < lines.size(); ++i) {
    GUS_ASSIGN_OR_RETURN(std::vector<std::string> rec,
                         SplitCsvRecord(lines[i], options.delimiter));
    if (rec.size() != num_cols) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(i + 1) + " has " +
          std::to_string(rec.size()) + " fields, want " +
          std::to_string(num_cols));
    }
    records.push_back(std::move(rec));
  }

  // Column types: pinned, or inferred by widening across all rows.
  std::vector<ValueType> types(num_cols, ValueType::kInt64);
  if (!options.column_types.empty()) {
    if (options.column_types.size() != num_cols) {
      return Status::InvalidArgument(
          "column_types has " + std::to_string(options.column_types.size()) +
          " entries, CSV has " + std::to_string(num_cols) + " columns");
    }
    for (size_t c = 0; c < num_cols; ++c) {
      GUS_ASSIGN_OR_RETURN(types[c], NamedType(options.column_types[c]));
    }
  } else {
    std::vector<InferredType> inferred(num_cols, InferredType::kInt64);
    for (const auto& rec : records) {
      for (size_t c = 0; c < num_cols; ++c) {
        inferred[c] = Widen(inferred[c], ClassifyField(rec[c]));
      }
    }
    for (size_t c = 0; c < num_cols; ++c) {
      types[c] = inferred[c] == InferredType::kInt64 ? ValueType::kInt64
                 : inferred[c] == InferredType::kFloat64
                     ? ValueType::kFloat64
                     : ValueType::kString;
    }
  }

  std::vector<Column> columns;
  columns.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    columns.push_back(Column{names[c], types[c]});
  }

  std::vector<Row> rows;
  rows.reserve(records.size());
  for (const auto& rec : records) {
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      GUS_ASSIGN_OR_RETURN(Value v, ParseField(rec[c], types[c]));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  return Relation::MakeBase(name, Schema(std::move(columns)),
                            std::move(rows));
}

Result<Relation> ImportCsvFile(const std::string& name,
                               const std::string& path,
                               const CsvImportOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open CSV file: " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::Internal("error reading CSV file: " + path);
  return ImportCsvText(name, text, options);
}

}  // namespace gus
