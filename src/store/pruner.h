// SegmentPruner: zone-map + provenance-based data skipping for
// segment-backed pivot scans.
//
// The morsel compiler distills the pivot-side operator path into a
// PrunePlan — a disjunction of PruneAlternatives, one per union branch.
// Each alternative is a conjunction of facts that every row surviving
// that branch must satisfy:
//
//   * ColumnConstraint    — a `column cmp literal` select conjunct
//   * keep list           — a WOR / WR-distinct sampler's resolved global
//                           keep-set (sorted row ids)
//   * block sampler       — a decoupled block-Bernoulli (seed, p, block)
//   * lineage Bernoulli   — a seed-decoupled per-row keep on the pivot's
//                           lineage ids (= global row ids at the scan)
//
// A segment is *excluded* under an alternative when any one fact can hold
// for none of its rows (predicate interval disjoint from the zone map, no
// kept row id in the segment's row range, every overlapping block
// rejected, no lineage id under the keep threshold). A segment is
// *prunable* when it is excluded under EVERY alternative.
//
// Soundness (why skipping cannot move an estimate by one bit): skipping
// happens at whole-morsel granularity only — a unit is skipped iff all of
// its segments are prunable, and a skipped unit folds a fresh sink into
// the ordered morsel fold without executing. That is byte-identical to
// "executed and emitted nothing", which is exactly what the exclusion
// proof guarantees the unit would have done: per-morsel Rng streams are
// forked independently (Rng::ForkStream(stream_base, m)), so a skipped
// unit's stream was never observable by any other unit, and all
// keep-decisions above are pure functions of (seed, row/block id), not of
// which segments were faulted. No per-segment skipping happens inside a
// running morsel — that *would* perturb streaming samplers whose draw
// count depends on scanned rows.
//
// Constraint evaluation mirrors the expression evaluator exactly: numeric
// comparisons go through double promotion (rel/expression.cc
// CompareBinary), strings compare bytewise — the pruner must never prune
// a segment the evaluator would keep a row of.

#ifndef GUS_STORE_PRUNER_H_
#define GUS_STORE_PRUNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rel/expression.h"
#include "store/segment_store.h"

namespace gus {

/// One `column cmp literal` conjunct, normalized column-on-the-left and
/// resolved to a pivot column index.
struct ColumnConstraint {
  int column = -1;  ///< pivot column index
  ExprOp op = ExprOp::kEq;  ///< kEq/kNe/kLt/kLe/kGt/kGe
  Value literal;
};

/// \brief The conjunction of row-survival facts along one pivot path (one
/// union branch).
struct PruneAlternative {
  std::vector<ColumnConstraint> constraints;
  /// Resolved WOR / WR-distinct keep-sets (sorted global row ids).
  std::vector<std::shared_ptr<const std::vector<int64_t>>> keep_lists;
  struct BlockSampler {
    uint64_t seed = 0;
    double p = 0.0;
    int64_t block_size = 0;
  };
  std::vector<BlockSampler> block_samplers;
  struct LineageBernoulli {
    uint64_t seed = 0;
    double p = 0.0;
  };
  /// Seed-decoupled Bernoulli keeps on the pivot's own lineage ids; only
  /// extracted while those ids still equal global row ids (no block
  /// re-key below).
  std::vector<LineageBernoulli> lineage_bernoullis;
};

/// Disjunction of alternatives. No alternatives means "nothing provable":
/// every segment stays.
struct PrunePlan {
  std::vector<PruneAlternative> alternatives;
};

/// \brief Appends the `column cmp literal` conjuncts of `predicate`
/// (resolved against `schema`) whose column maps to a pivot column.
///
/// `colmap[i]` is the pivot column behind schema column i, or -1 when the
/// column is not a pivot column (join build side). Unsupported shapes
/// (ORs, arithmetic, column-vs-column) contribute nothing — pruning just
/// gets weaker, never wrong.
void ExtractColumnConstraints(const ExprPtr& predicate, const Schema& schema,
                              const std::vector<int>& colmap,
                              std::vector<ColumnConstraint>* out);

/// \brief True when some row of a segment with zone `zone` *may* satisfy
/// `column op literal` under the evaluator's comparison semantics.
///
/// False is a proof of emptiness; true is merely "not excluded".
bool ZoneMayMatch(const ColumnZone& zone, ValueType type, ExprOp op,
                  const Value& literal);

/// True when segment `s` of `store` provably yields no surviving row
/// under `alt`.
bool AlternativeExcludesSegment(const StoredRelation& store, int64_t s,
                                const PruneAlternative& alt);

/// Per-segment prunability mask: excluded under every alternative (all
/// false when `plan` has no alternatives).
std::vector<char> ComputeSegmentExclusion(const StoredRelation& store,
                                          const PrunePlan& plan);

/// \brief Per-unit skip mask over the morsel sequence: a unit is skipped
/// iff every segment overlapping its row range is excluded.
///
/// `morsel_rows` must be a multiple of the store's segment_rows (the
/// morsel resolver aligns it), so each segment belongs to exactly one
/// unit.
std::vector<char> ComputeUnitSkipMask(const StoredRelation& store,
                                      const std::vector<char>& excluded,
                                      int64_t morsel_rows);

/// Segments overlapping units [unit_begin, unit_end) — the
/// ExecStats::segments_total of a (shard) execution.
int64_t SegmentsInUnitRange(const StoredRelation& store, int64_t morsel_rows,
                            int64_t unit_begin, int64_t unit_end);

/// Segments overlapping units of [unit_begin, unit_end) that the skip
/// mask marks skipped — ExecStats::segments_skipped.
int64_t SkippedSegmentsInUnitRange(const StoredRelation& store,
                                   const std::vector<char>& unit_skip,
                                   int64_t morsel_rows, int64_t unit_begin,
                                   int64_t unit_end);

}  // namespace gus

#endif  // GUS_STORE_PRUNER_H_
