#include "store/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "kernels/page_codec.h"
#include "util/hash.h"
#include "util/logging.h"

namespace gus {

namespace {

constexpr uint32_t kMagic = 0x47455347u;  // "GSEG" little-endian
constexpr uint32_t kVersion = 1;
constexpr uint64_t kHeaderBytes = 96;

Status RequireLittleEndian() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(
        "segment store pages are little-endian; big-endian hosts are not "
        "supported");
  }
  return Status::OK();
}

uint64_t HashStringContent(uint64_t h, const std::string& s) {
  return HashBytes(HashCombine(h, s.size()), s.data(), s.size());
}

// ---- Flat little-endian serialization ----

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  return bits;
}

double DoubleOf(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, 8);
  return v;
}

/// Bounds-checked cursor over a mapped byte range. Overruns latch `ok`
/// false and read as zero; callers check Done() once at the end.
struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool Has(size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Has(1)) return 0;
    return *p++;
  }
  uint32_t U32() {
    if (!Has(4)) return 0;
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Has(8)) return 0;
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    if (!Has(len)) return std::string();
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

uint64_t ReadU64At(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint32_t ReadU32At(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

Status WriteAll(std::FILE* f, const void* data, size_t len) {
  if (len == 0) return Status::OK();
  if (std::fwrite(data, 1, len, f) != len) {
    return Status::Internal("segment store: short write");
  }
  return Status::OK();
}

}  // namespace

// ---- StoredRelation --------------------------------------------------------

StoredRelation::~StoredRelation() {
  if (base_ != nullptr) {
    munmap(const_cast<uint8_t*>(base_), file_bytes_);
  }
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<StoredRelation>> StoredRelation::Open(
    const std::string& path) {
  GUS_RETURN_NOT_OK(RequireLittleEndian());
  std::unique_ptr<StoredRelation> rel(new StoredRelation());
  rel->path_ = path;
  rel->fd_ = open(path.c_str(), O_RDONLY);
  if (rel->fd_ < 0) {
    return Status::InvalidArgument("cannot open segment file '" + path + "'");
  }
  struct stat st;
  if (fstat(rel->fd_, &st) != 0 || st.st_size < 0) {
    return Status::Internal("cannot stat segment file '" + path + "'");
  }
  rel->file_bytes_ = static_cast<uint64_t>(st.st_size);
  if (rel->file_bytes_ < kHeaderBytes) {
    return Status::InvalidArgument("segment file '" + path +
                                   "' is truncated (no header)");
  }
  void* map = mmap(nullptr, rel->file_bytes_, PROT_READ, MAP_PRIVATE,
                   rel->fd_, 0);
  if (map == MAP_FAILED) {
    return Status::Internal("mmap failed for segment file '" + path + "'");
  }
  rel->base_ = static_cast<const uint8_t*>(map);
  GUS_RETURN_NOT_OK(rel->Parse());
  return rel;
}

Status StoredRelation::Parse() {
  ByteReader h{base_, base_ + kHeaderBytes};
  const uint32_t magic = h.U32();
  const uint32_t version = h.U32();
  h.U64();  // flags (reserved)
  content_fingerprint_ = h.U64();
  num_rows_ = static_cast<int64_t>(h.U64());
  segment_rows_ = static_cast<int64_t>(h.U64());
  const uint64_t num_segments = h.U64();
  const uint32_t num_columns = h.U32();
  const uint32_t lineage_arity = h.U32();
  const uint64_t meta_offset = h.U64();
  const uint64_t meta_bytes = h.U64();
  const uint64_t dir_offset = h.U64();
  const uint64_t dir_bytes = h.U64();
  const uint64_t file_bytes = h.U64();
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path_ + "' is not a segment file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("segment file '" + path_ +
                                   "' has unsupported version " +
                                   std::to_string(version));
  }
  if (file_bytes != file_bytes_ || meta_offset > file_bytes_ ||
      meta_bytes > file_bytes_ - meta_offset || dir_offset > file_bytes_ ||
      dir_bytes > file_bytes_ - dir_offset || segment_rows_ < 1 ||
      num_rows_ < 0) {
    return Status::InvalidArgument("segment file '" + path_ +
                                   "' has a corrupt header");
  }

  // Meta block: name, schema, lineage schema, global dictionary.
  ByteReader m{base_ + meta_offset, base_ + meta_offset + meta_bytes};
  name_ = m.Str();
  std::vector<Column> columns(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    columns[c].name = m.Str();
    const uint8_t type = m.U8();
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::InvalidArgument("segment file '" + path_ +
                                     "' has an unknown column type");
    }
    columns[c].type = static_cast<ValueType>(type);
  }
  auto layout = std::make_shared<BatchLayout>();
  layout->schema = Schema(std::move(columns));
  layout->lineage_schema.resize(lineage_arity);
  for (uint32_t d = 0; d < lineage_arity; ++d) {
    layout->lineage_schema[d] = m.Str();
  }
  dict_ = std::make_shared<StringDict>();
  const uint64_t dict_count = m.U64();
  for (uint64_t i = 0; i < dict_count && m.ok; ++i) {
    dict_->values.push_back(m.Str());
    dict_->index.emplace(dict_->values.back(),
                         static_cast<uint32_t>(dict_->values.size() - 1));
  }
  if (!m.ok) {
    return Status::InvalidArgument("segment file '" + path_ +
                                   "' has a truncated meta block");
  }
  layout_ = LayoutPtr(std::move(layout));

  // Directory block.
  ByteReader d{base_ + dir_offset, base_ + dir_offset + dir_bytes};
  segments_.resize(num_segments);
  const uint64_t page_region_end = std::min(meta_offset, dir_offset);
  for (uint64_t s = 0; s < num_segments && d.ok; ++s) {
    SegmentInfo& seg = segments_[s];
    seg.row_begin = static_cast<int64_t>(d.U64());
    seg.row_count = static_cast<int64_t>(d.U64());
    seg.checksum = d.U64();
    const int64_t want_begin = static_cast<int64_t>(s) * segment_rows_;
    const int64_t want_count =
        std::min(segment_rows_, num_rows_ - want_begin);
    if (seg.row_begin != want_begin || seg.row_count != want_count ||
        seg.row_count < 1) {
      return Status::InvalidArgument("segment file '" + path_ +
                                     "' has an inconsistent row-group "
                                     "directory");
    }
    seg.zones.resize(num_columns);
    seg.column_pages.resize(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      auto& page = seg.column_pages[c];
      page.first = d.U64();
      page.second = d.U64();
      ColumnZone& zone = seg.zones[c];
      const uint8_t kind = d.U8();
      const uint64_t a = d.U64();
      const uint64_t b = d.U64();
      zone.null_count = d.U64();
      if (kind > ColumnZone::kUnknown) {
        return Status::InvalidArgument("segment file '" + path_ +
                                       "' has an unknown zone kind");
      }
      zone.kind = static_cast<ColumnZone::Kind>(kind);
      switch (layout_->schema.column(static_cast<int>(c)).type) {
        case ValueType::kInt64:
          zone.min_i64 = static_cast<int64_t>(a);
          zone.max_i64 = static_cast<int64_t>(b);
          break;
        case ValueType::kFloat64:
          zone.min_f64 = DoubleOf(a);
          zone.max_f64 = DoubleOf(b);
          break;
        case ValueType::kString:
          zone.min_code = static_cast<uint32_t>(a);
          zone.max_code = static_cast<uint32_t>(b);
          if (zone.kind == ColumnZone::kRanged) {
            if (zone.min_code >= dict_->values.size() ||
                zone.max_code >= dict_->values.size()) {
              return Status::InvalidArgument(
                  "segment file '" + path_ +
                  "' has a zone code outside its dictionary");
            }
            zone.min_str = dict_->values[zone.min_code];
            zone.max_str = dict_->values[zone.max_code];
          }
          break;
      }
      const uint64_t expect_bytes =
          static_cast<uint64_t>(seg.row_count) *
          (layout_->schema.column(static_cast<int>(c)).type ==
                   ValueType::kString
               ? 4
               : 8);
      if (page.second != expect_bytes || page.first < kHeaderBytes ||
          page.first > page_region_end ||
          page.second > page_region_end - page.first) {
        return Status::InvalidArgument("segment file '" + path_ +
                                       "' has a column page outside the "
                                       "page region");
      }
      seg.page_bytes += static_cast<int64_t>(page.second);
    }
    seg.lineage_page.first = d.U64();
    seg.lineage_page.second = d.U64();
    const uint64_t expect_lineage =
        static_cast<uint64_t>(seg.row_count) * lineage_arity * 8;
    if (seg.lineage_page.second != expect_lineage ||
        seg.lineage_page.first < kHeaderBytes ||
        seg.lineage_page.first > page_region_end ||
        seg.lineage_page.second > page_region_end - seg.lineage_page.first) {
      return Status::InvalidArgument("segment file '" + path_ +
                                     "' has a lineage page outside the "
                                     "page region");
    }
    seg.page_bytes += static_cast<int64_t>(seg.lineage_page.second);
    seg.lineage_range.resize(lineage_arity);
    for (uint32_t dim = 0; dim < lineage_arity; ++dim) {
      seg.lineage_range[dim].first = d.U64();
      seg.lineage_range[dim].second = d.U64();
    }
    total_page_bytes_ += seg.page_bytes;
  }
  if (!d.ok) {
    return Status::InvalidArgument("segment file '" + path_ +
                                   "' has a truncated directory");
  }
  const int64_t expect_segments =
      num_rows_ == 0 ? 0 : (num_rows_ + segment_rows_ - 1) / segment_rows_;
  if (static_cast<int64_t>(num_segments) != expect_segments) {
    return Status::InvalidArgument("segment file '" + path_ +
                                   "' directory disagrees with its row "
                                   "count");
  }
  return Status::OK();
}

int64_t StoredRelation::OnDiskRowBytes() const {
  if (num_rows_ <= 0) return 1;
  return std::max<int64_t>(
      1, (total_page_bytes_ + num_rows_ - 1) / num_rows_);
}

Result<ColumnBatch> StoredRelation::DecodeSegment(int64_t s) const {
  if (s < 0 || s >= num_segments()) {
    return Status::OutOfRange("segment index out of range");
  }
  const SegmentInfo& seg = segments_[static_cast<size_t>(s)];

  // Verify before decoding: a flipped bit anywhere in the segment's pages
  // fails loudly instead of silently skewing an estimate.
  uint64_t sum = kFnv1aOffset;
  for (const auto& page : seg.column_pages) {
    sum = HashBytes(sum, base_ + page.first, page.second);
  }
  sum = HashBytes(sum, base_ + seg.lineage_page.first,
                  seg.lineage_page.second);
  if (sum != seg.checksum) {
    return Status::Internal("segment " + std::to_string(s) + " of '" +
                            name_ + "' failed its checksum (corrupt file?)");
  }

  ColumnBatch batch(layout_);
  const int64_t rows = seg.row_count;
  for (int c = 0; c < layout_->schema.num_columns(); ++c) {
    ColumnData* col = batch.mutable_column(c);
    const uint8_t* page = base_ + seg.column_pages[static_cast<size_t>(c)].first;
    switch (col->type) {
      case ValueType::kInt64:
        DecodePage(page, rows, &col->i64);
        break;
      case ValueType::kFloat64:
        DecodePage(page, rows, &col->f64);
        break;
      case ValueType::kString:
        DecodePage(page, rows, &col->codes);
        col->dict = dict_;
        for (const uint32_t code : col->codes) {
          if (code >= dict_->values.size()) {
            return Status::Internal("segment " + std::to_string(s) + " of '" +
                                    name_ +
                                    "' holds a code outside its dictionary");
          }
        }
        break;
    }
  }
  DecodePage(base_ + seg.lineage_page.first,
             rows * layout_->lineage_arity(), batch.mutable_lineage());
  batch.SetNumRows(rows);
  return batch;
}

Result<uint64_t> StoredRelation::ComputeContentFingerprint() const {
  // Identical chain to rel/column_batch.h ContentFingerprint, streamed
  // column-major over the pages (segments are row-contiguous, so walking
  // segment-by-segment inside one column preserves row order).
  uint64_t h = Mix64(0x46505247ULL);  // "GRPF"
  h = HashStringContent(h, name_);
  const Schema& schema = layout_->schema;
  h = HashCombine(h, static_cast<uint64_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    h = HashStringContent(h, schema.column(c).name);
    h = HashCombine(h, static_cast<uint64_t>(schema.column(c).type));
  }
  for (const std::string& dim : layout_->lineage_schema) {
    h = HashStringContent(h, dim);
  }
  h = HashCombine(h, static_cast<uint64_t>(num_rows_));
  for (int c = 0; c < schema.num_columns(); ++c) {
    for (const SegmentInfo& seg : segments_) {
      const uint8_t* page = base_ + seg.column_pages[static_cast<size_t>(c)].first;
      switch (schema.column(c).type) {
        case ValueType::kInt64:
        case ValueType::kFloat64:
          for (int64_t i = 0; i < seg.row_count; ++i) {
            h = HashCombine(h, ReadU64At(page + i * 8));
          }
          break;
        case ValueType::kString:
          for (int64_t i = 0; i < seg.row_count; ++i) {
            const uint32_t code = ReadU32At(page + i * 4);
            if (code >= dict_->values.size()) {
              return Status::Internal("segment fingerprint: code outside "
                                      "the dictionary in '" + name_ + "'");
            }
            h = HashStringContent(h, dict_->values[code]);
          }
          break;
      }
    }
  }
  for (const SegmentInfo& seg : segments_) {
    const uint8_t* page = base_ + seg.lineage_page.first;
    const int64_t n = seg.row_count * layout_->lineage_arity();
    for (int64_t i = 0; i < n; ++i) {
      h = HashCombine(h, ReadU64At(page + i * 8));
    }
  }
  return h;
}

// ---- SegmentFileWriter -----------------------------------------------------

SegmentFileWriter::~SegmentFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SegmentFileWriter>> SegmentFileWriter::Create(
    const std::string& path, const std::string& name, LayoutPtr layout,
    int64_t segment_rows) {
  GUS_RETURN_NOT_OK(RequireLittleEndian());
  if (segment_rows < 1) {
    return Status::InvalidArgument("segment_rows must be >= 1");
  }
  if (layout == nullptr) {
    return Status::InvalidArgument("segment writer needs a layout");
  }
  std::unique_ptr<SegmentFileWriter> w(new SegmentFileWriter());
  w->path_ = path;
  w->name_ = name;
  w->layout_ = std::move(layout);
  w->segment_rows_ = segment_rows;
  w->dict_ = std::make_shared<StringDict>();
  w->pending_.ResetLayout(w->layout_);
  w->file_ = std::fopen(path.c_str(), "wb");
  if (w->file_ == nullptr) {
    return Status::InvalidArgument("cannot create segment file '" + path +
                                   "'");
  }
  const std::string header(kHeaderBytes, '\0');
  GUS_RETURN_NOT_OK(WriteAll(w->file_, header.data(), header.size()));
  w->next_page_offset_ = kHeaderBytes;
  return w;
}

Status SegmentFileWriter::Append(const ColumnBatch& batch) {
  if (finished_) {
    return Status::InvalidArgument("Append after Finish");
  }
  if (!(batch.schema() == layout_->schema) ||
      batch.lineage_schema() != layout_->lineage_schema) {
    return Status::InvalidArgument(
        "appended batch does not match the segment file's layout");
  }
  int64_t off = 0;
  while (off < batch.num_rows()) {
    const int64_t room = segment_rows_ - pending_.num_rows();
    const int64_t take = std::min(room, batch.num_rows() - off);
    pending_.AppendRangeFrom(batch, off, take);
    off += take;
    if (pending_.num_rows() == segment_rows_) {
      GUS_RETURN_NOT_OK(FlushSegment());
    }
  }
  return Status::OK();
}

Status SegmentFileWriter::FlushSegment() {
  const int64_t rows = pending_.num_rows();
  if (rows == 0) return Status::OK();
  SegmentInfo seg;
  seg.row_begin = rows_written_;
  seg.row_count = rows;
  seg.zones.resize(layout_->schema.num_columns());
  seg.column_pages.resize(layout_->schema.num_columns());

  std::string pages;
  uint64_t checksum = kFnv1aOffset;
  std::vector<uint32_t> code_scratch;
  for (int c = 0; c < layout_->schema.num_columns(); ++c) {
    const ColumnData& col = pending_.column(c);
    ColumnZone& zone = seg.zones[c];
    const size_t page_at = pages.size();
    switch (col.type) {
      case ValueType::kInt64: {
        EncodePage(col.i64.data(), rows, &pages);
        zone.kind = ColumnZone::kRanged;
        const auto [lo, hi] =
            std::minmax_element(col.i64.begin(), col.i64.end());
        zone.min_i64 = *lo;
        zone.max_i64 = *hi;
        break;
      }
      case ValueType::kFloat64: {
        EncodePage(col.f64.data(), rows, &pages);
        zone.kind = ColumnZone::kRanged;
        zone.min_f64 = col.f64[0];
        zone.max_f64 = col.f64[0];
        for (const double v : col.f64) {
          if (std::isnan(v)) {
            // NaN breaks ordering: mark the zone unusable rather than
            // publishing bounds a pruner could wrongly trust.
            zone.kind = ColumnZone::kUnknown;
            break;
          }
          zone.min_f64 = std::min(zone.min_f64, v);
          zone.max_f64 = std::max(zone.max_f64, v);
        }
        break;
      }
      case ValueType::kString: {
        // Re-encode through the file's global dictionary (the buffered
        // batch may carry any source dictionary).
        code_scratch.resize(static_cast<size_t>(rows));
        int64_t min_row = 0, max_row = 0;
        for (int64_t i = 0; i < rows; ++i) {
          const std::string& s = col.StringAt(i);
          code_scratch[static_cast<size_t>(i)] = dict_->Intern(s);
          if (s < col.StringAt(min_row)) min_row = i;
          if (col.StringAt(max_row) < s) max_row = i;
        }
        EncodePage(code_scratch.data(), rows, &pages);
        zone.kind = ColumnZone::kRanged;
        zone.min_code = code_scratch[static_cast<size_t>(min_row)];
        zone.max_code = code_scratch[static_cast<size_t>(max_row)];
        zone.min_str = col.StringAt(min_row);
        zone.max_str = col.StringAt(max_row);
        break;
      }
    }
    seg.column_pages[c] = {next_page_offset_ + page_at,
                           pages.size() - page_at};
  }
  const size_t lineage_at = pages.size();
  EncodePage(pending_.lineage().data(),
             rows * layout_->lineage_arity(), &pages);
  seg.lineage_page = {next_page_offset_ + lineage_at,
                      pages.size() - lineage_at};
  seg.lineage_range.resize(layout_->lineage_arity());
  for (int dim = 0; dim < layout_->lineage_arity(); ++dim) {
    uint64_t lo = pending_.lineage_at(0, dim), hi = lo;
    for (int64_t i = 1; i < rows; ++i) {
      const uint64_t id = pending_.lineage_at(i, dim);
      lo = std::min(lo, id);
      hi = std::max(hi, id);
    }
    seg.lineage_range[dim] = {lo, hi};
  }
  checksum = HashBytes(checksum, pages.data(), pages.size());
  seg.checksum = checksum;
  seg.page_bytes = static_cast<int64_t>(pages.size());

  GUS_RETURN_NOT_OK(WriteAll(file_, pages.data(), pages.size()));
  next_page_offset_ += pages.size();
  rows_written_ += rows;
  segments_.push_back(std::move(seg));
  pending_.Clear();
  return Status::OK();
}

Result<SegmentFileWriter::Summary> SegmentFileWriter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("Finish called twice");
  }
  GUS_RETURN_NOT_OK(FlushSegment());
  finished_ = true;

  // Meta block.
  std::string meta;
  PutStr(&meta, name_);
  for (int c = 0; c < layout_->schema.num_columns(); ++c) {
    PutStr(&meta, layout_->schema.column(c).name);
    PutU8(&meta, static_cast<uint8_t>(layout_->schema.column(c).type));
  }
  for (const std::string& dim : layout_->lineage_schema) {
    PutStr(&meta, dim);
  }
  PutU64(&meta, dict_->values.size());
  for (const std::string& s : dict_->values) PutStr(&meta, s);
  const uint64_t meta_offset = next_page_offset_;
  GUS_RETURN_NOT_OK(WriteAll(file_, meta.data(), meta.size()));

  // Directory block.
  std::string dir;
  for (const SegmentInfo& seg : segments_) {
    PutU64(&dir, static_cast<uint64_t>(seg.row_begin));
    PutU64(&dir, static_cast<uint64_t>(seg.row_count));
    PutU64(&dir, seg.checksum);
    for (int c = 0; c < layout_->schema.num_columns(); ++c) {
      PutU64(&dir, seg.column_pages[c].first);
      PutU64(&dir, seg.column_pages[c].second);
      const ColumnZone& zone = seg.zones[c];
      PutU8(&dir, zone.kind);
      switch (layout_->schema.column(c).type) {
        case ValueType::kInt64:
          PutU64(&dir, static_cast<uint64_t>(zone.min_i64));
          PutU64(&dir, static_cast<uint64_t>(zone.max_i64));
          break;
        case ValueType::kFloat64:
          PutU64(&dir, BitsOf(zone.min_f64));
          PutU64(&dir, BitsOf(zone.max_f64));
          break;
        case ValueType::kString:
          PutU64(&dir, zone.min_code);
          PutU64(&dir, zone.max_code);
          break;
      }
      PutU64(&dir, zone.null_count);
    }
    PutU64(&dir, seg.lineage_page.first);
    PutU64(&dir, seg.lineage_page.second);
    for (const auto& range : seg.lineage_range) {
      PutU64(&dir, range.first);
      PutU64(&dir, range.second);
    }
  }
  const uint64_t dir_offset = meta_offset + meta.size();
  GUS_RETURN_NOT_OK(WriteAll(file_, dir.data(), dir.size()));
  const uint64_t file_bytes = dir_offset + dir.size();

  // Header (fingerprint stamped after a verification re-read below).
  std::string header;
  PutU32(&header, kMagic);
  PutU32(&header, kVersion);
  PutU64(&header, 0);  // flags
  PutU64(&header, 0);  // content fingerprint placeholder
  PutU64(&header, static_cast<uint64_t>(rows_written_));
  PutU64(&header, static_cast<uint64_t>(segment_rows_));
  PutU64(&header, segments_.size());
  PutU32(&header, static_cast<uint32_t>(layout_->schema.num_columns()));
  PutU32(&header, static_cast<uint32_t>(layout_->lineage_arity()));
  PutU64(&header, meta_offset);
  PutU64(&header, meta.size());
  PutU64(&header, dir_offset);
  PutU64(&header, dir.size());
  PutU64(&header, file_bytes);
  GUS_CHECK(header.size() == kHeaderBytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("cannot seek to the segment file header");
  }
  GUS_RETURN_NOT_OK(WriteAll(file_, header.data(), header.size()));
  if (std::fflush(file_) != 0 || std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::Internal("cannot flush segment file '" + path_ + "'");
  }
  file_ = nullptr;

  // Re-open what was just written and fingerprint it from the pages — the
  // stamped value then describes the bytes on disk, not the bytes we
  // intended to write.
  GUS_ASSIGN_OR_RETURN(std::unique_ptr<StoredRelation> reread,
                       StoredRelation::Open(path_));
  GUS_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                       reread->ComputeContentFingerprint());
  reread.reset();
  const int fd = open(path_.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("cannot re-open '" + path_ +
                            "' to stamp its fingerprint");
  }
  uint64_t stamped = fingerprint;
  const ssize_t wrote = pwrite(fd, &stamped, 8, 16);
  close(fd);
  if (wrote != 8) {
    return Status::Internal("cannot stamp the fingerprint into '" + path_ +
                            "'");
  }

  Summary out;
  out.num_rows = rows_written_;
  out.num_segments = static_cast<int64_t>(segments_.size());
  out.content_fingerprint = fingerprint;
  return out;
}

Result<SegmentFileWriter::Summary> WriteRelationSegments(
    const std::string& name, const ColumnarRelation& rel,
    const std::string& path, int64_t segment_rows) {
  GUS_ASSIGN_OR_RETURN(
      std::unique_ptr<SegmentFileWriter> writer,
      SegmentFileWriter::Create(path, name, rel.layout_ptr(), segment_rows));
  GUS_RETURN_NOT_OK(writer->Append(rel.data()));
  return writer->Finish();
}

}  // namespace gus
