// Pinned-segment cache: the buffer-manager layer between the execution
// engines and the on-disk segment files.
//
// Faulting a segment decodes its pages into a ColumnBatch; the cache keeps
// decoded segments resident up to a byte budget with LRU eviction. Entries
// are handed out as shared_ptr pins: eviction only drops the cache's
// reference, so a scan holding a pin keeps its segment alive while the
// budget reclaims cold ones — no use-after-free window, at worst a
// transiently over-budget moment while pins drain.
//
// Thread safety: Fault() is safe to call concurrently (the morsel workers
// do). Lookups and LRU maintenance run under one mutex; page decode runs
// outside it, with per-entry loading states so two workers faulting the
// same segment do one decode (the loser waits). Counters are what the
// ExecStats segments_faulted / store_bytes_read deltas are computed from.

#ifndef GUS_STORE_SEGMENT_CACHE_H_
#define GUS_STORE_SEGMENT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "rel/column_batch.h"
#include "store/segment_store.h"
#include "util/status.h"

namespace gus {

struct SegmentCacheOptions {
  /// Byte budget of resident (unpinned-tracked) decoded segments. The
  /// cache evicts LRU entries past the budget; pinned segments stay alive
  /// through their shared_ptr regardless.
  int64_t max_bytes = 256ll << 20;
};

/// \brief Counter snapshot (monotonic over the cache's lifetime, except
/// resident_bytes which tracks the current footprint).
struct SegmentCacheCounters {
  int64_t faults = 0;       ///< segment decodes performed (cache misses)
  int64_t hits = 0;         ///< faults served from residency
  int64_t evictions = 0;    ///< entries dropped by the LRU policy
  int64_t bytes_read = 0;   ///< page bytes decoded from disk
  int64_t resident_bytes = 0;
};

class SegmentCache {
 public:
  explicit SegmentCache(SegmentCacheOptions options = {})
      : options_(options) {}

  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// \brief The decoded batch of segment `s` of `rel`, faulting it in on a
  /// miss. The returned pin keeps the batch alive past any eviction.
  Result<std::shared_ptr<const ColumnBatch>> Fault(const StoredRelation& rel,
                                                   int64_t s);

  /// Drops every resident entry (outstanding pins stay valid).
  void Clear();

  SegmentCacheCounters counters() const;

 private:
  using Key = std::pair<const StoredRelation*, int64_t>;

  struct Slot {
    bool loading = false;
    std::shared_ptr<const ColumnBatch> batch;
    int64_t bytes = 0;
    std::list<Key>::iterator lru_pos;
  };

  void EvictOverBudgetLocked();

  SegmentCacheOptions options_;
  mutable std::mutex mu_;
  std::condition_variable load_done_;
  std::map<Key, Slot> slots_;
  std::list<Key> lru_;  // front = most recent
  SegmentCacheCounters counters_;
};

}  // namespace gus

#endif  // GUS_STORE_SEGMENT_CACHE_H_
