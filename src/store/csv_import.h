// CSV ingestion into the segment store.
//
// Parses a headered CSV into a base Relation (lineage id = row index),
// inferring column types from the data (int64 -> float64 -> string, per
// column, widened as rows disagree) unless the caller pins them; the
// gus_ingest tool then writes the result as a `.gseg` file. Parsing is
// deliberately simple — RFC-4180 quoting with embedded delimiters and
// doubled quotes, no multi-line fields — because the store is the point,
// not the CSV dialect zoo.

#ifndef GUS_STORE_CSV_IMPORT_H_
#define GUS_STORE_CSV_IMPORT_H_

#include <string>
#include <vector>

#include "rel/relation.h"
#include "util/status.h"

namespace gus {

struct CsvImportOptions {
  char delimiter = ',';
  /// First line is column names. Without it, columns are named c0, c1, ...
  bool has_header = true;
  /// Optional explicit column types ("int64" / "float64" / "string"), one
  /// per column in order; empty = infer from the data. A value that fails
  /// to parse as the pinned type is an InvalidArgument, not a silent
  /// widen.
  std::vector<std::string> column_types;
};

/// \brief Splits one CSV record into fields (RFC-4180 quoting).
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char delimiter);

/// \brief Parses CSV text into a base relation named `name`.
Result<Relation> ImportCsvText(const std::string& name,
                               const std::string& text,
                               const CsvImportOptions& options = {});

/// File variant of ImportCsvText.
Result<Relation> ImportCsvFile(const std::string& name,
                               const std::string& path,
                               const CsvImportOptions& options = {});

}  // namespace gus

#endif  // GUS_STORE_CSV_IMPORT_H_
