// Persistent columnar segment storage (the on-disk half of src/store/).
//
// One relation = one `.gseg` file, laid out for mmap + selective fault-in:
//
//   +--------------------------------------------------------------+
//   | header     magic, version, content fingerprint, row/segment  |
//   |            counts, offsets of the meta and directory blocks  |
//   +--------------------------------------------------------------+
//   | pages      fixed-size row-group segments, one little-endian  |
//   |            page per column per segment (int64/float64: raw   |
//   |            8-byte values; strings: 4-byte codes into the     |
//   |            global dictionary) plus one row-major lineage     |
//   |            page per segment                                  |
//   +--------------------------------------------------------------+
//   | meta       relation name, schema, lineage schema, global     |
//   |            string dictionary                                 |
//   +--------------------------------------------------------------+
//   | directory  per segment: row range, FNV checksum over its     |
//   |            pages, per-column page extents + zone map         |
//   |            (min/max, null count), per-dim lineage id range   |
//   +--------------------------------------------------------------+
//
// Segments are fixed-size row groups (`segment_rows` rows each, short
// tail), so segment s covers rows [s*segment_rows, ...) and a scan knows
// which segment holds a row without touching the directory. Zone maps and
// lineage ranges are what the SegmentPruner (store/pruner.h) intersects
// with predicate footprints and sampler keep-sets to skip whole segments
// before they are ever faulted.
//
// The stored content fingerprint is computed with the exact hash chain of
// rel/column_batch.h ContentFingerprint, so a SegmentCatalog and an
// in-memory ColumnarCatalog holding the same rows agree byte-for-byte —
// the shard/serving protocols cannot tell the difference.
//
// Pages are raw little-endian; the store refuses to open or create files
// on big-endian hosts (Status::NotImplemented) instead of byte-swapping.

#ifndef GUS_STORE_SEGMENT_STORE_H_
#define GUS_STORE_SEGMENT_STORE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rel/column_batch.h"
#include "util/status.h"

namespace gus {

/// Default rows per segment. Equal to plan/executor.h kDefaultMorselRows,
/// so default sharded/morsel splits align 1:1 with segment boundaries and
/// whole-segment skipping translates directly into skipped morsels.
inline constexpr int64_t kDefaultSegmentRows = 32768;

/// File extension for relation segment files inside a catalog directory.
inline constexpr const char* kSegmentFileExt = ".gseg";

/// \brief Zone map of one column over one segment.
///
/// `kind` tells the pruner how much the bounds can be trusted:
///   kEmpty   — the segment holds no rows (or no values) for this column;
///              it can never contribute a kept row.
///   kRanged  — min/max are exact inclusive bounds over the stored values.
///   kUnknown — bounds unavailable (e.g. a float page containing NaN);
///              the pruner must keep the segment.
/// null_count is carried for format completeness (this engine stores no
/// nulls today, so writers emit 0), and a pruner treats a fully-null page
/// (null_count == row_count) as kEmpty.
struct ColumnZone {
  enum Kind : uint8_t { kEmpty = 0, kRanged = 1, kUnknown = 2 };
  Kind kind = kEmpty;
  int64_t min_i64 = 0, max_i64 = 0;  ///< kInt64 bounds
  double min_f64 = 0.0, max_f64 = 0.0;  ///< kFloat64 bounds
  uint32_t min_code = 0, max_code = 0;  ///< kString: codes of the bounds
  std::string min_str, max_str;  ///< kString bounds, resolved at Open
  uint64_t null_count = 0;
};

/// \brief Directory entry of one segment: where its pages live and what
/// the pruner may assume about them.
struct SegmentInfo {
  int64_t row_begin = 0;
  int64_t row_count = 0;
  /// FNV-1a over the segment's raw page bytes (columns in order, then
  /// lineage); verified on every decode so corruption fails loudly.
  uint64_t checksum = 0;
  std::vector<ColumnZone> zones;  ///< per column
  /// Per-column (file offset, byte length) of the value page.
  std::vector<std::pair<uint64_t, uint64_t>> column_pages;
  std::pair<uint64_t, uint64_t> lineage_page{0, 0};
  /// Per lineage dim: inclusive [min, max] id over the segment's rows.
  std::vector<std::pair<uint64_t, uint64_t>> lineage_range;
  /// Total page bytes of this segment (columns + lineage) — the I/O cost
  /// of faulting it.
  int64_t page_bytes = 0;
};

/// \brief A relation opened read-only from a `.gseg` file.
///
/// Immutable and internally synchronization-free after Open — safe to
/// share across threads. Decoding is segment-at-a-time; the pinned-segment
/// cache (store/segment_cache.h) sits on top.
class StoredRelation {
 public:
  static Result<std::unique_ptr<StoredRelation>> Open(const std::string& path);
  ~StoredRelation();

  StoredRelation(const StoredRelation&) = delete;
  StoredRelation& operator=(const StoredRelation&) = delete;

  const std::string& name() const { return name_; }
  const std::string& path() const { return path_; }
  const LayoutPtr& layout_ptr() const { return layout_; }
  const DictPtr& dict() const { return dict_; }

  int64_t num_rows() const { return num_rows_; }
  int64_t segment_rows() const { return segment_rows_; }
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  const SegmentInfo& segment(int64_t s) const {
    return segments_[static_cast<size_t>(s)];
  }
  /// The segment holding global row `row` (fixed-size row groups).
  int64_t SegmentOfRow(int64_t row) const { return row / segment_rows_; }

  /// The content fingerprint recorded at write time (ContentFingerprint
  /// chain; equals the in-memory catalog's fingerprint for the same rows).
  uint64_t content_fingerprint() const { return content_fingerprint_; }

  /// Total page bytes across all segments.
  int64_t total_page_bytes() const { return total_page_bytes_; }

  /// \brief Mean on-disk bytes per row (>= 1), from the page directory.
  ///
  /// This is what auto morsel sizing uses for segment-backed pivots, so
  /// the working-set clamp reflects what a morsel actually faults in.
  int64_t OnDiskRowBytes() const;

  /// \brief Decodes segment `s` into a materialized batch (checksum
  /// verified; Internal on mismatch).
  Result<ColumnBatch> DecodeSegment(int64_t s) const;

  /// \brief Streams every page to recompute the content fingerprint
  /// (identical chain to rel/column_batch.h ContentFingerprint).
  ///
  /// Used by the writer to stamp the header and by integrity checks; a
  /// normal open trusts the stored value.
  Result<uint64_t> ComputeContentFingerprint() const;

 private:
  StoredRelation() = default;

  Status Parse();

  std::string path_;
  std::string name_;
  int fd_ = -1;
  const uint8_t* base_ = nullptr;
  uint64_t file_bytes_ = 0;

  uint64_t content_fingerprint_ = 0;
  int64_t num_rows_ = 0;
  int64_t segment_rows_ = 0;
  int64_t total_page_bytes_ = 0;
  LayoutPtr layout_;
  DictPtr dict_;
  std::vector<SegmentInfo> segments_;
};

/// \brief Streaming writer: append batches, flush fixed-size segments,
/// Finish() seals the file.
///
/// Finish writes the meta + directory blocks, re-reads its own pages to
/// compute the content fingerprint, and patches the header — so a file is
/// valid iff Finish succeeded; partial files fail to Open.
class SegmentFileWriter {
 public:
  static Result<std::unique_ptr<SegmentFileWriter>> Create(
      const std::string& path, const std::string& name, LayoutPtr layout,
      int64_t segment_rows = kDefaultSegmentRows);
  ~SegmentFileWriter();

  SegmentFileWriter(const SegmentFileWriter&) = delete;
  SegmentFileWriter& operator=(const SegmentFileWriter&) = delete;

  /// Appends the rows of `batch` (schema must match the layout; string
  /// values are re-interned into the file's global dictionary).
  Status Append(const ColumnBatch& batch);

  struct Summary {
    int64_t num_rows = 0;
    int64_t num_segments = 0;
    uint64_t content_fingerprint = 0;
  };

  /// Seals the file; no Append after. Returns what was written.
  Result<Summary> Finish();

 private:
  SegmentFileWriter() = default;

  Status FlushSegment();

  std::string path_;
  std::string name_;
  LayoutPtr layout_;
  int64_t segment_rows_ = 0;
  std::FILE* file_ = nullptr;
  bool finished_ = false;

  ColumnBatch pending_;       // buffered rows of the open segment
  DictPtr dict_;              // global dictionary being built
  int64_t rows_written_ = 0;
  uint64_t next_page_offset_ = 0;
  std::vector<SegmentInfo> segments_;
};

/// Writes `rel` as a single `.gseg` file at `path` (convenience wrapper
/// over SegmentFileWriter, batching through the relation's rows).
Result<SegmentFileWriter::Summary> WriteRelationSegments(
    const std::string& name, const ColumnarRelation& rel,
    const std::string& path, int64_t segment_rows = kDefaultSegmentRows);

}  // namespace gus

#endif  // GUS_STORE_SEGMENT_STORE_H_
