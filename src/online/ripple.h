// Online aggregation via the GUS algebra.
//
// The related-work systems the paper discusses (ripple joins, DBO) stream
// tuples in random order and refine an estimate continuously. The GUS view
// makes their analysis a two-line argument:
//
//   * a prefix of a random permutation of R is exactly a WOR(k, N) sample;
//   * prefixes of two independently shuffled relations joined together are
//     WOR(k1, N1) ⋈ WOR(k2, N2), whose single top GUS is GusJoin of the
//     two WOR translations (Prop. 6).
//
// RippleEstimator ingests tuples alternately from both shuffled inputs,
// maintains the join result and the 2^n Y_S statistics *incrementally*,
// and at any moment emits an unbiased estimate of the full join aggregate
// with a confidence interval that tightens as more tuples arrive — online
// aggregation, analyzed by the sampling algebra instead of bespoke CLT
// derivations.

#ifndef GUS_ONLINE_RIPPLE_H_
#define GUS_ONLINE_RIPPLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algebra/gus_params.h"
#include "est/confidence.h"
#include "rel/expression.h"
#include "rel/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace gus {

/// A progress snapshot of the online estimate.
struct RippleSnapshot {
  /// Tuples consumed from each input.
  int64_t seen_left = 0;
  int64_t seen_right = 0;
  /// Result tuples materialized so far.
  int64_t result_rows = 0;
  double estimate = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  ConfidenceInterval interval;
};

/// \brief Streaming ripple-style estimator for
/// SUM(f) over left ⋈ right (equi-join).
///
/// Construction shuffles both inputs (the random-order-scan assumption of
/// online aggregation). Step() consumes one tuple from the smaller-progress
/// side, joins it against the seen portion of the other side, and updates
/// the moment statistics in O(matches · 2^n).
class RippleEstimator {
 public:
  /// `left`/`right` must be base relations with disjoint names.
  static Result<RippleEstimator> Make(const Relation& left,
                                      const Relation& right,
                                      const std::string& left_key,
                                      const std::string& right_key,
                                      const ExprPtr& f, uint64_t seed,
                                      double confidence_level = 0.95);

  /// True when both inputs are fully consumed (estimate is exact).
  bool done() const {
    return seen_left_ >= left_.num_rows() && seen_right_ >= right_.num_rows();
  }

  /// Consumes one tuple (alternating sides); no-op when done.
  Status Step();

  /// Consumes up to `n` tuples.
  Status StepMany(int64_t n);

  /// Current estimate, variance, and interval.
  Result<RippleSnapshot> Snapshot() const;

 private:
  RippleEstimator() = default;

  Status IngestLeft();
  Status IngestRight();
  void AddResultTuple(uint64_t left_id, uint64_t right_id, double f);

  Relation left_, right_;        // shuffled copies
  int left_key_ = 0, right_key_ = 0;
  ExprPtr f_bound_;              // bound against the joined schema
  Schema joined_schema_;
  LineageSchema lineage_;        // {left_name, right_name}
  double confidence_level_ = 0.95;

  int64_t seen_left_ = 0, seen_right_ = 0;
  int64_t result_rows_ = 0;
  // Hash indexes over the *seen* prefixes: key hash -> row index.
  std::unordered_multimap<uint64_t, int64_t> left_index_;
  std::unordered_multimap<uint64_t, int64_t> right_index_;
  // Incremental moment state: sum of f; per-mask group sums and the
  // resulting Y_S = sum of (group sum)^2, maintained under point updates.
  double sum_f_ = 0.0;
  // Y for masks: 0 = {}, 1 = {left}, 2 = {right}, 3 = {left,right}.
  std::vector<std::unordered_map<uint64_t, double>> groups_;  // masks 1..3
  std::vector<double> y_;  // masks 0..3
};

}  // namespace gus

#endif  // GUS_ONLINE_RIPPLE_H_
