#include "online/ripple.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "algebra/ops.h"
#include "algebra/translate.h"
#include "est/unbiased.h"
#include "est/variance.h"
#include "util/hash.h"

namespace gus {

namespace {

/// Shuffled copy of a relation (rows keep their original lineage ids, so a
/// prefix of the copy is a WOR sample of the original).
Relation Shuffle(const Relation& input, Rng* rng) {
  std::vector<int64_t> perm(input.num_rows());
  std::iota(perm.begin(), perm.end(), int64_t{0});
  for (int64_t i = input.num_rows() - 1; i > 0; --i) {
    const auto j = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  Relation out(input.schema(), input.lineage_schema());
  out.Reserve(input.num_rows());
  for (int64_t i : perm) {
    out.AppendRow(input.row(i), input.lineage(i));
  }
  return out;
}

}  // namespace

Result<RippleEstimator> RippleEstimator::Make(
    const Relation& left, const Relation& right, const std::string& left_key,
    const std::string& right_key, const ExprPtr& f, uint64_t seed,
    double confidence_level) {
  if (left.lineage_schema().size() != 1 ||
      right.lineage_schema().size() != 1) {
    return Status::InvalidArgument(
        "ripple estimation joins base relations");
  }
  if (!Relation::LineageDisjoint(left, right)) {
    return Status::InvalidArgument("inputs must be distinct relations");
  }
  RippleEstimator est;
  Rng rng(seed);
  est.left_ = Shuffle(left, &rng);
  est.right_ = Shuffle(right, &rng);
  GUS_ASSIGN_OR_RETURN(est.left_key_, left.schema().IndexOf(left_key));
  GUS_ASSIGN_OR_RETURN(est.right_key_, right.schema().IndexOf(right_key));
  GUS_ASSIGN_OR_RETURN(est.joined_schema_,
                       Schema::Concat(left.schema(), right.schema()));
  GUS_ASSIGN_OR_RETURN(est.f_bound_, f->Bind(est.joined_schema_));
  GUS_ASSIGN_OR_RETURN(
      est.lineage_,
      LineageSchema::Make(
          {left.lineage_schema()[0], right.lineage_schema()[0]}));
  est.confidence_level_ = confidence_level;
  est.groups_.resize(2);
  est.y_.assign(4, 0.0);
  return est;
}

void RippleEstimator::AddResultTuple(uint64_t left_id, uint64_t right_id,
                                     double f) {
  ++result_rows_;
  sum_f_ += f;
  y_[0] = sum_f_ * sum_f_;
  // Mask {left} (bit 0): group by the left tuple id.
  {
    double& s = groups_[0][left_id];
    y_[1] += (s + f) * (s + f) - s * s;
    s += f;
  }
  // Mask {right} (bit 1).
  {
    double& s = groups_[1][right_id];
    y_[2] += (s + f) * (s + f) - s * s;
    s += f;
  }
  // Mask {left,right}: result tuples are unique per (left_id, right_id),
  // so each forms its own group.
  y_[3] += f * f;
}

Status RippleEstimator::IngestLeft() {
  const int64_t i = seen_left_;
  const Row& row = left_.row(i);
  const uint64_t left_id = left_.lineage(i)[0];
  const Value& key = row[left_key_];
  auto range = right_index_.equal_range(key.Hash());
  for (auto it = range.first; it != range.second; ++it) {
    const Row& rrow = right_.row(it->second);
    if (!rrow[right_key_].KeyEquals(key)) continue;
    Row joined = row;
    joined.insert(joined.end(), rrow.begin(), rrow.end());
    GUS_ASSIGN_OR_RETURN(Value v, f_bound_->Eval(joined));
    if (!v.is_numeric()) {
      return Status::TypeError("aggregate must be numeric");
    }
    AddResultTuple(left_id, right_.lineage(it->second)[0], v.ToDouble());
  }
  left_index_.emplace(key.Hash(), i);
  ++seen_left_;
  return Status::OK();
}

Status RippleEstimator::IngestRight() {
  const int64_t i = seen_right_;
  const Row& row = right_.row(i);
  const uint64_t right_id = right_.lineage(i)[0];
  const Value& key = row[right_key_];
  auto range = left_index_.equal_range(key.Hash());
  for (auto it = range.first; it != range.second; ++it) {
    const Row& lrow = left_.row(it->second);
    if (!lrow[left_key_].KeyEquals(key)) continue;
    Row joined = lrow;
    joined.insert(joined.end(), row.begin(), row.end());
    GUS_ASSIGN_OR_RETURN(Value v, f_bound_->Eval(joined));
    if (!v.is_numeric()) {
      return Status::TypeError("aggregate must be numeric");
    }
    AddResultTuple(left_.lineage(it->second)[0], right_id, v.ToDouble());
  }
  right_index_.emplace(key.Hash(), i);
  ++seen_right_;
  return Status::OK();
}

Status RippleEstimator::Step() {
  if (done()) return Status::OK();
  // Advance the side with the smaller progress fraction (square ripple).
  const double left_frac =
      left_.num_rows() == 0
          ? 1.0
          : static_cast<double>(seen_left_) / left_.num_rows();
  const double right_frac =
      right_.num_rows() == 0
          ? 1.0
          : static_cast<double>(seen_right_) / right_.num_rows();
  if (seen_right_ >= right_.num_rows() ||
      (seen_left_ < left_.num_rows() && left_frac <= right_frac)) {
    return IngestLeft();
  }
  return IngestRight();
}

Status RippleEstimator::StepMany(int64_t n) {
  for (int64_t i = 0; i < n && !done(); ++i) {
    GUS_RETURN_NOT_OK(Step());
  }
  return Status::OK();
}

Result<RippleSnapshot> RippleEstimator::Snapshot() const {
  if (seen_left_ < 2 || seen_right_ < 2) {
    return Status::InvalidArgument(
        "need at least two tuples per side before a snapshot (pairwise "
        "probabilities are zero below that)");
  }
  // Prefixes are WOR samples; the joined design is their GUS join.
  GUS_ASSIGN_OR_RETURN(
      GusParams gl,
      TranslateBaseSampling(
          SamplingSpec::WithoutReplacement(seen_left_, left_.num_rows()),
          lineage_.relation(0)));
  GUS_ASSIGN_OR_RETURN(
      GusParams gr,
      TranslateBaseSampling(
          SamplingSpec::WithoutReplacement(seen_right_, right_.num_rows()),
          lineage_.relation(1)));
  GUS_ASSIGN_OR_RETURN(GusParams gus, GusJoin(gl, gr));

  RippleSnapshot snap;
  snap.seen_left = seen_left_;
  snap.seen_right = seen_right_;
  snap.result_rows = result_rows_;
  snap.estimate = gus.a() > 0.0 ? sum_f_ / gus.a() : 0.0;
  GUS_ASSIGN_OR_RETURN(std::vector<double> y_hat,
                       UnbiasedYEstimates(gus, y_));
  GUS_ASSIGN_OR_RETURN(double var, VarianceFromY(gus, y_hat));
  snap.variance = std::max(0.0, var);
  snap.stddev = std::sqrt(snap.variance);
  GUS_ASSIGN_OR_RETURN(snap.interval,
                       MakeInterval(snap.estimate, snap.variance,
                                    confidence_level_, BoundKind::kNormal));
  return snap;
}

}  // namespace gus
