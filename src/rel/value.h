// Typed scalar values for the in-memory relational engine.

#ifndef GUS_REL_VALUE_H_
#define GUS_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/hash.h"
#include "util/logging.h"

namespace gus {

/// Column / value type tags.
enum class ValueType { kInt64, kFloat64, kString };

inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kFloat64: return "float64";
    case ValueType::kString: return "string";
  }
  return "?";
}

/// \brief A dynamically-typed scalar: int64, float64 or string.
///
/// Arithmetic between the two numeric types promotes to float64; all
/// coercion decisions live in the expression evaluator, Value itself is a
/// plain tagged container.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}        // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}   // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}         // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt64;
    if (std::holds_alternative<double>(data_)) return ValueType::kFloat64;
    return ValueType::kString;
  }

  bool is_numeric() const { return type() != ValueType::kString; }

  int64_t AsInt64() const {
    GUS_DCHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(data_);
  }
  double AsFloat64() const {
    GUS_DCHECK(type() == ValueType::kFloat64);
    return std::get<double>(data_);
  }
  const std::string& AsString() const {
    GUS_DCHECK(type() == ValueType::kString);
    return std::get<std::string>(data_);
  }

  /// Numeric value widened to double (requires is_numeric()).
  double ToDouble() const {
    GUS_DCHECK(is_numeric());
    return type() == ValueType::kInt64 ? static_cast<double>(AsInt64())
                                       : AsFloat64();
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash suitable for join/group keys (type-sensitive for exact equality).
  uint64_t Hash() const {
    switch (type()) {
      case ValueType::kInt64:
        return Mix64(static_cast<uint64_t>(AsInt64()));
      case ValueType::kFloat64: {
        double d = AsFloat64();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return Mix64(bits ^ 0x8000000000000001ULL);
      }
      case ValueType::kString: {
        uint64_t h = 0x243f6a8885a308d3ULL;
        for (char c : AsString()) {
          h = HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
        }
        return h;
      }
    }
    return 0;
  }

  std::string ToString() const {
    switch (type()) {
      case ValueType::kInt64: return std::to_string(AsInt64());
      case ValueType::kFloat64: return std::to_string(AsFloat64());
      case ValueType::kString: return AsString();
    }
    return "?";
  }

 private:
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace gus

#endif  // GUS_REL_VALUE_H_
