// Typed scalar values for the in-memory relational engine.

#ifndef GUS_REL_VALUE_H_
#define GUS_REL_VALUE_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <variant>

#include "util/hash.h"
#include "util/logging.h"

namespace gus {

/// Column / value type tags.
enum class ValueType { kInt64, kFloat64, kString };

inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kFloat64: return "float64";
    case ValueType::kString: return "string";
  }
  GUS_CHECK(false && "unhandled ValueType");
  return "";
}

/// \brief True if `d` is an integer exactly representable as int64 (sets
/// *out). Rejects NaN, infinities, fractional and out-of-range values.
inline bool Float64AsExactInt64(double d, int64_t* out) {
  // -0x1p63 is exactly int64 min; 0x1p63 is one past int64 max.
  if (!(d >= -0x1p63 && d < 0x1p63)) return false;
  if (d != std::trunc(d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

// Key-hash primitives shared by Value::Hash and the columnar engine's
// vectorized join kernels; both must agree bit-for-bit.
inline uint64_t HashInt64Key(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}

/// Integral float64 values hash like the int64 they promote from, so join
/// and group keys that compare equal across the two numeric types also hash
/// equal. Non-integral values hash their bit pattern (±0.0 both take the
/// integral path and agree).
inline uint64_t HashFloat64Key(double d) {
  int64_t as_int;
  if (Float64AsExactInt64(d, &as_int)) return HashInt64Key(as_int);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits ^ 0x8000000000000001ULL);
}

inline uint64_t HashStringKey(const std::string& s) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (char c : s) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return h;
}

/// \brief A dynamically-typed scalar: int64, float64 or string.
///
/// Arithmetic between the two numeric types promotes to float64; all
/// coercion decisions live in the expression evaluator, Value itself is a
/// plain tagged container.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}        // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}   // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}         // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt64;
    if (std::holds_alternative<double>(data_)) return ValueType::kFloat64;
    return ValueType::kString;
  }

  bool is_numeric() const { return type() != ValueType::kString; }

  int64_t AsInt64() const {
    GUS_DCHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(data_);
  }
  double AsFloat64() const {
    GUS_DCHECK(type() == ValueType::kFloat64);
    return std::get<double>(data_);
  }
  const std::string& AsString() const {
    GUS_DCHECK(type() == ValueType::kString);
    return std::get<std::string>(data_);
  }

  /// Numeric value widened to double (requires is_numeric()).
  double ToDouble() const {
    GUS_DCHECK(is_numeric());
    return type() == ValueType::kInt64 ? static_cast<double>(AsInt64())
                                       : AsFloat64();
  }

  /// Strict equality: type-sensitive (int64 3 != float64 3.0). The relaxed
  /// relation joins and grouping use is KeyEquals below.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Join/group-key equality: numeric values compare by promoted
  /// value (int64 3 equals float64 3.0), strings by content.
  ///
  /// Hash() is consistent with this relation — KeyEquals(a, b) implies
  /// a.Hash() == b.Hash() — so mixed-type numeric key columns join.
  bool KeyEquals(const Value& other) const {
    if (type() == other.type()) return data_ == other.data_;
    if (!is_numeric() || !other.is_numeric()) return false;
    // One int64, one float64: equal iff the float is exactly that integer
    // (comparing as double would conflate int64s beyond 2^53).
    const double d = type() == ValueType::kFloat64 ? AsFloat64()
                                                   : other.AsFloat64();
    const int64_t i = type() == ValueType::kInt64 ? AsInt64()
                                                  : other.AsInt64();
    int64_t as_int;
    return Float64AsExactInt64(d, &as_int) && as_int == i;
  }

  /// Hash suitable for join/group keys; consistent with KeyEquals (integral
  /// float64 hashes like the int64 it promotes from).
  uint64_t Hash() const {
    switch (type()) {
      case ValueType::kInt64: return HashInt64Key(AsInt64());
      case ValueType::kFloat64: return HashFloat64Key(AsFloat64());
      case ValueType::kString: return HashStringKey(AsString());
    }
    GUS_CHECK(false && "unhandled ValueType");
    return 0;
  }

  std::string ToString() const {
    switch (type()) {
      case ValueType::kInt64: return std::to_string(AsInt64());
      case ValueType::kFloat64: return std::to_string(AsFloat64());
      case ValueType::kString: return AsString();
    }
    GUS_CHECK(false && "unhandled ValueType");
    return "";
  }

 private:
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace gus

#endif  // GUS_REL_VALUE_H_
