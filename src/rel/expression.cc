#include "rel/expression.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace gus {

namespace {

bool IsBinaryOp(ExprOp op) {
  switch (op) {
    case ExprOp::kColumn:
    case ExprOp::kLiteral:
    case ExprOp::kNot:
    case ExprOp::kNeg:
      return false;
    default:
      return true;
  }
}

const char* OpSymbol(ExprOp op) { return ExprOpSymbol(op); }

}  // namespace

const char* ExprOpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kEq: return "=";
    case ExprOp::kNe: return "<>";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "AND";
    case ExprOp::kOr: return "OR";
    case ExprOp::kNot: return "NOT";
    case ExprOp::kNeg: return "-";
    default: return "?";
  }
}

namespace {

Result<Value> NumericBinary(ExprOp op, const Value& l, const Value& r) {
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(std::string("operator ") + OpSymbol(op) +
                             " requires numeric operands");
  }
  // Integer arithmetic stays integral; mixed promotes to float64.
  if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
      op != ExprOp::kDiv) {
    const int64_t a = l.AsInt64(), b = r.AsInt64();
    switch (op) {
      case ExprOp::kAdd: return Value(a + b);
      case ExprOp::kSub: return Value(a - b);
      case ExprOp::kMul: return Value(a * b);
      default: break;
    }
  }
  const double a = l.ToDouble(), b = r.ToDouble();
  switch (op) {
    case ExprOp::kAdd: return Value(a + b);
    case ExprOp::kSub: return Value(a - b);
    case ExprOp::kMul: return Value(a * b);
    case ExprOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    default:
      return Status::Internal("not a numeric op");
  }
}

Result<Value> CompareBinary(ExprOp op, const Value& l, const Value& r) {
  int cmp;
  if (l.is_numeric() && r.is_numeric()) {
    const double a = l.ToDouble(), b = r.ToDouble();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (l.type() == ValueType::kString &&
             r.type() == ValueType::kString) {
    cmp = l.AsString().compare(r.AsString());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    return Status::TypeError("cannot compare " +
                             std::string(ValueTypeName(l.type())) + " with " +
                             ValueTypeName(r.type()));
  }
  bool v = false;
  switch (op) {
    case ExprOp::kEq: v = cmp == 0; break;
    case ExprOp::kNe: v = cmp != 0; break;
    case ExprOp::kLt: v = cmp < 0; break;
    case ExprOp::kLe: v = cmp <= 0; break;
    case ExprOp::kGt: v = cmp > 0; break;
    case ExprOp::kGe: v = cmp >= 0; break;
    default: return Status::Internal("not a comparison op");
  }
  return Value(int64_t{v ? 1 : 0});
}

Result<bool> Truthiness(const Value& v) {
  if (!v.is_numeric()) {
    return Status::TypeError("boolean context requires a numeric value");
  }
  return v.ToDouble() != 0.0;
}

}  // namespace

ExprPtr Expr::MakeColumn(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::MakeUnary(ExprOp op, ExprPtr arg) {
  GUS_CHECK(op == ExprOp::kNot || op == ExprOp::kNeg);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->args_[0] = std::move(arg);
  return e;
}

ExprPtr Expr::MakeBinary(ExprOp op, ExprPtr l, ExprPtr r) {
  GUS_CHECK(IsBinaryOp(op));
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->args_[0] = std::move(l);
  e->args_[1] = std::move(r);
  return e;
}

Result<ExprPtr> Expr::Bind(const Schema& schema) const {
  auto bound = std::shared_ptr<Expr>(new Expr(*this));
  switch (op_) {
    case ExprOp::kColumn: {
      GUS_ASSIGN_OR_RETURN(bound->column_index_, schema.IndexOf(column_));
      break;
    }
    case ExprOp::kLiteral:
      break;
    case ExprOp::kNot:
    case ExprOp::kNeg: {
      GUS_ASSIGN_OR_RETURN(bound->args_[0], args_[0]->Bind(schema));
      break;
    }
    default: {
      GUS_ASSIGN_OR_RETURN(bound->args_[0], args_[0]->Bind(schema));
      GUS_ASSIGN_OR_RETURN(bound->args_[1], args_[1]->Bind(schema));
      break;
    }
  }
  return ExprPtr(bound);
}

Result<Value> Expr::Eval(const Row& row) const {
  switch (op_) {
    case ExprOp::kColumn:
      if (column_index_ < 0 ||
          column_index_ >= static_cast<int>(row.size())) {
        return Status::Internal("unbound or out-of-range column '" + column_ +
                                "' — call Bind() first");
      }
      return row[column_index_];
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kNeg: {
      GUS_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
      if (!v.is_numeric()) return Status::TypeError("negation of non-number");
      if (v.type() == ValueType::kInt64) return Value(-v.AsInt64());
      return Value(-v.AsFloat64());
    }
    case ExprOp::kNot: {
      GUS_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
      GUS_ASSIGN_OR_RETURN(bool b, Truthiness(v));
      return Value(int64_t{b ? 0 : 1});
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      GUS_ASSIGN_OR_RETURN(Value lv, args_[0]->Eval(row));
      GUS_ASSIGN_OR_RETURN(bool lb, Truthiness(lv));
      // Short circuit.
      if (op_ == ExprOp::kAnd && !lb) return Value(int64_t{0});
      if (op_ == ExprOp::kOr && lb) return Value(int64_t{1});
      GUS_ASSIGN_OR_RETURN(Value rv, args_[1]->Eval(row));
      GUS_ASSIGN_OR_RETURN(bool rb, Truthiness(rv));
      return Value(int64_t{rb ? 1 : 0});
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      GUS_ASSIGN_OR_RETURN(Value lv, args_[0]->Eval(row));
      GUS_ASSIGN_OR_RETURN(Value rv, args_[1]->Eval(row));
      return NumericBinary(op_, lv, rv);
    }
    default: {
      GUS_ASSIGN_OR_RETURN(Value lv, args_[0]->Eval(row));
      GUS_ASSIGN_OR_RETURN(Value rv, args_[1]->Eval(row));
      return CompareBinary(op_, lv, rv);
    }
  }
}

Result<Value> Expr::Eval(const Schema& schema, const Row& row) const {
  GUS_ASSIGN_OR_RETURN(ExprPtr bound, Bind(schema));
  return bound->Eval(row);
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kColumn:
      return column_;
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kNot:
      return "NOT (" + args_[0]->ToString() + ")";
    case ExprOp::kNeg:
      return "-(" + args_[0]->ToString() + ")";
    default: {
      std::ostringstream out;
      out << "(" << args_[0]->ToString() << " " << OpSymbol(op_) << " "
          << args_[1]->ToString() << ")";
      return out.str();
    }
  }
}

ExprPtr Col(std::string name) { return Expr::MakeColumn(std::move(name)); }
ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kDiv, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Expr::MakeBinary(ExprOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr x) { return Expr::MakeUnary(ExprOp::kNot, std::move(x)); }
ExprPtr Neg(ExprPtr x) { return Expr::MakeUnary(ExprOp::kNeg, std::move(x)); }

}  // namespace gus
