#include "rel/relation.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace gus {

void Relation::AppendRow(Row row, LineageRow lineage) {
  GUS_CHECK(static_cast<int>(row.size()) == schema_.num_columns() &&
            "row arity must match the column schema");
  GUS_CHECK(lineage.size() == lineage_schema_.size() &&
            "lineage arity must match the lineage schema");
  rows_.push_back(std::move(row));
  lineage_.push_back(std::move(lineage));
}

Status Relation::AppendRowChecked(Row row, LineageRow lineage) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match the column schema arity " +
        std::to_string(schema_.num_columns()));
  }
  if (lineage.size() != lineage_schema_.size()) {
    return Status::InvalidArgument(
        "lineage arity " + std::to_string(lineage.size()) +
        " does not match the lineage schema arity " +
        std::to_string(lineage_schema_.size()));
  }
  rows_.push_back(std::move(row));
  lineage_.push_back(std::move(lineage));
  return Status::OK();
}

Relation Relation::MakeBase(const std::string& name, Schema schema,
                            std::vector<Row> rows) {
  Relation rel(std::move(schema), {name});
  rel.Reserve(static_cast<int64_t>(rows.size()));
  uint64_t id = 0;
  for (auto& row : rows) {
    rel.AppendRow(std::move(row), {id++});
  }
  return rel;
}

Relation Relation::MakeBaseWithIds(const std::string& name, Schema schema,
                                   std::vector<Row> rows,
                                   std::vector<uint64_t> ids) {
  GUS_CHECK(rows.size() == ids.size());
  Relation rel(std::move(schema), {name});
  rel.Reserve(static_cast<int64_t>(rows.size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    rel.AppendRow(std::move(rows[i]), {ids[i]});
  }
  return rel;
}

bool Relation::LineageDisjoint(const Relation& a, const Relation& b) {
  for (const auto& name : a.lineage_schema()) {
    if (std::find(b.lineage_schema().begin(), b.lineage_schema().end(),
                  name) != b.lineage_schema().end()) {
      return false;
    }
  }
  return true;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::ostringstream out;
  out << "Relation" << schema_.ToString() << " lineage[";
  for (size_t i = 0; i < lineage_schema_.size(); ++i) {
    if (i) out << ",";
    out << lineage_schema_[i];
  }
  out << "] rows=" << num_rows() << "\n";
  const int64_t shown = std::min<int64_t>(max_rows, num_rows());
  for (int64_t r = 0; r < shown; ++r) {
    out << "  ";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) out << " | ";
      out << rows_[r][c].ToString();
    }
    out << "   <";
    for (size_t l = 0; l < lineage_[r].size(); ++l) {
      if (l) out << ",";
      out << lineage_[r][l];
    }
    out << ">\n";
  }
  if (shown < num_rows()) out << "  ... (" << num_rows() - shown << " more)\n";
  return out.str();
}

}  // namespace gus
