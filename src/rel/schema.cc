#include "rel/schema.h"

#include <sstream>

#include "util/logging.h"

namespace gus {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (int i = 0; i < static_cast<int>(columns_.size()); ++i) {
    GUS_CHECK(index_.emplace(columns_[i].name, i).second);
  }
}

Result<int> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no column named '" + name + "' in schema " +
                            ToString());
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<Schema> Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  for (const auto& c : right.columns_) {
    if (left.Contains(c.name)) {
      return Status::InvalidArgument("duplicate column '" + c.name +
                                     "' when concatenating schemas");
    }
    cols.push_back(c);
  }
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out << ", ";
    out << columns_[i].name << ":" << ValueTypeName(columns_[i].type);
  }
  out << ")";
  return out.str();
}

}  // namespace gus
