// A small expression language over rows: column references, literals,
// arithmetic, comparison, and boolean logic. Enough to express the paper's
// aggregates (l_discount * (1.0 - l_tax)) and predicates
// (l_extendedprice > 100.0).

#ifndef GUS_REL_EXPRESSION_H_
#define GUS_REL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "rel/schema.h"
#include "rel/value.h"
#include "util/status.h"

namespace gus {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprOp {
  kColumn,   // column reference by name
  kLiteral,  // constant
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kNeg,
};

/// \brief Immutable expression tree node.
///
/// Expressions are built with the free functions below (Col, Lit, Add, ...)
/// and evaluated against a (Schema, Row) pair. Boolean results are int64
/// 0/1. Mixed int/float arithmetic promotes to float64.
class Expr {
 public:
  ExprOp op() const { return op_; }
  const std::string& column_name() const { return column_; }
  /// Resolved column position (>= 0 once bound, -1 before). The vectorized
  /// evaluator (plan/vector_eval.h) reads this on bound expressions.
  int column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  const ExprPtr& left() const { return args_[0]; }
  const ExprPtr& right() const { return args_[1]; }

  /// \brief Resolves column indexes against `schema`.
  ///
  /// Must be called (directly or via Eval with schema) before evaluation on
  /// rows of that schema; returns a bound copy so the same Expr can be bound
  /// to multiple schemas.
  Result<ExprPtr> Bind(const Schema& schema) const;

  /// Evaluates a *bound* expression against a row.
  Result<Value> Eval(const Row& row) const;

  /// Convenience: binds against `schema` then evaluates.
  Result<Value> Eval(const Schema& schema, const Row& row) const;

  std::string ToString() const;

  // Node constructors (prefer the free helper functions).
  static ExprPtr MakeColumn(std::string name);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeUnary(ExprOp op, ExprPtr arg);
  static ExprPtr MakeBinary(ExprOp op, ExprPtr l, ExprPtr r);

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kLiteral;
  std::string column_;
  int column_index_ = -1;  // >= 0 once bound
  Value literal_;
  ExprPtr args_[2];
};

/// Printable symbol of an operator ("+", "AND", ...), shared by the row and
/// vectorized evaluators' diagnostics.
const char* ExprOpSymbol(ExprOp op);

/// Column reference.
ExprPtr Col(std::string name);
/// Literal constant.
ExprPtr Lit(Value v);

ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr x);
ExprPtr Neg(ExprPtr x);

}  // namespace gus

#endif  // GUS_REL_EXPRESSION_H_
