// Column schemas for the relational engine.

#ifndef GUS_REL_SCHEMA_H_
#define GUS_REL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rel/value.h"
#include "util/status.h"

namespace gus {

/// A row: one Value per schema column.
using Row = std::vector<Value>;

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type;
};

/// \brief Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or KeyError.
  Result<int> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Concatenates two schemas; fails on duplicate column names.
  static Result<Schema> Concat(const Schema& left, const Schema& right);

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace gus

#endif  // GUS_REL_SCHEMA_H_
